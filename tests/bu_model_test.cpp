#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bu/attack_model.hpp"
#include "bu/attack_state.hpp"

namespace {

using namespace bvc::bu;
using bvc::mdp::StateId;

AttackParams default_params(Setting setting = Setting::kNoStickyGate) {
  AttackParams params;
  params.alpha = 0.2;
  params.beta = 0.4;
  params.gamma = 0.4;
  params.ad = 6;
  params.setting = setting;
  return params;
}

// -------------------------------------------------------------- StateSpace --

TEST(StateSpace, BaseStateIsIndexZero) {
  const StateSpace space(6, 0);
  EXPECT_EQ(space.base(), 0u);
  EXPECT_EQ(space.state(0), AttackState{});
}

TEST(StateSpace, RoundTripsEveryState) {
  const StateSpace space(6, 144);
  for (StateId id = 0; id < space.size(); ++id) {
    EXPECT_EQ(space.index(space.state(id)), id);
  }
}

TEST(StateSpace, Setting1SizeMatchesClosedForm) {
  // Shapes: base + sum over l2=1..AD-1, l1=0..l2 of (l1+1) * l2.
  const unsigned ad = 6;
  const StateSpace space(ad, 0);
  std::size_t expected = 1;
  for (unsigned l2 = 1; l2 < ad; ++l2) {
    for (unsigned l1 = 0; l1 <= l2; ++l1) {
      expected += (l1 + 1) * l2;
    }
  }
  EXPECT_EQ(space.size(), expected);
}

TEST(StateSpace, Setting2IsSetting1TimesGatePeriodPlusOne) {
  const StateSpace s1(6, 0);
  const StateSpace s2(6, 144);
  EXPECT_EQ(s2.size(), s1.size() * 145u);
}

TEST(StateSpace, RejectsUnreachableShapes) {
  const StateSpace space(6, 0);
  // a2 = 0 in a fork state is unreachable (Chain 2 starts with Alice's
  // block).
  EXPECT_FALSE(space.contains(AttackState{0, 1, 0, 0, 0}));
  // l1 > l2 is unreachable (Chain 1 would have already won).
  EXPECT_FALSE(space.contains(AttackState{2, 1, 0, 1, 0}));
  // l2 = AD is unreachable (Chain 2 locks on reaching AD).
  EXPECT_FALSE(space.contains(AttackState{0, 6, 0, 1, 0}));
  EXPECT_THROW((void)space.index(AttackState{0, 1, 0, 0, 0}),
               std::invalid_argument);
}

TEST(StateSpace, ContainsReachableShapes) {
  const StateSpace space(6, 144);
  EXPECT_TRUE(space.contains(AttackState{}));
  EXPECT_TRUE(space.contains(AttackState{0, 1, 0, 1, 0}));
  EXPECT_TRUE(space.contains(AttackState{5, 5, 3, 2, 144}));
  EXPECT_FALSE(space.contains(AttackState{0, 0, 0, 0, 145}));
}

TEST(StateSpace, ToStringIsReadable) {
  EXPECT_EQ(to_string(AttackState{1, 3, 0, 2, 12}), "(1,3,0,2|r=12)");
}

// ------------------------------------------------------------- validation --

TEST(AttackParams, ValidatesShares) {
  AttackParams params = default_params();
  params.alpha = 0.6;
  params.beta = params.gamma = 0.2;
  EXPECT_THROW(params.validate(), std::invalid_argument);

  params = default_params();
  params.gamma = 0.3;  // sum != 1
  EXPECT_THROW(params.validate(), std::invalid_argument);

  params = default_params();
  EXPECT_NO_THROW(params.validate());
}

// ----------------------------------------------------- apply_event, base ---

TEST(ApplyEvent, BaseOnChain1LocksOneBlock) {
  const AttackParams params = default_params();
  const AttackState base{};

  const StepResult alice =
      apply_event(params, base, Action::kOnChain1, Event::kAliceBlock);
  EXPECT_EQ(alice.next, base);
  EXPECT_DOUBLE_EQ(alice.deltas.alice_locked, 1.0);
  EXPECT_DOUBLE_EQ(alice.deltas.others_locked, 0.0);

  const StepResult bob =
      apply_event(params, base, Action::kOnChain1, Event::kBobBlock);
  EXPECT_EQ(bob.next, base);
  EXPECT_DOUBLE_EQ(bob.deltas.others_locked, 1.0);
}

TEST(ApplyEvent, BaseOnChain2StartsFork) {
  const AttackParams params = default_params();
  const StepResult step = apply_event(params, AttackState{},
                                      Action::kOnChain2, Event::kAliceBlock);
  EXPECT_EQ(step.next, (AttackState{0, 1, 0, 1, 0}));
  EXPECT_DOUBLE_EQ(step.deltas.total_locked(), 0.0);
  EXPECT_DOUBLE_EQ(step.deltas.total_orphaned(), 0.0);
}

TEST(ApplyEvent, BaseOnChain2OthersBlockLocksNormally) {
  const AttackParams params = default_params();
  const StepResult step = apply_event(params, AttackState{},
                                      Action::kOnChain2, Event::kCarolBlock);
  EXPECT_EQ(step.next, AttackState{});
  EXPECT_DOUBLE_EQ(step.deltas.others_locked, 1.0);
}

TEST(ApplyEvent, BaseLockDecrementsGateCountdown) {
  AttackParams params = default_params(Setting::kStickyGate);
  AttackState base{};
  base.r = 10;
  const StepResult step =
      apply_event(params, base, Action::kOnChain1, Event::kBobBlock);
  EXPECT_EQ(step.next.r, 9);

  base.r = 1;
  const StepResult closing =
      apply_event(params, base, Action::kOnChain1, Event::kAliceBlock);
  EXPECT_EQ(closing.next.r, 0);  // gate closes; back to phase 1
}

TEST(ApplyEvent, ForkStartPreservesCountdown) {
  AttackParams params = default_params(Setting::kStickyGate);
  AttackState base{};
  base.r = 37;
  const StepResult step =
      apply_event(params, base, Action::kOnChain2, Event::kAliceBlock);
  EXPECT_EQ(step.next, (AttackState{0, 1, 0, 1, 37}));
}

TEST(ApplyEvent, WaitRequiresEnabledFlag) {
  AttackParams params = default_params();
  EXPECT_THROW((void)apply_event(params, AttackState{}, Action::kWait,
                                 Event::kBobBlock),
               std::invalid_argument);
  params.allow_wait = true;
  EXPECT_NO_THROW((void)apply_event(params, AttackState{}, Action::kWait,
                                    Event::kBobBlock));
  EXPECT_THROW((void)apply_event(params, AttackState{}, Action::kWait,
                                 Event::kAliceBlock),
               std::invalid_argument);
}

// ----------------------------------------------------- apply_event, fork ---

TEST(ApplyEvent, Chain1GrowsWhileBehind) {
  const AttackParams params = default_params();
  const AttackState state{0, 2, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kAliceBlock);
  EXPECT_EQ(step.next, (AttackState{1, 2, 1, 1, 0}));
  EXPECT_DOUBLE_EQ(step.deltas.total_locked(), 0.0);
}

TEST(ApplyEvent, BobMinesChain1InPhase1) {
  const AttackParams params = default_params();
  const AttackState state{1, 2, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain2, Event::kBobBlock);
  EXPECT_EQ(step.next, (AttackState{2, 2, 0, 1, 0}));
}

TEST(ApplyEvent, CarolMinesChain2InPhase1) {
  const AttackParams params = default_params();
  const AttackState state{1, 2, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kCarolBlock);
  EXPECT_EQ(step.next, (AttackState{1, 3, 0, 1, 0}));
}

TEST(ApplyEvent, Chain1WinLocksAndOrphans) {
  // Table 1 row "(l1,l2,a1,a2), onC1, l1 = l2 != AD-1", Alice's event:
  // Chain 1 outgrows Chain 2, locking a1+1 Alice blocks and l1-a1 others,
  // orphaning Chain 2 (a2 Alice, l2-a2 others).
  const AttackParams params = default_params();
  const AttackState state{2, 2, 1, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kAliceBlock);
  EXPECT_EQ(step.next, AttackState{});
  EXPECT_DOUBLE_EQ(step.deltas.alice_locked, 2.0);   // a1 + 1
  EXPECT_DOUBLE_EQ(step.deltas.others_locked, 1.0);  // l1 - a1
  EXPECT_DOUBLE_EQ(step.deltas.alice_orphaned, 1.0); // a2
  EXPECT_DOUBLE_EQ(step.deltas.others_orphaned, 1.0);// l2 - a2
}

TEST(ApplyEvent, Chain1CannotWinWhileBehind) {
  const AttackParams params = default_params();
  const AttackState state{1, 3, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kBobBlock);
  EXPECT_EQ(step.next, (AttackState{2, 3, 0, 1, 0}));
}

TEST(ApplyEvent, Chain2WinAtAcceptanceDepth) {
  // Table 1 row "onC2, l1 < l2 = AD-1": Alice or Carol completes the AD-th
  // block; Chain 2 locks AD blocks, Chain 1 is orphaned.
  const AttackParams params = default_params();  // AD = 6
  const AttackState state{2, 5, 1, 3, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain2, Event::kAliceBlock);
  EXPECT_EQ(step.next, AttackState{});
  EXPECT_DOUBLE_EQ(step.deltas.alice_locked, 4.0);    // a2 + 1
  EXPECT_DOUBLE_EQ(step.deltas.others_locked, 2.0);   // l2 + 1 - (a2 + 1)
  EXPECT_DOUBLE_EQ(step.deltas.alice_orphaned, 1.0);  // a1
  EXPECT_DOUBLE_EQ(step.deltas.others_orphaned, 1.0); // l1 - a1
}

TEST(ApplyEvent, Chain2WinByCarolCountsHerBlock) {
  // Fixes the paper's Table 1 typo: when Carol completes Chain 2 at
  // l1 = l2 = AD-1, others must receive l2 + 1 - a2 (not l2 - a2).
  const AttackParams params = default_params();
  const AttackState state{5, 5, 0, 2, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kCarolBlock);
  EXPECT_EQ(step.next, AttackState{});
  EXPECT_DOUBLE_EQ(step.deltas.alice_locked, 2.0);    // a2
  EXPECT_DOUBLE_EQ(step.deltas.others_locked, 4.0);   // l2 + 1 - a2
  EXPECT_DOUBLE_EQ(step.deltas.alice_orphaned, 0.0);  // a1
  EXPECT_DOUBLE_EQ(step.deltas.others_orphaned, 5.0); // l1 - a1
}

TEST(ApplyEvent, Chain2WinOpensGateInSetting2) {
  // Rizun semantics (kLockedCount, the default): the gate's non-excessive
  // run starts at the trigger block, so the AD-1 fork blocks already count
  // and the remaining countdown is gate_period - (AD - 1).
  const AttackParams params = default_params(Setting::kStickyGate);
  const AttackState state{0, 5, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain2, Event::kCarolBlock);
  EXPECT_EQ(step.next.r, params.gate_period - (params.ad - 1));
  EXPECT_TRUE(step.next.is_base());
}

TEST(ApplyEvent, Chain2WinOpensGateWithFullCountdownUnderPaperText) {
  AttackParams params = default_params(Setting::kStickyGate);
  params.countdown = GateCountdown::kPaperText;
  const AttackState state{0, 5, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain2, Event::kCarolBlock);
  EXPECT_EQ(step.next.r, params.gate_period);
}

TEST(ApplyEvent, Chain2WinStaysPhase1InSetting1) {
  const AttackParams params = default_params(Setting::kNoStickyGate);
  const AttackState state{0, 5, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain2, Event::kCarolBlock);
  EXPECT_EQ(step.next, AttackState{});
}

// --------------------------------------------------------------- phase 2 ---

TEST(ApplyEvent, Phase2SwapsBobAndCarol) {
  const AttackParams params = default_params(Setting::kStickyGate);
  const AttackState state{1, 2, 0, 1, 100};
  // Bob now works on Chain 2...
  const StepResult bob =
      apply_event(params, state, Action::kOnChain1, Event::kBobBlock);
  EXPECT_EQ(bob.next, (AttackState{1, 3, 0, 1, 100}));
  // ...and Carol on Chain 1.
  const StepResult carol =
      apply_event(params, state, Action::kOnChain1, Event::kCarolBlock);
  EXPECT_EQ(carol.next, (AttackState{2, 2, 0, 1, 100}));
}

TEST(ApplyEvent, Phase2Chain1WinDecrementsCountdownByLockedBlocks) {
  AttackParams params = default_params(Setting::kStickyGate);
  params.countdown = GateCountdown::kLockedCount;
  const AttackState state{2, 2, 0, 1, 100};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kCarolBlock);
  EXPECT_TRUE(step.next.is_base());
  EXPECT_EQ(step.next.r, 97);  // 100 - (l1 + 1)
}

TEST(ApplyEvent, Phase2Chain1WinPaperTextVariant) {
  AttackParams params = default_params(Setting::kStickyGate);
  params.countdown = GateCountdown::kPaperText;
  const AttackState state{2, 2, 0, 1, 100};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kCarolBlock);
  EXPECT_EQ(step.next.r, 98);  // 100 - l1
}

TEST(ApplyEvent, Phase2Chain1WinClosesGateWhenCountdownExhausted) {
  const AttackParams params = default_params(Setting::kStickyGate);
  const AttackState state{2, 2, 0, 1, 2};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kCarolBlock);
  EXPECT_EQ(step.next.r, 0);  // clamped at zero: phase 1 resumes
}

TEST(ApplyEvent, Phase2Chain2WinCollapsesToPhase1Base) {
  // Carol's gate opens too (phase 3); the paper models a return to the
  // phase-1 base state.
  const AttackParams params = default_params(Setting::kStickyGate);
  const AttackState state{1, 5, 1, 2, 77};
  const StepResult step =
      apply_event(params, state, Action::kOnChain2, Event::kBobBlock);
  EXPECT_EQ(step.next, AttackState{});
  EXPECT_DOUBLE_EQ(step.deltas.alice_locked, 2.0);
  EXPECT_DOUBLE_EQ(step.deltas.others_locked, 4.0);
}

// ---------------------------------------------------------- double spend ---

TEST(DoubleSpend, RevenueFormula) {
  AttackParams params = default_params();
  params.confirmations = 4;
  params.rds = 10.0;
  EXPECT_DOUBLE_EQ(double_spend_revenue(params, 0), 0.0);
  EXPECT_DOUBLE_EQ(double_spend_revenue(params, 3), 0.0);
  EXPECT_DOUBLE_EQ(double_spend_revenue(params, 4), 10.0);
  EXPECT_DOUBLE_EQ(double_spend_revenue(params, 5), 20.0);
}

TEST(DoubleSpend, AwardedWhenChain1WinOrphansLongChain2) {
  const AttackParams params = default_params();  // conf 4, rds 10
  const AttackState state{5, 5, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kBobBlock);
  EXPECT_TRUE(step.next.is_base());
  EXPECT_DOUBLE_EQ(step.deltas.double_spend, 20.0);  // (5 - 3) * 10
}

TEST(DoubleSpend, AwardedWhenChain2WinOrphansLongChain1) {
  const AttackParams params = default_params();
  const AttackState state{4, 5, 2, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain2, Event::kCarolBlock);
  EXPECT_TRUE(step.next.is_base());
  EXPECT_DOUBLE_EQ(step.deltas.double_spend, 10.0);  // (4 - 3) * 10
}

TEST(DoubleSpend, NotAwardedForShortForks) {
  const AttackParams params = default_params();
  const AttackState state{1, 1, 0, 1, 0};
  const StepResult step =
      apply_event(params, state, Action::kOnChain1, Event::kBobBlock);
  EXPECT_DOUBLE_EQ(step.deltas.double_spend, 0.0);
}

// ------------------------------------------------- conservation sweeps ----

using SweepParam = std::tuple<Setting, int /*action count*/>;

class ConservationSweep : public ::testing::TestWithParam<Setting> {};

TEST_P(ConservationSweep, EveryTransitionConservesBlocks) {
  // Property: each event mines exactly one block, so across any transition,
  // locked + orphaned blocks == blocks removed from the in-flight state:
  //   l1 + l2 + 1(new block) == l1' + l2' + locked + orphaned.
  AttackParams params = default_params(GetParam());
  params.gate_period = 8;  // keep the sweep fast; semantics are identical
  params.allow_wait = true;
  const StateSpace space(params.ad, params.max_r());

  for (StateId id = 0; id < space.size(); ++id) {
    const AttackState& s = space.state(id);
    for (const Action action : available_actions(params, s)) {
      for (const Event event :
           {Event::kAliceBlock, Event::kBobBlock, Event::kCarolBlock}) {
        if (action == Action::kWait && event == Event::kAliceBlock) {
          continue;
        }
        const StepResult step = apply_event(params, s, action, event);
        const double in_flight_before = s.l1 + s.l2;
        const double in_flight_after = step.next.l1 + step.next.l2;
        const double settled =
            step.deltas.total_locked() + step.deltas.total_orphaned();
        EXPECT_DOUBLE_EQ(in_flight_before + 1.0, in_flight_after + settled)
            << "state " << to_string(s) << " action " << to_string(action)
            << " event " << static_cast<int>(event);
        // Alice's in-flight blocks are likewise conserved.
        const double alice_before = s.a1 + s.a2;
        const double alice_after = step.next.a1 + step.next.a2;
        const double alice_mined = event == Event::kAliceBlock ? 1.0 : 0.0;
        EXPECT_DOUBLE_EQ(
            alice_before + alice_mined,
            alice_after + step.deltas.alice_locked +
                step.deltas.alice_orphaned)
            << "state " << to_string(s) << " action " << to_string(action);
        // Successor must be in the reachable space.
        EXPECT_TRUE(space.contains(step.next))
            << to_string(s) << " -> " << to_string(step.next);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Settings, ConservationSweep,
                         ::testing::Values(Setting::kNoStickyGate,
                                           Setting::kStickyGate));

// --------------------------------------------------------- model building --

TEST(BuildModel, ProbabilitiesMatchPowers) {
  const AttackParams params = default_params();
  const AttackModel model = build_attack_model(params,
                                               Utility::kRelativeRevenue);
  // At the base state, OnChain1 keeps the system at base with prob 1.
  const auto outcomes = model.model.outcomes(model.space.base(), 0);
  double mass = 0.0;
  for (const auto& o : outcomes) {
    mass += o.probability;
  }
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(BuildModel, WaitOnlyForOrphaningUtility) {
  const AttackParams params = default_params();
  const AttackModel u1 = build_attack_model(params,
                                            Utility::kRelativeRevenue);
  const AttackModel u3 = build_attack_model(params, Utility::kOrphaning);
  EXPECT_EQ(u1.model.num_actions(u1.space.base()), 2u);
  EXPECT_EQ(u3.model.num_actions(u3.space.base()), 3u);
}

TEST(BuildModel, AbsoluteRewardWeightIsOnePerStep) {
  const AttackParams params = default_params();
  const AttackModel model = build_attack_model(params,
                                               Utility::kAbsoluteReward);
  for (StateId id = 0; id < model.space.size(); ++id) {
    for (std::size_t a = 0; a < model.model.num_actions(id); ++a) {
      EXPECT_DOUBLE_EQ(
          model.model.expected_weight(model.model.sa_index(id, a)), 1.0);
    }
  }
}

TEST(BuildModel, EventProbabilitiesForWaitRenormalize) {
  AttackParams params = default_params();
  params.allow_wait = true;
  const auto probs = event_probabilities(params, Action::kWait);
  EXPECT_DOUBLE_EQ(probs[0], 0.0);
  EXPECT_NEAR(probs[1] + probs[2], 1.0, 1e-12);
  EXPECT_NEAR(probs[1] / probs[2], params.beta / params.gamma, 1e-12);
}

}  // namespace
