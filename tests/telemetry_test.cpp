// Tests of cross-process telemetry aggregation (src/obs/telemetry.cpp):
// metrics-JSON roundtrip through the self-contained reader, the merge
// rules (counters sum, gauges max, histograms bucket-sum on matching
// bounds), the TelemetryFlusher's on-disk files, and the merged Chrome
// trace with one pid lane per worker.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "svc/json.hpp"

namespace {

using namespace bvc;

struct ObsQuiescer {
  ~ObsQuiescer() {
    obs::set_metrics_enabled(false);
    obs::Tracer::global().disable();
  }
};

/// A fresh scratch directory, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* tag) {
    path = std::filesystem::temp_directory_path() /
           (std::string("bvc_telemetry_test_") + tag + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string str() const { return path.string(); }
};

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

TEST(Telemetry, MetricsJsonRoundTripsThroughTheReader) {
  TempDir dir("roundtrip");
  obs::MetricsSnapshot snapshot;
  snapshot.counters["a.hits"] = 7;
  snapshot.gauges["b.level"] = 2.5;
  obs::Histogram::Snapshot histogram;
  histogram.bounds = {1.0, 2.0};
  histogram.counts = {1, 2, 3};
  histogram.sum = 4.5;
  histogram.count = 6;
  snapshot.histograms["c.lat"] = histogram;

  const std::filesystem::path file = dir.path / "w.1.metrics.json";
  {
    std::ofstream out(file);
    obs::write_metrics_json(out, snapshot);
  }
  const std::optional<obs::MetricsSnapshot> read =
      obs::read_metrics_json(file.string());
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->counters.at("a.hits"), 7u);
  EXPECT_EQ(read->gauges.at("b.level"), 2.5);
  const obs::Histogram::Snapshot& h = read->histograms.at("c.lat");
  EXPECT_EQ(h.bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(h.counts, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(h.sum, 4.5);
  EXPECT_EQ(h.count, 6u);
}

TEST(Telemetry, ReaderRejectsGarbage) {
  TempDir dir("garbage");
  const std::filesystem::path file = dir.path / "w.1.metrics.json";
  write_file(file, "{\"counters\":{\"x\": }");
  EXPECT_FALSE(obs::read_metrics_json(file.string()).has_value());
  EXPECT_FALSE(obs::read_metrics_json((dir.path / "nope.json").string())
                   .has_value());
}

TEST(Telemetry, MergeSumsCountersMaxesGaugesSumsMatchingHistograms) {
  obs::MetricsSnapshot into;
  into.counters["cells"] = 10;
  into.gauges["rss"] = 5.0;
  obs::Histogram::Snapshot h1;
  h1.bounds = {1.0};
  h1.counts = {2, 3};
  h1.sum = 1.0;
  h1.count = 5;
  into.histograms["lat"] = h1;

  obs::MetricsSnapshot from;
  from.counters["cells"] = 4;
  from.counters["other"] = 1;
  from.gauges["rss"] = 9.0;
  obs::Histogram::Snapshot h2 = h1;
  h2.counts = {1, 1};
  h2.sum = 0.5;
  h2.count = 2;
  from.histograms["lat"] = h2;
  // Mismatched bounds keep `into`'s data.
  obs::Histogram::Snapshot clash;
  clash.bounds = {9.0};
  clash.counts = {1, 0};
  clash.count = 1;
  into.histograms["clash"] = h1;
  from.histograms["clash"] = clash;

  obs::merge_metrics(into, from);
  EXPECT_EQ(into.counters["cells"], 14u);
  EXPECT_EQ(into.counters["other"], 1u);
  EXPECT_EQ(into.gauges["rss"], 9.0);
  EXPECT_EQ(into.histograms["lat"].counts,
            (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(into.histograms["lat"].sum, 1.5);
  EXPECT_EQ(into.histograms["lat"].count, 7u);
  EXPECT_EQ(into.histograms["clash"].counts, h1.counts);
}

TEST(Telemetry, FlusherWritesPidStampedFilesAndMergeFindsThem) {
  ObsQuiescer quiesce;
  TempDir dir("flusher");
  obs::MetricsRegistry::global().reset();
  {
    obs::TelemetryConfig config;
    config.dir = dir.str();
    config.label = "unit";
    config.interval_seconds = 3600.0;  // only the explicit/final flushes
    obs::TelemetryFlusher flusher(config);
    EXPECT_TRUE(obs::metrics_enabled());
    obs::MetricsRegistry::global().counter("test.flush.cells").add(3);
    {
      obs::Span span("test.flush.span", "test");
    }
    flusher.flush();
    EXPECT_TRUE(std::filesystem::exists(flusher.metrics_path()));
    EXPECT_TRUE(std::filesystem::exists(flusher.trace_path()));
    const std::string expected_stem =
        "unit." + std::to_string(::getpid());
    EXPECT_NE(flusher.metrics_path().find(expected_stem), std::string::npos);
  }

  // Merge sees the worker's flush (no skip: we are "the parent of nobody").
  const obs::TelemetryMergeReport report =
      obs::merge_telemetry_dir(dir.str());
  EXPECT_TRUE(report.errors.empty());
  EXPECT_EQ(report.metrics_files, 1u);
  ASSERT_EQ(report.trace_files.size(), 1u);
  EXPECT_EQ(report.metrics.counters.at("test.flush.cells"), 3u);

  // Self-exclusion: skipping our own pid leaves nothing to merge.
  const obs::TelemetryMergeReport skipped =
      obs::merge_telemetry_dir(dir.str(), static_cast<long>(::getpid()));
  EXPECT_EQ(skipped.metrics_files, 0u);
  EXPECT_TRUE(skipped.trace_files.empty());
  obs::MetricsRegistry::global().reset();
}

TEST(Telemetry, MergedChromeTraceHasOnePidLanePerWorker) {
  TempDir dir("trace");
  // Two fake workers, pid 111 and 222, one event each (the flusher's JSONL
  // delta format: complete event objects, one per line, pid stamped).
  write_file(dir.path / "shard-0.111.trace.jsonl",
             "{\"name\":\"solve\",\"cat\":\"mdp\",\"ph\":\"X\",\"ts\":1.0,"
             "\"dur\":2.0,\"pid\":111,\"tid\":1}\n");
  write_file(dir.path / "shard-1.222.trace.jsonl",
             "{\"name\":\"solve\",\"cat\":\"mdp\",\"ph\":\"X\",\"ts\":1.5,"
             "\"dur\":2.5,\"pid\":222,\"tid\":1}\n");

  std::ostringstream out;
  ASSERT_TRUE(obs::write_merged_chrome_trace(out, dir.str(), nullptr, ""));
  const std::string text = out.str();
  const std::optional<svc::Json> parsed = svc::Json::parse(text);
  ASSERT_TRUE(parsed.has_value()) << text;
  const svc::Json* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int process_names = 0;
  int worker_events = 0;
  for (const svc::Json& event : events->items()) {
    const std::string name = event.string_or("name", "");
    if (name == "process_name") {
      ++process_names;
    } else if (name == "solve") {
      ++worker_events;
    }
  }
  EXPECT_EQ(process_names, 2);
  EXPECT_EQ(worker_events, 2);
  EXPECT_NE(text.find("shard-0"), std::string::npos);
  EXPECT_NE(text.find("shard-1"), std::string::npos);
}

}  // namespace
