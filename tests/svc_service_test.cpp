// End-to-end tests of the bvcd service core: the JSON job API driven
// in-process through SolveService::route(), plus one real-socket pass
// through HttpServer/http_fetch. Covers the rejection paths (malformed
// bodies, unknown kinds, oversized grids), result parity with the direct
// in-process solvers, cancellation mid-solve, budget admission, and the
// persist -> restart -> resume lifecycle.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "btc/selfish_mining.hpp"
#include "bu/attack_analysis.hpp"
#include "counter/voting_simulation.hpp"
#include "obs/metrics.hpp"
#include "sim/replicas.hpp"
#include "svc/http.hpp"
#include "svc/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using svc::HttpRequest;
using svc::HttpResponse;
using svc::Json;
using svc::ServiceConfig;
using svc::SolveService;

HttpRequest make_request(const std::string& method, const std::string& target,
                         const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

/// POSTs a job and returns its id; fails the test on a non-202 response.
std::string submit_job(SolveService& service, const std::string& body) {
  const HttpResponse response =
      service.route(make_request("POST", "/v1/jobs", body));
  EXPECT_EQ(response.status, 202) << response.body;
  const std::optional<Json> parsed = Json::parse(response.body);
  EXPECT_TRUE(parsed.has_value());
  return parsed ? parsed->string_or("id", "") : "";
}

Json job_snapshot(SolveService& service, const std::string& id) {
  const HttpResponse response =
      service.route(make_request("GET", "/v1/jobs/" + id));
  EXPECT_EQ(response.status, 200) << response.body;
  const std::optional<Json> parsed = Json::parse(response.body);
  EXPECT_TRUE(parsed.has_value()) << response.body;
  return parsed.value_or(Json());
}

/// First value named `name` in record `index` of a status snapshot.
double record_value(const Json& snapshot, std::size_t index,
                    const std::string& name) {
  const Json* records = snapshot.find("records");
  if (records == nullptr || index >= records->size()) {
    ADD_FAILURE() << "missing record " << index << " in " << snapshot.dump();
    return 0.0;
  }
  const Json* values = records->at(index).find("values");
  if (values == nullptr) {
    ADD_FAILURE() << "record has no values";
    return 0.0;
  }
  for (const Json& pair : values->items()) {
    if (pair.size() == 2 && pair.at(0).as_string() == name) {
      return pair.at(1).as_number();
    }
  }
  ADD_FAILURE() << "no value named " << name;
  return 0.0;
}

std::string fresh_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "svc_service_test_" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

TEST(SvcServiceRejects, MalformedBodyIs400) {
  SolveService service{ServiceConfig{}};
  const HttpResponse response =
      service.route(make_request("POST", "/v1/jobs", "{\"kind\": }"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("not valid JSON"), std::string::npos);
}

TEST(SvcServiceRejects, UnknownJobKindIs400) {
  SolveService service{ServiceConfig{}};
  const HttpResponse response = service.route(make_request(
      "POST", "/v1/jobs", R"({"kind":"warp-drive","cells":[{}]})"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("unknown job kind"), std::string::npos);
}

TEST(SvcServiceRejects, MissingCellsAndGridIs400) {
  SolveService service{ServiceConfig{}};
  const HttpResponse response =
      service.route(make_request("POST", "/v1/jobs", R"({"kind":"btc-sm"})"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("'cells' or 'grid'"), std::string::npos);
}

TEST(SvcServiceRejects, InvalidCellParametersAre400) {
  SolveService service{ServiceConfig{}};
  // Powers exceed 1: AttackParams::validate() throws -> parse-time 400.
  const HttpResponse response = service.route(make_request(
      "POST", "/v1/jobs",
      R"({"kind":"bu-attack","cells":[{"alpha":0.6,"beta":0.3,"gamma":0.3}]})"));
  EXPECT_EQ(response.status, 400) << response.body;
}

TEST(SvcServiceRejects, OversizedGridIs413) {
  ServiceConfig config;
  config.limits.max_cells = 4;
  SolveService service{config};
  // The full table-2 grid expands to 14 admissible cells, above the cap.
  const HttpResponse response = service.route(make_request(
      "POST", "/v1/jobs",
      R"({"kind":"bu-attack","grid":{"alphas":[0.10,0.15,0.20,0.25],)"
      R"("ratios":[[3,2],[1,1],[2,3],[1,2],[1,3],[1,4]],"ad":2,"setting":1}})"));
  EXPECT_EQ(response.status, 413);
  EXPECT_NE(response.body.find("admission limit"), std::string::npos);
}

TEST(SvcServiceRejects, UnknownJobIdIs404AndWrongMethodIs405) {
  SolveService service{ServiceConfig{}};
  EXPECT_EQ(service.route(make_request("GET", "/v1/jobs/j999")).status, 404);
  EXPECT_EQ(service.route(make_request("DELETE", "/v1/jobs/j999")).status,
            404);
  EXPECT_EQ(service.route(make_request("PUT", "/v1/jobs")).status, 405);
  EXPECT_EQ(service.route(make_request("POST", "/v1/healthz")).status, 405);
  EXPECT_EQ(service.route(make_request("GET", "/v1/nope")).status, 404);
}

TEST(SvcServiceSolves, BuAttackCellMatchesDirectAnalyze) {
  bu::AttackParams params;
  params.alpha = 0.2;
  params.beta = 0.4;
  params.gamma = 0.4;
  params.ad = 2;
  const bu::AnalysisResult expected =
      bu::analyze(params, bu::Utility::kRelativeRevenue, {});

  SolveService service{ServiceConfig{}};
  const std::string id = submit_job(
      service,
      R"({"kind":"bu-attack","cells":[{"alpha":0.2,"beta":0.4,"gamma":0.4,)"
      R"("ad":2,"utility":"relative-revenue"}]})");
  service.wait_idle();

  const Json snapshot = job_snapshot(service, id);
  EXPECT_EQ(snapshot.string_or("state", ""), "done");
  EXPECT_EQ(snapshot.number_or("completed", 0), 1.0);
  EXPECT_EQ(record_value(snapshot, 0, "utility_value"),
            expected.utility_value);
  EXPECT_EQ(record_value(snapshot, 0, "honest_baseline"),
            expected.honest_baseline);
  EXPECT_EQ(record_value(snapshot, 0, "reward_rate"), expected.reward_rate);
  EXPECT_EQ(record_value(snapshot, 0, "weight_rate"), expected.weight_rate);
}

TEST(SvcServiceSolves, BtcSmCellMatchesDirectSolve) {
  btc::SmParams params;
  params.alpha = 0.3;
  params.max_len = 8;
  const btc::SmResult expected =
      btc::analyze_sm(params, bu::Utility::kAbsoluteReward);

  SolveService service{ServiceConfig{}};
  const std::string id = submit_job(
      service, R"({"kind":"btc-sm","cells":[{"alpha":0.3,"max_len":8}]})");
  service.wait_idle();

  const Json snapshot = job_snapshot(service, id);
  EXPECT_EQ(snapshot.string_or("state", ""), "done");
  EXPECT_EQ(record_value(snapshot, 0, "utility_value"),
            expected.utility_value);
}

TEST(SvcServiceSolves, VotingCellMatchesDirectSimulation) {
  counter::VotingSimConfig config;
  config.cohorts = {{0.6, 2'000'000, false}, {0.4, 1'000'000, false}};
  Rng rng(7);
  const counter::VotingSimResult expected =
      counter::run_voting_simulation(config, 3, rng);

  SolveService service{ServiceConfig{}};
  const std::string id = submit_job(
      service,
      R"({"kind":"counter-voting","cells":[{"epochs":3,"seed":7,"cohorts":)"
      R"([{"power":0.6,"preferred_limit":2000000},)"
      R"({"power":0.4,"preferred_limit":1000000}]}]})");
  service.wait_idle();

  const Json snapshot = job_snapshot(service, id);
  EXPECT_EQ(snapshot.string_or("state", ""), "done");
  EXPECT_EQ(record_value(snapshot, 0, "final_limit"),
            static_cast<double>(expected.final_limit));
  EXPECT_EQ(record_value(snapshot, 0, "blocks"),
            static_cast<double>(expected.blocks));
}

TEST(SvcServiceControl, BudgetTicksBoundCellsStarted) {
  SolveService service{ServiceConfig{}};
  // max_ticks caps items STARTED by the batch engine at 1; the two
  // remaining cells are skipped (not finished) and the job still ends.
  const std::string id = submit_job(
      service,
      R"({"kind":"btc-sm","budget":{"max_ticks":1},"cells":)"
      R"([{"alpha":0.25,"max_len":6},{"alpha":0.30,"max_len":6},)"
      R"({"alpha":0.35,"max_len":6}]})");
  service.wait_idle();

  const Json snapshot = job_snapshot(service, id);
  EXPECT_EQ(snapshot.string_or("state", ""), "done");
  EXPECT_EQ(snapshot.number_or("completed", -1), 1.0);
  const Json* records = snapshot.find("records");
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->size(), 1u);
}

TEST(SvcServiceControl, CancelDuringSolveEndsCancelled) {
  ServiceConfig config;
  config.threads = 1;  // sequential cells -> the cancel lands mid-grid
  SolveService service{config};
  // ad=6 sticky-gate cells are second-scale solves; the DELETE below fires
  // while the first cell is still running.
  const std::string id = submit_job(
      service,
      R"({"kind":"bu-attack","grid":{"alphas":[0.10,0.15,0.20,0.25],)"
      R"("ratios":[[1,1],[1,2]],"ad":6,"setting":2}})");
  const HttpResponse cancel =
      service.route(make_request("DELETE", "/v1/jobs/" + id));
  EXPECT_EQ(cancel.status, 202);
  service.wait_idle();

  const Json snapshot = job_snapshot(service, id);
  EXPECT_EQ(snapshot.string_or("state", ""), "cancelled");
  EXPECT_LT(snapshot.number_or("completed", 99),
            snapshot.number_or("cells", 0));
}

TEST(SvcServicePersistence, RestartServesTerminalJobsAndKeepsIdSequence) {
  const std::string state_dir = fresh_dir("restart");
  std::string id;
  std::string first_body;
  {
    ServiceConfig config;
    config.state_dir = state_dir;
    SolveService service{config};
    id = submit_job(
        service,
        R"({"kind":"btc-sm","cells":[{"alpha":0.25,"max_len":6},)"
        R"({"alpha":0.30,"max_len":6}]})");
    service.wait_idle();
    const Json snapshot = job_snapshot(service, id);
    EXPECT_EQ(snapshot.string_or("state", ""), "done");
    first_body = snapshot.dump();
  }
  {
    ServiceConfig config;
    config.state_dir = state_dir;
    SolveService restarted{config};
    const Json snapshot = job_snapshot(restarted, id);
    EXPECT_EQ(snapshot.string_or("state", ""), "done");
    EXPECT_EQ(snapshot.number_or("resumed", 0), 2.0);

    // Records restore byte-identically from the journal (wall_clock_ns
    // included — it is the original run's, replayed not re-measured).
    Json before = Json::parse(first_body).value();
    const std::string before_records = before.find("records")->dump();
    const std::string after_records = snapshot.find("records")->dump();
    EXPECT_EQ(before_records, after_records);

    // The id counter continues past restored ids.
    const std::string next = submit_job(
        restarted, R"({"kind":"btc-sm","cells":[{"alpha":0.2,"max_len":6}]})");
    EXPECT_NE(next, id);
    EXPECT_EQ(next, "j2");
    restarted.wait_idle();
  }
}

TEST(SvcServicePersistence, RestartResumesIncompleteJobs) {
  const std::string state_dir = fresh_dir("resume");
  // Forge the state a crashed daemon leaves behind: an index entry in a
  // non-terminal state plus a journal holding ONE of the two cells. The
  // restarted service must resume the job, restore the journaled cell, and
  // solve only the other one.
  ServiceConfig config;
  config.state_dir = state_dir;
  std::string journaled_key;
  {
    SolveService service{config};
    const std::string id = submit_job(
        service,
        R"({"kind":"btc-sm","cells":[{"alpha":0.25,"max_len":6},)"
        R"({"alpha":0.30,"max_len":6}]})");
    service.wait_idle();
    ASSERT_EQ(job_snapshot(service, id).string_or("state", ""), "done");
  }
  // Rewrite the index as "running" and drop the second journal line.
  {
    std::ifstream journal_in(state_dir + "/job-j1.cells.jsonl");
    std::string first_line;
    ASSERT_TRUE(std::getline(journal_in, first_line));
    journal_in.close();
    std::ofstream journal_out(state_dir + "/job-j1.cells.jsonl",
                              std::ios::trunc);
    journal_out << first_line << "\n";
    std::ifstream index_in(state_dir + "/jobs.jsonl");
    std::string index_line;
    ASSERT_TRUE(std::getline(index_in, index_line));
    index_in.close();
    const std::size_t pos = index_line.find("\"done\"");
    ASSERT_NE(pos, std::string::npos);
    index_line.replace(pos, 6, "\"running\"");
    std::ofstream index_out(state_dir + "/jobs.jsonl", std::ios::trunc);
    index_out << index_line << "\n";
  }
  {
    SolveService restarted{config};
    restarted.wait_idle();
    const Json snapshot = job_snapshot(restarted, "j1");
    EXPECT_EQ(snapshot.string_or("state", ""), "done");
    EXPECT_EQ(snapshot.number_or("completed", 0), 2.0);
    EXPECT_EQ(snapshot.number_or("resumed", 0), 1.0);
  }
}

// ----------------------------------------------------- net-sim job kind ---

constexpr const char* kNetSimJob =
    R"({"kind":"net-sim","blocks":400,"seed":99,"replicas":3,"net":{)"
    R"("block_interval":600,"miners":[)"
    R"({"name":"a","power":0.6,"block_size":1000000,"bandwidth":1000000,)"
    R"("latency":0.5,"eb":32000000,"mg":32000000,"ad":6},)"
    R"({"name":"b","power":0.4,"block_size":8000000,"bandwidth":200000,)"
    R"("latency":2.0,"eb":32000000,"mg":32000000,"ad":6}]}})";

TEST(SvcServiceNetSim, ReplicasMatchDirectRunReplicas) {
  // The service cells must be bit-identical to sim::run_replicas on the
  // same config: same replica keys, same record values.
  sim::NetworkConfig config;
  config.miners.push_back({"a", 0.6, {}, 1'000'000, 1e6, 0.5});
  config.miners.push_back({"b", 0.4, {}, 8'000'000, 2e5, 2.0});
  for (auto& m : config.miners) {
    m.rule.eb = 32'000'000;
    m.rule.mg = 32'000'000;
    m.rule.ad = 6;
  }
  sim::ReplicaOptions options;
  options.replicas = 3;
  options.blocks = 400;
  options.seed = 99;
  options.batch.threads = 1;
  const sim::ReplicaSetResult direct = sim::run_replicas(config, options);

  SolveService service{ServiceConfig{}};
  const std::string id = submit_job(service, kNetSimJob);
  service.wait_idle();

  const Json snapshot = job_snapshot(service, id);
  EXPECT_EQ(snapshot.string_or("state", ""), "done");
  EXPECT_EQ(snapshot.string_or("kind", ""), "net-sim");
  EXPECT_EQ(snapshot.number_or("completed", 0), 3.0);
  const Json* records = snapshot.find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(records->at(i).string_or("key", ""),
              sim::replica_key(config, 400, 99, i));
    EXPECT_EQ(record_value(snapshot, i, "blocks_mined"), 400.0);
    EXPECT_EQ(record_value(snapshot, i, "duration"),
              direct.replicas[i].duration);
    EXPECT_EQ(record_value(snapshot, i, "orphaned_blocks"),
              static_cast<double>(direct.replicas[i].orphaned_blocks));
    EXPECT_EQ(record_value(snapshot, i, "canonical_length"),
              static_cast<double>(direct.replicas[i].canonical_length));
  }
}

TEST(SvcServiceNetSim, InvalidNetworkConfigIs400WithFieldMessage) {
  SolveService service{ServiceConfig{}};
  const HttpResponse response = service.route(make_request(
      "POST", "/v1/jobs",
      R"({"kind":"net-sim","blocks":100,"replicas":1,"net":{"miners":[)"
      R"({"name":"a","power":0.5,"bandwidth":1000000,"latency":0.5},)"
      R"({"name":"b","power":0.5,"bandwidth":-1,"latency":0.5}]}})"));
  EXPECT_EQ(response.status, 400) << response.body;
  // NetworkConfig::validate()'s per-field message travels to the client.
  EXPECT_NE(response.body.find("miners[1].bandwidth"), std::string::npos)
      << response.body;
}

TEST(SvcServiceNetSim, NetSimRejectsCellsArray) {
  SolveService service{ServiceConfig{}};
  const HttpResponse response = service.route(make_request(
      "POST", "/v1/jobs", R"({"kind":"net-sim","cells":[{}]})"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("'net' object"), std::string::npos);
}

TEST(SvcServiceNetSim, RestartRestoresNetSimRecords) {
  const std::string state_dir = fresh_dir("netsim_restart");
  std::string id;
  std::string first_records;
  {
    ServiceConfig config;
    config.state_dir = state_dir;
    SolveService service{config};
    id = submit_job(service, kNetSimJob);
    service.wait_idle();
    const Json snapshot = job_snapshot(service, id);
    EXPECT_EQ(snapshot.string_or("state", ""), "done");
    first_records = snapshot.find("records")->dump();
  }
  {
    ServiceConfig config;
    config.state_dir = state_dir;
    SolveService restarted{config};
    const Json snapshot = job_snapshot(restarted, id);
    EXPECT_EQ(snapshot.string_or("state", ""), "done");
    EXPECT_EQ(snapshot.number_or("resumed", 0), 3.0);
    EXPECT_EQ(snapshot.find("records")->dump(), first_records);
  }
}

// --------------------------------------------------- result pagination ---

TEST(SvcServicePagination, OffsetPagesThroughCompletionOrder) {
  SolveService service{ServiceConfig{}};
  const std::string id = submit_job(service, kNetSimJob);
  service.wait_idle();

  // Full snapshot (legacy shape, no cursor fields).
  const Json full = job_snapshot(service, id);
  EXPECT_EQ(full.find("next_offset"), nullptr);
  ASSERT_EQ(full.find("records")->size(), 3u);

  // Page through with limit 2: [0,2) then [2,3), then an empty page.
  const HttpResponse page1 = service.route(
      make_request("GET", "/v1/jobs/" + id + "?offset=0&limit=2"));
  EXPECT_EQ(page1.status, 200);
  const Json body1 = Json::parse(page1.body).value();
  EXPECT_EQ(body1.find("records")->size(), 2u);
  EXPECT_EQ(body1.number_or("next_offset", -1), 2.0);

  const HttpResponse page2 = service.route(
      make_request("GET", "/v1/jobs/" + id + "?offset=2&limit=2"));
  const Json body2 = Json::parse(page2.body).value();
  EXPECT_EQ(body2.find("records")->size(), 1u);
  EXPECT_EQ(body2.number_or("next_offset", -1), 3.0);

  const HttpResponse page3 = service.route(
      make_request("GET", "/v1/jobs/" + id + "?offset=3"));
  const Json body3 = Json::parse(page3.body).value();
  EXPECT_EQ(body3.find("records")->size(), 0u);
  EXPECT_EQ(body3.number_or("next_offset", -1), 3.0);

  // The concatenation of the pages is exactly the completion-ordered set:
  // every full-snapshot record key appears exactly once across pages.
  std::vector<std::string> paged_keys;
  for (const Json& record : body1.find("records")->items()) {
    paged_keys.push_back(record.string_or("key", ""));
  }
  for (const Json& record : body2.find("records")->items()) {
    paged_keys.push_back(record.string_or("key", ""));
  }
  std::vector<std::string> full_keys;
  for (const Json& record : full.find("records")->items()) {
    full_keys.push_back(record.string_or("key", ""));
  }
  std::sort(paged_keys.begin(), paged_keys.end());
  std::sort(full_keys.begin(), full_keys.end());
  EXPECT_EQ(paged_keys, full_keys);
}

TEST(SvcServicePagination, MalformedOffsetIs400) {
  SolveService service{ServiceConfig{}};
  const std::string id = submit_job(service, kNetSimJob);
  service.wait_idle();
  const HttpResponse response = service.route(
      make_request("GET", "/v1/jobs/" + id + "?offset=banana"));
  EXPECT_EQ(response.status, 400);
}

// -------------------------------------------------------- job retention ---

TEST(SvcServiceRetention, OldTerminalJobsAreEvicted) {
  const std::string state_dir = fresh_dir("retention");
  ServiceConfig config;
  config.state_dir = state_dir;
  config.job_retention = 2;
  SolveService service{config};
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(submit_job(
        service, R"({"kind":"btc-sm","cells":[{"alpha":0.25,"max_len":6}]})"));
    service.wait_idle();
  }
  // Only the newest two survive; the evicted ids 404 and their journals
  // are gone.
  EXPECT_EQ(service.route(make_request("GET", "/v1/jobs/" + ids[0])).status,
            404);
  EXPECT_EQ(service.route(make_request("GET", "/v1/jobs/" + ids[1])).status,
            404);
  EXPECT_EQ(service.route(make_request("GET", "/v1/jobs/" + ids[2])).status,
            200);
  EXPECT_EQ(service.route(make_request("GET", "/v1/jobs/" + ids[3])).status,
            200);
  EXPECT_FALSE(std::filesystem::exists(state_dir + "/job-" + ids[0] +
                                       ".cells.jsonl"));
  EXPECT_TRUE(std::filesystem::exists(state_dir + "/job-" + ids[3] +
                                      ".cells.jsonl"));

  const Json list =
      Json::parse(service.route(make_request("GET", "/v1/jobs")).body)
          .value();
  EXPECT_EQ(list.find("jobs")->size(), 2u);
}

TEST(SvcServiceRetention, RestartHonorsRetention) {
  const std::string state_dir = fresh_dir("retention_restart");
  std::vector<std::string> ids;
  {
    ServiceConfig config;
    config.state_dir = state_dir;  // no retention on the first daemon
    SolveService service{config};
    for (int i = 0; i < 3; ++i) {
      ids.push_back(submit_job(
          service,
          R"({"kind":"btc-sm","cells":[{"alpha":0.25,"max_len":6}]})"));
      service.wait_idle();
    }
  }
  {
    ServiceConfig config;
    config.state_dir = state_dir;
    config.job_retention = 1;  // lowered cap: restart trims the backlog
    SolveService restarted{config};
    EXPECT_EQ(
        restarted.route(make_request("GET", "/v1/jobs/" + ids[0])).status,
        404);
    EXPECT_EQ(
        restarted.route(make_request("GET", "/v1/jobs/" + ids[1])).status,
        404);
    const Json snapshot = job_snapshot(restarted, ids[2]);
    EXPECT_EQ(snapshot.string_or("state", ""), "done");
    // The survivor still serves its journaled records after the restart.
    EXPECT_EQ(snapshot.find("records")->size(), 1u);
  }
}

TEST(SvcServiceEndpoints, HealthMetricsAndCacheAreServed) {
  SolveService service{ServiceConfig{}};
  const HttpResponse health =
      service.route(make_request("GET", "/v1/healthz"));
  EXPECT_EQ(health.status, 200);
  const std::optional<Json> health_body = Json::parse(health.body);
  ASSERT_TRUE(health_body.has_value());
  EXPECT_EQ(health_body->string_or("status", ""), "ok");

  const HttpResponse metrics =
      service.route(make_request("GET", "/v1/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(Json::parse(metrics.body).has_value()) << metrics.body;

  const HttpResponse cache = service.route(make_request("GET", "/v1/cache"));
  EXPECT_EQ(cache.status, 200);
  const std::optional<Json> cache_body = Json::parse(cache.body);
  ASSERT_TRUE(cache_body.has_value());
  EXPECT_NE(cache_body->find("bytes_resident"), nullptr);
  EXPECT_NE(cache_body->find("evictions"), nullptr);
}

TEST(SvcServiceEndpoints, MetricsExposePrometheusFormatOnRequest) {
  SolveService service{ServiceConfig{}};
  // Solve one cell so the registry has job counters to expose (each ctest
  // case runs in its own process, so the registry starts empty).
  obs::set_metrics_enabled(true);
  submit_job(service,
             R"({"kind":"btc-sm","cells":[{"alpha":0.25,"max_len":6}]})");
  service.wait_idle();
  const HttpResponse prom =
      service.route(make_request("GET", "/v1/metrics?format=prometheus"));
  EXPECT_EQ(prom.status, 200);
  EXPECT_EQ(prom.content_type, "text/plain; version=0.0.4");
  EXPECT_NE(prom.body.find("# HELP svc_jobs_submitted svc.jobs.submitted"),
            std::string::npos)
      << prom.body;
  EXPECT_NE(prom.body.find("# TYPE svc_jobs_submitted counter"),
            std::string::npos);
  EXPECT_NE(prom.body.find("svc_jobs_done 1"), std::string::npos);
  obs::set_metrics_enabled(false);

  // The explicit JSON spelling matches the default.
  const HttpResponse json =
      service.route(make_request("GET", "/v1/metrics?format=json"));
  EXPECT_EQ(json.status, 200);
  EXPECT_TRUE(Json::parse(json.body).has_value());

  const HttpResponse bogus =
      service.route(make_request("GET", "/v1/metrics?format=bogus"));
  EXPECT_EQ(bogus.status, 400);
}

TEST(SvcServiceEndpoints, JobStatusCarriesLiveTelemetryBlock) {
  SolveService service{ServiceConfig{}};
  const std::string id = submit_job(
      service,
      R"({"kind":"bu-attack","cells":[{"alpha":0.2,"beta":0.4,"gamma":0.4,)"
      R"("ad":2,"utility":"relative-revenue"}]})");
  service.wait_idle();

  const Json snapshot = job_snapshot(service, id);
  ASSERT_EQ(snapshot.string_or("state", ""), "done");
  const Json* telemetry = snapshot.find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_GE(telemetry->number_or("elapsed_seconds", -1.0), 0.0);
  EXPECT_NE(telemetry->find("cells_per_second"), nullptr);
  // The job is terminal, so the worker is gone and there is no ETA.
  const Json* alive = telemetry->find("worker_alive");
  ASSERT_NE(alive, nullptr);
  EXPECT_TRUE(alive->is_bool());
  EXPECT_FALSE(alive->as_bool(true));
  EXPECT_EQ(telemetry->find("eta_seconds"), nullptr);
  const Json* cache = telemetry->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->find("hits"), nullptr);
  EXPECT_NE(cache->find("bytes_resident"), nullptr);
}

TEST(SvcServiceHttp, RealSocketRoundTrip) {
  SolveService service{ServiceConfig{}};
  svc::HttpServer server([&service](const HttpRequest& request) {
    return service.route(request);
  });
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_GT(server.port(), 0);

  const std::optional<HttpResponse> health =
      svc::http_fetch(server.port(), "GET", "/v1/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);

  const std::optional<HttpResponse> submitted = svc::http_fetch(
      server.port(), "POST", "/v1/jobs",
      R"({"kind":"btc-sm","cells":[{"alpha":0.25,"max_len":6}]})");
  ASSERT_TRUE(submitted.has_value());
  EXPECT_EQ(submitted->status, 202);
  service.wait_idle();

  const std::optional<HttpResponse> malformed =
      svc::http_fetch(server.port(), "POST", "/v1/jobs", "not json");
  ASSERT_TRUE(malformed.has_value());
  EXPECT_EQ(malformed->status, 400);

  const std::optional<HttpResponse> missing =
      svc::http_fetch(server.port(), "GET", "/v1/jobs/j404");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  server.stop();
}

// A client that connects and then withholds its request bytes must not
// stall other requests: connections are served on their own threads, so
// /v1/healthz answers immediately while the stalled connections sit out
// their (10 s) socket timeout. Under the old serial accept loop this
// test needed ~10 s per stalled connection; here the health checks are
// bounded well under one timeout.
TEST(SvcServiceHttp, SlowClientDoesNotStallHealthz) {
  SolveService service{ServiceConfig{}};
  svc::HttpServer server([&service](const HttpRequest& request) {
    return service.route(request);
  });
  ASSERT_TRUE(server.start(0));
  ASSERT_GT(server.port(), 0);

  // Three stalled clients: connect, trickle half a request line, hold.
  std::vector<int> slow_fds;
  for (int i = 0; i < 3; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                        sizeof(address)),
              0);
    const char partial[] = "GET /v1/health";  // no terminating CRLFCRLF
    ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL), 0);
    slow_fds.push_back(fd);
  }

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    const std::optional<HttpResponse> health =
        svc::http_fetch(server.port(), "GET", "/v1/healthz");
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->status, 200);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // One stalled client costs 10 s serially; three health checks behind
  // three stalled clients would cost ~30 s. Generous bound for CI noise.
  EXPECT_LT(elapsed, 5.0);

  for (const int fd : slow_fds) {
    ::close(fd);
  }
  server.stop();
}

}  // namespace
