#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mdp/average_reward.hpp"
#include "mdp/discounted.hpp"
#include "mdp/model.hpp"
#include "mdp/ratio.hpp"
#include "mdp/solver_config.hpp"
#include "util/check.hpp"

namespace {

using namespace bvc::mdp;

// ----------------------------------------------------------- ModelBuilder --

TEST(ModelBuilder, BuildsSimpleModel) {
  ModelBuilder builder(2);
  builder.begin_action(0, 7);
  builder.add_outcome(1, 1.0, 2.0, 1.0);
  builder.begin_action(1, 9);
  builder.add_outcome(0, 0.5, 1.0, 0.0);
  builder.add_outcome(1, 0.5, 0.0, 0.0);
  const Model model = builder.build();

  EXPECT_EQ(model.num_states(), 2u);
  EXPECT_EQ(model.num_state_actions(), 2u);
  EXPECT_EQ(model.num_actions(0), 1u);
  EXPECT_EQ(model.action_label(0, 0), 7);
  EXPECT_EQ(model.action_label(1, 0), 9);
  EXPECT_DOUBLE_EQ(model.expected_reward(model.sa_index(0, 0)), 2.0);
  EXPECT_DOUBLE_EQ(model.expected_reward(model.sa_index(1, 0)), 0.5);
  EXPECT_DOUBLE_EQ(model.expected_weight(model.sa_index(0, 0)), 1.0);
}

TEST(ModelBuilder, MergesDuplicateSuccessors) {
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 0.25, 4.0, 0.0);
  builder.add_outcome(1, 0.75, 0.0, 0.0);
  builder.begin_action(1, 0);
  builder.add_outcome(1, 1.0);
  const Model model = builder.build();

  const auto outcomes = model.outcomes(0, 0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(outcomes[0].probability, 1.0);
  // Probability-weighted reward: 0.25 * 4 + 0.75 * 0 = 1.
  EXPECT_DOUBLE_EQ(outcomes[0].reward, 1.0);
}

TEST(ModelBuilder, DropsZeroProbabilityBranches) {
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 0.0, 99.0, 0.0);
  builder.add_outcome(0, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(1, 1.0);
  const Model model = builder.build();
  EXPECT_EQ(model.outcomes(0, 0).size(), 1u);
}

TEST(ModelBuilder, RejectsUncoveredState) {
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0);
  EXPECT_THROW((void)builder.build(), std::invalid_argument);
}

TEST(ModelBuilder, RejectsBadProbabilitySum) {
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 0.7);
  EXPECT_THROW((void)builder.build(), std::invalid_argument);
}

TEST(ModelBuilder, RejectsNegativeProbability) {
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  EXPECT_THROW(builder.add_outcome(0, -0.25), std::invalid_argument);
}

TEST(ModelBuilder, RejectsOutcomeBeforeAction) {
  ModelBuilder builder(1);
  EXPECT_THROW(builder.add_outcome(0, 1.0), std::invalid_argument);
}

TEST(ModelBuilder, RejectsOutOfRangeSuccessor) {
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  EXPECT_THROW(builder.add_outcome(3, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------- average reward --

/// Two-state alternator with distinct rewards: gain = (r0 + r1) / 2.
Model make_alternator(double r0, double r1) {
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0, r0, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0, r1, 1.0);
  return builder.build();
}

TEST(AverageReward, AlternatorGain) {
  const Model model = make_alternator(1.0, 3.0);
  const GainResult result = maximize_average_reward(model);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(result.gain, 2.0, 1e-6);
}

TEST(AverageReward, PeriodicChainConvergesViaAperiodicityTransform) {
  // A strictly periodic two-cycle: without the transform, plain value
  // iteration oscillates.
  const Model model = make_alternator(0.0, 1.0);
  SolverConfig config;
  config.average_reward.aperiodicity_tau = 0.9;
  const GainResult result = maximize_average_reward(model, config);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(result.gain, 0.5, 1e-6);
}

TEST(AverageReward, PicksBetterAction) {
  // State 0 chooses between reward 1 (stay) and reward 2 (stay).
  ModelBuilder builder(1);
  builder.begin_action(0, 10);
  builder.add_outcome(0, 1.0, 1.0, 1.0);
  builder.begin_action(0, 20);
  builder.add_outcome(0, 1.0, 2.0, 1.0);
  const Model model = builder.build();
  const GainResult result = maximize_average_reward(model);
  EXPECT_NEAR(result.gain, 2.0, 1e-8);
  EXPECT_EQ(model.action_label(0, result.policy.action[0]), 20);
}

TEST(AverageReward, TradesImmediateRewardForBetterState) {
  // State 0: action A pays 10 but moves to a sink paying 0; action B pays 0
  // but moves to a state paying 5 forever. Gain-optimal play takes B.
  ModelBuilder builder(3);
  builder.begin_action(0, 0);  // A
  builder.add_outcome(1, 1.0, 10.0, 1.0);
  builder.begin_action(0, 1);  // B
  builder.add_outcome(2, 1.0, 0.0, 1.0);
  builder.begin_action(1, 0);  // sink, 0 forever
  builder.add_outcome(1, 1.0, 0.0, 1.0);
  builder.begin_action(2, 0);  // good state, 5 forever
  builder.add_outcome(2, 1.0, 5.0, 1.0);
  const Model model = builder.build();
  // Note: this model is multichain (the sink is absorbing), but every state
  // reaches some recurrent class and the maximal gain from state 0 is 5.
  const GainResult result = maximize_average_reward(model);
  EXPECT_EQ(model.action_label(0, result.policy.action[0]), 1);
}

TEST(AverageReward, RandomWalkGainMatchesStationaryAverage) {
  // Birth-death chain on {0,1,2} with reward = state index.
  // p(up) = 0.5, p(down) = 0.5 (reflecting): stationary = (1/4, 1/2, 1/4).
  ModelBuilder builder(3);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 0.5, 0.0, 0.0);
  builder.add_outcome(0, 0.5, 0.0, 0.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 0.5, 1.0, 0.0);
  builder.add_outcome(2, 0.5, 1.0, 0.0);
  builder.begin_action(2, 0);
  builder.add_outcome(1, 0.5, 2.0, 0.0);
  builder.add_outcome(2, 0.5, 2.0, 0.0);
  const Model model = builder.build();
  const GainResult result = maximize_average_reward(model);
  EXPECT_NEAR(result.gain, 0.25 * 0.0 + 0.5 * 1.0 + 0.25 * 2.0, 1e-6);
}

TEST(AverageReward, WarmStartReachesSameGain) {
  const Model model = make_alternator(1.0, 3.0);
  std::vector<double> rewards(model.num_state_actions());
  for (SaIndex sa = 0; sa < rewards.size(); ++sa) {
    rewards[sa] = model.expected_reward(sa);
  }
  const GainResult cold = maximize_average_reward(model, rewards);
  const GainResult warm =
      maximize_average_reward(model, rewards, SolverConfig{}, &cold.bias);
  EXPECT_NEAR(cold.gain, warm.gain, 1e-9);
  EXPECT_LE(warm.sweeps(), cold.sweeps());
}

TEST(AverageReward, RejectsWrongRewardVectorSize) {
  const Model model = make_alternator(1.0, 1.0);
  const std::vector<double> rewards = {1.0};
  EXPECT_THROW((void)maximize_average_reward(model, rewards),
               std::invalid_argument);
}

TEST(PolicyEvaluation, EvaluatesBothStreams) {
  // One state, one action: reward 2 per step, weight 0.5 per step.
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 2.0, 0.5);
  const Model model = builder.build();
  Policy policy;
  policy.action = {0};
  const PolicyGains gains = evaluate_policy_average(model, policy);
  EXPECT_TRUE(gains.converged());
  EXPECT_NEAR(gains.reward_rate, 2.0, 1e-8);
  EXPECT_NEAR(gains.weight_rate, 0.5, 1e-8);
}

TEST(PolicyEvaluation, SuboptimalPolicyHasLowerGain) {
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 1.0, 1.0);
  builder.begin_action(0, 1);
  builder.add_outcome(0, 1.0, 5.0, 1.0);
  const Model model = builder.build();
  Policy bad;
  bad.action = {0};
  EXPECT_NEAR(evaluate_policy_average(model, bad).reward_rate, 1.0, 1e-8);
}

// ------------------------------------------------------------- discounted --

TEST(Discounted, GeometricSumSingleState) {
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 1.0, 0.0);
  const Model model = builder.build();
  SolverConfig config;
  config.discounted.discount = 0.9;
  const DiscountedResult result = solve_discounted(model, config);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(result.value[0], 10.0, 1e-6);
}

TEST(Discounted, AgreesWithAverageRewardInTheLimit) {
  const Model model = make_alternator(1.0, 3.0);
  SolverConfig config;
  config.discounted.discount = 0.9999;
  const DiscountedResult discounted = solve_discounted(model, config);
  const GainResult average = maximize_average_reward(model);
  // (1 - beta) * V_beta -> gain.
  EXPECT_NEAR((1.0 - config.discounted.discount) * discounted.value[0], average.gain,
              1e-3);
}

TEST(Discounted, RejectsBadDiscount) {
  const Model model = make_alternator(0.0, 0.0);
  SolverConfig config;
  config.discounted.discount = 1.0;
  EXPECT_THROW((void)solve_discounted(model, config), std::invalid_argument);
}

// ------------------------------------------------------------------ ratio --

TEST(Ratio, SingleStateRatioOfStreams) {
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 3.0, 4.0);
  const Model model = builder.build();
  SolverConfig config;
  config.ratio.upper_bound = 10.0;
  const RatioResult result = maximize_ratio(model, config);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(result.ratio, 0.75, 1e-6);
}

TEST(Ratio, PrefersHigherRatioNotHigherReward) {
  // Action A: reward 10, weight 10 (ratio 1). Action B: reward 2, weight 1
  // (ratio 2). A pure reward maximizer picks A; the ratio solver must pick B.
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 10.0, 10.0);
  builder.begin_action(0, 1);
  builder.add_outcome(0, 1.0, 2.0, 1.0);
  const Model model = builder.build();
  SolverConfig config;
  config.ratio.upper_bound = 10.0;
  const RatioResult result = maximize_ratio(model, config);
  EXPECT_NEAR(result.ratio, 2.0, 1e-6);
  EXPECT_EQ(model.action_label(0, result.policy.action[0]), 1);
}

TEST(Ratio, HandlesDegenerateZeroWeightAction) {
  // Action A accrues nothing at all ("wait forever"); action B has ratio
  // 0.5. The solver must not get stuck on the degenerate action.
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 0.0, 0.0);
  builder.begin_action(0, 1);
  builder.add_outcome(0, 1.0, 1.0, 2.0);
  const Model model = builder.build();
  SolverConfig config;
  config.ratio.upper_bound = 5.0;
  const RatioResult result = maximize_ratio(model, config);
  EXPECT_NEAR(result.ratio, 0.5, 1e-5);
}

TEST(Ratio, TwoStateMixedRatio) {
  // States alternate; rewards differ by state. Only one policy exists:
  // ratio = (1 + 3) / (2 + 2) = 1.
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0, 1.0, 2.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0, 3.0, 2.0);
  const Model model = builder.build();
  SolverConfig config;
  config.ratio.upper_bound = 10.0;
  const RatioResult result = maximize_ratio(model, config);
  EXPECT_NEAR(result.ratio, 1.0, 1e-6);
}

TEST(Ratio, StatefulTradeoff) {
  // From state 0, action A stays with (num 1, den 1); action B moves to
  // state 1 with (0, 1), where the only action returns with (4, 1).
  // Policy A: ratio 1. Policy B: (0+4)/(1+1) = 2. B wins.
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 1.0, 1.0);
  builder.begin_action(0, 1);
  builder.add_outcome(1, 1.0, 0.0, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0, 4.0, 1.0);
  const Model model = builder.build();
  SolverConfig config;
  config.ratio.upper_bound = 10.0;
  const RatioResult result = maximize_ratio(model, config);
  EXPECT_NEAR(result.ratio, 2.0, 1e-6);
  EXPECT_EQ(model.action_label(0, result.policy.action[0]), 1);
}

TEST(Ratio, ReportsPolicyRates) {
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 3.0, 6.0);
  const Model model = builder.build();
  SolverConfig config;
  config.ratio.upper_bound = 2.0;
  const RatioResult result = maximize_ratio(model, config);
  EXPECT_NEAR(result.reward_rate, 3.0, 1e-6);
  EXPECT_NEAR(result.weight_rate, 6.0, 1e-6);
}

TEST(Ratio, RejectsEmptyBracket) {
  const Model model = make_alternator(1.0, 1.0);
  SolverConfig config;
  config.ratio.lower_bound = 1.0;
  config.ratio.upper_bound = 1.0;
  EXPECT_THROW((void)maximize_ratio(model, config), std::invalid_argument);
}

TEST(Ratio, ThrowsOnUnboundedObjective) {
  // Positive numerator with identically zero denominator: the ratio has no
  // finite supremum and the solver must refuse rather than return garbage.
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 1.0, 0.0);
  const Model model = builder.build();
  SolverConfig config;
  config.ratio.upper_bound = 100.0;
  EXPECT_THROW((void)maximize_ratio(model, config), bvc::InternalError);
}

}  // namespace

// --------------------------------------------------------------- rollout --

#include "mdp/rollout.hpp"
#include "util/rng.hpp"

namespace {

TEST(Rollout, MatchesAnalyticGainOnAlternator) {
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0, 1.0, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 0.5, 3.0, 1.0);
  builder.add_outcome(1, 0.5, 0.0, 1.0);
  const Model model = builder.build();
  Policy policy;
  policy.action = {0, 0};

  const PolicyGains gains = evaluate_policy_average(model, policy);
  bvc::Rng rng(77);
  const ModelRolloutResult rollout =
      rollout_model(model, policy, 0, 500'000, rng);
  EXPECT_NEAR(rollout.reward_rate(), gains.reward_rate, 5e-3);
  EXPECT_NEAR(rollout.ratio(), gains.reward_rate / gains.weight_rate, 5e-3);
}

TEST(Rollout, RejectsIncompletePolicy) {
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0);
  const Model model = builder.build();
  Policy policy;
  policy.action = {0};
  bvc::Rng rng(1);
  EXPECT_THROW((void)rollout_model(model, policy, 0, 10, rng),
               std::invalid_argument);
}

}  // namespace
