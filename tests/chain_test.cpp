#include <gtest/gtest.h>

#include <vector>

#include "chain/bitcoin_validity.hpp"
#include "chain/block_tree.hpp"
#include "chain/bu_validity.hpp"
#include "chain/selection.hpp"

namespace {

using namespace bvc::chain;

constexpr ByteSize kMB = kMegabyte;

/// Appends a linear chain of `sizes` on `parent`, returning the new tip.
BlockId extend(BlockTree& tree, BlockId parent,
               const std::vector<ByteSize>& sizes, MinerId miner = 0) {
  BlockId tip = parent;
  for (const ByteSize size : sizes) {
    tip = tree.add_block(tip, size, miner);
  }
  return tip;
}

// -------------------------------------------------------------- BlockTree --

TEST(BlockTree, GenesisOnly) {
  BlockTree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.block(tree.genesis()).height, 0u);
  EXPECT_EQ(tree.block(tree.genesis()).parent, kNoBlock);
}

TEST(BlockTree, HeightsFollowParents) {
  BlockTree tree;
  const BlockId a = tree.add_block(tree.genesis(), kMB, 1);
  const BlockId b = tree.add_block(a, kMB, 2);
  EXPECT_EQ(tree.block(a).height, 1u);
  EXPECT_EQ(tree.block(b).height, 2u);
  EXPECT_EQ(tree.block(b).parent, a);
  EXPECT_EQ(tree.block(b).miner, 2);
}

TEST(BlockTree, RejectsUnknownParent) {
  BlockTree tree;
  EXPECT_THROW((void)tree.add_block(42, kMB, 0), std::invalid_argument);
}

TEST(BlockTree, ChildrenAndTips) {
  BlockTree tree;
  const BlockId a = tree.add_block(tree.genesis(), kMB, 0);
  const BlockId b = tree.add_block(tree.genesis(), kMB, 1);
  const BlockId c = tree.add_block(a, kMB, 0);
  EXPECT_EQ(tree.children(tree.genesis()).size(), 2u);
  const std::vector<BlockId> tips = tree.tips();
  EXPECT_EQ(tips, (std::vector<BlockId>{b, c}));
}

TEST(BlockTree, AncestorAtHeight) {
  BlockTree tree;
  const BlockId tip = extend(tree, tree.genesis(), {kMB, kMB, kMB, kMB});
  EXPECT_EQ(tree.block(tree.ancestor_at_height(tip, 2)).height, 2u);
  EXPECT_EQ(tree.ancestor_at_height(tip, 0), tree.genesis());
  EXPECT_EQ(tree.ancestor_at_height(tip, 4), tip);
  EXPECT_THROW((void)tree.ancestor_at_height(tree.genesis(), 1),
               std::invalid_argument);
}

TEST(BlockTree, IsAncestor) {
  BlockTree tree;
  const BlockId a = tree.add_block(tree.genesis(), kMB, 0);
  const BlockId b = tree.add_block(a, kMB, 0);
  const BlockId side = tree.add_block(tree.genesis(), kMB, 1);
  EXPECT_TRUE(tree.is_ancestor(a, b));
  EXPECT_TRUE(tree.is_ancestor(b, b));
  EXPECT_FALSE(tree.is_ancestor(b, a));
  EXPECT_FALSE(tree.is_ancestor(side, b));
  EXPECT_TRUE(tree.is_ancestor(tree.genesis(), side));
}

TEST(BlockTree, CommonAncestor) {
  BlockTree tree;
  const BlockId fork = extend(tree, tree.genesis(), {kMB, kMB});
  const BlockId left = extend(tree, fork, {kMB, kMB, kMB});
  const BlockId right = extend(tree, fork, {kMB});
  EXPECT_EQ(tree.common_ancestor(left, right), fork);
  EXPECT_EQ(tree.common_ancestor(left, left), left);
  EXPECT_EQ(tree.common_ancestor(left, fork), fork);
}

TEST(BlockTree, PathFromGenesis) {
  BlockTree tree;
  const BlockId a = tree.add_block(tree.genesis(), kMB, 0);
  const BlockId b = tree.add_block(a, kMB, 0);
  const std::vector<BlockId> path = tree.path_from_genesis(b);
  EXPECT_EQ(path, (std::vector<BlockId>{tree.genesis(), a, b}));
}

// ------------------------------------------------------- BitcoinValidity --

TEST(BitcoinValidity, EnforcesSizeLimit) {
  BitcoinValidity rule(1 * kMB);
  BlockTree tree;
  const BlockId ok = tree.add_block(tree.genesis(), kMB, 0);
  const BlockId big = tree.add_block(ok, kMB + 1, 0);
  EXPECT_TRUE(rule.chain_acceptable(tree, ok));
  EXPECT_FALSE(rule.chain_acceptable(tree, big));
}

TEST(BitcoinValidity, InvalidBlockPoisonsDescendants) {
  BitcoinValidity rule(1 * kMB);
  BlockTree tree;
  const BlockId big = tree.add_block(tree.genesis(), 2 * kMB, 0);
  const BlockId child = extend(tree, big, {kMB, kMB, kMB, kMB, kMB, kMB});
  // Unlike BU, no amount of depth legitimizes an oversized block.
  EXPECT_FALSE(rule.chain_acceptable(tree, child));
}

TEST(BitcoinValidity, SameVerdictForEveryNode) {
  // The point of a prescribed BVC: two nodes with the same consensus rule
  // can never disagree.
  BitcoinValidity node_a(1 * kMB);
  BitcoinValidity node_b(1 * kMB);
  BlockTree tree;
  const BlockId tip = extend(tree, tree.genesis(), {kMB, kMB / 2, kMB});
  EXPECT_EQ(node_a.chain_acceptable(tree, tip),
            node_b.chain_acceptable(tree, tip));
}

// ------------------------------------------------------------ BuNodeRule --

BuParams params_with(ByteSize eb, Height ad, bool sticky = true,
                     Height gate_period = kDefaultGatePeriod) {
  BuParams params;
  params.eb = eb;
  params.ad = ad;
  params.sticky_gate = sticky;
  params.gate_period = gate_period;
  return params;
}

TEST(BuNodeRule, AcceptsNonExcessiveChain) {
  BuNodeRule rule(params_with(1 * kMB, 3));
  BlockTree tree;
  const BlockId tip = extend(tree, tree.genesis(), {kMB, kMB, kMB});
  const ChainStatus status = rule.evaluate(tree, tip);
  EXPECT_EQ(status.verdict, ChainVerdict::kAcceptable);
  EXPECT_FALSE(status.gate_open);
}

TEST(BuNodeRule, BlockOfSizeExactlyEbIsNotExcessive) {
  // "As a block with the exact size EB is not an excessive block" (2.2).
  BuNodeRule rule(params_with(8 * kMB, 3));
  BlockTree tree;
  const BlockId tip = tree.add_block(tree.genesis(), 8 * kMB, 0);
  EXPECT_FALSE(rule.is_excessive(tree.block(tip)));
  EXPECT_EQ(rule.evaluate(tree, tip).verdict, ChainVerdict::kAcceptable);
}

TEST(BuNodeRule, ExcessiveBlockPendsUntilAcceptanceDepth) {
  // Figure 1, top: with AD = 3, an excessive block and one block on top are
  // still rejected; with two on top the chain is accepted.
  BuNodeRule rule(params_with(1 * kMB, 3));
  BlockTree tree;
  const BlockId excessive = tree.add_block(tree.genesis(), 2 * kMB, 0);
  EXPECT_EQ(rule.evaluate(tree, excessive).verdict,
            ChainVerdict::kPendingDepth);

  const BlockId one_on_top = tree.add_block(excessive, kMB, 0);
  const ChainStatus pending = rule.evaluate(tree, one_on_top);
  EXPECT_EQ(pending.verdict, ChainVerdict::kPendingDepth);
  ASSERT_TRUE(pending.pending_block.has_value());
  EXPECT_EQ(*pending.pending_block, excessive);
  EXPECT_EQ(pending.pending_blocks_needed, 1u);

  const BlockId two_on_top = tree.add_block(one_on_top, kMB, 0);
  EXPECT_EQ(rule.evaluate(tree, two_on_top).verdict,
            ChainVerdict::kAcceptable);
}

TEST(BuNodeRule, AcceptanceDepthCountsTheExcessiveBlockItself) {
  BuNodeRule rule(params_with(1 * kMB, 1));
  BlockTree tree;
  const BlockId excessive = tree.add_block(tree.genesis(), 2 * kMB, 0);
  // AD = 1: the block alone already forms a chain of length AD.
  EXPECT_EQ(rule.evaluate(tree, excessive).verdict,
            ChainVerdict::kAcceptable);
}

TEST(BuNodeRule, GateOpensOnAcceptance) {
  // Figure 1, middle: once the excessive block is accepted, the sticky gate
  // opens and the size limit on that chain becomes the 32 MB message limit.
  BuNodeRule rule(params_with(1 * kMB, 3));
  BlockTree tree;
  const BlockId tip = extend(tree, tree.genesis(), {2 * kMB, kMB, kMB});
  const ChainStatus status = rule.evaluate(tree, tip);
  EXPECT_EQ(status.verdict, ChainVerdict::kAcceptable);
  EXPECT_TRUE(status.gate_open);

  // A 20 MB block is now accepted instantly on this chain.
  const BlockId giant = tree.add_block(tip, 20 * kMB, 0);
  EXPECT_EQ(rule.evaluate(tree, giant).verdict, ChainVerdict::kAcceptable);
}

TEST(BuNodeRule, MessageLimitStillApplies) {
  BuNodeRule rule(params_with(1 * kMB, 3));
  BlockTree tree;
  const BlockId tip = extend(tree, tree.genesis(), {2 * kMB, kMB, kMB});
  const BlockId way_too_big = tree.add_block(tip, kMessageLimit + 1, 0);
  EXPECT_EQ(rule.evaluate(tree, way_too_big).verdict, ChainVerdict::kInvalid);
  // And depth cannot cure it.
  const BlockId deep = extend(tree, way_too_big, {kMB, kMB, kMB, kMB});
  EXPECT_EQ(rule.evaluate(tree, deep).verdict, ChainVerdict::kInvalid);
}

TEST(BuNodeRule, GateClosesAfterConsecutiveNonExcessiveBlocks) {
  // Figure 1, bottom: the gate closes after `gate_period` consecutive
  // non-excessive blocks (using a short period to keep the test readable).
  BuNodeRule rule(params_with(1 * kMB, 3, true, 5));
  BlockTree tree;
  BlockId tip = extend(tree, tree.genesis(), {2 * kMB, kMB, kMB});
  EXPECT_TRUE(rule.evaluate(tree, tip).gate_open);

  // Two non-excessive blocks already count (run = 2): three more close it.
  tip = extend(tree, tip, {kMB, kMB, kMB});
  const ChainStatus closed = rule.evaluate(tree, tip);
  EXPECT_EQ(closed.verdict, ChainVerdict::kAcceptable);
  EXPECT_FALSE(closed.gate_open);

  // With the gate closed, a new excessive block pends again.
  const BlockId late = tree.add_block(tip, 2 * kMB, 0);
  EXPECT_EQ(rule.evaluate(tree, late).verdict, ChainVerdict::kPendingDepth);
}

TEST(BuNodeRule, ExcessiveBlockUnderOpenGateResetsTheRun) {
  BuNodeRule rule(params_with(1 * kMB, 3, true, 4));
  BlockTree tree;
  // Open the gate, then alternate: the run must restart at each excessive
  // block, keeping the gate open past the nominal period.
  BlockId tip = extend(tree, tree.genesis(), {2 * kMB, kMB, kMB});
  tip = extend(tree, tip, {kMB, 2 * kMB, kMB, kMB, kMB});
  const ChainStatus status = rule.evaluate(tree, tip);
  EXPECT_EQ(status.verdict, ChainVerdict::kAcceptable);
  EXPECT_TRUE(status.gate_open);
  EXPECT_EQ(status.blocks_until_gate_close, 1u);
}

TEST(BuNodeRule, WithoutStickyGateEachExcessiveBlockNeedsItsOwnDepth) {
  // BUIP038 (setting 1): acceptance no longer opens a gate.
  BuNodeRule rule(params_with(1 * kMB, 3, /*sticky=*/false));
  BlockTree tree;
  BlockId tip = extend(tree, tree.genesis(), {2 * kMB, kMB, kMB});
  EXPECT_EQ(rule.evaluate(tree, tip).verdict, ChainVerdict::kAcceptable);
  EXPECT_FALSE(rule.evaluate(tree, tip).gate_open);

  const BlockId second = tree.add_block(tip, 2 * kMB, 0);
  EXPECT_EQ(rule.evaluate(tree, second).verdict, ChainVerdict::kPendingDepth);
}

TEST(BuNodeRule, NestedExcessiveBlocksAcceptedTogether) {
  // Two excessive blocks in the pending window: once the first gains AD
  // depth, the gate opens retroactively and covers the second.
  BuNodeRule rule(params_with(1 * kMB, 4));
  BlockTree tree;
  const BlockId tip =
      extend(tree, tree.genesis(), {2 * kMB, 3 * kMB, kMB, kMB});
  const ChainStatus status = rule.evaluate(tree, tip);
  EXPECT_EQ(status.verdict, ChainVerdict::kAcceptable);
  EXPECT_TRUE(status.gate_open);
}

TEST(BuNodeRule, InitialGateStateCarriesAcrossReroot) {
  BuNodeRule rule(params_with(1 * kMB, 3, true, 10));
  BlockTree tree;
  const BlockId tip = extend(tree, tree.genesis(), {20 * kMB});
  // Without carry-over, a 20 MB block pends; with an open gate it passes.
  EXPECT_EQ(rule.evaluate(tree, tip).verdict, ChainVerdict::kPendingDepth);
  const GateState open{true, 4};
  EXPECT_EQ(rule.evaluate(tree, tip, open).verdict,
            ChainVerdict::kAcceptable);
  const ChainStatus status = rule.evaluate(tree, tip, open);
  EXPECT_TRUE(status.gate_open);
  EXPECT_EQ(status.gate.run, 0u);  // the excessive block reset the run
}

TEST(BuNodeRule, DifferentEbsDisagreeOnTheSameChain) {
  // The crux of the paper: without a prescribed BVC, two compliant nodes
  // reach opposite verdicts about the same chain.
  BuNodeRule bob(params_with(1 * kMB, 6));
  BuNodeRule carol(params_with(8 * kMB, 6));
  BlockTree tree;
  const BlockId tip = tree.add_block(tree.genesis(), 8 * kMB, 0);
  EXPECT_EQ(bob.evaluate(tree, tip).verdict, ChainVerdict::kPendingDepth);
  EXPECT_EQ(carol.evaluate(tree, tip).verdict, ChainVerdict::kAcceptable);
}

TEST(BuNodeRule, RejectsBadParams) {
  EXPECT_THROW(BuNodeRule{params_with(0, 3)}, std::invalid_argument);
  EXPECT_THROW(BuNodeRule{params_with(kMB, 0)}, std::invalid_argument);
  BuParams bad = params_with(kMB, 3);
  bad.message_limit = kMB / 2;  // below EB
  EXPECT_THROW(BuNodeRule{bad}, std::invalid_argument);
}

// ------------------------------------------------------ BuSourceCodeRule --

TEST(BuSourceCodeRule, LatestAdNonExcessiveIsAcceptable) {
  BuSourceCodeRule rule(BuParams{kMB, kMB, 3, true, 144, kMessageLimit});
  BlockTree tree;
  const BlockId tip =
      extend(tree, tree.genesis(), {2 * kMB, kMB, kMB, kMB});
  EXPECT_TRUE(rule.chain_acceptable(tree, tip));
}

TEST(BuSourceCodeRule, PaperEdgeCaseValidThenInvalidated) {
  // Sect. 2.2: a chain whose only excessive blocks sit at heights h and
  // h - AD - 143 is valid, but adding one more block invalidates it.
  const Height ad = 6;
  const Height period = 144;
  BuParams params;
  params.eb = kMB;
  params.ad = ad;
  params.gate_period = period;
  BuSourceCodeRule rule(params);

  BlockTree tree;
  // Deep excessive block at height 1, non-excessive filler up to height
  // h - 1, then the second excessive block at h = 1 + AD + (period - 1), so
  // that the deep one sits exactly at h - AD - 143.
  BlockId tip = tree.add_block(tree.genesis(), 2 * kMB, 0);  // height 1
  for (Height i = 0; i < ad + period - 2; ++i) {
    tip = tree.add_block(tip, kMB, 0);
  }
  tip = tree.add_block(tip, 2 * kMB, 0);  // height h
  EXPECT_TRUE(rule.chain_acceptable(tree, tip));

  const BlockId extended = tree.add_block(tip, kMB, 0);
  EXPECT_FALSE(rule.chain_acceptable(tree, extended));
}

TEST(BuSourceCodeRule, DisagreesWithRizunDescription) {
  // The documented inconsistency: the Rizun rule (BuNodeRule) is monotone in
  // the sense that appending a non-excessive block to an acceptable chain
  // keeps it acceptable; the source-code rule is not. Reuse the edge case.
  const Height ad = 6;
  BuParams params;
  params.eb = kMB;
  params.ad = ad;
  BuSourceCodeRule source(params);
  BuNodeRule rizun(params);

  BlockTree tree;
  BlockId tip = tree.add_block(tree.genesis(), 2 * kMB, 0);
  for (Height i = 0; i < ad + params.gate_period - 2; ++i) {
    tip = tree.add_block(tip, kMB, 0);
  }
  tip = tree.add_block(tip, 2 * kMB, 0);
  const BlockId extended = tree.add_block(tip, kMB, 0);

  // The source-code rule accepts the fresh excessive tip instantly, then
  // flips to invalid when a block is appended (non-monotone). Rizun's rule
  // is consistent: the tip's gate closed 5 blocks earlier (144 consecutive
  // non-excessive blocks), so the new excessive block pends in both cases.
  EXPECT_TRUE(source.chain_acceptable(tree, tip));
  EXPECT_FALSE(source.chain_acceptable(tree, extended));
  EXPECT_EQ(rizun.evaluate(tree, tip).verdict, ChainVerdict::kPendingDepth);
  EXPECT_EQ(rizun.evaluate(tree, extended).verdict,
            ChainVerdict::kPendingDepth);
}

// -------------------------------------------------------------- selection --

TEST(Selection, PicksLongestAcceptable) {
  BitcoinValidity rule(kMB);
  BlockTree tree;
  const BlockId shorter = extend(tree, tree.genesis(), {kMB, kMB});
  const BlockId longer = extend(tree, tree.genesis(), {kMB, kMB, kMB});
  EXPECT_EQ(select_best_block(tree, rule), longer);
  (void)shorter;
}

TEST(Selection, SkipsUnacceptableChains) {
  BitcoinValidity rule(kMB);
  BlockTree tree;
  const BlockId valid = extend(tree, tree.genesis(), {kMB});
  const BlockId invalid = extend(tree, tree.genesis(), {2 * kMB, kMB, kMB});
  EXPECT_EQ(select_best_block(tree, rule), valid);
  (void)invalid;
}

TEST(Selection, FirstSeenBreaksTies) {
  BitcoinValidity rule(kMB);
  BlockTree tree;
  const BlockId first = extend(tree, tree.genesis(), {kMB, kMB});
  const BlockId second = extend(tree, tree.genesis(), {kMB, kMB});
  EXPECT_EQ(select_best_block(tree, rule), first);
  (void)second;
}

TEST(Selection, CountsMinerBlocks) {
  BlockTree tree;
  const BlockId a = tree.add_block(tree.genesis(), kMB, 0);
  const BlockId b = tree.add_block(a, kMB, 1);
  const BlockId c = tree.add_block(b, kMB, 0);
  EXPECT_EQ(count_miner_blocks(tree, c, 0), 2u);
  EXPECT_EQ(count_miner_blocks(tree, c, 1), 1u);
  EXPECT_EQ(rewardable_blocks(tree, c).size(), 3u);
}

}  // namespace
