// Property tests for the MDP solvers: on randomly generated small models,
// the optimal gain / ratio returned by the iterative solvers must match a
// brute-force enumeration of every deterministic stationary policy (whose
// long-run rates we compute independently by power iteration on the policy
// chain).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mdp/average_reward.hpp"
#include "mdp/discounted.hpp"
#include "mdp/model.hpp"
#include "mdp/ratio.hpp"
#include "mdp/solver_config.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using namespace bvc::mdp;

/// A random model where every action can reach every state with positive
/// probability — guarantees irreducibility (hence unichain) under every
/// policy.
Model random_model(Rng& rng, StateId states, std::size_t actions) {
  ModelBuilder builder(states);
  for (StateId s = 0; s < states; ++s) {
    for (std::size_t a = 0; a < actions; ++a) {
      builder.begin_action(s, static_cast<ActionLabel>(a));
      std::vector<double> probs(states);
      double total = 0.0;
      for (double& p : probs) {
        p = 0.05 + rng.next_double();
        total += p;
      }
      for (StateId next = 0; next < states; ++next) {
        builder.add_outcome(next, probs[next] / total,
                            rng.next_double() * 4.0 - 1.0,  // reward
                            0.1 + rng.next_double());       // weight > 0
      }
    }
  }
  return builder.build();
}

/// Long-run (reward_rate, weight_rate) of a fixed policy via power
/// iteration on its stationary distribution — an implementation completely
/// independent of the RVI solver.
std::pair<double, double> policy_rates_by_power_iteration(
    const Model& model, const Policy& policy) {
  const StateId n = model.num_states();
  std::vector<double> dist(n, 1.0 / n);
  std::vector<double> next(n);
  for (int iter = 0; iter < 20000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (StateId s = 0; s < n; ++s) {
      const SaIndex sa = model.sa_index(s, policy.action[s]);
      for (const Outcome& o : model.outcomes(sa)) {
        next[o.next] += dist[s] * o.probability;
      }
    }
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      delta = std::max(delta, std::abs(next[s] - dist[s]));
    }
    dist.swap(next);
    if (delta < 1e-14) {
      break;
    }
  }
  double reward = 0.0;
  double weight = 0.0;
  for (StateId s = 0; s < n; ++s) {
    const SaIndex sa = model.sa_index(s, policy.action[s]);
    reward += dist[s] * model.expected_reward(sa);
    weight += dist[s] * model.expected_weight(sa);
  }
  return {reward, weight};
}

/// All deterministic policies of a model with `actions` actions per state.
std::vector<Policy> all_policies(StateId states, std::size_t actions) {
  std::vector<Policy> result;
  std::vector<std::uint32_t> current(states, 0);
  for (;;) {
    result.push_back(Policy{current});
    StateId s = 0;
    for (; s < states; ++s) {
      if (++current[s] < actions) {
        break;
      }
      current[s] = 0;
    }
    if (s == states) {
      return result;
    }
  }
}

class SolverVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverVsBruteForce, AverageRewardMatchesEnumeration) {
  Rng rng(GetParam());
  const StateId states = 2 + static_cast<StateId>(rng.next_below(3));
  const std::size_t actions = 2 + rng.next_below(2);
  const Model model = random_model(rng, states, actions);

  double best_gain = -1e100;
  for (const Policy& policy : all_policies(states, actions)) {
    best_gain = std::max(
        best_gain, policy_rates_by_power_iteration(model, policy).first);
  }

  const GainResult solved = maximize_average_reward(model);
  EXPECT_TRUE(solved.converged());
  EXPECT_NEAR(solved.gain, best_gain, 1e-6);
}

TEST_P(SolverVsBruteForce, RatioMatchesEnumeration) {
  Rng rng(GetParam() ^ 0x5EED);
  const StateId states = 2 + static_cast<StateId>(rng.next_below(3));
  const std::size_t actions = 2 + rng.next_below(2);
  const Model model = random_model(rng, states, actions);

  double best_ratio = -1e100;
  for (const Policy& policy : all_policies(states, actions)) {
    const auto [reward, weight] =
        policy_rates_by_power_iteration(model, policy);
    best_ratio = std::max(best_ratio, reward / weight);
  }

  SolverConfig config;
  config.ratio.lower_bound = -100.0;
  config.ratio.upper_bound = 100.0;
  const RatioResult solved = maximize_ratio(model, config);
  EXPECT_TRUE(solved.converged());
  EXPECT_NEAR(solved.ratio, best_ratio, 1e-5);
}

TEST_P(SolverVsBruteForce, PolicyEvaluationMatchesPowerIteration) {
  Rng rng(GetParam() ^ 0xABCD);
  const StateId states = 2 + static_cast<StateId>(rng.next_below(4));
  const std::size_t actions = 1 + rng.next_below(3);
  const Model model = random_model(rng, states, actions);

  Policy policy;
  policy.action.resize(states);
  for (StateId s = 0; s < states; ++s) {
    policy.action[s] =
        static_cast<std::uint32_t>(rng.next_below(actions));
  }
  const auto [reward, weight] =
      policy_rates_by_power_iteration(model, policy);
  const PolicyGains gains = evaluate_policy_average(model, policy);
  EXPECT_NEAR(gains.reward_rate, reward, 1e-6);
  EXPECT_NEAR(gains.weight_rate, weight, 1e-6);
}

TEST_P(SolverVsBruteForce, DiscountedLimitApproachesGain) {
  Rng rng(GetParam() ^ 0xD15C);
  const Model model = random_model(rng, 3, 2);
  SolverConfig config;
  config.discounted.discount = 0.99995;
  const DiscountedResult discounted = solve_discounted(model, config);
  const GainResult average = maximize_average_reward(model);
  EXPECT_NEAR((1.0 - config.discounted.discount) * discounted.value[0], average.gain,
              2e-3);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SolverVsBruteForce,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

}  // namespace
