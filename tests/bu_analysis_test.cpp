// Solver-level tests of the attack analysis: honest baselines, paper
// regression cells, policy structure, and Monte-Carlo rollout agreement.
// Heavyweight sweeps over the full parameter grid live in the benches; here
// we pin a representative subset (and use short gate periods for setting 2)
// to keep the suite fast.
#include <gtest/gtest.h>

#include <cmath>

#include "bu/attack_analysis.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc::bu;
using bvc::Rng;

AttackParams make_params(double alpha, double beta, double gamma,
                         Setting setting = Setting::kNoStickyGate,
                         unsigned ad = 6) {
  AttackParams params;
  params.alpha = alpha;
  params.beta = beta;
  params.gamma = gamma;
  params.setting = setting;
  params.ad = ad;
  return params;
}

// --------------------------------------------------- incentive baselines ---

TEST(Analysis, RelativeRevenueNeverBelowAlpha) {
  // "Always OnChain1" earns exactly alpha, so the optimum is >= alpha.
  for (const double alpha : {0.05, 0.15, 0.25}) {
    const double rest = 1.0 - alpha;
    const AnalysisResult result = analyze(
        make_params(alpha, rest / 2, rest / 2), Utility::kRelativeRevenue);
    EXPECT_GE(result.utility_value, alpha - 1e-4);
  }
}

TEST(Analysis, NoUnfairRevenueWhenBobDominates) {
  // Sect. 4.2: Alice gains only when alpha + gamma > beta; otherwise the
  // optimal strategy is honest and u1 == alpha.
  const AnalysisResult result = analyze(make_params(0.10, 0.60, 0.30),
                                        Utility::kRelativeRevenue);
  EXPECT_NEAR(result.utility_value, 0.10, 2e-4);
  EXPECT_FALSE(result.attack_beats_honest);
}

TEST(Analysis, UnfairRevenueWhenAliceAndCarolOutweighBob) {
  // Table 2, alpha = 25%, beta:gamma = 1:1 -> 26.24%.
  const AnalysisResult result = analyze(make_params(0.25, 0.375, 0.375),
                                        Utility::kRelativeRevenue);
  EXPECT_NEAR(result.utility_value, 0.2624, 3e-4);
  EXPECT_TRUE(result.attack_beats_honest);
}

TEST(Analysis, Table2RegressionSetting1) {
  // Two more Table 2 cells, setting 1.
  EXPECT_NEAR(max_relative_revenue(0.25, 0.30, 0.45,
                                   Setting::kNoStickyGate),
              0.2739, 3e-4);
  // alpha = 20%, beta:gamma = 1:3 -> 21.58% (verified 0.2158 by our solver).
  EXPECT_NEAR(max_relative_revenue(0.20, 0.20, 0.60,
                                   Setting::kNoStickyGate),
              0.2158, 3e-4);
}

TEST(Analysis, BaseStatePolicyAttacksOnlyWhenProfitable) {
  // When the attack pays, the optimal base action is OnChain2 (fork).
  const AttackModel model = build_attack_model(
      make_params(0.25, 0.375, 0.375), Utility::kRelativeRevenue);
  const AnalysisResult result = analyze(model);
  EXPECT_EQ(policy_action(model, result.policy, AttackState{}),
            Action::kOnChain2);

  const AttackModel honest_model = build_attack_model(
      make_params(0.10, 0.60, 0.30), Utility::kRelativeRevenue);
  const AnalysisResult honest = analyze(honest_model);
  EXPECT_EQ(policy_action(honest_model, honest.policy, AttackState{}),
            Action::kOnChain1);
}

// ------------------------------------------------------- double-spending ---

TEST(Analysis, DoubleSpendProfitableEvenForOnePercentMiner) {
  // Analytical Result 2: in BU even a 1% miner profits from
  // double-spending — u2 is more than triple the honest 0.01. (The paper's
  // Table 3 reports 0.042 for this cell; our reproduction of the
  // double-spend accounting yields 0.0341 — see EXPERIMENTS.md for the
  // convention analysis. The qualitative result is identical.)
  const AnalysisResult result = analyze(make_params(0.01, 0.495, 0.495),
                                        Utility::kAbsoluteReward);
  EXPECT_NEAR(result.utility_value, 0.0341, 1e-3);
  EXPECT_GT(result.utility_value, 3.0 * 0.01);
  EXPECT_TRUE(result.attack_beats_honest);
}

TEST(Analysis, Table3RegressionSetting1) {
  // Our regenerated values (paper: 0.40 and 0.090; same shape, see
  // EXPERIMENTS.md).
  EXPECT_NEAR(max_absolute_reward(0.10, 0.45, 0.45,
                                  Setting::kNoStickyGate),
              0.3123, 2e-3);
  EXPECT_NEAR(max_absolute_reward(0.05, 0.80 * 0.95, 0.20 * 0.95,
                                  Setting::kNoStickyGate),
              0.0627, 2e-3);
}

TEST(Analysis, DoubleSpendValueScalesWithRds) {
  AttackParams cheap = make_params(0.05, 0.475, 0.475);
  cheap.rds = 1.0;
  AttackParams rich = make_params(0.05, 0.475, 0.475);
  rich.rds = 50.0;
  const double small_v =
      analyze(cheap, Utility::kAbsoluteReward).utility_value;
  const double large_v =
      analyze(rich, Utility::kAbsoluteReward).utility_value;
  EXPECT_GT(large_v, small_v);
  EXPECT_GE(small_v, 0.05 - 1e-4);  // never worse than honest
}

TEST(Analysis, NoDoubleSpendRewardMeansRevenueCapNearAlpha) {
  // With rds = 0, u2 reduces to Alice's locked blocks per network block,
  // which cannot exceed alpha by much... in fact per-step it is <= alpha.
  AttackParams params = make_params(0.15, 0.425, 0.425);
  params.rds = 0.0;
  const AnalysisResult result = analyze(params, Utility::kAbsoluteReward);
  EXPECT_NEAR(result.utility_value, 0.15, 1e-3);
}

// ------------------------------------------------------------- orphaning ---

TEST(Analysis, Table4RegressionSetting1) {
  // alpha = 1%: 2:3 -> 1.77 (the paper's headline 1.77 figure), 1:1 -> 1.76,
  // 4:1 -> 0.61.
  EXPECT_NEAR(max_orphaning(0.01, 0.99 * 0.4, 0.99 * 0.6,
                            Setting::kNoStickyGate),
              1.77, 0.01);
  EXPECT_NEAR(max_orphaning(0.01, 0.495, 0.495, Setting::kNoStickyGate),
              1.76, 0.01);
  EXPECT_NEAR(max_orphaning(0.01, 0.99 * 0.8, 0.99 * 0.2,
                            Setting::kNoStickyGate),
              0.61, 0.01);
}

TEST(Analysis, OrphaningEffectivenessIndependentOfAlpha) {
  // Sect. 4.4: "the results are almost identical for all alpha values".
  const double tiny = max_orphaning(0.01, 0.495, 0.495,
                                    Setting::kNoStickyGate);
  const double small_v = max_orphaning(0.05, 0.475, 0.475,
                                       Setting::kNoStickyGate);
  EXPECT_NEAR(tiny, small_v, 0.02);
}

TEST(Analysis, OrphaningExceedsBitcoinBound) {
  // Analytical Result 3: u3 > 1 in BU vs <= 1 in Bitcoin.
  const double u3 = max_orphaning(0.01, 0.495, 0.495,
                                  Setting::kNoStickyGate);
  EXPECT_GT(u3, 1.0);
}

// ----------------------------------------------- setting 2 (short gate) ----

TEST(Analysis, Setting2WithShortGateRunsEndToEnd) {
  AttackParams params = make_params(0.25, 0.45, 0.30, Setting::kStickyGate);
  params.gate_period = 12;  // short gate: same mechanics, fast solve
  const AnalysisResult result = analyze(params, Utility::kRelativeRevenue);
  EXPECT_TRUE(result.converged());
  // The 3:2 split profits only via phase 2 (Table 2: setting 1 gives exactly
  // alpha, setting 2 slightly more); with a shorter gate the phase-2 benefit
  // shrinks but must not go below alpha.
  EXPECT_GE(result.utility_value, 0.25 - 1e-4);
}

TEST(Analysis, GateCountdownVariantGapShrinksWithThePeriod) {
  // The Rizun-exact countdown (phase 2 starts at period - (AD-1), decrements
  // by blocks locked) and the paper-text encoding (starts at the full
  // period, decrements by l1) differ by O(AD / period): noticeable at a
  // 24-block gate, negligible at the release's 144.
  const auto gap = [](unsigned period) {
    AttackParams locked =
        make_params(0.25, 0.30, 0.45, Setting::kStickyGate);
    locked.gate_period = period;
    AttackParams paper = locked;
    paper.countdown = GateCountdown::kPaperText;
    const double a =
        analyze(locked, Utility::kRelativeRevenue).utility_value;
    const double b =
        analyze(paper, Utility::kRelativeRevenue).utility_value;
    return std::abs(a - b);
  };
  const double short_gap = gap(24);
  const double long_gap = gap(144);
  EXPECT_LT(long_gap, short_gap);
  EXPECT_LT(long_gap, 2e-3);
}

// ----------------------------------------------------------- rollouts ------

TEST(Rollout, AgreesWithAnalyticUtility) {
  const AttackModel model = build_attack_model(
      make_params(0.25, 0.375, 0.375), Utility::kRelativeRevenue);
  const AnalysisResult result = analyze(model);
  Rng rng(4242);
  const RolloutResult rollout =
      rollout_policy(model, result.policy, 2'000'000, rng);
  EXPECT_NEAR(rollout.utility_estimate, result.utility_value, 5e-3);
}

TEST(Rollout, HonestPolicyEarnsAlpha) {
  const AttackModel model = build_attack_model(
      make_params(0.2, 0.4, 0.4), Utility::kRelativeRevenue);
  // Construct the all-OnChain1 policy manually.
  bvc::mdp::Policy honest;
  honest.action.assign(model.space.size(), 0);  // local action 0 = OnChain1
  Rng rng(7);
  const RolloutResult rollout = rollout_policy(model, honest, 500'000, rng);
  EXPECT_NEAR(rollout.utility_estimate, 0.2, 5e-3);
  EXPECT_DOUBLE_EQ(rollout.totals.others_orphaned, 0.0);
}

TEST(Rollout, OrphaningPolicyRollout) {
  const AttackModel model = build_attack_model(
      make_params(0.05, 0.38, 0.57), Utility::kOrphaning);
  const AnalysisResult result = analyze(model);
  Rng rng(99);
  const RolloutResult rollout =
      rollout_policy(model, result.policy, 2'000'000, rng);
  EXPECT_NEAR(rollout.utility_estimate, result.utility_value, 0.05);
  EXPECT_GT(rollout.totals.others_orphaned, 0.0);
}

TEST(DescribePolicy, ListsBaseAndForkStates) {
  const AttackModel model = build_attack_model(
      make_params(0.25, 0.375, 0.375, Setting::kNoStickyGate, 3),
      Utility::kRelativeRevenue);
  const AnalysisResult result = analyze(model);
  const std::string text = describe_policy(model, result.policy);
  EXPECT_NE(text.find("base"), std::string::npos);
  EXPECT_NE(text.find("(0,1,0,1|r=0)"), std::string::npos);
}

}  // namespace
