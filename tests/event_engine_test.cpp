#include "sim/event_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using bvc::sim::EngineStats;
using bvc::sim::EventEngine;
using bvc::robust::RunControl;
using bvc::robust::RunStatus;

using IntEngine = EventEngine<int>;

std::vector<int> drain_order(IntEngine& engine) {
  std::vector<int> order;
  const RunStatus status = engine.drain(
      RunControl{}, [&](const IntEngine::Event& e) { order.push_back(e.payload); });
  EXPECT_EQ(status, RunStatus::kConverged);
  return order;
}

TEST(EventEngine, DispatchesInTimeOrder) {
  IntEngine engine;
  engine.schedule(3.0, 0, 3);
  engine.schedule(1.0, 0, 1);
  engine.schedule(2.0, 0, 2);
  EXPECT_EQ(drain_order(engine), (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(EventEngine, KlassBreaksTimeTies) {
  // A find (klass 0) scheduled after a delivery (klass 1) at the same
  // instant still dispatches first — the legacy `next_find <= top.time`
  // rule.
  IntEngine engine;
  engine.schedule(5.0, 1, 10);
  engine.schedule(5.0, 0, 20);
  EXPECT_EQ(drain_order(engine), (std::vector<int>{20, 10}));
}

TEST(EventEngine, SeqBreaksRemainingTies) {
  IntEngine engine;
  for (int i = 0; i < 16; ++i) {
    engine.schedule(1.0, 1, i);
  }
  std::vector<int> expected;
  for (int i = 0; i < 16; ++i) {
    expected.push_back(i);
  }
  EXPECT_EQ(drain_order(engine), expected);
}

TEST(EventEngine, HandlerMaySchedule) {
  IntEngine engine;
  engine.schedule(0.0, 0, 0);
  std::vector<int> order;
  const RunStatus status =
      engine.drain(RunControl{}, [&](const IntEngine::Event& e) {
        order.push_back(e.payload);
        if (e.payload < 4) {
          engine.schedule(engine.now() + 1.0, 0, e.payload + 1);
        }
      });
  EXPECT_EQ(status, RunStatus::kConverged);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(engine.now(), 4.0);
}

TEST(EventEngine, BudgetStopsBeforeNextEvent) {
  IntEngine engine;
  for (int i = 0; i < 10; ++i) {
    engine.schedule(static_cast<double>(i), 0, i);
  }
  RunControl control;
  control.budget.max_ticks = 4;
  std::vector<int> order;
  const RunStatus status = engine.drain(
      control, [&](const IntEngine::Event& e) { order.push_back(e.payload); });
  EXPECT_EQ(status, RunStatus::kBudgetExhausted);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  // The clock stays at the last *processed* event, not the stopped one.
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  EXPECT_EQ(engine.queue_depth(), 6u);
}

TEST(EventEngine, StatsTrackQueueAndHorizon) {
  IntEngine engine;
  engine.schedule(1.0, 0, 1);
  engine.schedule(9.0, 0, 2);
  engine.schedule(4.0, 0, 3);
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.scheduled, 3u);
  EXPECT_EQ(stats.peak_queue_depth, 3u);
  EXPECT_DOUBLE_EQ(stats.horizon, 9.0);
  (void)drain_order(engine);
  EXPECT_EQ(stats.dispatched, 3u);
  EXPECT_EQ(stats.ticks, 3);
}

TEST(EventEngine, DeterministicAcrossRuns) {
  // A drain is a pure function of the schedule calls: two engines fed the
  // same schedule produce identical dispatch sequences.
  const auto run = [] {
    EventEngine<std::string> engine;
    engine.schedule(2.0, 1, "d1");
    engine.schedule(2.0, 0, "f");
    engine.schedule(1.0, 1, "early");
    engine.schedule(2.0, 1, "d2");
    std::vector<std::string> order;
    (void)engine.drain(RunControl{},
                       [&](const EventEngine<std::string>::Event& e) {
                         order.push_back(e.payload);
                       });
    return order;
  };
  EXPECT_EQ(run(), run());
  EXPECT_EQ(run(), (std::vector<std::string>{"early", "f", "d1", "d2"}));
}

}  // namespace
