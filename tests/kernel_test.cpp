// The vectorized backup kernel layer (mdp/kernel.hpp): dispatch
// vocabulary, bit-identical scalar/AVX2/AVX-512 equivalence (including
// remainder lanes, odd outcome widths, and the damped-prob variant),
// solver-level bit-identity of the kernel Jacobi path against the scalar
// Jacobi path, cross-cell warm starts (fixed point unchanged, counters
// accurate), and the NUMA placement helpers' smoke behaviour.
//
// Vector-ISA cases GTEST_SKIP when the build or CPU lacks the ISA, so the
// suite is green (not red) on machines without AVX2/AVX-512.
#include "mdp/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "bu/attack_analysis.hpp"
#include "bu/attack_model.hpp"
#include "mdp/average_reward.hpp"
#include "mdp/batch.hpp"
#include "mdp/compiled_model.hpp"
#include "mdp/model.hpp"
#include "mdp/ratio.hpp"
#include "mdp/solver_config.hpp"
#include "util/aligned.hpp"
#include "util/numa.hpp"

namespace {

using namespace bvc;
using mdp::kernel::Isa;
using mdp::kernel::Request;

/// Restores the process-wide kernel request on scope exit so one test's
/// set_requested never leaks into another (or into other suites).
class ScopedKernelRequest {
 public:
  explicit ScopedKernelRequest(Request request)
      : previous_(mdp::kernel::requested()) {
    mdp::kernel::set_requested(request);
  }
  ~ScopedKernelRequest() { mdp::kernel::set_requested(previous_); }
  ScopedKernelRequest(const ScopedKernelRequest&) = delete;
  ScopedKernelRequest& operator=(const ScopedKernelRequest&) = delete;

 private:
  Request previous_;
};

/// A deterministic model with deliberately ragged action widths (1..5
/// outcomes) and a state-action count chosen to exercise both full vector
/// blocks and the scalar remainder for 4- and 8-lane kernels.
mdp::Model ragged_model(mdp::StateId num_states) {
  mdp::ModelBuilder builder(num_states);
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  const auto next_unit = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(seed >> 11) / 9007199254740992.0;
  };
  for (mdp::StateId s = 0; s < num_states; ++s) {
    const std::size_t actions = 1 + s % 3;
    for (std::size_t a = 0; a < actions; ++a) {
      builder.begin_action(s, static_cast<mdp::ActionLabel>(a));
      const std::size_t width = 1 + (s + a) % 5;
      double remaining = 1.0;
      for (std::size_t j = 0; j < width; ++j) {
        const double p =
            j + 1 == width ? remaining : remaining * (0.2 + 0.6 * next_unit());
        remaining -= p;
        const mdp::StateId next =
            static_cast<mdp::StateId>((s * 7 + a * 3 + j * 5) % num_states);
        builder.add_outcome(next, p, next_unit(), next_unit());
      }
    }
  }
  return builder.build();
}

std::vector<double> ramp_bias(std::size_t num_states) {
  std::vector<double> bias(num_states);
  for (std::size_t s = 0; s < num_states; ++s) {
    bias[s] = 0.25 * static_cast<double>(s) - 3.0;
  }
  return bias;
}

/// Runs scalar and `isa` over the same inputs and demands bit-equality
/// (EXPECT_EQ on doubles is ==, so +0.0 vs -0.0 from ELL padding passes).
void expect_backup_equivalence(const mdp::CompiledModel& compiled, Isa isa,
                               const double* seed, double scale) {
  const std::size_t num_sa = compiled.num_state_actions();
  const std::vector<double> bias = ramp_bias(compiled.num_states());
  std::vector<double> q_scalar(num_sa, -1.0);
  std::vector<double> q_vector(num_sa, -2.0);
  mdp::kernel::backup_expected(compiled, seed, scale, bias.data(), 0, num_sa,
                               q_scalar.data(), Isa::kScalar);
  mdp::kernel::backup_expected(compiled, seed, scale, bias.data(), 0, num_sa,
                               q_vector.data(), isa);
  for (std::size_t sa = 0; sa < num_sa; ++sa) {
    EXPECT_EQ(q_scalar[sa], q_vector[sa]) << "sa=" << sa;
  }

  // Split ranges (chunk boundaries at non-lane-multiples): same answer.
  std::vector<double> q_split(num_sa, -3.0);
  const std::size_t cut = num_sa / 3 + 1;
  mdp::kernel::backup_expected(compiled, seed, scale, bias.data(), 0, cut,
                               q_split.data(), isa);
  mdp::kernel::backup_expected(compiled, seed, scale, bias.data(), cut, num_sa,
                               q_split.data(), isa);
  for (std::size_t sa = 0; sa < num_sa; ++sa) {
    EXPECT_EQ(q_scalar[sa], q_split[sa]) << "split sa=" << sa;
  }
}

void run_equivalence_suite(Isa isa) {
  if (!mdp::kernel::isa_available(isa)) {
    GTEST_SKIP() << mdp::kernel::to_string(isa)
                 << " not available on this build/CPU";
  }
  // 37 states -> a state-action count that is not a multiple of 4 or 8,
  // so both vector widths exercise their scalar remainder.
  const mdp::Model model = ragged_model(37);
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(model);
  ASSERT_TRUE(compiled.has_ell());
  const std::size_t num_sa = compiled.num_state_actions();

  // Variant A (RVI): no seed, unit scale.
  expect_backup_equivalence(compiled, isa, nullptr, 1.0);
  // Variant B (discounted VI / PI greedy): seeded, scaled.
  std::vector<double> seed(num_sa);
  for (std::size_t sa = 0; sa < num_sa; ++sa) {
    seed[sa] = 0.125 * static_cast<double>(sa % 11) - 0.5;
  }
  expect_backup_equivalence(compiled, isa, seed.data(), 0.95);
  expect_backup_equivalence(compiled, isa, seed.data(), 1.0);
  // Damped variant: scale = compiled tau.
  expect_backup_equivalence(compiled, isa, nullptr, compiled.compiled_tau());

  // Empty range: touches nothing.
  std::vector<double> q(num_sa, 7.0);
  const std::vector<double> bias = ramp_bias(compiled.num_states());
  mdp::kernel::backup_expected(compiled, nullptr, 1.0, bias.data(), 5, 5,
                               q.data(), isa);
  for (const double value : q) {
    EXPECT_EQ(value, 7.0);
  }
}

TEST(Kernel, ParseRequestVocabulary) {
  EXPECT_EQ(mdp::kernel::parse_request("auto"), Request::kAuto);
  EXPECT_EQ(mdp::kernel::parse_request("scalar"), Request::kScalar);
  EXPECT_EQ(mdp::kernel::parse_request("avx2"), Request::kAvx2);
  EXPECT_EQ(mdp::kernel::parse_request("avx512"), Request::kAvx512);
  EXPECT_FALSE(mdp::kernel::parse_request("sse2").has_value());
  EXPECT_FALSE(mdp::kernel::parse_request("").has_value());
  EXPECT_FALSE(mdp::kernel::parse_request("AVX2").has_value());

  EXPECT_EQ(mdp::kernel::to_string(Isa::kScalar), "scalar");
  EXPECT_EQ(mdp::kernel::to_string(Isa::kAvx2), "avx2");
  EXPECT_EQ(mdp::kernel::to_string(Isa::kAvx512), "avx512");
  EXPECT_EQ(mdp::kernel::to_string(Request::kAuto), "auto");
}

TEST(Kernel, ResolveClampsToAvailability) {
  EXPECT_TRUE(mdp::kernel::isa_available(Isa::kScalar));
  EXPECT_EQ(mdp::kernel::resolve(Request::kScalar), Isa::kScalar);

  const Isa best = mdp::kernel::resolve(Request::kAuto);
  EXPECT_TRUE(mdp::kernel::isa_available(best));
  if (mdp::kernel::isa_available(Isa::kAvx512)) {
    // Auto calibrates between the vector ISAs (either is bit-identical);
    // it must still never fall back to scalar when vectors are usable,
    // and an explicit request is honored as given.
    EXPECT_NE(best, Isa::kScalar);
    EXPECT_EQ(mdp::kernel::resolve(Request::kAvx512), Isa::kAvx512);
  } else if (mdp::kernel::isa_available(Isa::kAvx2)) {
    EXPECT_EQ(best, Isa::kAvx2);
    // An unavailable avx512 request degrades to the best available.
    EXPECT_EQ(mdp::kernel::resolve(Request::kAvx512), Isa::kAvx2);
  } else {
    EXPECT_EQ(best, Isa::kScalar);
    EXPECT_EQ(mdp::kernel::resolve(Request::kAvx2), Isa::kScalar);
  }

  // set_requested drives the zero-argument resolve.
  {
    const ScopedKernelRequest scoped(Request::kScalar);
    EXPECT_EQ(mdp::kernel::requested(), Request::kScalar);
    EXPECT_EQ(mdp::kernel::resolve(), Isa::kScalar);
  }
}

TEST(Kernel, Avx2MatchesScalarBitExact) { run_equivalence_suite(Isa::kAvx2); }

TEST(Kernel, Avx512MatchesScalarBitExact) {
  run_equivalence_suite(Isa::kAvx512);
}

TEST(Kernel, DampedScaleMatchesPrecompiledDampedColumn) {
  const mdp::Model model = ragged_model(23);
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(model);
  const double tau = compiled.compiled_tau();
  const std::size_t num_sa = compiled.num_state_actions();
  const std::vector<double> bias = ramp_bias(compiled.num_states());

  // fl(tau * p) is exactly the precompiled damped_prob entry, so the
  // scale=tau kernel must reproduce a sweep over that column bit-for-bit.
  std::vector<double> q(num_sa);
  mdp::kernel::backup_expected(compiled, nullptr, tau, bias.data(), 0, num_sa,
                               q.data(), Isa::kScalar);
  for (std::size_t sa = 0; sa < num_sa; ++sa) {
    double expected = 0.0;
    for (std::size_t k = compiled.outcome_begin(sa);
         k < compiled.outcome_end(sa); ++k) {
      expected += compiled.damped_prob()[k] * bias[compiled.next()[k]];
    }
    EXPECT_EQ(q[sa], expected) << "sa=" << sa;
  }
}

TEST(Kernel, NonEllModelFallsBackToScalar) {
  // One action wider than kMaxEllWidth disables the ELL mirror; vector
  // requests must still produce the scalar answer (silent fallback).
  const mdp::StateId num_states = 40;
  mdp::ModelBuilder builder(num_states);
  for (mdp::StateId s = 0; s < num_states; ++s) {
    builder.begin_action(s, 0);
    const std::size_t width =
        s == 0 ? mdp::CompiledModel::kMaxEllWidth + 4 : 2;
    for (std::size_t j = 0; j < width; ++j) {
      builder.add_outcome(static_cast<mdp::StateId>((s + j + 1) % num_states),
                          1.0 / static_cast<double>(width));
    }
  }
  const mdp::CompiledModel compiled =
      mdp::CompiledModel::compile(builder.build());
  ASSERT_FALSE(compiled.has_ell());

  const std::size_t num_sa = compiled.num_state_actions();
  const std::vector<double> bias = ramp_bias(compiled.num_states());
  std::vector<double> q_scalar(num_sa);
  std::vector<double> q_vector(num_sa);
  mdp::kernel::backup_expected(compiled, nullptr, 1.0, bias.data(), 0, num_sa,
                               q_scalar.data(), Isa::kScalar);
  mdp::kernel::backup_expected(compiled, nullptr, 1.0, bias.data(), 0, num_sa,
                               q_vector.data(), Isa::kAvx2);
  for (std::size_t sa = 0; sa < num_sa; ++sa) {
    EXPECT_EQ(q_scalar[sa], q_vector[sa]);
  }
}

// ---- fused RVI sweep -----------------------------------------------------

/// A deterministic uniform two-action model (the greedy attack-model shape
/// the vector fused sweep specializes for), with three outcomes per action
/// and a state count that is not a multiple of either vector block size.
mdp::Model uniform_two_action_model(mdp::StateId num_states) {
  mdp::ModelBuilder builder(num_states);
  std::uint64_t seed = 0xda942042e4dd58b5ULL;
  const auto next_unit = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(seed >> 11) / 9007199254740992.0;
  };
  for (mdp::StateId s = 0; s < num_states; ++s) {
    for (std::size_t a = 0; a < 2; ++a) {
      builder.begin_action(s, static_cast<mdp::ActionLabel>(a));
      double remaining = 1.0;
      for (std::size_t j = 0; j < 3; ++j) {
        const double p =
            j == 2 ? remaining : remaining * (0.2 + 0.5 * next_unit());
        remaining -= p;
        const mdp::StateId next =
            static_cast<mdp::StateId>((s * 13 + a * 7 + j * 3 + 1) %
                                      num_states);
        builder.add_outcome(next, p, next_unit(), next_unit());
      }
    }
  }
  return builder.build();
}

/// Full-range and split-range fused sweeps under `isa` against the scalar
/// reference: bias, policy, and span must agree bit-for-bit (== on doubles).
void expect_rvi_sweep_equivalence(const mdp::CompiledModel& compiled,
                                  Isa isa) {
  const mdp::StateId n = static_cast<mdp::StateId>(compiled.num_states());
  const std::vector<double> bias = ramp_bias(compiled.num_states());
  const double* rewards = compiled.expected_reward();
  const double tau = 0.875;     // exact dyadic, away from 1
  const double ref = 0.03125;   // exact dyadic reference residual
  const double inf = std::numeric_limits<double>::infinity();

  std::vector<double> out_scalar(n, -7.0);
  std::vector<double> out_vector(n, -8.0);
  std::vector<std::uint32_t> pol_scalar(n, 99u);
  std::vector<std::uint32_t> pol_vector(n, 88u);
  double min_scalar = inf, max_scalar = -inf;
  double min_vector = inf, max_vector = -inf;
  mdp::kernel::rvi_sweep(compiled, rewards, tau, bias.data(), ref, nullptr, 0,
                         n, out_scalar.data(), pol_scalar.data(), &min_scalar,
                         &max_scalar, Isa::kScalar);
  mdp::kernel::rvi_sweep(compiled, rewards, tau, bias.data(), ref, nullptr, 0,
                         n, out_vector.data(), pol_vector.data(), &min_vector,
                         &max_vector, isa);
  for (mdp::StateId s = 0; s < n; ++s) {
    EXPECT_EQ(out_scalar[s], out_vector[s]) << "state=" << s;
    EXPECT_EQ(pol_scalar[s], pol_vector[s]) << "state=" << s;
  }
  EXPECT_EQ(min_scalar, min_vector);
  EXPECT_EQ(max_scalar, max_vector);

  // Split ranges (chunk boundary off any lane multiple) with per-chunk span
  // accumulators, as the parallel solver path issues them.
  std::vector<double> out_split(n, -9.0);
  std::vector<std::uint32_t> pol_split(n, 77u);
  const mdp::StateId cut = n / 3 + 1;
  double min_a = inf, max_a = -inf, min_b = inf, max_b = -inf;
  mdp::kernel::rvi_sweep(compiled, rewards, tau, bias.data(), ref, nullptr, 0,
                         cut, out_split.data(), pol_split.data(), &min_a,
                         &max_a, isa);
  mdp::kernel::rvi_sweep(compiled, rewards, tau, bias.data(), ref, nullptr,
                         cut, n, out_split.data(), pol_split.data(), &min_b,
                         &max_b, isa);
  for (mdp::StateId s = 0; s < n; ++s) {
    EXPECT_EQ(out_scalar[s], out_split[s]) << "split state=" << s;
    EXPECT_EQ(pol_scalar[s], pol_split[s]) << "split state=" << s;
  }
  EXPECT_EQ(min_scalar, std::min(min_a, min_b));
  EXPECT_EQ(max_scalar, std::max(max_a, max_b));
}

void run_rvi_sweep_suite(Isa isa) {
  if (!mdp::kernel::isa_available(isa)) {
    GTEST_SKIP() << mdp::kernel::to_string(isa)
                 << " not available on this build/CPU";
  }
  // The specialized shape: uniform two actions, ELL width 3.
  {
    const mdp::CompiledModel compiled =
        mdp::CompiledModel::compile(uniform_two_action_model(137));
    ASSERT_TRUE(compiled.has_ell());
    ASSERT_EQ(compiled.uniform_actions(), 2u);
    expect_rvi_sweep_equivalence(compiled, isa);
  }
  // Ragged action menus: the dispatcher must fall back to scalar and the
  // answer is (trivially) bit-identical. This guards the gate condition.
  {
    const mdp::CompiledModel compiled =
        mdp::CompiledModel::compile(ragged_model(53));
    ASSERT_NE(compiled.uniform_actions(), 2u);
    expect_rvi_sweep_equivalence(compiled, isa);
  }
  // A real attack model (the production shape, remainder included).
  {
    const bu::AttackParams params = [] {
      bu::AttackParams p;
      p.alpha = 0.3;
      p.beta = 0.25;
      p.gamma = 0.45;
      p.setting = bu::Setting::kNoStickyGate;
      p.ad = 6;
      return p;
    }();
    const bu::AttackModel attack =
        bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
    const mdp::CompiledModel compiled =
        mdp::CompiledModel::compile(attack.model);
    expect_rvi_sweep_equivalence(compiled, isa);
  }
}

TEST(Kernel, RviSweepAvx2MatchesScalarBitExact) {
  run_rvi_sweep_suite(Isa::kAvx2);
}

TEST(Kernel, RviSweepAvx512MatchesScalarBitExact) {
  run_rvi_sweep_suite(Isa::kAvx512);
}

TEST(Kernel, RviSweepMatchesBackupCombineComposition) {
  // The fused sweep is defined as backup_expected (no seed, scale 1)
  // followed by rvi_combine; the composition must agree bit-for-bit, on
  // every ISA, including policy and span side outputs.
  const mdp::CompiledModel compiled =
      mdp::CompiledModel::compile(uniform_two_action_model(61));
  const mdp::StateId n = static_cast<mdp::StateId>(compiled.num_states());
  const std::size_t num_sa = compiled.num_state_actions();
  const std::vector<double> bias = ramp_bias(compiled.num_states());
  const double* rewards = compiled.expected_reward();
  const double tau = 0.96875;
  const double ref = -1.5;
  const double inf = std::numeric_limits<double>::infinity();

  std::vector<double> q_all(num_sa);
  mdp::kernel::backup_expected(compiled, nullptr, 1.0, bias.data(), 0, num_sa,
                               q_all.data(), Isa::kScalar);
  std::vector<double> out_split(n);
  std::vector<std::uint32_t> pol_split(n);
  double min_split = inf, max_split = -inf;
  mdp::kernel::rvi_combine(compiled, rewards, tau, bias.data(), q_all.data(),
                           ref, nullptr, 0, n, out_split.data(),
                           pol_split.data(), &min_split, &max_split,
                           Isa::kScalar);

  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (!mdp::kernel::isa_available(isa)) {
      continue;
    }
    std::vector<double> out_fused(n, -4.0);
    std::vector<std::uint32_t> pol_fused(n, 55u);
    double min_fused = inf, max_fused = -inf;
    mdp::kernel::rvi_sweep(compiled, rewards, tau, bias.data(), ref, nullptr,
                           0, n, out_fused.data(), pol_fused.data(),
                           &min_fused, &max_fused, isa);
    for (mdp::StateId s = 0; s < n; ++s) {
      EXPECT_EQ(out_split[s], out_fused[s])
          << mdp::kernel::to_string(isa) << " state=" << s;
      EXPECT_EQ(pol_split[s], pol_fused[s])
          << mdp::kernel::to_string(isa) << " state=" << s;
    }
    EXPECT_EQ(min_split, min_fused) << mdp::kernel::to_string(isa);
    EXPECT_EQ(max_split, max_fused) << mdp::kernel::to_string(isa);
  }
}

TEST(Kernel, RviSweepRestrictPolicyEvaluatesFixedActions) {
  // restrict_policy pins each state to one action (policy evaluation).
  // Vector requests take the scalar path (the gate requires greedy), and
  // the pinned action is echoed in policy_out.
  const mdp::CompiledModel compiled =
      mdp::CompiledModel::compile(uniform_two_action_model(45));
  const mdp::StateId n = static_cast<mdp::StateId>(compiled.num_states());
  const std::vector<double> bias = ramp_bias(compiled.num_states());
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::uint32_t> restrict_policy(n);
  for (mdp::StateId s = 0; s < n; ++s) {
    restrict_policy[s] = s % 2;
  }

  std::vector<double> out_scalar(n), out_vector(n);
  std::vector<std::uint32_t> pol_scalar(n), pol_vector(n);
  double min_s = inf, max_s = -inf, min_v = inf, max_v = -inf;
  mdp::kernel::rvi_sweep(compiled, compiled.expected_reward(), 0.875,
                         bias.data(), 0.0, restrict_policy.data(), 0, n,
                         out_scalar.data(), pol_scalar.data(), &min_s, &max_s,
                         Isa::kScalar);
  const Isa best = mdp::kernel::resolve(Request::kAuto);
  mdp::kernel::rvi_sweep(compiled, compiled.expected_reward(), 0.875,
                         bias.data(), 0.0, restrict_policy.data(), 0, n,
                         out_vector.data(), pol_vector.data(), &min_v, &max_v,
                         best);
  for (mdp::StateId s = 0; s < n; ++s) {
    EXPECT_EQ(pol_scalar[s], restrict_policy[s]) << "state=" << s;
    EXPECT_EQ(out_scalar[s], out_vector[s]) << "state=" << s;
    EXPECT_EQ(pol_scalar[s], pol_vector[s]) << "state=" << s;
  }
  EXPECT_EQ(min_s, min_v);
  EXPECT_EQ(max_s, max_v);

  // Pinning to action 1 everywhere must differ from the greedy sweep on
  // this model (otherwise the test would not distinguish the two paths).
  std::vector<double> out_greedy(n);
  double gmin = inf, gmax = -inf;
  mdp::kernel::rvi_sweep(compiled, compiled.expected_reward(), 0.875,
                         bias.data(), 0.0, nullptr, 0, n, out_greedy.data(),
                         nullptr, &gmin, &gmax, Isa::kScalar);
  bool any_difference = false;
  for (mdp::StateId s = 0; s < n && !any_difference; ++s) {
    any_difference = out_greedy[s] != out_scalar[s];
  }
  EXPECT_TRUE(any_difference);
}

// ---- solver-level bit-identity -------------------------------------------

bu::AttackModel small_attack_model() {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.setting = bu::Setting::kNoStickyGate;
  params.ad = 4;  // small grid keeps the test fast
  return bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
}

TEST(Kernel, SolverJacobiBitIdenticalToScalarJacobi) {
  const Isa best = mdp::kernel::resolve(Request::kAuto);
  if (best == Isa::kScalar) {
    GTEST_SKIP() << "no vector ISA available";
  }
  const bu::AttackModel attack = small_attack_model();
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(attack.model);
  ASSERT_TRUE(compiled.has_ell());

  mdp::AverageRewardKnobs knobs;
  knobs.tolerance = 1e-9;

  // Reference: the scalar chunked-Jacobi discipline (threads >= 2).
  mdp::GainResult scalar_jacobi;
  {
    const ScopedKernelRequest scoped(Request::kScalar);
    mdp::AverageRewardKnobs jacobi = knobs;
    jacobi.threads = 2;
    scalar_jacobi = mdp::maximize_average_reward(compiled, jacobi);
  }

  // The kernel path is Jacobi at EVERY thread count, and bit-identical to
  // the scalar Jacobi sweep (same expression tree, lane-per-row).
  for (const int threads : {1, 2, 3}) {
    mdp::AverageRewardKnobs kernel_knobs = knobs;
    kernel_knobs.threads = threads;
    const mdp::GainResult vector_jacobi =
        mdp::maximize_average_reward(compiled, kernel_knobs);
    EXPECT_EQ(scalar_jacobi.gain, vector_jacobi.gain)
        << "threads=" << threads;
    ASSERT_EQ(scalar_jacobi.bias.size(), vector_jacobi.bias.size());
    for (std::size_t s = 0; s < scalar_jacobi.bias.size(); ++s) {
      EXPECT_EQ(scalar_jacobi.bias[s], vector_jacobi.bias[s])
          << "threads=" << threads << " state=" << s;
    }
    EXPECT_EQ(scalar_jacobi.policy, vector_jacobi.policy);
  }
}

// ---- warm starts ---------------------------------------------------------

TEST(WarmStart, SeedNeverMovesTheFixedPoint) {
  const bu::AttackModel attack = small_attack_model();
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(attack.model);

  mdp::RatioKnobs knobs;
  knobs.upper_bound = 1.0;
  mdp::RatioResult cold = mdp::maximize_ratio(compiled, knobs);
  ASSERT_TRUE(cold.converged());
  ASSERT_FALSE(cold.used_warm_start);
  ASSERT_FALSE(cold.final_bias.empty());

  knobs.warm_start_bias = &cold.final_bias;
  const mdp::RatioResult warm = mdp::maximize_ratio(compiled, knobs);
  ASSERT_TRUE(warm.converged());
  EXPECT_TRUE(warm.used_warm_start);
  EXPECT_NEAR(cold.ratio, warm.ratio, 10.0 * knobs.tolerance);
  EXPECT_EQ(cold.policy, warm.policy);
  // Seeding with the converged bias cannot make the solve work harder.
  EXPECT_LE(warm.diagnostics.inner_sweeps, cold.diagnostics.inner_sweeps);
}

TEST(WarmStart, MismatchedSeedSizeIsIgnored) {
  const bu::AttackModel attack = small_attack_model();
  const std::vector<double> wrong_size(3, 1.0);
  mdp::RatioKnobs knobs;
  knobs.warm_start_bias = &wrong_size;
  const mdp::RatioResult result = mdp::maximize_ratio(attack.model, knobs);
  ASSERT_TRUE(result.converged());
  EXPECT_FALSE(result.used_warm_start);
}

TEST(WarmStart, PoolNearestPrefersLowerIndexOnTies) {
  mdp::WarmStartPool pool;
  EXPECT_EQ(pool.nearest(0), nullptr);
  pool.store(2, {2.0});
  pool.store(10, {10.0});
  pool.store(99, {});  // empty biases are ignored
  EXPECT_EQ(pool.size(), 2u);

  EXPECT_EQ(pool.nearest(0)->front(), 2.0);
  EXPECT_EQ(pool.nearest(5)->front(), 2.0);
  EXPECT_EQ(pool.nearest(6)->front(), 2.0);  // tie |6-2| == |10-6|
  EXPECT_EQ(pool.nearest(7)->front(), 10.0);
  EXPECT_EQ(pool.nearest(10)->front(), 10.0);
  EXPECT_EQ(pool.nearest(500)->front(), 10.0);

  pool.store(10, {11.0});  // overwrite
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.nearest(10)->front(), 11.0);
}

TEST(WarmStart, EstimateSweepsSaved) {
  using Obs = std::pair<bool, std::int64_t>;
  const std::vector<Obs> none;
  EXPECT_EQ(mdp::estimate_sweeps_saved(none), 0);

  // mean cold = 15; the warm item at 5 saved ~10; a warm item slower than
  // the cold mean contributes zero (clamped), not a negative.
  const std::vector<Obs> mixed = {{false, 10}, {false, 20}, {true, 5}};
  EXPECT_EQ(mdp::estimate_sweeps_saved(mixed), 10);
  const std::vector<Obs> slow_warm = {{false, 10}, {true, 50}};
  EXPECT_EQ(mdp::estimate_sweeps_saved(slow_warm), 0);
  const std::vector<Obs> all_warm = {{true, 5}, {true, 6}};
  EXPECT_EQ(mdp::estimate_sweeps_saved(all_warm), 0);  // no cold baseline
}

TEST(WarmStart, BatchCountsSeededCellsAtOneThread) {
  // A small alpha sweep: neighboring cells have similar biases. With
  // threads == 1 cells run in index order, so every cell after the first
  // is seeded by a finished neighbor.
  std::vector<bu::AnalysisJob> jobs;
  for (const double alpha : {0.15, 0.20, 0.25}) {
    bu::AttackParams params;
    params.alpha = alpha;
    params.beta = 0.30;
    params.gamma = 1.0 - alpha - 0.30;
    params.setting = bu::Setting::kNoStickyGate;
    params.ad = 4;
    jobs.push_back({params, bu::Utility::kRelativeRevenue});
  }

  mdp::BatchConfig batch;
  batch.threads = 1;
  batch.warm_start = true;
  mdp::BatchReport report;
  const std::vector<bu::AnalysisResult> warm_results =
      bu::analyze_batch(jobs, {}, batch, {}, &report);
  ASSERT_EQ(warm_results.size(), jobs.size());
  for (const bu::AnalysisResult& cell : warm_results) {
    ASSERT_TRUE(cell.converged());
    EXPECT_TRUE(cell.final_bias.empty());  // moved into the pool, kept lean
  }
  EXPECT_FALSE(warm_results[0].used_warm_start);
  EXPECT_TRUE(warm_results[1].used_warm_start);
  EXPECT_TRUE(warm_results[2].used_warm_start);
  EXPECT_EQ(report.items_warm_started, 2u);
  EXPECT_GE(report.sweeps_saved_estimate, 0);

  // The warm values equal the cold values within solver tolerance.
  mdp::BatchConfig cold_batch;
  cold_batch.threads = 1;
  const std::vector<bu::AnalysisResult> cold_results =
      bu::analyze_batch(jobs, {}, cold_batch);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_FALSE(cold_results[i].used_warm_start);
    EXPECT_NEAR(cold_results[i].utility_value, warm_results[i].utility_value,
                1e-4);
  }
}

// ---- NUMA smoke ----------------------------------------------------------

TEST(Numa, SmokeOnAnyTopology) {
  EXPECT_GE(util::numa::node_count(), 1);
  EXPECT_EQ(util::numa::multi_node(), util::numa::node_count() > 1);

  util::AlignedVector<double> buffer;
  util::numa::first_touch_fill(buffer, 1000, 2.5, nullptr, 8);
  ASSERT_EQ(buffer.size(), 1000u);
  for (const double value : buffer) {
    EXPECT_EQ(value, 2.5);
  }
  // Shrink + refill: contents identical regardless of pool/topology.
  util::numa::first_touch_fill(buffer, 10, -1.0, nullptr, 1);
  ASSERT_EQ(buffer.size(), 10u);
  for (const double value : buffer) {
    EXPECT_EQ(value, -1.0);
  }

  // interleave_pages never throws; on single-node machines it reports
  // false (placement is an optimization, not a requirement).
  std::vector<double> pages(4096, 0.0);
  const bool moved =
      util::numa::interleave_pages(pages.data(), pages.size() * 8);
  if (!util::numa::multi_node()) {
    EXPECT_FALSE(moved);
  }
}

}  // namespace
