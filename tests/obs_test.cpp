// Tests of the observability subsystem (src/obs/): metric gating and
// lock-free mutation, registry snapshots and JSON export, span tracing with
// per-thread rings and Chrome trace-event output, and run manifests.
//
// The metrics enable flag and the global tracer are process-wide; every
// test here that flips them restores the disabled state before returning so
// the suite stays order-independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace bvc;

/// Re-disables metrics and tracing on scope exit, whatever the test did.
struct ObsQuiescer {
  ~ObsQuiescer() {
    obs::set_metrics_enabled(false);
    obs::Tracer::global().disable();
  }
};

// ------------------------------------------------------------- metrics ---

TEST(Metrics, MutationsAreIgnoredWhileDisabled) {
  ObsQuiescer quiesce;
  obs::set_metrics_enabled(false);
  ASSERT_FALSE(obs::metrics_enabled());
  obs::Counter counter;
  counter.add(7);
  EXPECT_EQ(counter.value(), 0u);
  obs::Gauge gauge;
  gauge.set(3.5);
  gauge.add(1.0);
  EXPECT_EQ(gauge.value(), 0.0);
  obs::Histogram histogram({1.0, 2.0});
  histogram.observe(0.5);
  EXPECT_EQ(histogram.snapshot().count, 0u);
}

TEST(Metrics, CounterGaugeHistogramRecordWhenEnabled) {
  ObsQuiescer quiesce;
  obs::set_metrics_enabled(true);
  obs::Counter counter;
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);

  obs::Gauge gauge;
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  gauge.add(-1.0);
  EXPECT_EQ(gauge.value(), 1.5);

  obs::Histogram histogram({0.1, 1.0, 10.0});
  histogram.observe(0.05);   // bucket 0
  histogram.observe(0.5);    // bucket 1
  histogram.observe(10.0);   // bucket 2 (bounds are inclusive upper limits)
  histogram.observe(100.0);  // overflow
  const obs::Histogram::Snapshot snap = histogram.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 110.55);
}

TEST(Metrics, RegistryFindsOrCreatesWithStableAddresses) {
  ObsQuiescer quiesce;
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("test.registry.counter");
  obs::Counter& b = registry.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);  // find-or-create: one object per name
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  const std::array<double, 2> bounds{1.0, 2.0};
  obs::Histogram& h1 = registry.histogram("test.registry.hist", bounds);
  // Bounds are consulted only on first registration.
  const std::array<double, 1> other{99.0};
  obs::Histogram& h2 = registry.histogram("test.registry.hist", other);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.snapshot().bounds.size(), 2u);

  registry.gauge("test.registry.gauge").set(1.25);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot.counters.at("test.registry.counter"), 3u);
  EXPECT_EQ(snapshot.gauges.at("test.registry.gauge"), 1.25);
  EXPECT_EQ(snapshot.histograms.at("test.registry.hist").bounds.size(), 2u);

  registry.reset();
  EXPECT_EQ(registry.snapshot().counters.at("test.registry.counter"), 0u);
}

TEST(Metrics, WriteJsonEmitsEverySection) {
  ObsQuiescer quiesce;
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry registry;
  registry.counter("a.counter").add(5);
  registry.gauge("b.gauge").set(0.5);
  const std::array<double, 1> bounds{1.0};
  registry.histogram("c.hist", bounds).observe(0.25);
  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.counter\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"b.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c.hist\""), std::string::npos);
  // Braces balance — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Metrics, ConcurrentCountingLosesNothing) {
  ObsQuiescer quiesce;
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      obs::Counter& counter = registry.counter("test.concurrent.counter");
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(registry.counter("test.concurrent.counter").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------- tracing ---

TEST(Trace, SpanIsFreeWhileDisabled) {
  ObsQuiescer quiesce;
  obs::Tracer::global().disable();
  obs::Tracer::global().reset();
  {
    obs::Span span("obs_test.disabled", "test");
    span.arg("k", std::int64_t{1});
  }
  obs::trace_instant("obs_test.disabled_instant", "test");
  EXPECT_EQ(obs::Tracer::global().recorded_events(), 0u);
}

TEST(Trace, SpansAndInstantsExportAsChromeTraceEvents) {
  ObsQuiescer quiesce;
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.reset();
  tracer.enable();
  {
    obs::Span span("obs_test.span", "test");
    span.arg("states", std::int64_t{12});
    span.arg("rho", 0.25);
    span.arg("status", std::string_view("converged"));
  }
  obs::trace_instant("obs_test.instant", "test", "rho", 0.5);
  tracer.disable();
  ASSERT_EQ(tracer.recorded_events(), 2u);

  std::ostringstream chrome;
  tracer.write_chrome_trace(chrome);
  const std::string json = chrome.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"states\":12"), std::string::npos);
  EXPECT_NE(json.find("\"rho\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"converged\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  // JSONL: exactly one line per recorded event.
  const std::string lines = jsonl.str();
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);

  tracer.reset();
  EXPECT_EQ(tracer.recorded_events(), 0u);
}

TEST(Trace, EachThreadRecordsIntoItsOwnRing) {
  ObsQuiescer quiesce;
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.reset();
  tracer.enable();
  constexpr int kThreads = 3;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::Span span("obs_test.worker", "test");
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  tracer.disable();
  EXPECT_GE(tracer.recorded_events(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  // Exported events from different threads carry different tids.
  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  const std::string text = jsonl.str();
  std::set<std::string> tids;
  for (std::size_t at = text.find("\"tid\":"); at != std::string::npos;
       at = text.find("\"tid\":", at + 1)) {
    tids.insert(text.substr(at + 6, text.find_first_of(",}", at + 6) -
                                        (at + 6)));
  }
  EXPECT_GE(tids.size(), static_cast<std::size_t>(kThreads));
  tracer.reset();
}

TEST(Trace, FullRingDropsAndCountsInsteadOfOverwriting) {
  ObsQuiescer quiesce;
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.reset();
  const std::uint64_t dropped_before = tracer.dropped_events();
  tracer.enable(/*events_per_thread=*/4);
  // A fresh thread gets a fresh 4-slot ring; the 6 overflow spans must be
  // dropped (and counted), never overwrite the 4 recorded ones.
  std::thread burst([] {
    for (int i = 0; i < 10; ++i) {
      obs::Span span("obs_test.burst", "test");
    }
  });
  burst.join();
  tracer.disable();
  EXPECT_EQ(tracer.dropped_events() - dropped_before, 6u);
  // Restore the default ring size for threads created by later tests.
  tracer.enable();
  tracer.disable();
  tracer.reset();
}

// ------------------------------------------------------------ manifest ---

TEST(Manifest, CapturesArgvBuildInfoAndHardware) {
  const char* argv[] = {"/usr/bin/bench_fake", "--threads", "2", "--quick"};
  const obs::RunManifest manifest = obs::make_run_manifest(4, argv);
  EXPECT_EQ(manifest.binary, "/usr/bin/bench_fake");
  ASSERT_EQ(manifest.args.size(), 3u);
  EXPECT_EQ(manifest.args[0], "--threads");
  EXPECT_EQ(manifest.args[2], "--quick");
  EXPECT_FALSE(manifest.git_sha.empty());
  EXPECT_FALSE(manifest.compiler.empty());
  EXPECT_GT(manifest.hardware_threads, 0);
  EXPECT_FALSE(manifest.started_at_utc.empty());
}

TEST(Manifest, JsonEmbedsMetricsSnapshotAndOutputs) {
  ObsQuiescer quiesce;
  obs::set_metrics_enabled(true);
  const char* argv[] = {"bench_fake", "--alpha=0.2"};
  obs::RunManifest manifest = obs::make_run_manifest(2, argv);
  manifest.outputs.emplace_back("csv", "out/table2.csv");
  manifest.elapsed_seconds = 1.5;

  obs::MetricsRegistry registry;
  registry.counter("mdp.cache.hits").add(9);
  std::ostringstream out;
  obs::write_manifest_json(out, manifest, registry.snapshot());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"binary\""), std::string::npos);
  EXPECT_NE(json.find("bench_fake"), std::string::npos);
  EXPECT_NE(json.find("--alpha=0.2"), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"mdp.cache.hits\": 9"), std::string::npos);
  EXPECT_NE(json.find("table2.csv"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// Regression: re-registering a histogram under the same name with
// DIFFERENT bounds must keep the original buckets (stable addresses, no
// silent re-bucketing) and surface the clash as a counter.
TEST(Metrics, HistogramBoundMismatchKeepsOriginalAndCountsConflict) {
  ObsQuiescer quiesce;
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::array<double, 2> bounds{1.0, 2.0};
  obs::Histogram& original =
      registry.histogram("test.obs.bound_mismatch", bounds);
  const std::uint64_t before =
      registry.counter("obs.metrics.histogram_bound_conflicts").value();

  const std::array<double, 3> other{0.5, 1.5, 9.0};
  obs::Histogram& clashed =
      registry.histogram("test.obs.bound_mismatch", other);
  EXPECT_EQ(&original, &clashed);
  ASSERT_EQ(clashed.bounds().size(), 2u);
  EXPECT_EQ(clashed.bounds()[0], 1.0);
  EXPECT_EQ(registry.counter("obs.metrics.histogram_bound_conflicts").value(),
            before + 1);

  // Identical bounds are a plain lookup, not a conflict.
  obs::Histogram& same = registry.histogram("test.obs.bound_mismatch", bounds);
  EXPECT_EQ(&original, &same);
  EXPECT_EQ(registry.counter("obs.metrics.histogram_bound_conflicts").value(),
            before + 1);
  registry.reset();
}

}  // namespace
