#include <gtest/gtest.h>

#include <vector>

#include "counter/dynamic_limit.hpp"
#include "counter/voting_simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc::counter;
using bvc::Rng;

VoteRuleConfig small_config() {
  VoteRuleConfig config;
  config.epoch_length = 100;
  config.adjust_threshold = 0.75;
  config.veto_threshold = 0.10;
  config.activation_delay = 20;
  config.step = 100'000;
  config.initial_limit = 1'000'000;
  config.min_limit = 500'000;
  config.max_limit = 2'000'000;
  return config;
}

/// Feeds one full epoch with the given vote counts (rest abstain).
void feed_epoch(DynamicLimitTracker& tracker, const VoteRuleConfig& config,
                Height increase, Height decrease) {
  for (Height i = 0; i < config.epoch_length; ++i) {
    Vote vote = Vote::kAbstain;
    if (i < increase) {
      vote = Vote::kIncrease;
    } else if (i < increase + decrease) {
      vote = Vote::kDecrease;
    }
    tracker.on_block(vote);
  }
}

TEST(DynamicLimit, StartsAtInitialLimit) {
  DynamicLimitTracker tracker(small_config());
  EXPECT_EQ(tracker.current_limit(), 1'000'000u);
  EXPECT_EQ(tracker.height(), 0u);
}

TEST(DynamicLimit, IncreaseRequiresThreshold) {
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker tracker(config);
  feed_epoch(tracker, config, 74, 0);  // just below 75%
  feed_epoch(tracker, config, 0, 0);
  EXPECT_EQ(tracker.current_limit(), config.initial_limit);
}

TEST(DynamicLimit, IncreaseAppliesAfterActivationDelay) {
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker tracker(config);
  feed_epoch(tracker, config, 80, 0);  // clears the threshold
  // The new limit must NOT apply during the first `activation_delay` blocks
  // of the next epoch.
  for (Height i = 0; i < config.activation_delay; ++i) {
    EXPECT_EQ(tracker.on_block(Vote::kAbstain), config.initial_limit);
  }
  EXPECT_EQ(tracker.on_block(Vote::kAbstain),
            config.initial_limit + config.step);
  ASSERT_EQ(tracker.adjustments().size(), 1u);
  EXPECT_TRUE(tracker.adjustments()[0].increase);
  EXPECT_EQ(tracker.adjustments()[0].effective_height,
            config.epoch_length + config.activation_delay);
}

TEST(DynamicLimit, VetoBlocksIncrease) {
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker tracker(config);
  feed_epoch(tracker, config, 80, 15);  // 15% vote against > 10% veto
  feed_epoch(tracker, config, 0, 0);
  EXPECT_EQ(tracker.current_limit(), config.initial_limit);
}

TEST(DynamicLimit, DecreaseWorksSymmetrically) {
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker tracker(config);
  feed_epoch(tracker, config, 0, 90);
  feed_epoch(tracker, config, 0, 0);
  EXPECT_EQ(tracker.current_limit(), config.initial_limit - config.step);
}

TEST(DynamicLimit, RespectsMaxLimit) {
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker tracker(config);
  for (int epoch = 0; epoch < 30; ++epoch) {
    feed_epoch(tracker, config, 100, 0);
  }
  EXPECT_EQ(tracker.current_limit(), config.max_limit);
}

TEST(DynamicLimit, RespectsMinLimit) {
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker tracker(config);
  for (int epoch = 0; epoch < 30; ++epoch) {
    feed_epoch(tracker, config, 0, 100);
  }
  EXPECT_EQ(tracker.current_limit(), config.min_limit);
}

TEST(DynamicLimit, LimitHistoryIsQueryable) {
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker tracker(config);
  feed_epoch(tracker, config, 80, 0);
  feed_epoch(tracker, config, 0, 0);
  EXPECT_EQ(tracker.limit_at(0), config.initial_limit);
  EXPECT_EQ(tracker.limit_at(config.epoch_length + config.activation_delay),
            config.initial_limit + config.step);
  EXPECT_THROW((void)tracker.limit_at(tracker.height()),
               std::invalid_argument);
}

TEST(DynamicLimit, BvcProperty_TwoNodesAlwaysAgree) {
  // The whole point of the countermeasure: the limit at every height is a
  // pure function of the vote sequence, so two independent replayers can
  // never disagree — a prescribed BVC despite dynamic rules.
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker node_a(config);
  DynamicLimitTracker node_b(config);
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const auto vote = static_cast<Vote>(rng.next_below(3));
    const ByteSize a = node_a.on_block(vote);
    const ByteSize b = node_b.on_block(vote);
    ASSERT_EQ(a, b);
  }
  for (Height h = 0; h < node_a.height(); ++h) {
    ASSERT_EQ(node_a.limit_at(h), node_b.limit_at(h));
  }
}

TEST(DynamicLimit, AdjustmentNeverFiresInsideActivationWindow) {
  const VoteRuleConfig config = small_config();
  DynamicLimitTracker tracker(config);
  Rng rng(123);
  for (int i = 0; i < 20000; ++i) {
    tracker.on_block(static_cast<Vote>(rng.next_below(3) == 0 ? 1 : 0));
  }
  for (const auto& adjustment : tracker.adjustments()) {
    EXPECT_GE(adjustment.effective_height % config.epoch_length,
              config.activation_delay);
  }
}

TEST(DynamicLimit, ValidatesConfig) {
  VoteRuleConfig config = small_config();
  config.adjust_threshold = 0.5;  // must be > 1/2
  EXPECT_THROW(DynamicLimitTracker{config}, std::invalid_argument);
  config = small_config();
  config.activation_delay = config.epoch_length;  // must be inside the epoch
  EXPECT_THROW(DynamicLimitTracker{config}, std::invalid_argument);
  config = small_config();
  config.min_limit = config.max_limit + 1;
  EXPECT_THROW(DynamicLimitTracker{config}, std::invalid_argument);
}

// ------------------------------------------------------ voting simulation --

TEST(VotingSim, UnanimousPreferenceRaisesLimitToTarget) {
  VotingSimConfig config;
  config.rule = small_config();
  config.cohorts = {{1.0, 1'500'000, false}};
  Rng rng(7);
  const VotingSimResult result = run_voting_simulation(config, 12, rng);
  EXPECT_EQ(result.final_limit, 1'500'000u);
  EXPECT_EQ(result.increases, 5u);
  EXPECT_EQ(result.decreases, 0u);
}

TEST(VotingSim, SmallMinorityCannotMoveTheLimit) {
  VotingSimConfig config;
  config.rule = small_config();
  config.cohorts = {{0.3, 2'000'000, false},  // wants bigger blocks
                    {0.7, 1'000'000, false}}; // happy with the status quo
  Rng rng(8);
  const VotingSimResult result = run_voting_simulation(config, 10, rng);
  EXPECT_EQ(result.final_limit, config.rule.initial_limit);
}

TEST(VotingSim, VetoMinorityBlocksSupermajority) {
  // 80% want an increase but 20% actively vote it down: with a 10% veto
  // threshold the limit stays — unlike BU, small miners retain a voice.
  VotingSimConfig config;
  config.rule = small_config();
  config.cohorts = {{0.8, 2'000'000, false}, {0.2, 500'000, false}};
  Rng rng(9);
  const VotingSimResult result = run_voting_simulation(config, 10, rng);
  EXPECT_EQ(result.final_limit, config.rule.initial_limit);
}

TEST(VotingSim, AdversarialCohortCanVetoButNotFork) {
  // A 15% adversary votes against the increase the honest 85% want: above
  // the 10% veto threshold it blocks the raise. Either way the adversary
  // can only bias votes, never split validity. A long epoch keeps the
  // binomial sampling noise far from the thresholds.
  VotingSimConfig config;
  config.rule = small_config();
  config.rule.epoch_length = 2016;
  config.rule.activation_delay = 200;
  config.cohorts = {{0.85, 1'200'000, false}, {0.15, 1'200'000, true}};
  Rng rng(10);
  const VotingSimResult result = run_voting_simulation(config, 10, rng);
  EXPECT_EQ(result.final_limit, config.rule.initial_limit);
  EXPECT_EQ(result.increases + result.decreases, 0u);
}

TEST(VotingSim, RejectsBadCohorts) {
  VotingSimConfig config;
  config.rule = small_config();
  config.cohorts = {{0.5, 1'000'000, false}};  // powers sum to 0.5
  Rng rng(11);
  EXPECT_THROW((void)run_voting_simulation(config, 1, rng),
               std::invalid_argument);
}

}  // namespace
