// Determinism and crash-safety tests for sim::run_replicas: the replica
// fan-out must be bit-identical whatever the thread count, replica count,
// or shard split, and journaled replicas must restore exactly.
#include "sim/replicas.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "robust/checkpoint.hpp"

namespace {

using namespace bvc;
using namespace bvc::sim;

NetworkConfig small_config() {
  NetworkConfig config;
  config.miners.push_back({"a", 0.4, {}, 1 * chain::kMegabyte, 1e6, 0.5});
  config.miners.push_back({"b", 0.35, {}, 4 * chain::kMegabyte, 3e5, 1.5});
  config.miners.push_back({"c", 0.25, {}, 2 * chain::kMegabyte, 5e5, 1.0});
  for (auto& m : config.miners) {
    m.rule.eb = 32 * chain::kMegabyte;
    m.rule.mg = 32 * chain::kMegabyte;
    m.rule.ad = 6;
  }
  return config;
}

ReplicaOptions small_options(int threads) {
  ReplicaOptions options;
  options.replicas = 6;
  options.blocks = 300;
  options.seed = 2024;
  options.batch.threads = threads;
  return options;
}

std::string temp_journal_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SimReplicas, SeedsAreReplicaCountIndependent) {
  // Substream seeds depend only on (base, i); distinct per replica.
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 64; ++i) {
    seen.insert(replica_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_NE(replica_seed(42, 0), replica_seed(43, 0));
}

TEST(SimReplicas, ThreadCountDoesNotChangeResults) {
  const NetworkConfig config = small_config();
  const ReplicaSetResult serial = run_replicas(config, small_options(1));
  const ReplicaSetResult parallel = run_replicas(config, small_options(8));
  ASSERT_EQ(serial.replicas.size(), 6u);
  ASSERT_EQ(parallel.replicas.size(), 6u);
  for (std::size_t i = 0; i < serial.replicas.size(); ++i) {
    EXPECT_EQ(serial.replicas[i], parallel.replicas[i]) << "replica " << i;
  }
  EXPECT_EQ(serial.orphan_rate.mean, parallel.orphan_rate.mean);
  EXPECT_EQ(serial.orphan_rate.stddev, parallel.orphan_rate.stddev);
  EXPECT_EQ(serial.duration.mean, parallel.duration.mean);
  EXPECT_EQ(serial.canonical_length.mean, parallel.canonical_length.mean);
}

TEST(SimReplicas, AddingReplicasPreservesPrefix) {
  const NetworkConfig config = small_config();
  ReplicaOptions few = small_options(2);
  few.replicas = 3;
  ReplicaOptions many = small_options(2);
  many.replicas = 6;
  const ReplicaSetResult a = run_replicas(config, few);
  const ReplicaSetResult b = run_replicas(config, many);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.replicas[i], b.replicas[i]) << "replica " << i;
  }
}

TEST(SimReplicas, ShardedUnionMatchesUnsharded) {
  const NetworkConfig config = small_config();
  const ReplicaSetResult whole = run_replicas(config, small_options(2));

  ReplicaOptions even = small_options(2);
  even.include = [](std::size_t i) { return i % 2 == 0; };
  ReplicaOptions odd = small_options(2);
  odd.include = [](std::size_t i) { return i % 2 == 1; };
  const ReplicaSetResult lo = run_replicas(config, even);
  const ReplicaSetResult hi = run_replicas(config, odd);

  for (std::size_t i = 0; i < whole.replicas.size(); ++i) {
    const ReplicaSetResult& shard = (i % 2 == 0) ? lo : hi;
    EXPECT_EQ(shard.replicas[i], whole.replicas[i]) << "replica " << i;
  }
  // Each shard aggregates only its own cells.
  EXPECT_EQ(lo.orphan_rate.count + hi.orphan_rate.count,
            whole.orphan_rate.count);
}

TEST(SimReplicas, RecordRoundTripsThroughJournal) {
  const NetworkConfig config = small_config();
  ReplicaOptions options = small_options(1);
  options.replicas = 2;
  const ReplicaSetResult direct = run_replicas(config, options);

  const std::string key = replica_key(config, options.blocks, options.seed, 1);
  const robust::CheckpointRecord record =
      sim_record(key, direct.replicas[1]);
  NetworkResult restored;
  ASSERT_TRUE(sim_restore(record, restored));
  EXPECT_EQ(restored, direct.replicas[1]);

  // Foreign/truncated records degrade to recompute, never to wrong data.
  robust::CheckpointRecord foreign = record;
  foreign.values.clear();
  NetworkResult untouched;
  EXPECT_FALSE(sim_restore(foreign, untouched));
}

TEST(SimReplicas, ResumeFromJournalMatchesFreshRun) {
  const NetworkConfig config = small_config();
  const std::string path = temp_journal_path("bvc_sim_replicas_test.jsonl");
  std::filesystem::remove(path);

  const ReplicaSetResult fresh = run_replicas(config, small_options(2));
  {
    // First pass journals only the even replicas.
    robust::CheckpointJournal journal(path);
    ReplicaOptions options = small_options(2);
    options.journal = &journal;
    options.include = [](std::size_t i) { return i % 2 == 0; };
    (void)run_replicas(config, options);
    ASSERT_TRUE(journal.flush());
  }
  {
    // Second pass resumes: journaled replicas restore, the rest compute.
    robust::CheckpointJournal journal(path);
    ASSERT_GT(journal.load(), 0u);
    ReplicaOptions options = small_options(2);
    options.journal = &journal;
    const ReplicaSetResult resumed = run_replicas(config, options);
    ASSERT_EQ(resumed.replicas.size(), fresh.replicas.size());
    for (std::size_t i = 0; i < fresh.replicas.size(); ++i) {
      EXPECT_EQ(resumed.replicas[i], fresh.replicas[i]) << "replica " << i;
    }
    EXPECT_GT(resumed.report.items_resumed, 0u);
    EXPECT_EQ(resumed.orphan_rate.mean, fresh.orphan_rate.mean);
  }
  std::filesystem::remove(path);
}

TEST(SimReplicas, KeysDependOnEveryInput) {
  const NetworkConfig config = small_config();
  const std::string base = replica_key(config, 300, 2024, 0);
  EXPECT_NE(base, replica_key(config, 300, 2024, 1));
  EXPECT_NE(base, replica_key(config, 301, 2024, 0));
  EXPECT_NE(base, replica_key(config, 300, 2025, 0));
  NetworkConfig other = small_config();
  other.miners[0].power = 0.41;
  other.miners[1].power = 0.34;
  EXPECT_NE(base, replica_key(other, 300, 2024, 0));
}

TEST(SimReplicas, SummarizeComputesSpread) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  const SummaryStat stat = summarize(values);
  EXPECT_EQ(stat.count, 4u);
  EXPECT_DOUBLE_EQ(stat.mean, 2.5);
  EXPECT_NEAR(stat.stddev, 1.2909944487358056, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min, 1.0);
  EXPECT_DOUBLE_EQ(stat.max, 4.0);
  const SummaryStat one = summarize(std::span<const double>(values, 1));
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(SimReplicas, BudgetStopsAreNotAggregated) {
  const NetworkConfig config = small_config();
  ReplicaOptions options = small_options(1);
  // The batch budget counts items started: only 3 of the 6 replicas run.
  options.batch.control.budget.max_ticks = 3;
  const ReplicaSetResult result = run_replicas(config, options);
  EXPECT_NE(result.report.status, robust::RunStatus::kConverged);
  EXPECT_EQ(result.report.items_skipped, 3u);
  // Skipped replicas are excluded from the summary statistics.
  EXPECT_EQ(result.orphan_rate.count, 3u);
}

}  // namespace
