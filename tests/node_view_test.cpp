// BuNodeView (incremental, memoized evaluation) must agree with the
// reference whole-chain evaluator chain::BuNodeRule on every block of
// randomly grown trees, for random parameters — including sticky-gate and
// no-gate modes, small ADs (instant acceptance) and short gate periods.
#include <gtest/gtest.h>

#include "chain/block_tree.hpp"
#include "chain/bu_validity.hpp"
#include "sim/node_view.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using namespace bvc::chain;

constexpr ByteSize kMB = kMegabyte;

class NodeViewProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NodeViewProperties, MatchesReferenceEvaluatorOnRandomTrees) {
  Rng rng(GetParam());
  BuParams params;
  const ByteSize ebs[] = {kMB, 2 * kMB, 8 * kMB};
  params.eb = ebs[rng.next_below(3)];
  params.ad = 1 + static_cast<Height>(rng.next_below(5));
  params.gate_period = 2 + static_cast<Height>(rng.next_below(8));
  params.sticky_gate = rng.next_bernoulli(0.7);

  BlockTree tree;
  const BuNodeRule reference(params);
  sim::BuNodeView view(tree, params);

  const ByteSize sizes[] = {kMB / 2, kMB,     2 * kMB,
                            8 * kMB, 20 * kMB, kMessageLimit + 1};
  for (int i = 0; i < 200; ++i) {
    const auto parent = static_cast<BlockId>(rng.next_below(tree.size()));
    const BlockId id =
        tree.add_block(parent, sizes[rng.next_below(6)], 0);
    view.learn(id);

    const ChainStatus status = reference.evaluate(tree, id);
    EXPECT_EQ(view.acceptable(id),
              status.verdict == ChainVerdict::kAcceptable)
        << "block " << id << " seed " << GetParam();
  }

  // The tip is the deepest acceptable block (first-seen on ties).
  const BlockId tip = view.tip();
  EXPECT_TRUE(reference.chain_acceptable(tree, tip));
  for (BlockId id = 0; id < tree.size(); ++id) {
    if (reference.chain_acceptable(tree, id)) {
      EXPECT_LE(tree.block(id).height, tree.block(tip).height);
    }
  }
}

TEST_P(NodeViewProperties, OutOfOrderLearningIsRejected) {
  Rng rng(GetParam() ^ 0xDEAD);
  BlockTree tree;
  BuParams params;
  sim::BuNodeView view(tree, params);
  const BlockId a = tree.add_block(tree.genesis(), kMB, 0);
  const BlockId b = tree.add_block(a, kMB, 0);
  EXPECT_THROW((void)view.learn(b), InternalError);
  (void)rng;
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, NodeViewProperties,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{25}));

TEST(NodeView, TracksTipChanges) {
  BlockTree tree;
  BuParams params;
  params.eb = kMB;
  params.ad = 3;
  sim::BuNodeView view(tree, params);

  const BlockId a = tree.add_block(tree.genesis(), kMB, 0);
  EXPECT_TRUE(view.learn(a));
  EXPECT_EQ(view.tip(), a);

  // An excessive block pends: the tip stays.
  const BlockId big = tree.add_block(a, 2 * kMB, 0);
  EXPECT_FALSE(view.learn(big));
  EXPECT_EQ(view.tip(), a);

  // Two blocks on top resolve it: the tip jumps to the deepest block.
  const BlockId c = tree.add_block(big, kMB, 0);
  EXPECT_FALSE(view.learn(c));
  const BlockId d = tree.add_block(c, kMB, 0);
  EXPECT_TRUE(view.learn(d));
  EXPECT_EQ(view.tip(), d);
}

TEST(NodeView, FirstSeenWinsTies) {
  BlockTree tree;
  BuParams params;
  sim::BuNodeView view(tree, params);
  const BlockId first = tree.add_block(tree.genesis(), kMB, 0);
  const BlockId second = tree.add_block(tree.genesis(), kMB, 1);
  EXPECT_TRUE(view.learn(first));
  EXPECT_FALSE(view.learn(second));
  EXPECT_EQ(view.tip(), first);
}

TEST(NodeView, LearnIsIdempotent) {
  BlockTree tree;
  sim::BuNodeView view(tree, BuParams{});
  const BlockId a = tree.add_block(tree.genesis(), kMB, 0);
  EXPECT_TRUE(view.learn(a));
  EXPECT_FALSE(view.learn(a));
}

}  // namespace
