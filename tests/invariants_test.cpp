// Randomized cross-module invariants: properties that must hold for any
// parameters, exercised over random configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "bu/attack_analysis.hpp"
#include "counter/dynamic_limit.hpp"
#include "sim/attack_scenario.hpp"
#include "sim/network_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;

class RandomInvariants : public ::testing::TestWithParam<std::uint64_t> {};

bu::AttackParams random_attack_params(Rng& rng) {
  bu::AttackParams params;
  params.alpha = 0.02 + 0.4 * rng.next_double();
  const double rest = 1.0 - params.alpha;
  const double split = 0.15 + 0.7 * rng.next_double();
  params.beta = rest * split;
  params.gamma = rest - params.beta;
  params.ad = 2 + static_cast<unsigned>(rng.next_below(5));
  params.gate_period = 4 + static_cast<unsigned>(rng.next_below(12));
  params.setting = rng.next_bernoulli(0.5) ? bu::Setting::kStickyGate
                                           : bu::Setting::kNoStickyGate;
  if (rng.next_bernoulli(0.3)) {
    params.ad_carol = 2 + static_cast<unsigned>(rng.next_below(5));
  }
  return params;
}

TEST_P(RandomInvariants, ProfitUtilitiesNeverFallBelowHonest) {
  // "Always OnChain1" is in the strategy space, so the optimum dominates
  // honest mining for u1/u2 and zero for u3, at any parameters.
  Rng rng(GetParam());
  const bu::AttackParams params = random_attack_params(rng);
  const double u1 =
      bu::analyze(params, bu::Utility::kRelativeRevenue).utility_value;
  EXPECT_GE(u1, params.alpha - 1e-4);
  EXPECT_LE(u1, 1.0 + 1e-6);
  const double u3 = bu::analyze(params, bu::Utility::kOrphaning)
                        .utility_value;
  EXPECT_GE(u3, -1e-9);
}

TEST_P(RandomInvariants, RandomPolicyRolloutsConserveBlocks) {
  // Over any policy and any parameters, every mined block is eventually
  // locked or orphaned (up to the in-flight fork at the horizon).
  Rng rng(GetParam() ^ 0xB10C);
  const bu::AttackParams params = random_attack_params(rng);
  const bu::AttackModel model =
      bu::build_attack_model(params, bu::Utility::kAbsoluteReward);
  mdp::Policy policy;
  policy.action.resize(model.space.size());
  for (mdp::StateId id = 0; id < model.space.size(); ++id) {
    policy.action[id] = static_cast<std::uint32_t>(
        rng.next_below(model.model.num_actions(id)));
  }
  const std::uint64_t steps = 20'000;
  const bu::RolloutResult rollout =
      bu::rollout_policy(model, policy, steps, rng);
  const double settled = rollout.totals.total_locked() +
                         rollout.totals.total_orphaned();
  // The in-flight fork holds at most l1 + l2 < 2 * max_ad blocks.
  EXPECT_NEAR(settled, static_cast<double>(steps),
              2.0 * params.max_ad());
}

TEST_P(RandomInvariants, ScenarioSimMatchesModelForRandomConfigs) {
  // The chain-semantics cross-check, on random parameters and a random
  // policy (not just the optimal one).
  Rng rng(GetParam() ^ 0x51D);
  bu::AttackParams params = random_attack_params(rng);
  params.ad = 2 + static_cast<unsigned>(rng.next_below(3));
  params.gate_period = 4 + static_cast<unsigned>(rng.next_below(6));
  const bu::AttackModel model =
      bu::build_attack_model(params, bu::Utility::kOrphaning);
  mdp::Policy policy;
  policy.action.resize(model.space.size());
  for (mdp::StateId id = 0; id < model.space.size(); ++id) {
    policy.action[id] = static_cast<std::uint32_t>(
        rng.next_below(model.model.num_actions(id)));
  }
  sim::ScenarioOptions options;
  options.check_against_model = true;  // throws on any divergence
  sim::AttackScenarioSim simulator(model, options);
  const sim::ScenarioResult result = simulator.run(policy, 10'000, rng);
  EXPECT_EQ(result.steps, 10'000u);
}

TEST_P(RandomInvariants, NetworkSimConservation) {
  Rng rng(GetParam() ^ 0x7E7);
  sim::NetworkConfig config;
  const std::size_t n = 2 + rng.next_below(4);
  std::vector<double> powers(n);
  double total = 0.0;
  for (double& p : powers) {
    p = 0.1 + rng.next_double();
    total += p;
  }
  for (std::size_t i = 0; i < n; ++i) {
    sim::NetMiner miner;
    miner.name = "m" + std::to_string(i);
    miner.power = powers[i] / total;
    miner.rule.eb = chain::kMegabyte * (1 + rng.next_below(8));
    miner.rule.mg = miner.rule.eb;
    miner.rule.ad = 2 + static_cast<chain::Height>(rng.next_below(6));
    miner.block_size = miner.rule.mg;
    miner.bandwidth = 1e5 + rng.next_double() * 1e7;
    miner.latency = rng.next_double() * 5.0;
    config.miners.push_back(miner);
  }
  sim::NetworkSimulation simulation(config);
  const std::uint64_t blocks = 3000;
  const sim::NetworkResult result = simulation.run(blocks, rng);
  EXPECT_EQ(result.blocks_mined, blocks);
  EXPECT_EQ(result.canonical_length + result.orphaned_blocks, blocks);
  std::uint64_t settled = 0;
  for (std::size_t i = 0; i < n; ++i) {
    settled += result.locked_per_miner[i] + result.orphaned_per_miner[i];
  }
  EXPECT_EQ(settled, blocks);
}

TEST_P(RandomInvariants, DynamicLimitStaysWithinBoundsAndStepSize) {
  Rng rng(GetParam() ^ 0xC0DE);
  counter::VoteRuleConfig config;
  config.epoch_length = 20 + static_cast<counter::Height>(rng.next_below(80));
  config.activation_delay =
      static_cast<counter::Height>(rng.next_below(config.epoch_length));
  config.adjust_threshold = 0.55 + 0.4 * rng.next_double();
  config.veto_threshold = 0.4 * rng.next_double();
  config.step = 50'000 + rng.next_below(200'000);
  config.initial_limit = 1'000'000;
  config.min_limit = 500'000;
  config.max_limit = 3'000'000;

  counter::DynamicLimitTracker tracker(config);
  counter::ByteSize previous = tracker.current_limit();
  for (int i = 0; i < 20'000; ++i) {
    const auto vote = static_cast<counter::Vote>(rng.next_below(3));
    const counter::ByteSize limit = tracker.on_block(vote);
    EXPECT_GE(limit, config.min_limit);
    EXPECT_LE(limit, config.max_limit);
    // The limit moves by at most one step at a time.
    EXPECT_LE(limit > previous ? limit - previous : previous - limit,
              config.step);
    previous = limit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInvariants,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{13}));

}  // namespace
