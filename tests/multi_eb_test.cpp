#include <gtest/gtest.h>

#include <vector>

#include "bu/multi_eb.hpp"

namespace {

using namespace bvc;
using namespace bvc::bu;
using chain::kMegabyte;

std::vector<EbGroup> three_groups(double alpha) {
  const double rest = 1.0 - alpha;
  return {{rest * 0.4, 1 * kMegabyte},
          {rest * 0.3, 8 * kMegabyte},
          {rest * 0.3, 16 * kMegabyte}};
}

TEST(MultiEb, NormalizeValidates) {
  EXPECT_THROW(
      (void)normalize_groups(0.2, std::vector<EbGroup>{{0.8, kMegabyte}}),
      std::invalid_argument);
  // EBs must increase.
  const std::vector<EbGroup> unsorted = {{0.4, 8 * kMegabyte},
                                         {0.4, 1 * kMegabyte}};
  EXPECT_THROW((void)normalize_groups(0.2, unsorted), std::invalid_argument);
  // Powers must sum to 1 - alpha.
  const std::vector<EbGroup> short_sum = {{0.3, kMegabyte},
                                          {0.3, 8 * kMegabyte}};
  EXPECT_THROW((void)normalize_groups(0.2, short_sum),
               std::invalid_argument);
}

TEST(MultiEb, TwoGroupsReduceToTheBaseModel) {
  const double alpha = 0.25;
  const std::vector<EbGroup> groups = {{0.375, kMegabyte},
                                       {0.375, 8 * kMegabyte}};
  const SplitChoice split =
      best_split(alpha, groups, Utility::kRelativeRevenue);
  EXPECT_EQ(split.d, 1u);
  EXPECT_EQ(split.trigger, 8 * kMegabyte);
  // Table 2: 26.24% for 25% / 1:1.
  EXPECT_NEAR(split.analysis.utility_value, 0.2624, 5e-4);
}

TEST(MultiEb, EnumeratesEverySplit) {
  const auto splits = evaluate_splits(0.2, three_groups(0.2),
                                      Utility::kRelativeRevenue);
  ASSERT_EQ(splits.size(), 2u);
  EXPECT_EQ(splits[0].d, 1u);
  EXPECT_EQ(splits[0].trigger, 8 * kMegabyte);
  EXPECT_NEAR(splits[0].params.beta, 0.8 * 0.4, 1e-12);
  EXPECT_EQ(splits[1].d, 2u);
  EXPECT_EQ(splits[1].trigger, 16 * kMegabyte);
  EXPECT_NEAR(splits[1].params.beta, 0.8 * 0.7, 1e-12);
}

TEST(MultiEb, BestSplitIsTheMaximum) {
  const auto splits = evaluate_splits(0.2, three_groups(0.2),
                                      Utility::kOrphaning);
  const SplitChoice best =
      best_split(0.2, three_groups(0.2), Utility::kOrphaning);
  for (const SplitChoice& split : splits) {
    EXPECT_GE(best.analysis.utility_value + 1e-9,
              split.analysis.utility_value);
  }
}

TEST(MultiEb, FinerGroupsNeverHurtAlice) {
  // "Having more EBs in the network only gives Alice more options": the
  // best utility over a finer partition is >= the best over any coarsening
  // (merging two adjacent EB groups removes one split point).
  const double alpha = 0.15;
  const double rest = 1.0 - alpha;
  const std::vector<EbGroup> fine = {{rest * 0.3, 1 * kMegabyte},
                                     {rest * 0.3, 4 * kMegabyte},
                                     {rest * 0.4, 16 * kMegabyte}};
  // Coarsen by merging the two low groups (they now share EB = 1 MB) and
  // alternatively the two high groups.
  const std::vector<EbGroup> coarse_low = {{rest * 0.6, 1 * kMegabyte},
                                           {rest * 0.4, 16 * kMegabyte}};
  const std::vector<EbGroup> coarse_high = {{rest * 0.3, 1 * kMegabyte},
                                            {rest * 0.7, 4 * kMegabyte}};
  for (const Utility utility :
       {Utility::kRelativeRevenue, Utility::kAbsoluteReward,
        Utility::kOrphaning}) {
    const double fine_value =
        best_split(alpha, fine, utility).analysis.utility_value;
    EXPECT_GE(fine_value + 1e-6,
              best_split(alpha, coarse_low, utility).analysis.utility_value)
        << to_string(utility);
    EXPECT_GE(fine_value + 1e-6,
              best_split(alpha, coarse_high, utility).analysis.utility_value)
        << to_string(utility);
  }
}

TEST(MultiEb, RealWorldSignalsFromThePaper) {
  // Sect. 2.2: most BU mining power signaled EB = 1 MB while public nodes
  // signaled EB = 16 MB. Model a hypothetical all-BU network with a 60/40
  // split of those signals and a 10% attacker: every utility shows an
  // attack strictly better than honest behaviour.
  const double alpha = 0.10;
  const std::vector<EbGroup> groups = {{0.9 * 0.6, 1 * kMegabyte},
                                       {0.9 * 0.4, 16 * kMegabyte}};
  const SplitChoice u3 = best_split(alpha, groups, Utility::kOrphaning);
  EXPECT_GT(u3.analysis.utility_value, 1.0);  // beats Bitcoin's bound
  const SplitChoice u2 =
      best_split(alpha, groups, Utility::kAbsoluteReward);
  EXPECT_GT(u2.analysis.utility_value, alpha);
}

}  // namespace
