// util::ThreadPool: scheduling, parallel_for coverage and partition
// determinism, exception propagation, and shutdown draining.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bvc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.wait_idle();
}

TEST(ThreadPool, ThreadCountClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t count : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    for (const std::size_t chunks : {std::size_t{1}, std::size_t{3},
                                     std::size_t{16}, std::size_t{2000}}) {
      std::vector<std::atomic<int>> hits(count);
      pool.parallel_for(count, chunks,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) {
                            hits[i].fetch_add(1, std::memory_order_relaxed);
                          }
                        });
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "index " << i << " count " << count << " chunks " << chunks;
      }
    }
  }
}

TEST(ThreadPool, ParallelForZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPartitionDependsOnlyOnCountAndChunks) {
  // The (begin, end) ranges must be a pure function of (count, chunks) —
  // never of the pool's thread count — so chunk-indexed reductions are
  // deterministic across machines.
  const auto partition = [](int threads, std::size_t count,
                            std::size_t chunks) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(
        std::min(chunks == 0 ? std::size_t{1} : chunks, count));
    pool.parallel_for(count, chunks,
                      [&](std::size_t chunk, std::size_t begin,
                          std::size_t end) { ranges[chunk] = {begin, end}; });
    return ranges;
  };
  EXPECT_EQ(partition(1, 103, 8), partition(4, 103, 8));
  EXPECT_EQ(partition(2, 103, 8), partition(8, 103, 8));
  EXPECT_EQ(partition(1, 64, 64), partition(3, 64, 64));
}

TEST(ThreadPool, ParallelForSplitsIntoContiguousBalancedChunks) {
  ThreadPool pool(3);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(4);
  pool.parallel_for(10, 4,
                    [&](std::size_t chunk, std::size_t begin,
                        std::size_t end) { ranges[chunk] = {begin, end}; });
  // 10 over 4 chunks: two chunks of 3 then two of 2, contiguous.
  const std::vector<std::pair<std::size_t, std::size_t>> expected = {
      {0, 3}, {3, 6}, {6, 8}, {8, 10}};
  EXPECT_EQ(ranges, expected);
}

TEST(ThreadPool, ParallelForPropagatesChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 8,
                        [&](std::size_t chunk, std::size_t, std::size_t) {
                          if (chunk == 5) {
                            throw std::runtime_error("chunk 5 failed");
                          }
                        }),
      std::runtime_error);
  // The pool must remain usable after a failed parallel_for.
  std::atomic<int> counter{0};
  pool.parallel_for(10, 4, [&](std::size_t, std::size_t begin,
                               std::size_t end) {
    counter.fetch_add(static_cast<int>(end - begin),
                      std::memory_order_relaxed);
  });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForSumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 1.0);
  std::vector<double> partial(16, 0.0);
  pool.parallel_for(n, 16,
                    [&](std::size_t chunk, std::size_t begin,
                        std::size_t end) {
                      double sum = 0.0;
                      for (std::size_t i = begin; i < end; ++i) {
                        sum += values[i];
                      }
                      partial[chunk] = sum;
                    });
  // Chunk-ordered reduction: deterministic regardless of thread count.
  double total = 0.0;
  for (const double s : partial) {
    total += s;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n + 1) / 2.0);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace bvc::util
