// Tests of the sim-clock timeline (src/sim/timeline.cpp) and its
// NetworkSimulation hook: attaching a recorder must not perturb the run
// (identical results, zero extra RNG draws), relay flights must carry
// positive durations on the simulated clock, and the export must be a
// well-formed Chrome trace with one labeled track per node.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "chain/bu_validity.hpp"
#include "sim/network_sim.hpp"
#include "sim/timeline.hpp"
#include "svc/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using chain::kMegabyte;

sim::NetworkConfig tiny_network() {
  sim::NetworkConfig config;
  for (int i = 0; i < 3; ++i) {
    sim::NetMiner miner;
    miner.name = "m" + std::to_string(i);
    miner.power = i == 0 ? 0.5 : 0.25;
    miner.rule.eb = 8 * kMegabyte;
    miner.rule.mg = 8 * kMegabyte;
    miner.block_size = 4 * kMegabyte;
    miner.bandwidth = 1e6;
    miner.latency = 1.0;
    config.miners.push_back(std::move(miner));
  }
  config.block_interval = 600.0;
  return config;
}

TEST(Timeline, AttachingARecorderDoesNotPerturbTheRun) {
  const sim::NetworkSimulation simulation(tiny_network());
  Rng bare_rng(7);
  const sim::NetworkResult bare = simulation.run(200, bare_rng);

  sim::Timeline timeline;
  Rng recorded_rng(7);
  const sim::NetworkResult recorded =
      simulation.run(200, recorded_rng, {}, &timeline);

  EXPECT_EQ(bare, recorded);
  // Both streams must sit at the same position afterwards (no extra draws).
  EXPECT_EQ(bare_rng.next_double(), recorded_rng.next_double());
  EXPECT_GT(timeline.size(), 0u);
}

TEST(Timeline, RecordsFindsRelaysAcceptsOnEveryNodeTrack) {
  const sim::NetworkSimulation simulation(tiny_network());
  sim::Timeline timeline;
  Rng rng(7);
  const sim::NetworkResult result = simulation.run(100, rng, {}, &timeline);
  ASSERT_EQ(result.blocks_mined, 100u);

  std::ostringstream out;
  timeline.write_chrome_trace(out);
  const std::string text = out.str();
  const std::optional<svc::Json> parsed = svc::Json::parse(text);
  ASSERT_TRUE(parsed.has_value()) << text.substr(0, 200);
  const svc::Json* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int thread_names = 0;
  int finds = 0;
  int relays = 0;
  int accepts = 0;
  for (const svc::Json& event : events->items()) {
    const std::string name = event.string_or("name", "");
    const std::string category = event.string_or("cat", "");
    if (name == "thread_name") {
      ++thread_names;
    } else if (category == "find") {
      ++finds;
    } else if (category == "relay") {
      ++relays;
      // A flight takes latency + size/bandwidth simulated seconds > 0.
      EXPECT_GT(event.number_or("dur", 0.0), 0.0);
    } else if (category == "validation") {
      ++accepts;
    }
  }
  EXPECT_EQ(thread_names, 3);  // one labeled track per node
  EXPECT_EQ(finds, 100);
  // Every block is offered to the other two miners.
  EXPECT_EQ(relays, 200);
  // Every node eventually accepts (nearly) every block.
  EXPECT_GE(accepts, 250);
  EXPECT_NE(text.find("miner m0 @ node-0"), std::string::npos);
}

TEST(Timeline, ValidityForkProducesForkSwitchEvents) {
  // Miners 1 and 2 generate 4 MB blocks that miner 0 (EB 1 MB, AD 2)
  // holds pending: miner 0 forks onto its own small-block branch and —
  // whenever the excessive chain's AD-satisfied prefix outruns it —
  // reorgs onto it. Those reorgs must surface as fork events. (AD 1 would
  // be the degenerate instant-acceptance case with no validity fork.)
  sim::NetworkConfig config = tiny_network();
  config.miners[0].rule.eb = 1 * kMegabyte;
  config.miners[0].rule.ad = 2;
  config.miners[0].block_size = 1 * kMegabyte;
  config.miners[0].rule.mg = 1 * kMegabyte;

  const sim::NetworkSimulation simulation(config);
  sim::Timeline timeline;
  Rng rng(11);
  (void)simulation.run(400, rng, {}, &timeline);

  std::ostringstream out;
  timeline.write_chrome_trace(out);
  const std::optional<svc::Json> parsed = svc::Json::parse(out.str());
  ASSERT_TRUE(parsed.has_value());
  int fork_switches = 0;
  for (const svc::Json& event : parsed->find("traceEvents")->items()) {
    if (event.string_or("cat", "") == "fork") {
      ++fork_switches;
    }
  }
  EXPECT_GT(fork_switches, 0);
}

TEST(Timeline, EmptyRecorderStillWritesValidJson) {
  sim::Timeline timeline;
  std::ostringstream out;
  timeline.write_chrome_trace(out);
  EXPECT_TRUE(svc::Json::parse(out.str()).has_value()) << out.str();
}

}  // namespace
