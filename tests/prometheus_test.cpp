// Tests of the Prometheus text exposition (src/obs/prometheus.cpp): metric
// name sanitization, HELP/TYPE families, cumulative histogram buckets with
// a +Inf bucket equal to _count, and non-finite value tokens.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace {

using namespace bvc;

/// Exposition of a hand-built snapshot, split into lines.
std::vector<std::string> expose(const obs::MetricsSnapshot& snapshot) {
  std::ostringstream out;
  obs::write_prometheus(out, snapshot);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(out.str());
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool contains_line(const std::vector<std::string>& lines,
                   const std::string& needle) {
  for (const std::string& line : lines) {
    if (line == needle) {
      return true;
    }
  }
  return false;
}

TEST(Prometheus, SanitizesMetricNames) {
  EXPECT_EQ(obs::prometheus_metric_name("mdp.cache.hits"), "mdp_cache_hits");
  EXPECT_EQ(obs::prometheus_metric_name("already_fine:name"),
            "already_fine:name");
  EXPECT_EQ(obs::prometheus_metric_name("dash-and space"), "dash_and_space");
  EXPECT_EQ(obs::prometheus_metric_name("9abc"), "_9abc");
  EXPECT_EQ(obs::prometheus_metric_name(""), "_");
}

TEST(Prometheus, CountersAndGaugesGetHelpAndTypeLines) {
  obs::MetricsSnapshot snapshot;
  snapshot.counters["mdp.cache.hits"] = 12;
  snapshot.gauges["svc.jobs.active"] = 3.0;
  const std::vector<std::string> lines = expose(snapshot);

  EXPECT_TRUE(contains_line(lines, "# HELP mdp_cache_hits mdp.cache.hits"));
  EXPECT_TRUE(contains_line(lines, "# TYPE mdp_cache_hits counter"));
  EXPECT_TRUE(contains_line(lines, "mdp_cache_hits 12"));
  EXPECT_TRUE(contains_line(lines, "# TYPE svc_jobs_active gauge"));
  EXPECT_TRUE(contains_line(lines, "svc_jobs_active 3"));
}

TEST(Prometheus, HistogramBucketsAreCumulativeWithInfEqualToCount) {
  obs::MetricsSnapshot snapshot;
  obs::Histogram::Snapshot histogram;
  histogram.bounds = {0.001, 0.01};
  histogram.counts = {2, 3, 4};  // per-bucket, overflow last
  histogram.sum = 0.5;
  histogram.count = 9;
  snapshot.histograms["mdp.solve.seconds"] = histogram;
  const std::vector<std::string> lines = expose(snapshot);

  EXPECT_TRUE(contains_line(lines, "# TYPE mdp_solve_seconds histogram"));
  // Cumulative: 2, then 2+3, then everything.
  EXPECT_TRUE(
      contains_line(lines, "mdp_solve_seconds_bucket{le=\"0.001\"} 2"));
  EXPECT_TRUE(
      contains_line(lines, "mdp_solve_seconds_bucket{le=\"0.01\"} 5"));
  EXPECT_TRUE(
      contains_line(lines, "mdp_solve_seconds_bucket{le=\"+Inf\"} 9"));
  EXPECT_TRUE(contains_line(lines, "mdp_solve_seconds_sum 0.5"));
  EXPECT_TRUE(contains_line(lines, "mdp_solve_seconds_count 9"));
}

TEST(Prometheus, NonFiniteGaugesUseExpositionTokens) {
  obs::MetricsSnapshot snapshot;
  snapshot.gauges["weird.nan"] = std::numeric_limits<double>::quiet_NaN();
  snapshot.gauges["weird.pos"] = std::numeric_limits<double>::infinity();
  snapshot.gauges["weird.neg"] = -std::numeric_limits<double>::infinity();
  const std::vector<std::string> lines = expose(snapshot);
  EXPECT_TRUE(contains_line(lines, "weird_nan NaN"));
  EXPECT_TRUE(contains_line(lines, "weird_pos +Inf"));
  EXPECT_TRUE(contains_line(lines, "weird_neg -Inf"));
}

TEST(Prometheus, LiveRegistrySnapshotExposesEverySection) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry registry;
  registry.counter("a.count").add(5);
  registry.gauge("b.gauge").set(1.5);
  const std::vector<double> bounds{1.0, 2.0};
  registry.histogram("c.hist", bounds).observe(0.5);
  std::ostringstream out;
  obs::write_prometheus(out, registry.snapshot());
  obs::set_metrics_enabled(false);
  const std::string text = out.str();
  EXPECT_NE(text.find("a_count 5"), std::string::npos);
  EXPECT_NE(text.find("b_gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("c_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("c_hist_count 1"), std::string::npos);
  // The exposition ends with a newline (required by the format).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

}  // namespace
