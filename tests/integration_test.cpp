// Cross-module integration tests: the paper's end-to-end claims, exercised
// through more than one subsystem at a time.
#include <gtest/gtest.h>

#include "btc/selfish_mining.hpp"
#include "bu/attack_analysis.hpp"
#include "counter/dynamic_limit.hpp"
#include "sim/attack_scenario.hpp"
#include "sim/fork_simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;

bu::AttackParams make_params(double alpha, double beta, double gamma,
                             bu::Setting setting) {
  bu::AttackParams params;
  params.alpha = alpha;
  params.beta = beta;
  params.gamma = gamma;
  params.setting = setting;
  return params;
}

// ---- Analytical Result 1 across the grid ---------------------------------

TEST(PaperClaims, UnfairnessRequiresAliceAndCarolToOutweighBob) {
  // Sect. 4.2: "Alice only gains unfair rewards when alpha + gamma > beta"
  // — a *necessary* condition (the paper's own 3:2 column shows it is not
  // sufficient: at alpha=25%, 3:2, setting 1, u1 is exactly alpha). Sweep:
  // u1 >= alpha always, and u1 > alpha implies alpha + gamma > beta.
  for (const double alpha : {0.15, 0.2, 0.25}) {
    for (const double beta_share : {0.2, 0.4, 0.5, 0.6, 0.8}) {
      const double rest = 1.0 - alpha;
      const double beta = rest * beta_share;
      const double gamma = rest - beta;
      if (alpha > beta || alpha > gamma) {
        continue;
      }
      const double u1 = bu::max_relative_revenue(
          alpha, beta, gamma, bu::Setting::kNoStickyGate);
      EXPECT_GE(u1, alpha - 1e-4) << "alpha=" << alpha << " beta=" << beta;
      if (u1 > alpha + 1e-4) {
        EXPECT_GT(alpha + gamma, beta)
            << "alpha=" << alpha << " beta=" << beta;
      }
      if (alpha + gamma <= beta + 1e-9) {
        EXPECT_NEAR(u1, alpha, 2e-4)
            << "alpha=" << alpha << " beta=" << beta;
      }
    }
  }
}

TEST(PaperClaims, RelativeRevenueGrowsWithAlpha) {
  double previous = 0.0;
  for (const double alpha : {0.10, 0.15, 0.20, 0.25}) {
    const double rest = (1.0 - alpha) / 2.0;
    const double u1 = bu::max_relative_revenue(alpha, rest, rest,
                                               bu::Setting::kNoStickyGate);
    EXPECT_GT(u1, previous);
    previous = u1;
  }
}

// ---- Analytical Result 2: BU vs Bitcoin double-spending -------------------

TEST(PaperClaims, BuDoubleSpendBeatsBitcoinAtEveryPower) {
  for (const double alpha : {0.01, 0.05, 0.10, 0.25}) {
    const double rest = (1.0 - alpha) / 2.0;
    const double bu_value = bu::max_absolute_reward(
        alpha, rest, rest, bu::Setting::kNoStickyGate);

    btc::SmParams sm;
    sm.alpha = alpha;
    sm.gamma_tie = 1.0;  // most generous to Bitcoin's attacker
    const double btc_value =
        btc::analyze_sm(sm, bu::Utility::kAbsoluteReward).utility_value;

    EXPECT_GT(bu_value, btc_value) << "alpha=" << alpha;
    // And BU beats honest mining even at 1%.
    EXPECT_GT(bu_value, alpha + 1e-3) << "alpha=" << alpha;
  }
}

// ---- Analytical Result 3: orphaning beyond Bitcoin's bound ----------------

TEST(PaperClaims, OrphaningBeatsBitcoinBoundOnMostSplits) {
  std::size_t above_bound = 0;
  const double splits[][2] = {{1, 1}, {2, 3}, {3, 2}, {1, 2}, {2, 1}};
  for (const auto& split : splits) {
    const double rest = 0.99;
    const double beta = rest * split[0] / (split[0] + split[1]);
    const double u3 = bu::max_orphaning(0.01, beta, rest - beta,
                                        bu::Setting::kNoStickyGate);
    above_bound += u3 > 1.0 ? 1 : 0;
  }
  EXPECT_EQ(above_bound, 5u);
}

// ---- Setting interplay -----------------------------------------------------

TEST(PaperClaims, StickyGateRedistributesButKeepsAttackProfitable) {
  // Table 2's setting comparison: for the beta-heavy 3:2 split the gate
  // *helps* Alice (phase 2 flips the orientation in her favor); for the
  // gamma-heavy 2:3 split it hurts. Either way u1 >= alpha.
  const double s1_32 =
      bu::max_relative_revenue(0.25, 0.45, 0.30, bu::Setting::kNoStickyGate);
  const double s2_32 =
      bu::max_relative_revenue(0.25, 0.45, 0.30, bu::Setting::kStickyGate);
  const double s1_23 =
      bu::max_relative_revenue(0.25, 0.30, 0.45, bu::Setting::kNoStickyGate);
  const double s2_23 =
      bu::max_relative_revenue(0.25, 0.30, 0.45, bu::Setting::kStickyGate);
  EXPECT_GT(s2_32, s1_32);
  EXPECT_LT(s2_23, s1_23);
  EXPECT_GE(s2_32, 0.25);
  EXPECT_GE(s2_23, 0.25);
}

// ---- The countermeasure restores Bitcoin-like behaviour --------------------

TEST(Countermeasure, NetworkFollowingVotedLimitNeverForks) {
  // All nodes derive the same limit from the chain (prescribed BVC); miners
  // mine at the limit. Model: every node's EB equals the voted limit at
  // each moment. Since validity is uniform, the fork simulator must observe
  // zero fork episodes — contrast with the heterogeneous-EB runs in
  // sim_test.cpp.
  counter::VoteRuleConfig rule;
  rule.epoch_length = 100;
  rule.activation_delay = 10;
  counter::DynamicLimitTracker tracker(rule);
  Rng vote_rng(3);
  for (int i = 0; i < 1000; ++i) {
    tracker.on_block(static_cast<counter::Vote>(vote_rng.next_below(3)));
  }
  const chain::ByteSize limit = tracker.current_limit();

  sim::ForkSimConfig config;
  for (int i = 0; i < 4; ++i) {
    sim::SimMiner miner;
    miner.name = "node" + std::to_string(i);
    miner.power = 0.25;
    miner.rule.eb = limit;
    miner.rule.mg = limit;
    miner.block_size = limit;
    config.miners.push_back(miner);
  }
  sim::ForkSimulation simulation(config);
  Rng rng(17);
  const sim::ForkSimResult result = simulation.run(10'000, rng);
  EXPECT_EQ(result.fork_episodes, 0u);
  EXPECT_EQ(result.orphaned_blocks, 0u);
}

// ---- Model options stay coherent end to end --------------------------------

TEST(ModelOptions, PaperTextCountdownAlsoCrossValidatesOnItsOwnTerms) {
  // The kPaperText countdown cannot be chain-checked (the chain follows
  // Rizun), but its MDP must still solve and stay within a whisker of the
  // locked-count variant at realistic gate periods.
  bu::AttackParams locked =
      make_params(0.25, 0.30, 0.45, bu::Setting::kStickyGate);
  locked.gate_period = 144;
  bu::AttackParams paper = locked;
  paper.countdown = bu::GateCountdown::kPaperText;
  const double a =
      bu::analyze(locked, bu::Utility::kRelativeRevenue).utility_value;
  const double b =
      bu::analyze(paper, bu::Utility::kRelativeRevenue).utility_value;
  EXPECT_NEAR(a, b, 2e-3);
}

TEST(ModelOptions, WaitNeverHelpsTheProfitDrivenAttacker) {
  // Enabling Wait for u1 must not change the optimum (waiting only gives
  // up hash rate); it exists for the non-profit-driven model.
  bu::AttackParams params =
      make_params(0.2, 0.35, 0.45, bu::Setting::kNoStickyGate);
  const double without =
      bu::analyze(params, bu::Utility::kRelativeRevenue).utility_value;
  params.allow_wait = true;
  const double with_wait =
      bu::analyze(params, bu::Utility::kRelativeRevenue).utility_value;
  EXPECT_NEAR(without, with_wait, 1e-4);
}

}  // namespace
