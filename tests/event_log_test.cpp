// Tests of obs::EventLog: level parsing and gating, JSONL record shape
// (validated with the svc JSON parser), per-subsystem rate limiting, and
// concurrent writers. Every test that reconfigures the global log restores
// the default configuration before returning.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.hpp"
#include "svc/json.hpp"

namespace {

using namespace bvc;

/// Restores the default (stderr, info, default rate limit) configuration
/// on scope exit so the global log never leaks a file sink across tests.
struct LogQuiescer {
  ~LogQuiescer() { (void)obs::EventLog::global().configure({}); }
};

std::string temp_log_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("bvc_event_log_test_") + tag + "_" +
           std::to_string(::getpid()) + ".jsonl"))
      .string();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(EventLog, ParsesLevelsAndRejectsGarbage) {
  EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("warning"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::kError);
  EXPECT_FALSE(obs::parse_log_level("verbose").has_value());
  EXPECT_FALSE(obs::parse_log_level("").has_value());
  EXPECT_EQ(obs::to_string(obs::LogLevel::kWarn), "warn");
}

TEST(EventLog, LevelThresholdGatesRecords) {
  LogQuiescer quiesce;
  const std::string path = temp_log_path("gate");
  obs::LogConfig config;
  config.min_level = obs::LogLevel::kWarn;
  config.path = path;
  ASSERT_TRUE(obs::EventLog::global().configure(config));
  EXPECT_FALSE(obs::EventLog::global().enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(obs::EventLog::global().enabled(obs::LogLevel::kError));

  obs::log_info("test", "below threshold");
  obs::log_debug("test", "far below threshold");
  obs::log_warn("test", "at threshold");
  obs::log_error("test", "above threshold");
  ASSERT_TRUE(obs::EventLog::global().configure({}));  // flush + close

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("at threshold"), std::string::npos);
  EXPECT_NE(lines[1].find("above threshold"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(EventLog, JsonlRecordsParseAndCarryTypedFields) {
  LogQuiescer quiesce;
  const std::string path = temp_log_path("shape");
  obs::LogConfig config;
  config.path = path;
  ASSERT_TRUE(obs::EventLog::global().configure(config));

  obs::log_warn("shape", "all field kinds",
                {{"text", "va\"lue"},
                 {"ratio", 0.25},
                 {"count", std::uint64_t{42}},
                 {"delta", std::int64_t{-7}},
                 {"alive", true}});
  ASSERT_TRUE(obs::EventLog::global().configure({}));

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  const std::optional<svc::Json> record = svc::Json::parse(lines[0]);
  ASSERT_TRUE(record.has_value());
  ASSERT_TRUE(record->is_object());
  EXPECT_EQ(record->string_or("level", ""), "warn");
  EXPECT_EQ(record->string_or("subsystem", ""), "shape");
  EXPECT_EQ(record->string_or("msg", ""), "all field kinds");
  EXPECT_GT(record->number_or("ts_ms", 0.0), 0.0);
  const svc::Json* fields = record->find("fields");
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(fields->string_or("text", ""), "va\"lue");
  EXPECT_EQ(fields->number_or("ratio", 0.0), 0.25);
  EXPECT_EQ(fields->number_or("count", 0.0), 42.0);
  EXPECT_EQ(fields->number_or("delta", 0.0), -7.0);
  std::filesystem::remove(path);
}

TEST(EventLog, NonFiniteDoubleFieldsStayValidJson) {
  LogQuiescer quiesce;
  const std::string path = temp_log_path("nonfinite");
  obs::LogConfig config;
  config.path = path;
  ASSERT_TRUE(obs::EventLog::global().configure(config));
  obs::log_warn("shape", "bad numbers",
                {{"nan", std::numeric_limits<double>::quiet_NaN()},
                 {"inf", std::numeric_limits<double>::infinity()}});
  ASSERT_TRUE(obs::EventLog::global().configure({}));
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(svc::Json::parse(lines[0]).has_value()) << lines[0];
  std::filesystem::remove(path);
}

TEST(EventLog, RateLimiterDropsExcessPerSubsystem) {
  LogQuiescer quiesce;
  const std::string path = temp_log_path("rate");
  obs::LogConfig config;
  config.path = path;
  config.rate_limit_per_sec = 5;
  ASSERT_TRUE(obs::EventLog::global().configure(config));
  const std::uint64_t emitted_before = obs::EventLog::global().emitted();

  for (int i = 0; i < 50; ++i) {
    obs::log_info("noisy", "spam");
  }
  // A different subsystem has its own window.
  obs::log_info("quiet", "one record");

  EXPECT_EQ(obs::EventLog::global().emitted() - emitted_before, 6u);
  EXPECT_EQ(obs::EventLog::global().suppressed(), 45u);
  ASSERT_TRUE(obs::EventLog::global().configure({}));
  std::filesystem::remove(path);
}

TEST(EventLog, ConcurrentWritersNeverCorruptTheSink) {
  LogQuiescer quiesce;
  const std::string path = temp_log_path("threads");
  obs::LogConfig config;
  config.path = path;
  config.rate_limit_per_sec = 0;  // unlimited: every record must land
  ASSERT_TRUE(obs::EventLog::global().configure(config));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::log_info("hammer", "record", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  ASSERT_TRUE(obs::EventLog::global().configure({}));

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (const std::string& line : lines) {
    ASSERT_TRUE(svc::Json::parse(line).has_value()) << line;
  }
  std::filesystem::remove(path);
}

}  // namespace
