// Edge-case suites that cut across modules: degenerate parameters, boundary
// chains, and adversarial vote patterns.
#include <gtest/gtest.h>

#include "bu/attack_analysis.hpp"
#include "chain/bu_validity.hpp"
#include "counter/dynamic_limit.hpp"
#include "games/block_size_game.hpp"
#include "games/eb_choosing.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;

// ------------------------------------------------------------ BU, AD = 1 --

TEST(EdgeCases, AdOneMakesForksUnsustainable) {
  // With AD = 1 an excessive block is accepted on sight: Alice cannot split
  // anyone, so every utility collapses to its honest value.
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.375;
  params.gamma = 0.375;
  params.ad = 1;
  EXPECT_NEAR(bu::analyze(params, bu::Utility::kRelativeRevenue)
                  .utility_value,
              0.25, 1e-4);
  EXPECT_NEAR(bu::analyze(params, bu::Utility::kOrphaning).utility_value,
              0.0, 1e-4);
}

TEST(EdgeCases, AdTwoAlreadyEnablesTheAttack) {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.ad = 2;
  const double u3 = bu::analyze(params, bu::Utility::kOrphaning)
                        .utility_value;
  EXPECT_GT(u3, 0.0);
}

TEST(EdgeCases, TinyGatePeriodDegeneratesToSetting1) {
  // gate_period = 1 with the locked-count convention: the gate closes
  // before any phase-2 fork can begin (r = period - (AD-1) clamps to 0),
  // so setting 2 equals setting 1.
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.gate_period = 1;
  params.setting = bu::Setting::kStickyGate;
  const double s2 =
      bu::analyze(params, bu::Utility::kRelativeRevenue).utility_value;
  params.setting = bu::Setting::kNoStickyGate;
  const double s1 =
      bu::analyze(params, bu::Utility::kRelativeRevenue).utility_value;
  EXPECT_NEAR(s1, s2, 1e-4);
}

TEST(EdgeCases, ExtremePowerAsymmetry) {
  // A 49% Bob against a 2% Carol: Alice (49%) cannot profit from splitting
  // because Chain 2's coalition still loses every race... but u1 must stay
  // well-defined and >= alpha.
  bu::AttackParams params;
  params.alpha = 0.49;
  params.beta = 0.49;
  params.gamma = 0.02;
  const bu::AnalysisResult result =
      bu::analyze(params, bu::Utility::kRelativeRevenue);
  EXPECT_TRUE(result.converged());
  EXPECT_GE(result.utility_value, 0.49 - 1e-4);
}

// ------------------------------------------------------- chain boundaries --

TEST(EdgeCases, ExactMessageLimitBlockIsRelayable) {
  chain::BuParams params;
  params.eb = chain::kMegabyte;
  params.ad = 2;
  const chain::BuNodeRule rule(params);
  chain::BlockTree tree;
  const auto at_limit =
      tree.add_block(tree.genesis(), chain::kMessageLimit, 0);
  // Exactly 32 MB: excessive (pends) but not invalid.
  EXPECT_EQ(rule.evaluate(tree, at_limit).verdict,
            chain::ChainVerdict::kPendingDepth);
  const auto child = tree.add_block(at_limit, chain::kMegabyte, 0);
  EXPECT_EQ(rule.evaluate(tree, child).verdict,
            chain::ChainVerdict::kAcceptable);
}

TEST(EdgeCases, GatePeriodOneClosesImmediately) {
  chain::BuParams params;
  params.eb = chain::kMegabyte;
  params.ad = 2;
  params.gate_period = 1;
  const chain::BuNodeRule rule(params);
  chain::BlockTree tree;
  auto tip = tree.add_block(tree.genesis(), 2 * chain::kMegabyte, 0);
  tip = tree.add_block(tip, chain::kMegabyte, 0);  // depth 2: accepted
  const chain::ChainStatus status = rule.evaluate(tree, tip);
  EXPECT_EQ(status.verdict, chain::ChainVerdict::kAcceptable);
  // One non-excessive block already closed the gate.
  EXPECT_FALSE(status.gate_open);
}

TEST(EdgeCases, DeepTreeEvaluationStaysLinear) {
  // A 5000-block chain with periodic excessive blocks evaluates correctly
  // (regression guard for the gate replay logic at scale).
  chain::BuParams params;
  params.eb = chain::kMegabyte;
  params.ad = 6;
  params.gate_period = 50;
  const chain::BuNodeRule rule(params);
  chain::BlockTree tree;
  chain::BlockId tip = tree.genesis();
  for (int i = 1; i <= 5000; ++i) {
    const chain::ByteSize size =
        i % 100 == 0 ? 2 * chain::kMegabyte : chain::kMegabyte;
    tip = tree.add_block(tip, size, 0);
  }
  // The last excessive block is at height 5000: depth 1 < 6 -> pending.
  EXPECT_EQ(rule.evaluate(tree, tip).verdict,
            chain::ChainVerdict::kPendingDepth);
}

// ----------------------------------------------------------- games edges --

TEST(EdgeCases, EbGameWithManyValuesStillConverges) {
  games::EbChoosingGame game({0.26, 0.25, 0.25, 0.24}, 6);
  Rng rng(5);
  const auto result = game.best_response_dynamics({0, 1, 2, 3}, rng, 500);
  EXPECT_TRUE(result.converged());
  EXPECT_TRUE(game.is_nash_equilibrium(result.profile));
}

TEST(EdgeCases, BlockSizeGameNearTies) {
  // Power sums that sit exactly on the >= half boundary: with
  // m = (0.25, 0.25, 0.5), suffix {2,3}: front 0.25 > 0.5? no -> unstable;
  // suffix {1,2,3}: largest stable subset {3}; front = 0.5 > 0.5 fails
  // (strict) -> unstable; everyone but the whale is squeezed out.
  games::BlockSizeIncreasingGame game(
      {{0.25, 1.0}, {0.25, 2.0}, {0.5, 4.0}});
  EXPECT_EQ(game.termination_suffix(), 2u);
}

// ------------------------------------------------------- counter patterns --

TEST(EdgeCases, AlternatingVoteBlocksEveryAdjustment) {
  counter::VoteRuleConfig config;
  config.epoch_length = 10;
  config.activation_delay = 2;
  counter::DynamicLimitTracker tracker(config);
  for (int i = 0; i < 400; ++i) {
    tracker.on_block(i % 2 == 0 ? counter::Vote::kIncrease
                                : counter::Vote::kDecrease);
  }
  EXPECT_TRUE(tracker.adjustments().empty());
  EXPECT_EQ(tracker.current_limit(), config.initial_limit);
}

TEST(EdgeCases, BackToBackAdjustmentsRespectEpochCadence) {
  counter::VoteRuleConfig config;
  config.epoch_length = 10;
  config.activation_delay = 2;
  counter::DynamicLimitTracker tracker(config);
  for (int i = 0; i < 100; ++i) {
    tracker.on_block(counter::Vote::kIncrease);
  }
  // 10 epochs of unanimous votes: at most one adjustment per epoch, and
  // the first epoch's adjustment lands in epoch 2.
  EXPECT_EQ(tracker.adjustments().size(), 9u);
  for (std::size_t i = 0; i < tracker.adjustments().size(); ++i) {
    EXPECT_EQ(tracker.adjustments()[i].effective_height,
              (i + 1) * config.epoch_length + config.activation_delay);
  }
}

}  // namespace
