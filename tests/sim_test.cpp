// Simulator tests. The headline suite is the MDP <-> chain-semantics
// cross-validation: AttackScenarioSim replays policies on a real block tree
// with per-node BU validity rules and, in check mode, asserts that every
// step produces exactly the state transition and rewards the abstract model
// predicts.
#include <gtest/gtest.h>

#include <tuple>

#include "bu/attack_analysis.hpp"
#include "sim/attack_scenario.hpp"
#include "sim/fork_simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using bu::Action;
using bu::AttackParams;
using bu::Setting;
using bu::Utility;

AttackParams make_params(double alpha, double beta, double gamma,
                         Setting setting, unsigned ad = 6,
                         unsigned gate_period = 144) {
  AttackParams params;
  params.alpha = alpha;
  params.beta = beta;
  params.gamma = gamma;
  params.setting = setting;
  params.ad = ad;
  params.gate_period = gate_period;
  return params;
}

/// A policy that plays `base_action` at the base state and then fixed
/// actions determined by a seed elsewhere — gives the cross-validation
/// coverage beyond optimal policies.
mdp::Policy pseudo_random_policy(const bu::AttackModel& model,
                                 std::uint64_t seed) {
  mdp::Policy policy;
  policy.action.resize(model.space.size());
  Rng rng(seed);
  for (mdp::StateId id = 0; id < model.space.size(); ++id) {
    policy.action[id] = static_cast<std::uint32_t>(
        rng.next_below(model.model.num_actions(id)));
  }
  return policy;
}

// ----------------------------------------------- MDP <-> chain semantics ---

using CrossParam = std::tuple<Setting, Utility, std::uint64_t /*seed*/>;

class CrossValidation : public ::testing::TestWithParam<CrossParam> {};

TEST_P(CrossValidation, ChainSemanticsMatchModelStepByStep) {
  const auto [setting, utility, seed] = GetParam();
  AttackParams params =
      make_params(0.2, 0.4, 0.4, setting, /*ad=*/4, /*gate_period=*/6);
  const bu::AttackModel model = bu::build_attack_model(params, utility);

  sim::ScenarioOptions options;
  options.check_against_model = true;  // throws on any divergence
  options.reroot_threshold = 16;
  sim::AttackScenarioSim simulator(model, options);

  const mdp::Policy policy = pseudo_random_policy(model, seed);
  Rng rng(seed ^ 0xABCDEF);
  const sim::ScenarioResult result = simulator.run(policy, 30'000, rng);
  EXPECT_EQ(result.steps, 30'000u);
}

INSTANTIATE_TEST_SUITE_P(
    SettingsUtilitiesSeeds, CrossValidation,
    ::testing::Combine(::testing::Values(Setting::kNoStickyGate,
                                         Setting::kStickyGate),
                       ::testing::Values(Utility::kRelativeRevenue,
                                         Utility::kAbsoluteReward,
                                         Utility::kOrphaning),
                       ::testing::Values(1ULL, 2ULL, 3ULL)));

TEST(CrossValidationOptimal, OptimalPolicyMatchesModelOnChain) {
  // The optimal attack policy, replayed on real chain semantics with
  // checking enabled, and its utility estimate compared to the solver's.
  const AttackParams params =
      make_params(0.25, 0.375, 0.375, Setting::kNoStickyGate);
  const bu::AttackModel model =
      bu::build_attack_model(params, Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);

  sim::ScenarioOptions options;
  options.check_against_model = true;
  sim::AttackScenarioSim simulator(model, options);
  Rng rng(20170417);
  const sim::ScenarioResult result =
      simulator.run(analysis.policy, 1'000'000, rng);
  EXPECT_NEAR(result.utility_estimate, analysis.utility_value, 0.01);
  EXPECT_GT(result.forks_started, 0u);
}

TEST(CrossValidationOptimal, StickyGateScenarioExercisesPhase2) {
  AttackParams params =
      make_params(0.25, 0.30, 0.45, Setting::kStickyGate, 4, 8);
  const bu::AttackModel model =
      bu::build_attack_model(params, Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);

  sim::ScenarioOptions options;
  options.check_against_model = true;
  sim::AttackScenarioSim simulator(model, options);
  Rng rng(99);
  const sim::ScenarioResult result =
      simulator.run(analysis.policy, 500'000, rng);
  // The gate must actually open for the scenario to cover phase 2.
  EXPECT_GT(result.gate_openings, 0u);
  EXPECT_NEAR(result.utility_estimate, analysis.utility_value, 0.01);
}

TEST(ScenarioSim, RequiresLockedCountdownInCheckMode) {
  AttackParams params = make_params(0.2, 0.4, 0.4, Setting::kStickyGate);
  params.countdown = bu::GateCountdown::kPaperText;
  const bu::AttackModel model =
      bu::build_attack_model(params, Utility::kRelativeRevenue);
  sim::ScenarioOptions options;
  options.check_against_model = true;
  EXPECT_THROW(sim::AttackScenarioSim(model, options),
               std::invalid_argument);
}

TEST(ScenarioSim, RequiresOrderedEbs) {
  const AttackParams params =
      make_params(0.2, 0.4, 0.4, Setting::kNoStickyGate);
  const bu::AttackModel model =
      bu::build_attack_model(params, Utility::kRelativeRevenue);
  sim::ScenarioOptions options;
  options.eb_bob = options.eb_carol;
  EXPECT_THROW(sim::AttackScenarioSim(model, options),
               std::invalid_argument);
}

TEST(ScenarioSim, HonestPolicyNeverForks) {
  const AttackParams params =
      make_params(0.2, 0.4, 0.4, Setting::kNoStickyGate);
  const bu::AttackModel model =
      bu::build_attack_model(params, Utility::kRelativeRevenue);
  mdp::Policy honest;
  honest.action.assign(model.space.size(), 0);  // OnChain1 everywhere
  sim::ScenarioOptions options;
  options.check_against_model = true;
  sim::AttackScenarioSim simulator(model, options);
  Rng rng(5);
  const sim::ScenarioResult result = simulator.run(honest, 100'000, rng);
  EXPECT_EQ(result.forks_started, 0u);
  EXPECT_DOUBLE_EQ(result.totals.total_orphaned(), 0.0);
  EXPECT_NEAR(result.utility_estimate, 0.2, 0.01);
}

// --------------------------------------------------------- ForkSimulation --

sim::SimMiner compliant_miner(std::string name, double power,
                              chain::ByteSize eb, chain::ByteSize mg,
                              unsigned ad = 6) {
  sim::SimMiner miner;
  miner.name = std::move(name);
  miner.power = power;
  miner.rule.eb = eb;
  miner.rule.mg = mg;
  miner.rule.ad = ad;
  miner.block_size = mg;
  return miner;
}

TEST(ForkSimulation, HomogeneousNetworkNeverForks) {
  // Stone's observation, reproduced: miners with identical parameters who
  // never adapt their block size produce zero forks at zero delay.
  sim::ForkSimConfig config;
  config.miners = {
      compliant_miner("a", 0.3, chain::kMegabyte, chain::kMegabyte),
      compliant_miner("b", 0.3, chain::kMegabyte, chain::kMegabyte),
      compliant_miner("c", 0.4, chain::kMegabyte, chain::kMegabyte),
  };
  sim::ForkSimulation simulation(config);
  Rng rng(1);
  const sim::ForkSimResult result = simulation.run(20'000, rng);
  EXPECT_EQ(result.fork_episodes, 0u);
  EXPECT_EQ(result.orphaned_blocks, 0u);
  EXPECT_EQ(result.blocks_mined, 20'000u);
}

TEST(ForkSimulation, RewardsProportionalToPowerWithoutForks) {
  sim::ForkSimConfig config;
  config.miners = {
      compliant_miner("a", 0.25, chain::kMegabyte, chain::kMegabyte),
      compliant_miner("b", 0.75, chain::kMegabyte, chain::kMegabyte),
  };
  sim::ForkSimulation simulation(config);
  Rng rng(2);
  const sim::ForkSimResult result = simulation.run(40'000, rng);
  const double share_a = static_cast<double>(result.locked_per_miner[0]) /
                         static_cast<double>(result.blocks_mined);
  EXPECT_NEAR(share_a, 0.25, 0.01);
}

TEST(ForkSimulation, HeterogeneousEbsForkWhenBigBlocksAppear) {
  // A large-MG majority vs a small-EB minority: the minority keeps
  // rejecting big blocks until AD depth, so forks occur organically.
  sim::ForkSimConfig config;
  config.miners = {
      compliant_miner("big", 0.7, 8 * chain::kMegabyte,
                      8 * chain::kMegabyte),
      compliant_miner("small", 0.3, chain::kMegabyte, chain::kMegabyte),
  };
  sim::ForkSimulation simulation(config);
  Rng rng(3);
  const sim::ForkSimResult result = simulation.run(20'000, rng);
  EXPECT_GT(result.fork_episodes, 0u);
  EXPECT_GT(result.orphaned_blocks, 0u);
  // The small-EB miner loses disproportionally many blocks.
  const double small_orphan_share =
      static_cast<double>(result.orphaned_per_miner[1]) /
      static_cast<double>(result.orphaned_blocks + 1);
  EXPECT_GT(small_orphan_share, 0.5);
}

TEST(ForkSimulation, DisagreementResolvesWithinAcceptanceDepth) {
  sim::ForkSimConfig config;
  config.miners = {
      compliant_miner("big", 0.7, 8 * chain::kMegabyte, 8 * chain::kMegabyte,
                      4),
      compliant_miner("small", 0.3, chain::kMegabyte, chain::kMegabyte, 4),
  };
  sim::ForkSimulation simulation(config);
  Rng rng(4);
  const sim::ForkSimResult result = simulation.run(20'000, rng);
  // With AD = 4 the small miner adopts after at most 4 blocks, so the
  // divergence depth stays small.
  EXPECT_LE(result.max_fork_depth, 8u);
}

TEST(ForkSimulation, RejectsMinerAboveOwnMg) {
  sim::ForkSimConfig config;
  config.miners = {
      compliant_miner("a", 1.0, chain::kMegabyte, chain::kMegabyte),
  };
  config.miners[0].block_size = 2 * chain::kMegabyte;  // above its MG
  EXPECT_THROW(sim::ForkSimulation{config}, std::invalid_argument);
}

}  // namespace
