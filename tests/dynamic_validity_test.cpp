#include <gtest/gtest.h>

#include "chain/block_tree.hpp"
#include "chain/selection.hpp"
#include "counter/dynamic_validity.hpp"

namespace {

using namespace bvc;
using namespace bvc::counter;
using chain::BlockId;
using chain::BlockTree;

VoteRuleConfig tiny_config() {
  VoteRuleConfig config;
  config.epoch_length = 10;
  config.adjust_threshold = 0.75;
  config.veto_threshold = 0.10;
  config.activation_delay = 3;
  config.step = 500'000;
  config.initial_limit = 1'000'000;
  config.max_limit = 4'000'000;
  return config;
}

TEST(DynamicValidity, EnforcesInitialLimit) {
  DynamicValidity rule(tiny_config());
  BlockTree tree;
  const BlockId ok = tree.add_block(tree.genesis(), 1'000'000, 0);
  EXPECT_TRUE(rule.chain_acceptable(tree, ok));
  const BlockId big = tree.add_block(ok, 1'000'001, 0);
  EXPECT_FALSE(rule.chain_acceptable(tree, big));
}

TEST(DynamicValidity, VotedIncreaseRaisesTheLimitAfterDelay) {
  const VoteRuleConfig config = tiny_config();
  DynamicValidity rule(config);
  BlockTree tree;
  // One epoch of unanimous increase votes.
  BlockId tip = tree.genesis();
  for (unsigned i = 0; i < config.epoch_length; ++i) {
    tip = tree.add_block(tip, 1'000'000, 0);
    rule.set_vote(tip, Vote::kIncrease);
  }
  // The raise activates 3 blocks into the next epoch: a 1.5 MB block is
  // still invalid now...
  const BlockId early = tree.add_block(tip, 1'500'000, 0);
  EXPECT_FALSE(rule.chain_acceptable(tree, early));
  // ...but valid after the activation delay.
  for (unsigned i = 0; i < config.activation_delay; ++i) {
    tip = tree.add_block(tip, 1'000'000, 0);
  }
  EXPECT_EQ(rule.next_limit(tree, tip), 1'500'000u);
  const BlockId late = tree.add_block(tip, 1'500'000, 0);
  EXPECT_TRUE(rule.chain_acceptable(tree, late));
}

TEST(DynamicValidity, EveryNodeAgreesOnEveryBranch) {
  // The prescribed-BVC property at the chain level: two rule instances fed
  // the same votes agree on every block of a forked tree.
  const VoteRuleConfig config = tiny_config();
  DynamicValidity node_a(config);
  DynamicValidity node_b(config);
  BlockTree tree;
  BlockId left = tree.genesis();
  BlockId right = tree.genesis();
  for (int i = 0; i < 30; ++i) {
    left = tree.add_block(left, 900'000, 0);
    right = tree.add_block(right, 1'100'000, 1);
    for (const Vote vote : {Vote::kIncrease, Vote::kAbstain}) {
      node_a.set_vote(left, vote);
      node_b.set_vote(left, vote);
    }
  }
  for (BlockId id = 0; id < tree.size(); ++id) {
    EXPECT_EQ(node_a.chain_acceptable(tree, id),
              node_b.chain_acceptable(tree, id));
  }
}

TEST(DynamicValidity, WorksWithGenericChainSelection) {
  // DynamicValidity satisfies the chain::ValidityRule concept: the longest
  // acceptable chain wins even when a longer invalid branch exists.
  DynamicValidity rule(tiny_config());
  BlockTree tree;
  const BlockId valid = [&] {
    BlockId tip = tree.genesis();
    for (int i = 0; i < 3; ++i) {
      tip = tree.add_block(tip, 1'000'000, 0);
    }
    return tip;
  }();
  BlockId invalid = tree.add_block(tree.genesis(), 2'000'000, 1);
  for (int i = 0; i < 5; ++i) {
    invalid = tree.add_block(invalid, 1'000'000, 1);
  }
  EXPECT_EQ(chain::select_best_block(tree, rule), valid);
}

TEST(DynamicValidity, VotesOnForksCountPerBranch) {
  // Votes are replayed along the evaluated path only: an increase voted on
  // a side branch does not raise the limit of the main branch.
  const VoteRuleConfig config = tiny_config();
  DynamicValidity rule(config);
  BlockTree tree;
  // Side branch votes for the increase...
  BlockId side = tree.genesis();
  for (unsigned i = 0; i < config.epoch_length; ++i) {
    side = tree.add_block(side, 1'000'000, 1);
    rule.set_vote(side, Vote::kIncrease);
  }
  // ...the main branch abstains.
  BlockId main_tip = tree.genesis();
  for (unsigned i = 0; i < config.epoch_length + config.activation_delay;
       ++i) {
    main_tip = tree.add_block(main_tip, 1'000'000, 0);
  }
  EXPECT_EQ(rule.next_limit(tree, main_tip), config.initial_limit);
  for (unsigned i = 0; i < config.activation_delay; ++i) {
    side = tree.add_block(side, 1'000'000, 1);
  }
  EXPECT_EQ(rule.next_limit(tree, side),
            config.initial_limit + config.step);
}

}  // namespace
