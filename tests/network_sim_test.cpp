#include <gtest/gtest.h>

#include "sim/network_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using namespace bvc::sim;
using chain::kMegabyte;

NetMiner miner(std::string name, double power, chain::ByteSize size,
               double bandwidth, double latency = 1.0) {
  NetMiner m;
  m.name = std::move(name);
  m.power = power;
  m.rule.eb = 32 * kMegabyte;  // validity not the bottleneck by default
  m.rule.mg = 32 * kMegabyte;
  m.block_size = size;
  m.bandwidth = bandwidth;
  m.latency = latency;
  return m;
}

TEST(NetworkSim, ConservesBlocks) {
  NetworkConfig config;
  config.miners = {miner("a", 0.5, kMegabyte, 1e6),
                   miner("b", 0.5, kMegabyte, 1e6)};
  NetworkSimulation simulation(config);
  Rng rng(1);
  const NetworkResult result = simulation.run(2000, rng);
  EXPECT_EQ(result.blocks_mined, 2000u);
  std::uint64_t mined = 0;
  std::uint64_t settled = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    mined += result.mined_per_miner[i];
    settled += result.locked_per_miner[i] + result.orphaned_per_miner[i];
  }
  EXPECT_EQ(mined, 2000u);
  EXPECT_EQ(settled, 2000u);
  EXPECT_EQ(result.canonical_length + result.orphaned_blocks, 2000u);
}

TEST(NetworkSim, MiningFollowsPower) {
  NetworkConfig config;
  config.miners = {miner("a", 0.2, kMegabyte, 1e7),
                   miner("b", 0.8, kMegabyte, 1e7)};
  NetworkSimulation simulation(config);
  Rng rng(2);
  const NetworkResult result = simulation.run(20000, rng);
  EXPECT_NEAR(
      static_cast<double>(result.mined_per_miner[0]) / 20000.0, 0.2, 0.01);
}

TEST(NetworkSim, FastLinksProduceFewOrphans) {
  // 1 MB blocks over 100 MB/s links with 0.1 s latency: propagation is
  // ~0.11 s against a 600 s block interval; orphans should be ~0.02%.
  NetworkConfig config;
  config.miners = {miner("a", 0.5, kMegabyte, 1e8, 0.1),
                   miner("b", 0.5, kMegabyte, 1e8, 0.1)};
  NetworkSimulation simulation(config);
  Rng rng(3);
  const NetworkResult result = simulation.run(20000, rng);
  EXPECT_LT(result.orphan_rate(), 0.005);
}

TEST(NetworkSim, SlowPropagationCreatesOrphans) {
  // 8 MB blocks over 100 kB/s links: 80 s propagation vs 600 s interval —
  // a substantial natural fork rate must appear.
  NetworkConfig config;
  config.miners = {miner("a", 0.5, 8 * kMegabyte, 1e5),
                   miner("b", 0.5, 8 * kMegabyte, 1e5)};
  NetworkSimulation simulation(config);
  Rng rng(4);
  const NetworkResult result = simulation.run(20000, rng);
  EXPECT_GT(result.orphan_rate(), 0.05);
}

TEST(NetworkSim, OrphanRateGrowsWithBlockSize) {
  // The relationship behind Assumption 2 (every miner has an MPB): larger
  // blocks -> longer propagation -> more orphans.
  double previous = -1.0;
  for (const chain::ByteSize size :
       {kMegabyte, 4 * kMegabyte, 16 * kMegabyte}) {
    NetworkConfig config;
    config.miners = {miner("a", 0.5, size, 2e5),
                     miner("b", 0.5, size, 2e5)};
    NetworkSimulation simulation(config);
    Rng rng(5);
    const NetworkResult result = simulation.run(30000, rng);
    EXPECT_GT(result.orphan_rate(), previous);
    previous = result.orphan_rate();
  }
}

TEST(NetworkSim, SlowNodeLosesDisproportionately) {
  // A miner behind a thin pipe hears about blocks late and mines stale
  // parents: its own blocks get orphaned more often.
  NetworkConfig config;
  config.miners = {miner("fast", 0.5, 8 * kMegabyte, 1e7, 0.1),
                   miner("slow", 0.5, 8 * kMegabyte, 5e4, 2.0)};
  NetworkSimulation simulation(config);
  Rng rng(6);
  const NetworkResult result = simulation.run(20000, rng);
  EXPECT_GT(result.orphan_rate(1), result.orphan_rate(0));
}

TEST(NetworkSim, ValidityForksFromEbDisagreement) {
  // Even with instant links, a small-EB node ignores big blocks until AD —
  // validity forks replace propagation forks (the paper's point: the
  // attack surface exists independently of network speed).
  NetworkConfig config;
  NetMiner big = miner("big", 0.7, 8 * kMegabyte, 1e9, 0.001);
  NetMiner small = miner("small", 0.3, kMegabyte, 1e9, 0.001);
  small.rule.eb = kMegabyte;
  small.rule.mg = kMegabyte;
  small.rule.ad = 6;
  config.miners = {big, small};
  NetworkSimulation simulation(config);
  Rng rng(7);
  const NetworkResult result = simulation.run(20000, rng);
  EXPECT_GT(result.orphaned_blocks, 0u);
  // The small-EB miner suffers: most orphans are its blocks.
  EXPECT_GT(result.orphaned_per_miner[1], result.orphaned_per_miner[0]);
}

TEST(NetworkSim, ValidatesConfig) {
  NetworkConfig config;
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
  config.miners = {miner("a", 0.5, kMegabyte, 1e6)};
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);  // sum
  config.miners = {miner("a", 0.5, kMegabyte, 1e6),
                   miner("b", 0.5, 2 * kMegabyte, 1e6)};
  config.miners[1].rule.mg = kMegabyte;  // mines above own MG
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
}

// One test per rejected field, so a regression names the check it broke.

NetworkConfig valid_pair() {
  NetworkConfig config;
  config.miners = {miner("a", 0.5, kMegabyte, 1e6),
                   miner("b", 0.5, kMegabyte, 1e6)};
  return config;
}

TEST(NetworkSimValidation, RejectsNegativePower) {
  NetworkConfig config = valid_pair();
  config.miners[0].power = -0.1;
  config.miners[1].power = 1.1;  // keep the sum at 1: the sign must trip
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
}

TEST(NetworkSimValidation, RejectsPowersNotSummingToOne) {
  NetworkConfig config = valid_pair();
  config.miners[0].power = 0.6;  // total 1.1
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
}

TEST(NetworkSimValidation, RejectsNonPositivePower) {
  // A zero-power miner would never mine yet still occupy a categorical
  // slot; the validation names the offending miner.
  NetworkConfig config = valid_pair();
  config.miners[0].power = 0.0;
  config.miners[1].power = 1.0;
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
  try {
    NetworkSimulation simulation(config);
    FAIL() << "zero power must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("miners[0].power"),
              std::string::npos);
  }
}

TEST(NetworkSimValidation, RejectsEmptyMinerList) {
  NetworkConfig config;
  try {
    NetworkSimulation simulation(config);
    FAIL() << "an empty miner list must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("miners"), std::string::npos);
  }
}

TEST(NetworkSimValidation, RejectsNonPositiveBandwidth) {
  NetworkConfig config = valid_pair();
  config.miners[1].bandwidth = 0.0;
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
  config.miners[1].bandwidth = -1e6;
  try {
    NetworkSimulation simulation(config);
    FAIL() << "negative bandwidth must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("miners[1].bandwidth"),
              std::string::npos);
  }
}

TEST(NetworkSimValidation, RejectsNonPositiveLatency) {
  NetworkConfig config = valid_pair();
  config.miners[0].latency = -0.5;
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
  config.miners[0].latency = 0.0;
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
}

TEST(NetworkSimValidation, RejectsNonPositiveBlockInterval) {
  NetworkConfig config = valid_pair();
  config.block_interval = 0.0;
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
  config.block_interval = -600.0;
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
}

TEST(NetworkSimValidation, RejectsInvalidFaultPlan) {
  NetworkConfig config = valid_pair();
  config.faults.link.drop_probability = 1.5;
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
}

// ------------------------------------------------- multi-hop relay mode ---

NetworkConfig relay_config(std::size_t nodes) {
  NetworkConfig config = valid_pair();
  RandomTopologyConfig graph;
  graph.nodes = nodes;
  graph.seed = 99;
  config.topology = random_topology(graph);
  return config;
}

TEST(NetworkSimRelay, ConservesBlocksAndGossips) {
  NetworkConfig config = relay_config(24);
  NetworkSimulation simulation(config);
  Rng rng(21);
  const NetworkResult result = simulation.run(500, rng);
  EXPECT_EQ(result.blocks_mined, 500u);
  EXPECT_EQ(result.canonical_length + result.orphaned_blocks, 500u);
  // Multi-hop gossip must actually relay: strictly more copies than the
  // direct mode's (n-1) per block.
  EXPECT_GT(result.relayed_messages, 500u * 2);
  EXPECT_EQ(result.status, robust::RunStatus::kConverged);
}

TEST(NetworkSimRelay, HubSpokeRuns) {
  NetworkConfig config = valid_pair();
  HubSpokeConfig graph;
  graph.nodes = 30;
  graph.hubs = 3;
  config.topology = hub_spoke_topology(graph);
  config.miner_nodes = {5, 17};  // miners on spokes, not hubs
  NetworkSimulation simulation(config);
  Rng rng(22);
  const NetworkResult result = simulation.run(400, rng);
  EXPECT_EQ(result.blocks_mined, 400u);
  EXPECT_EQ(result.canonical_length + result.orphaned_blocks, 400u);
}

TEST(NetworkSimRelay, CompactRelayReducesOrphans) {
  // Thin/expedited-style relay shrinks wire bytes, so large blocks
  // propagate mostly latency-bound and orphan less.
  NetworkConfig slow = valid_pair();
  slow.miners[0].block_size = 8 * kMegabyte;
  slow.miners[1].block_size = 8 * kMegabyte;
  RandomTopologyConfig graph;
  graph.nodes = 16;
  graph.bandwidth = {5e4, 1e5};  // thin pipes: full blocks take ~100 s/hop
  graph.seed = 7;
  slow.topology = random_topology(graph);
  NetworkConfig compact = slow;
  compact.relay.compact = true;

  Rng rng_full(23);
  Rng rng_compact(23);
  const NetworkResult full =
      NetworkSimulation(slow).run(3000, rng_full);
  const NetworkResult thin =
      NetworkSimulation(compact).run(3000, rng_compact);
  EXPECT_LT(thin.orphan_rate(), full.orphan_rate());
}

TEST(NetworkSimRelay, ValidatesTopologyPlacement) {
  NetworkConfig config = relay_config(8);
  config.miner_nodes = {1};  // must name one node per miner
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
  config.miner_nodes = {1, 1};  // distinct nodes
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
  config.miner_nodes = {1, 9};  // out of range
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
  config.miner_nodes = {1, 7};
  EXPECT_NO_THROW(NetworkSimulation{config});

  NetworkConfig direct = valid_pair();
  direct.miner_nodes = {0, 1};  // placements require a topology
  EXPECT_THROW(NetworkSimulation{direct}, std::invalid_argument);
}

TEST(NetworkSimRelay, FaultPlanIndicesCoverTopologyNodes) {
  NetworkConfig config = relay_config(8);
  config.faults.crashes.push_back({7, 0.0, 100.0});  // node 7 exists
  EXPECT_NO_THROW(NetworkSimulation{config});
  config.faults.crashes.back().node = 8;  // out of range
  EXPECT_THROW(NetworkSimulation{config}, std::invalid_argument);
}

}  // namespace
