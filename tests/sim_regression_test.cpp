// Fixed-seed regression vectors for the discrete-event simulation layer.
//
// These values were captured from the pre-engine (hand-rolled loop)
// simulators and must stay bit-identical: the EventEngine lowering preserves
// the legacy draw order, event ordering, and tie-breaking exactly, and the
// post-run `rng.next_u64()` probes pin the RNG stream position too.
#include <gtest/gtest.h>

#include "bu/attack_analysis.hpp"
#include "sim/attack_scenario.hpp"
#include "sim/fork_simulation.hpp"
#include "sim/network_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using namespace bvc::sim;

void expect_miner(const NetworkResult& result, std::size_t i,
                  std::uint64_t mined, std::uint64_t locked,
                  std::uint64_t orphaned) {
  EXPECT_EQ(result.mined_per_miner[i], mined) << "miner " << i;
  EXPECT_EQ(result.locked_per_miner[i], locked) << "miner " << i;
  EXPECT_EQ(result.orphaned_per_miner[i], orphaned) << "miner " << i;
}

TEST(SimRegression, NetworkHeterogeneousNoFaults) {
  NetworkConfig config;
  config.miners.push_back({"a", 0.3, {}, 1 * chain::kMegabyte, 1e6, 0.5});
  config.miners.push_back({"b", 0.5, {}, 8 * chain::kMegabyte, 2e5, 2.0});
  config.miners.push_back({"c", 0.2, {}, 4 * chain::kMegabyte, 5e5, 1.0});
  for (auto& m : config.miners) {
    m.rule.eb = 32 * chain::kMegabyte;
    m.rule.mg = 32 * chain::kMegabyte;
    m.rule.ad = 6;
  }
  NetworkSimulation net(config);
  Rng rng(123);
  const NetworkResult r = net.run(4000, rng);
  EXPECT_EQ(r.blocks_mined, 4000u);
  EXPECT_DOUBLE_EQ(r.duration, 2400121.5124724312);
  EXPECT_EQ(r.canonical_length, 3967u);
  EXPECT_EQ(r.orphaned_blocks, 33u);
  EXPECT_EQ(r.status, robust::RunStatus::kConverged);
  EXPECT_EQ(r.dropped_messages, 0u);
  EXPECT_EQ(r.duplicated_messages, 0u);
  EXPECT_EQ(r.deferred_deliveries, 0u);
  EXPECT_EQ(r.wasted_finds, 0u);
  expect_miner(r, 0, 1201, 1194, 7);
  expect_miner(r, 1, 1974, 1957, 17);
  expect_miner(r, 2, 825, 816, 9);
  EXPECT_EQ(rng.next_u64(), 5977496327026379970ull);
}

TEST(SimRegression, NetworkWithFaultPlan) {
  NetworkConfig config;
  config.miners.push_back({"a", 0.25, {}, 1 * chain::kMegabyte, 1e6, 0.5});
  config.miners.push_back({"b", 0.25, {}, 2 * chain::kMegabyte, 4e5, 1.5});
  config.miners.push_back({"c", 0.5, {}, 4 * chain::kMegabyte, 6e5, 1.0});
  for (auto& m : config.miners) {
    m.rule.eb = 32 * chain::kMegabyte;
    m.rule.mg = 32 * chain::kMegabyte;
    m.rule.ad = 6;
  }
  config.faults.link.drop_probability = 0.10;
  config.faults.link.duplicate_probability = 0.05;
  config.faults.link.jitter_seconds = 3.0;
  config.faults.crashes.push_back({1, 50'000.0, 120'000.0});
  config.faults.partitions.push_back({{2}, 300'000.0, 360'000.0});
  NetworkSimulation net(config);
  Rng rng(7);
  const NetworkResult r = net.run(3000, rng);
  EXPECT_EQ(r.blocks_mined, 3000u);
  EXPECT_DOUBLE_EQ(r.duration, 1773032.7366326537);
  EXPECT_EQ(r.canonical_length, 1446u);
  EXPECT_EQ(r.orphaned_blocks, 1554u);
  EXPECT_EQ(r.dropped_messages, 595u);
  EXPECT_EQ(r.duplicated_messages, 260u);
  EXPECT_EQ(r.deferred_deliveries, 224u);
  EXPECT_EQ(r.wasted_finds, 28u);
  expect_miner(r, 0, 806, 3, 803);
  expect_miner(r, 1, 751, 0, 751);
  expect_miner(r, 2, 1443, 1443, 0);
  EXPECT_EQ(rng.next_u64(), 18010593262761697117ull);
}

TEST(SimRegression, NetworkValidityFork) {
  NetworkConfig config;
  NetMiner small;
  small.power = 0.5;
  small.rule.eb = 1 * chain::kMegabyte;
  small.rule.mg = 32 * chain::kMegabyte;
  small.rule.ad = 4;
  small.block_size = 1 * chain::kMegabyte;
  small.bandwidth = 1e6;
  small.latency = 0.01;
  NetMiner big = small;
  big.rule.eb = 8 * chain::kMegabyte;
  big.block_size = 8 * chain::kMegabyte;
  config.miners = {small, big};
  NetworkSimulation net(config);
  Rng rng(77);
  const NetworkResult r = net.run(2000, rng);
  EXPECT_EQ(r.blocks_mined, 2000u);
  EXPECT_DOUBLE_EQ(r.duration, 1249654.554313689);
  EXPECT_EQ(r.canonical_length, 1994u);
  EXPECT_EQ(r.orphaned_blocks, 6u);
  expect_miner(r, 0, 994, 988, 6);
  expect_miner(r, 1, 1006, 1006, 0);
  EXPECT_EQ(rng.next_u64(), 1508597469776837043ull);
}

TEST(SimRegression, ForkSimulation) {
  ForkSimConfig config;
  const auto add = [&](double power, chain::ByteSize eb,
                       chain::ByteSize size) {
    SimMiner m;
    m.power = power;
    m.rule.eb = eb;
    m.rule.mg = 8 * chain::kMegabyte;
    m.rule.ad = 3;
    m.block_size = size;
    config.miners.push_back(m);
  };
  add(0.4, 1 * chain::kMegabyte, 1 * chain::kMegabyte);
  add(0.3, 1 * chain::kMegabyte, 1 * chain::kMegabyte);
  add(0.2, 8 * chain::kMegabyte, 8 * chain::kMegabyte);
  add(0.1, 8 * chain::kMegabyte, 8 * chain::kMegabyte);
  ForkSimulation fork(config);
  Rng rng(11);
  const ForkSimResult r = fork.run(20'000, rng);
  EXPECT_EQ(r.blocks_mined, 20000u);
  EXPECT_EQ(r.fork_episodes, 1u);
  EXPECT_EQ(r.steps_disagreeing, 2u);
  EXPECT_EQ(r.max_fork_depth, 2u);
  EXPECT_EQ(r.orphaned_blocks, 0u);
  EXPECT_EQ(r.status, robust::RunStatus::kConverged);
  const std::vector<std::uint64_t> locked = {7979, 6020, 4006, 1995};
  EXPECT_EQ(r.locked_per_miner, locked);
  EXPECT_EQ(rng.next_u64(), 7770806051643308127ull);
}

TEST(SimRegression, AttackScenarioRandomPolicy) {
  bu::AttackParams params;
  params.alpha = 0.2;
  params.beta = 0.4;
  params.gamma = 0.4;
  params.setting = bu::Setting::kStickyGate;
  params.ad = 4;
  params.gate_period = 6;
  const bu::AttackModel model =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
  mdp::Policy policy;
  policy.action.resize(model.space.size());
  Rng prng(5);
  for (mdp::StateId id = 0; id < model.space.size(); ++id) {
    policy.action[id] = static_cast<std::uint32_t>(
        prng.next_below(model.model.num_actions(id)));
  }
  ScenarioOptions options;
  options.check_against_model = true;
  options.reroot_threshold = 16;
  AttackScenarioSim simulator(model, options);
  Rng rng(31337);
  const ScenarioResult r = simulator.run(policy, 40'000, rng);
  EXPECT_EQ(r.steps, 40000u);
  EXPECT_DOUBLE_EQ(r.utility_estimate, 0.20022499999999999);
  EXPECT_DOUBLE_EQ(r.totals.alice_locked, 8009.0);
  EXPECT_DOUBLE_EQ(r.totals.others_locked, 31991.0);
  EXPECT_DOUBLE_EQ(r.totals.alice_orphaned, 0.0);
  EXPECT_DOUBLE_EQ(r.totals.others_orphaned, 0.0);
  EXPECT_EQ(r.forks_started, 0u);
  EXPECT_EQ(r.status, robust::RunStatus::kConverged);
  EXPECT_EQ(rng.next_u64(), 3728820717351235316ull);
}

TEST(SimRegression, AttackScenarioOptimalPolicy) {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.375;
  params.gamma = 0.375;
  params.setting = bu::Setting::kNoStickyGate;
  params.ad = 6;
  const bu::AttackModel model =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);
  ScenarioOptions options;
  options.check_against_model = true;
  AttackScenarioSim simulator(model, options);
  Rng rng(20170417);
  const ScenarioResult r = simulator.run(analysis.policy, 100'000, rng);
  EXPECT_EQ(r.steps, 100000u);
  EXPECT_DOUBLE_EQ(r.utility_estimate, 0.26102895178039687);
  EXPECT_DOUBLE_EQ(r.totals.alice_locked, 20863.0);
  EXPECT_DOUBLE_EQ(r.totals.others_locked, 59063.0);
  EXPECT_DOUBLE_EQ(r.totals.alice_orphaned, 4103.0);
  EXPECT_DOUBLE_EQ(r.totals.others_orphaned, 15971.0);
  EXPECT_DOUBLE_EQ(r.totals.double_spend, 20690.0);
  EXPECT_EQ(r.forks_started, 9789u);
  EXPECT_EQ(r.chain1_wins, 2846u);
  EXPECT_EQ(r.chain2_wins, 6943u);
  EXPECT_EQ(r.double_spend_events, 1580u);
  EXPECT_EQ(rng.next_u64(), 838368486849157976ull);
}

}  // namespace
