// Heterogeneous acceptance depths (Sect. 2.2 documents AD = 6 miners, a
// 20-block miner and AD = 12 public nodes): Bob's AD governs phase-1
// Chain-2 wins, Carol's phase-2 wins.
#include <gtest/gtest.h>

#include "bu/attack_analysis.hpp"
#include "sim/attack_scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using namespace bvc::bu;

AttackParams hetero_params() {
  AttackParams params;
  params.alpha = 0.2;
  params.beta = 0.4;
  params.gamma = 0.4;
  params.ad = 4;
  params.ad_carol = 7;
  params.gate_period = 10;
  params.setting = Setting::kStickyGate;
  return params;
}

TEST(HeteroAd, EffectiveAdSelectsBySide) {
  const AttackParams params = hetero_params();
  EXPECT_EQ(params.effective_ad(false), 4u);
  EXPECT_EQ(params.effective_ad(true), 7u);
  EXPECT_EQ(params.max_ad(), 7u);
  AttackParams same = params;
  same.ad_carol = 0;
  EXPECT_EQ(same.effective_ad(true), 4u);
}

TEST(HeteroAd, Phase1WinsAtBobsDepth) {
  const AttackParams params = hetero_params();
  const AttackState state{0, 3, 0, 1, 0};  // phase 1, l2 = ad - 1
  const StepResult step =
      apply_event(params, state, Action::kOnChain2, Event::kCarolBlock);
  EXPECT_TRUE(step.next.is_base());
  EXPECT_GT(step.next.r, 0);  // Bob's gate opened
}

TEST(HeteroAd, Phase2WinsAtCarolsDeeperDepth) {
  const AttackParams params = hetero_params();
  // In phase 2 a depth-4 chain is NOT enough (Carol needs 7)...
  const AttackState shallow{0, 3, 0, 1, 5};
  const StepResult not_yet =
      apply_event(params, shallow, Action::kOnChain2, Event::kBobBlock);
  EXPECT_FALSE(not_yet.next.is_base());
  EXPECT_EQ(not_yet.next.l2, 4);
  // ...but a depth-7 chain is.
  const AttackState deep{0, 6, 0, 1, 5};
  const StepResult wins =
      apply_event(params, deep, Action::kOnChain2, Event::kBobBlock);
  EXPECT_TRUE(wins.next.is_base());
  EXPECT_EQ(wins.next.r, 0);  // phase-3 collapse
}

TEST(HeteroAd, ConservationHoldsAcrossTheWholeSpace) {
  AttackParams params = hetero_params();
  params.allow_wait = true;
  const StateSpace space(params.max_ad(), params.max_r());
  for (mdp::StateId id = 0; id < space.size(); ++id) {
    const AttackState& s = space.state(id);
    for (const Action action : available_actions(params, s)) {
      for (const Event event :
           {Event::kAliceBlock, Event::kBobBlock, Event::kCarolBlock}) {
        if (action == Action::kWait && event == Event::kAliceBlock) {
          continue;
        }
        const StepResult step = apply_event(params, s, action, event);
        const double settled =
            step.deltas.total_locked() + step.deltas.total_orphaned();
        ASSERT_DOUBLE_EQ(s.l1 + s.l2 + 1.0,
                         step.next.l1 + step.next.l2 + settled)
            << to_string(s) << ' ' << to_string(action);
        ASSERT_TRUE(space.contains(step.next));
      }
    }
  }
}

TEST(HeteroAd, SolvesAndBeatsHonest) {
  AttackParams params = hetero_params();
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  const AnalysisResult result = analyze(params, Utility::kRelativeRevenue);
  EXPECT_TRUE(result.converged());
  EXPECT_GE(result.utility_value, 0.25 - 1e-4);
}

TEST(HeteroAd, DeeperCarolAdMakesPhase2ForksLonger) {
  // A larger Carol AD lets the attacker keep phase-2 forks alive longer:
  // the non-profit-driven damage increases (Sect. 6.2's "large AD allows
  // longer forks").
  AttackParams shallow = hetero_params();
  shallow.alpha = 0.01;
  shallow.beta = shallow.gamma = 0.495;
  shallow.ad_carol = 4;
  AttackParams deep = shallow;
  deep.ad_carol = 10;
  const double u_shallow =
      analyze(shallow, Utility::kOrphaning).utility_value;
  const double u_deep = analyze(deep, Utility::kOrphaning).utility_value;
  EXPECT_GT(u_deep, u_shallow);
}

TEST(HeteroAd, CrossValidatesOnChainSemantics) {
  // The chain-level simulator gives Carol her own AD; with step checking
  // on, 100k events must match the heterogeneous MDP exactly. Powers are
  // chosen so the optimal policy actually attacks (and opens gates).
  AttackParams params = hetero_params();
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  const AttackModel model =
      build_attack_model(params, Utility::kRelativeRevenue);
  const AnalysisResult analysis = analyze(model);

  sim::ScenarioOptions options;
  options.check_against_model = true;
  sim::AttackScenarioSim simulator(model, options);
  Rng rng(2020);
  const sim::ScenarioResult result =
      simulator.run(analysis.policy, 100'000, rng);
  EXPECT_EQ(result.steps, 100'000u);
  EXPECT_GT(result.gate_openings, 0u);
}

}  // namespace
