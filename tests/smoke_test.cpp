// Build smoke test: every module links and the headline numbers from the
// paper are in reach. Deeper suites live in the per-module test files.
#include <gtest/gtest.h>

#include "bu/attack_analysis.hpp"

namespace {

TEST(Smoke, HonestRevenueEqualsAlphaWhenBobDominates) {
  // Table 2: with beta >= alpha + gamma, Alice cannot gain unfair revenue.
  const double u = bvc::bu::max_relative_revenue(
      0.10, 0.72, 0.18, bvc::bu::Setting::kNoStickyGate);
  EXPECT_NEAR(u, 0.10, 2e-4);
}

}  // namespace
