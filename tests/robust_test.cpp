// Tests of the run-control subsystem: RunStatus / RunBudget / CancelToken /
// RunGuard primitives, and the budget/cancellation behaviour threaded
// through every iterative component (the four MDP solvers, the model
// rollout, and both simulators).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bu/attack_analysis.hpp"
#include "mdp/average_reward.hpp"
#include "mdp/discounted.hpp"
#include "mdp/model.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/ratio.hpp"
#include "mdp/rollout.hpp"
#include "mdp/solver_config.hpp"
#include "sim/fork_simulation.hpp"
#include "sim/network_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using mdp::Model;
using mdp::ModelBuilder;
using robust::CancelToken;
using robust::RunBudget;
using robust::RunControl;
using robust::RunGuard;
using robust::RunStatus;

// ----------------------------------------------------------- primitives ---

TEST(RunStatus, NamesAreDistinctAndStable) {
  const RunStatus all[] = {
      RunStatus::kConverged, RunStatus::kToleranceStalled,
      RunStatus::kBudgetExhausted, RunStatus::kCancelled,
      RunStatus::kDegenerateModel};
  std::set<std::string> names;
  for (const RunStatus status : all) {
    names.insert(std::string(robust::to_string(status)));
  }
  EXPECT_EQ(names.size(), 5u);
  EXPECT_EQ(robust::to_string(RunStatus::kConverged), "converged");
  EXPECT_EQ(robust::to_string(RunStatus::kBudgetExhausted),
            "budget-exhausted");
}

TEST(RunStatus, SuccessAndPartialClassification) {
  EXPECT_TRUE(robust::is_success(RunStatus::kConverged));
  EXPECT_FALSE(robust::is_success(RunStatus::kBudgetExhausted));
  EXPECT_TRUE(robust::is_partial(RunStatus::kToleranceStalled));
  EXPECT_TRUE(robust::is_partial(RunStatus::kBudgetExhausted));
  EXPECT_FALSE(robust::is_partial(RunStatus::kConverged));
  EXPECT_FALSE(robust::is_partial(RunStatus::kCancelled));
  EXPECT_FALSE(robust::is_partial(RunStatus::kDegenerateModel));
}

TEST(RunBudget, FactoriesAndUnlimited) {
  EXPECT_TRUE(RunBudget{}.unlimited());
  EXPECT_FALSE(RunBudget::deadline(1.0).unlimited());
  EXPECT_FALSE(RunBudget::ticks(5).unlimited());
  EXPECT_DOUBLE_EQ(RunBudget::deadline(2.5).wall_clock_seconds, 2.5);
  EXPECT_EQ(RunBudget::ticks(7).max_ticks, 7);
}

TEST(CancelToken, DefaultTokenIsInert) {
  const CancelToken token;
  EXPECT_FALSE(token.cancel_requested());
  token.request_cancel();  // no-op, must not crash
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_TRUE(RunControl{}.inert());
}

TEST(CancelToken, CancellationIsSharedAcrossCopies) {
  const CancelToken token = CancelToken::make();
  const CancelToken copy = token;
  EXPECT_FALSE(copy.cancel_requested());
  token.request_cancel();
  EXPECT_TRUE(copy.cancel_requested());
  RunControl control;
  control.cancel = copy;
  EXPECT_FALSE(control.inert());
}

TEST(RunGuard, UnlimitedBudgetNeverStops) {
  RunGuard guard(RunControl{});
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(guard.tick().has_value());
  }
  EXPECT_EQ(guard.ticks(), 10000);
  EXPECT_GE(guard.elapsed_seconds(), 0.0);
  EXPECT_TRUE(guard.remaining().unlimited());
}

TEST(RunGuard, EnforcesTickCap) {
  RunControl control;
  control.budget = RunBudget::ticks(3);
  RunGuard guard(control);
  EXPECT_FALSE(guard.tick().has_value());
  EXPECT_FALSE(guard.tick().has_value());
  EXPECT_FALSE(guard.tick().has_value());
  ASSERT_TRUE(guard.tick().has_value());
  EXPECT_EQ(*guard.tick(), RunStatus::kBudgetExhausted);  // and stays stopped
  EXPECT_EQ(guard.ticks(), 3);
}

TEST(RunGuard, PreCancelledTokenStopsOnFirstTick) {
  RunControl control;
  control.cancel = CancelToken::make();
  control.cancel.request_cancel();
  RunGuard guard(control);
  ASSERT_TRUE(guard.tick().has_value());
  EXPECT_EQ(*guard.tick(), RunStatus::kCancelled);
  EXPECT_EQ(guard.ticks(), 0);
}

TEST(RunGuard, CancellationBeatsBudgetExhaustion) {
  RunControl control;
  control.budget = RunBudget::ticks(0);
  control.cancel = CancelToken::make();
  control.cancel.request_cancel();
  RunGuard guard(control);
  EXPECT_EQ(*guard.tick(), RunStatus::kCancelled);
}

TEST(RunGuard, ZeroDeadlineExpiresImmediately) {
  RunControl control;
  control.budget = RunBudget::deadline(0.0);
  RunGuard guard(control);
  EXPECT_EQ(*guard.tick(), RunStatus::kBudgetExhausted);
  EXPECT_DOUBLE_EQ(guard.remaining().wall_clock_seconds, 0.0);
}

TEST(RunGuard, RemainingShrinksFromTheDeadline) {
  RunControl control;
  control.budget = RunBudget::deadline(100.0);
  RunGuard guard(control);
  const RunBudget rest = guard.remaining();
  EXPECT_LE(rest.wall_clock_seconds, 100.0);
  EXPECT_GT(rest.wall_clock_seconds, 0.0);
  // remaining() must not propagate the tick cap to nested solves.
  EXPECT_EQ(rest.max_ticks, RunBudget{}.max_ticks);
}

TEST(RunGuard, ClockStrideStillCountsTicks) {
  RunControl control;
  control.budget = RunBudget::ticks(10);
  RunGuard guard(control, /*clock_stride=*/1024);
  int allowed = 0;
  while (!guard.tick().has_value()) {
    ++allowed;
  }
  EXPECT_EQ(allowed, 10);  // the tick cap must not be amortized away
}

TEST(RunGuard, ClockStrideActuallySkipsClockReads) {
  // With stride 4 the deadline is only consulted when ticks_ % 4 == 0,
  // i.e. on the 1st call (ticks_ = 0) and the 5th (ticks_ = 4). Sleeping
  // past the deadline after the 1st call must therefore go unnoticed for
  // exactly three more ticks — if any of them stopped, the stride would be
  // reading the clock it promised to skip.
  RunControl control;
  control.budget = RunBudget::deadline(0.05);
  RunGuard guard(control, /*clock_stride=*/4);
  ASSERT_FALSE(guard.tick().has_value());  // ticks_ = 0: clock read, fresh
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(guard.tick().has_value());  // ticks_ = 1: skipped
  EXPECT_FALSE(guard.tick().has_value());  // ticks_ = 2: skipped
  EXPECT_FALSE(guard.tick().has_value());  // ticks_ = 3: skipped
  const auto stopped = guard.tick();       // ticks_ = 4: clock read again
  ASSERT_TRUE(stopped.has_value());
  EXPECT_EQ(*stopped, RunStatus::kBudgetExhausted);
  // Once expired, the guard keeps reporting exhaustion without strides.
  EXPECT_EQ(guard.tick(), std::optional<RunStatus>(
                              RunStatus::kBudgetExhausted));
}

TEST(RunGuard, ElapsedNanosecondsAndSecondsAgree) {
  RunGuard guard(RunControl{});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double before = guard.elapsed_seconds();
  const std::int64_t ns = guard.elapsed_ns();
  const double after = guard.elapsed_seconds();
  // Both views read the same steady clock, so the ns reading taken between
  // the two seconds readings must land between them (modulo 1ns rounding).
  EXPECT_GE(static_cast<double>(ns) * 1e-9, before - 1e-6);
  EXPECT_LE(static_cast<double>(ns) * 1e-9, after + 1e-6);
  EXPECT_GE(before, 0.009);  // sleep_for guarantees at least the request
  EXPECT_GE(ns, 9'000'000);
}

TEST(RunGuard, RemainingNeverGoesNegative) {
  RunControl control;
  control.budget = RunBudget::deadline(0.001);
  RunGuard guard(control);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const RunBudget rest = guard.remaining();
  // Past the deadline the remaining allowance clamps at zero; a negative
  // allowance handed to a nested solve would be interpreted as "no
  // deadline was configured at all" by downstream arithmetic.
  EXPECT_GE(rest.wall_clock_seconds, 0.0);
  EXPECT_EQ(rest.wall_clock_seconds, 0.0);
}

// ---------------------------------------------------------- MDP solvers ---

/// Two-state alternator: num stream rates (r0 + r1)/2, den stream 1/step.
Model make_alternator(double r0, double r1) {
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0, r0, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0, r1, 1.0);
  return builder.build();
}

RunControl cancelled_control() {
  RunControl control;
  control.cancel = CancelToken::make();
  control.cancel.request_cancel();
  return control;
}

TEST(AverageRewardControl, PreCancelledReturnsWithoutASweep) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.control = cancelled_control();
  const mdp::GainResult result = mdp::maximize_average_reward(model, config);
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  EXPECT_FALSE(result.converged());
  EXPECT_EQ(result.sweeps(), 0);
}

TEST(AverageRewardControl, TickBudgetCapsSweeps) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.average_reward.tolerance = 1e-300;  // unreachable: only the budget can stop it
  config.control.budget = RunBudget::ticks(3);
  const mdp::GainResult result = mdp::maximize_average_reward(model, config);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_FALSE(result.converged());
  EXPECT_LE(result.sweeps(), 3);
  // The partial result is still usable: a policy for every state.
  EXPECT_EQ(result.policy.action.size(), model.num_states());
  EXPECT_GE(result.elapsed_seconds(), 0.0);
}

TEST(AverageRewardControl, UnlimitedControlStillConverges) {
  const Model model = make_alternator(1.0, 3.0);
  const mdp::GainResult result = mdp::maximize_average_reward(model);
  EXPECT_EQ(result.status, RunStatus::kConverged);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(result.gain, 2.0, 1e-6);
}

TEST(DiscountedControl, PreCancelledReturnsWithoutASweep) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.control = cancelled_control();
  const mdp::DiscountedResult result = mdp::solve_discounted(model, config);
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  EXPECT_EQ(result.sweeps(), 0);
}

TEST(DiscountedControl, TickBudgetCapsSweeps) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.discounted.tolerance = 1e-300;
  config.control.budget = RunBudget::ticks(5);
  const mdp::DiscountedResult result = mdp::solve_discounted(model, config);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_LE(result.sweeps(), 5);
  EXPECT_EQ(result.policy.action.size(), model.num_states());
}

TEST(PolicyIterationControl, PreCancelledReturnsTotalPolicy) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.control = cancelled_control();
  const mdp::PolicyIterationResult result =
      mdp::policy_iteration(model, config);
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  EXPECT_EQ(result.improvements(), 0);
  // Even without a single evaluation the returned policy covers all states.
  EXPECT_EQ(result.policy.action.size(), model.num_states());
}

TEST(PolicyIterationControl, UnlimitedControlStillConverges) {
  const Model model = make_alternator(1.0, 3.0);
  const mdp::PolicyIterationResult result = mdp::policy_iteration(model);
  EXPECT_EQ(result.status, RunStatus::kConverged);
  EXPECT_NEAR(result.gain, 2.0, 1e-9);
}

// --------------------------------------------------------- ratio solver ---

TEST(RatioControl, ConvergedSolveCarriesDiagnostics) {
  const Model model = make_alternator(1.0, 3.0);  // ratio = gain = 2
  mdp::SolverConfig config;
  config.ratio.upper_bound = 10.0;
  const mdp::RatioResult result = mdp::maximize_ratio(model, config);
  EXPECT_EQ(result.status, RunStatus::kConverged);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(result.ratio, 2.0, 1e-5);
  EXPECT_GT(result.diagnostics.outer_iterations, 0);
  EXPECT_GT(result.diagnostics.inner_solves, 0);
  EXPECT_GT(result.diagnostics.inner_sweeps, 0);
  EXPECT_EQ(result.diagnostics.rho_trajectory.size(),
            static_cast<std::size_t>(result.diagnostics.outer_iterations));
  EXPECT_EQ(result.diagnostics.residual_trajectory.size(),
            result.diagnostics.rho_trajectory.size());
  EXPECT_GE(result.diagnostics.elapsed_seconds, 0.0);
  EXPECT_EQ(result.diagnostics.retries, 0);
}

TEST(RatioControl, PreCancelledReturnsCancelled) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.ratio.upper_bound = 10.0;
  config.control = cancelled_control();
  const mdp::RatioResult result = mdp::maximize_ratio(model, config);
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  EXPECT_FALSE(result.converged());
  EXPECT_EQ(result.iterations, 0);
  EXPECT_EQ(result.diagnostics.inner_solves, 0);  // not even one inner solve
}

TEST(RatioControl, DeadlineStarvedSolveReturnsUsablePartialPolicy) {
  // The acceptance scenario: a real (setting-2, ~10k states) model, a
  // tolerance far below what 100 ms of work can reach, and a 100 ms
  // deadline. The solve must come back quickly, flagged kBudgetExhausted,
  // with a best-effort policy covering every state.
  bu::AttackParams params;
  params.alpha = 0.20;
  params.beta = 0.32;
  params.gamma = 0.48;
  params.setting = bu::Setting::kStickyGate;
  const bu::AttackModel attack =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);

  mdp::SolverConfig config;
  config.ratio.tolerance = 1e-14;
  config.average_reward.tolerance = 1e-14;
  config.control.budget = RunBudget::deadline(0.1);
  const mdp::RatioResult result =
      mdp::maximize_ratio(attack.model, config);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_FALSE(result.converged());
  EXPECT_EQ(result.policy.action.size(), attack.model.num_states());
  // The deadline binds the nested solves too, not just the outer loop: the
  // whole thing must end well before an unbudgeted solve would (seconds).
  EXPECT_LT(result.diagnostics.elapsed_seconds, 2.0);
}

TEST(RatioControl, RetryEscalatesAStalledSolve) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.ratio.upper_bound = 10.0;
  config.ratio.max_iterations = 1;  // guaranteed to stall on the first attempt
  {
    const mdp::RatioResult single = mdp::maximize_ratio(model, config);
    ASSERT_EQ(single.status, RunStatus::kToleranceStalled);
  }
  const mdp::RatioResult result =
      mdp::maximize_ratio_with_retry(model, config);
  EXPECT_GE(result.diagnostics.retries, 1);
  EXPECT_EQ(result.status, RunStatus::kConverged);
  EXPECT_NEAR(result.ratio, 2.0, 1e-5);
}

TEST(RatioControl, RetryRespectsTheRetryCap) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.ratio.upper_bound = 10.0;
  config.ratio.max_iterations = 1;
  robust::RetryPolicy retry;
  retry.max_retries = 0;
  retry.iteration_growth_factor = 1.0;
  const mdp::RatioResult result =
      mdp::maximize_ratio_with_retry(model, config, retry);
  EXPECT_EQ(result.status, RunStatus::kToleranceStalled);
  EXPECT_EQ(result.diagnostics.retries, 0);
}

TEST(RatioControl, RetryDoesNotRetryExhaustedBudgets) {
  bu::AttackParams params;
  params.alpha = 0.20;
  params.beta = 0.32;
  params.gamma = 0.48;
  params.setting = bu::Setting::kStickyGate;
  const bu::AttackModel attack =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
  mdp::SolverConfig config;
  config.ratio.tolerance = 1e-14;
  config.average_reward.tolerance = 1e-14;
  config.control.budget = RunBudget::deadline(0.05);
  const mdp::RatioResult result =
      mdp::maximize_ratio_with_retry(attack.model, config);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_EQ(result.diagnostics.retries, 0);
}

TEST(RatioControl, RetryDoesNotRetryCancellation) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.ratio.upper_bound = 10.0;
  config.control = cancelled_control();
  const mdp::RatioResult result =
      mdp::maximize_ratio_with_retry(model, config);
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  EXPECT_EQ(result.diagnostics.retries, 0);
}

// -------------------------------------------------------------- rollout ---

TEST(RolloutControl, TickBudgetStopsEarlyWithPartialTotals) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::Policy policy;
  policy.action.assign(2, 0);
  Rng rng(1);
  robust::RunControl control;
  control.budget = RunBudget::ticks(10);
  const mdp::ModelRolloutResult result =
      mdp::rollout_model(model, policy, 0, 1000, rng, control);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_EQ(result.steps, 10u);
  EXPECT_DOUBLE_EQ(result.weight_total, 10.0);  // den stream pays 1 per step
}

TEST(RolloutControl, PreCancelledRunsNoSteps) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::Policy policy;
  policy.action.assign(2, 0);
  Rng rng(1);
  const mdp::ModelRolloutResult result =
      mdp::rollout_model(model, policy, 0, 1000, rng, cancelled_control());
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  EXPECT_EQ(result.steps, 0u);
}

TEST(RolloutControl, FullRunIsConverged) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::Policy policy;
  policy.action.assign(2, 0);
  Rng rng(1);
  const mdp::ModelRolloutResult result =
      mdp::rollout_model(model, policy, 0, 1000, rng);
  EXPECT_EQ(result.status, RunStatus::kConverged);
  EXPECT_EQ(result.steps, 1000u);
  EXPECT_NEAR(result.ratio(), 2.0, 1e-9);  // deterministic alternator
}

// ----------------------------------------------------------- simulators ---

TEST(NetworkSimControl, PreCancelledMinesNothing) {
  sim::NetworkConfig config;
  for (int i = 0; i < 2; ++i) {
    sim::NetMiner m;
    m.name = "m" + std::to_string(i);
    m.power = 0.5;
    config.miners.push_back(m);
  }
  sim::NetworkSimulation simulation(config);
  Rng rng(1);
  const sim::NetworkResult result =
      simulation.run(1000, rng, cancelled_control());
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  EXPECT_EQ(result.blocks_mined, 0u);
}

TEST(NetworkSimControl, TickBudgetStopsEarlyWithConsistentAccounting) {
  sim::NetworkConfig config;
  for (int i = 0; i < 2; ++i) {
    sim::NetMiner m;
    m.name = "m" + std::to_string(i);
    m.power = 0.5;
    config.miners.push_back(m);
  }
  sim::NetworkSimulation simulation(config);
  Rng rng(1);
  robust::RunControl control;
  control.budget = RunBudget::ticks(100);
  const sim::NetworkResult result = simulation.run(10'000, rng, control);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_LT(result.blocks_mined, 10'000u);
  // Whatever prefix was simulated is fully accounted for.
  std::uint64_t settled = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    settled += result.locked_per_miner[i] + result.orphaned_per_miner[i];
  }
  EXPECT_EQ(settled, result.blocks_mined);
}

TEST(ForkSimControl, PreCancelledMinesNothing) {
  sim::ForkSimConfig config;
  for (int i = 0; i < 2; ++i) {
    sim::SimMiner m;
    m.name = "m" + std::to_string(i);
    m.power = 0.5;
    m.block_size = m.rule.mg;
    config.miners.push_back(m);
  }
  sim::ForkSimulation simulation(config);
  Rng rng(1);
  const sim::ForkSimResult result =
      simulation.run(1000, rng, cancelled_control());
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  EXPECT_EQ(result.blocks_mined, 0u);
}

TEST(ForkSimControl, TickBudgetStopsEarly) {
  sim::ForkSimConfig config;
  for (int i = 0; i < 2; ++i) {
    sim::SimMiner m;
    m.name = "m" + std::to_string(i);
    m.power = 0.5;
    m.block_size = m.rule.mg;
    config.miners.push_back(m);
  }
  sim::ForkSimulation simulation(config);
  Rng rng(1);
  robust::RunControl control;
  control.budget = RunBudget::ticks(25);
  const sim::ForkSimResult result = simulation.run(1000, rng, control);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_EQ(result.blocks_mined, 25u);
}

// ------------------------------------------------------- analysis layer ---

TEST(AnalysisControl, StatusAndDiagnosticsPropagate) {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.375;
  params.gamma = 0.375;
  const bu::AnalysisResult result =
      bu::analyze(params, bu::Utility::kRelativeRevenue);
  EXPECT_EQ(result.status, RunStatus::kConverged);
  EXPECT_TRUE(result.converged());
  EXPECT_GT(result.diagnostics.inner_solves, 0);
  EXPECT_GE(result.diagnostics.elapsed_seconds, 0.0);
}

TEST(AnalysisControl, DeadlineStarvedAnalysisReportsExhaustion) {
  bu::AttackParams params;
  params.alpha = 0.20;
  params.beta = 0.32;
  params.gamma = 0.48;
  params.setting = bu::Setting::kStickyGate;
  bu::AnalysisOptions options;
  options.tolerance = 1e-14;
  options.inner.tolerance = 1e-14;
  options.control.budget = RunBudget::deadline(0.1);
  const bu::AnalysisResult result =
      bu::analyze(params, bu::Utility::kRelativeRevenue, options);
  EXPECT_EQ(result.status, RunStatus::kBudgetExhausted);
  EXPECT_FALSE(result.converged());
  EXPECT_EQ(result.diagnostics.retries, 0);  // budget exhaustion: no retry
}

}  // namespace
