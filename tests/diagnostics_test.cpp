// SolveDiagnostics trajectory tests: the rho / residual trajectories the
// ratio solver records must be a faithful per-outer-iteration log — one
// entry per outer step, residuals (bracket widths) never widening — on both
// the Dinkelbach fast path and the bisection fallback. The observability
// layer (span args, docs/OBSERVABILITY.md) and the bench CSVs both read
// these fields, so their shape is a contract, not a debugging nicety.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "mdp/model.hpp"
#include "mdp/ratio.hpp"
#include "mdp/solver_config.hpp"
#include "robust/retry.hpp"
#include "robust/run_control.hpp"

namespace {

using namespace bvc;
using mdp::Model;
using mdp::ModelBuilder;

/// Two-state alternator: reward rate (r0 + r1)/2, weight rate 1 per step,
/// so the optimal ratio equals the gain (r0 + r1)/2.
Model make_alternator(double r0, double r1) {
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0, r0, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0, r1, 1.0);
  return builder.build();
}

/// One state, two self-loops. Action 0 carries weight below the
/// min_weight_rate floor set by the test (a numerically degenerate
/// denominator); action 1 is an ordinary policy with ratio -1. With a
/// bracket starting below -1, Dinkelbach first certifies action 1, then
/// the degenerate action wins the linearized problem and forces the solver
/// into its bisection fallback.
Model make_thin_denominator() {
  ModelBuilder builder(1);
  builder.begin_action(0, 0);
  builder.add_outcome(0, 1.0, 0.0, 0.1);
  builder.begin_action(0, 1);
  builder.add_outcome(0, 1.0, -1.0, 1.0);
  return builder.build();
}

void expect_trajectories_consistent(const robust::SolveDiagnostics& d) {
  ASSERT_GT(d.outer_iterations, 0);
  EXPECT_EQ(d.rho_trajectory.size(),
            static_cast<std::size_t>(d.outer_iterations));
  EXPECT_EQ(d.residual_trajectory.size(),
            static_cast<std::size_t>(d.outer_iterations));
  for (std::size_t i = 1; i < d.residual_trajectory.size(); ++i) {
    // The residual is the bracket width hi - lo: lo only rises and hi only
    // falls, so the recorded sequence must be non-increasing.
    EXPECT_LE(d.residual_trajectory[i], d.residual_trajectory[i - 1] + 1e-12)
        << "bracket widened at outer iteration " << i;
  }
  for (const double residual : d.residual_trajectory) {
    EXPECT_GE(residual, 0.0);
  }
}

TEST(SolveDiagnostics, TrajectoryLengthsMatchOuterIterationsWhenConverged) {
  const Model model = make_alternator(1.0, 3.0);  // ratio 2
  mdp::SolverConfig config;
  config.ratio.upper_bound = 10.0;
  const mdp::RatioResult result = mdp::maximize_ratio(model, config);
  ASSERT_EQ(result.status, robust::RunStatus::kConverged);
  EXPECT_FALSE(result.used_bisection);
  EXPECT_NEAR(result.ratio, 2.0, 1e-5);
  expect_trajectories_consistent(result.diagnostics);
  // The final residual must witness the claimed convergence: either the
  // bracket closed below tolerance or the Dinkelbach fixed point was hit
  // (in which case the last recorded rho equals the reported ratio).
  EXPECT_NEAR(result.diagnostics.rho_trajectory.back(), result.ratio, 1e-5);
}

TEST(SolveDiagnostics, ResidualsMonotoneNonIncreasingUnderBisection) {
  const Model model = make_thin_denominator();
  mdp::SolverConfig config;
  config.ratio.lower_bound = -5.0;
  config.ratio.upper_bound = 0.0;
  // Declare denominator rates below 0.2 numerically degenerate: action 0's
  // rate of 0.1 then triggers the Dinkelbach stall and the solver must
  // finish the bracket by bisection.
  config.ratio.min_weight_rate = 0.2;
  const mdp::RatioResult result = mdp::maximize_ratio(model, config);
  ASSERT_TRUE(result.used_bisection)
      << "test model failed to force the bisection fallback (status "
      << robust::to_string(result.status) << ")";
  ASSERT_TRUE(robust::is_success(result.status) ||
              result.status == robust::RunStatus::kDegenerateModel)
      << robust::to_string(result.status);
  expect_trajectories_consistent(result.diagnostics);
  // Bisection halves the bracket every step, so beyond the Dinkelbach
  // prefix the trajectory must actually shrink, not merely not grow.
  const std::vector<double>& residuals = result.diagnostics.residual_trajectory;
  ASSERT_GE(residuals.size(), 4u);
  EXPECT_LT(residuals.back(), residuals.front());
  EXPECT_LE(residuals.back(), config.ratio.tolerance * (1.0 + 5.0));
  // The certified policy is the non-degenerate action found before the
  // stall; diagnostics must count the inner work both phases performed.
  EXPECT_GT(result.diagnostics.inner_solves, 2);
  EXPECT_GT(result.diagnostics.inner_sweeps, 0);
}

TEST(SolveDiagnostics, RetryPathAccumulatesAcrossAttempts) {
  const Model model = make_alternator(1.0, 3.0);
  mdp::SolverConfig config;
  config.ratio.upper_bound = 10.0;
  const mdp::RatioResult plain = mdp::maximize_ratio(model, config);
  const mdp::RatioResult retried =
      mdp::maximize_ratio_with_retry(model, config, robust::RetryPolicy{});
  // A first-try convergence must not fabricate retries, and the aggregated
  // diagnostics still describe exactly one attempt.
  EXPECT_EQ(retried.diagnostics.retries, 0);
  EXPECT_EQ(retried.diagnostics.outer_iterations,
            plain.diagnostics.outer_iterations);
  EXPECT_EQ(retried.diagnostics.inner_solves, plain.diagnostics.inner_solves);
}

}  // namespace
