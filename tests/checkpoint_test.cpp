// Crash-safe sweep checkpointing (robust/checkpoint.hpp), the shard
// supervisor's building blocks (robust/supervisor.hpp, robust/retry.hpp),
// and the checkpointed batch engine (mdp::run_batch + BatchCheckpoint).
// Registered under the `shard` ctest label together with the end-to-end
// kill-and-resume script test (scripts/check_resume.sh).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bu/attack_analysis.hpp"
#include "btc/selfish_mining.hpp"
#include "counter/voting_simulation.hpp"
#include "mdp/batch.hpp"
#include "robust/checkpoint.hpp"
#include "robust/retry.hpp"
#include "robust/run_control.hpp"
#include "robust/supervisor.hpp"

namespace {

using namespace bvc;
using robust::CheckpointJournal;
using robust::CheckpointRecord;
using robust::RunStatus;

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + "bvc_ckpt_" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

CheckpointRecord make_record(std::string key, double value) {
  CheckpointRecord record;
  record.key = std::move(key);
  record.values.emplace_back("value", value);
  return record;
}

// ---------------------------------------------------------------------------
// JSONL record serialization

TEST(CheckpointRecord, JsonlRoundTripIsExact) {
  CheckpointRecord record;
  record.key = "attack|alpha=0.29999999999999999|u=rel";  // key uses | and =
  record.status = RunStatus::kConverged;
  record.values.emplace_back("third", 1.0 / 3.0);
  record.values.emplace_back("neg", -0.0);
  // Smallest-magnitude NORMAL doubles round-trip; subnormals are rejected
  // by the strict parser (strtod underflow), which degrades to recompute.
  record.values.emplace_back("tiny", 2.2250738585072014e-308);
  record.values.emplace_back("big", 12345.678901234567);
  record.policy = {0, 1, 3, 2};

  const std::string line = to_jsonl(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);

  const auto parsed = robust::parse_jsonl_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, record.key);
  EXPECT_EQ(parsed->status, record.status);
  ASSERT_EQ(parsed->values.size(), record.values.size());
  for (std::size_t i = 0; i < record.values.size(); ++i) {
    EXPECT_EQ(parsed->values[i].first, record.values[i].first);
    // %.17g round-trips every finite double bit-exactly.
    EXPECT_EQ(parsed->values[i].second, record.values[i].second) << i;
  }
  EXPECT_EQ(parsed->policy, record.policy);
}

TEST(CheckpointRecord, RoundTripsEveryStatus) {
  for (const RunStatus status :
       {RunStatus::kConverged, RunStatus::kToleranceStalled,
        RunStatus::kBudgetExhausted, RunStatus::kCancelled,
        RunStatus::kDegenerateModel}) {
    CheckpointRecord record = make_record("k", 1.0);
    record.status = status;
    const auto parsed = robust::parse_jsonl_line(to_jsonl(record));
    ASSERT_TRUE(parsed.has_value()) << to_jsonl(record);
    EXPECT_EQ(parsed->status, status);
  }
}

TEST(CheckpointRecord, ParseRejectsTornAndForeignLines) {
  const std::string good = to_jsonl(make_record("cell", 2.5));
  EXPECT_TRUE(robust::parse_jsonl_line(good).has_value());

  EXPECT_FALSE(robust::parse_jsonl_line("").has_value());
  EXPECT_FALSE(robust::parse_jsonl_line("{}").has_value());
  EXPECT_FALSE(robust::parse_jsonl_line("not json at all").has_value());
  EXPECT_FALSE(robust::parse_jsonl_line("{\"key\":\"x\"").has_value());
  // Torn write: every strict prefix of a valid line must be rejected, never
  // misparsed into a record with silently missing fields.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(robust::parse_jsonl_line(good.substr(0, len)).has_value())
        << "prefix length " << len;
  }
  // Unknown status names are malformed, not defaulted.
  std::string bad_status = good;
  const auto pos = bad_status.find("converged");
  ASSERT_NE(pos, std::string::npos);
  bad_status.replace(pos, 9, "exploded!");
  EXPECT_FALSE(robust::parse_jsonl_line(bad_status).has_value());
}

// ---------------------------------------------------------------------------
// Journal persistence

TEST(CheckpointJournal, AppendFlushReload) {
  const std::string path = temp_path("append_reload.jsonl");
  {
    CheckpointJournal journal(path);
    EXPECT_TRUE(journal.enabled());
    EXPECT_EQ(journal.load(), 0u);  // missing file = empty, not an error
    journal.append(make_record("a", 1.5));
    journal.append(make_record("b", -2.25));
    journal.append(make_record("c", 1e-17));
    EXPECT_EQ(journal.appended(), 3u);
  }  // destructor flushes

  CheckpointJournal reloaded(path);
  EXPECT_EQ(reloaded.load(), 3u);
  EXPECT_EQ(reloaded.skipped_lines(), 0u);
  EXPECT_TRUE(reloaded.contains("a"));
  const auto record = reloaded.lookup("b");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->value_or("value", 0.0), -2.25);
  EXPECT_FALSE(reloaded.contains("missing"));
  EXPECT_EQ(reloaded.lookup("missing"), std::nullopt);
}

TEST(CheckpointJournal, DisabledJournalIsInert) {
  CheckpointJournal journal;
  EXPECT_FALSE(journal.enabled());
  journal.append(make_record("a", 1.0));
  EXPECT_TRUE(journal.flush());
  EXPECT_FALSE(journal.contains("a"));
}

TEST(CheckpointJournal, FsyncBatchBuffersUntilThreshold) {
  const std::string path = temp_path("fsync_batch.jsonl");
  robust::JournalOptions options;
  options.fsync_batch = 3;
  CheckpointJournal journal(path, options);
  journal.append(make_record("a", 1.0));
  journal.append(make_record("b", 2.0));
  // Two appends < fsync_batch: nothing durable yet.
  EXPECT_FALSE(std::ifstream(path).good());
  // The in-memory index still serves resumes immediately.
  EXPECT_TRUE(journal.contains("b"));

  journal.append(make_record("c", 3.0));  // third append triggers the flush
  CheckpointJournal reader(path);
  EXPECT_EQ(reader.load(), 3u);
}

TEST(CheckpointJournal, LoadLastWinsOnDuplicateKeys) {
  const std::string path = temp_path("duplicates.jsonl");
  {
    std::ofstream out(path);
    out << to_jsonl(make_record("cell", 1.0)) << '\n';
    out << to_jsonl(make_record("cell", 99.0)) << '\n';
  }
  CheckpointJournal journal(path);
  journal.load();
  const auto record = journal.lookup("cell");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->value_or("value", 0.0), 99.0);
}

TEST(CheckpointJournal, LoadSkipsMalformedLines) {
  const std::string path = temp_path("torn.jsonl");
  {
    std::ofstream out(path);
    out << to_jsonl(make_record("good1", 1.0)) << '\n';
    out << "### corrupted by a foreign tool ###\n";
    const std::string torn = to_jsonl(make_record("torn", 3.0));
    out << torn.substr(0, torn.size() / 2) << '\n';  // raw-append crash tail
    out << to_jsonl(make_record("good2", 2.0)) << '\n';
  }
  CheckpointJournal journal(path);
  EXPECT_EQ(journal.load(), 2u);
  EXPECT_EQ(journal.skipped_lines(), 2u);
  EXPECT_TRUE(journal.contains("good1"));
  EXPECT_TRUE(journal.contains("good2"));
  EXPECT_FALSE(journal.contains("torn"));
}

TEST(CheckpointJournal, MergeFirstOccurrenceWins) {
  const std::string shard0 = temp_path("merge_shard0.jsonl");
  const std::string shard1 = temp_path("merge_shard1.jsonl");
  const std::string missing = temp_path("merge_missing.jsonl");
  const std::string out_path = temp_path("merge_out.jsonl");
  {
    std::ofstream a(shard0);
    a << to_jsonl(make_record("k1", 1.0)) << '\n';
    a << to_jsonl(make_record("k2", 2.0)) << '\n';
    std::ofstream b(shard1);
    b << to_jsonl(make_record("k2", 99.0)) << '\n';  // duplicate, dropped
    b << "garbage line\n";
    b << to_jsonl(make_record("k3", 3.0)) << '\n';
  }
  const std::vector<std::string> inputs = {shard0, shard1, missing};
  const robust::MergeReport report = robust::merge_journals(inputs, out_path);
  EXPECT_EQ(report.inputs, 2u);  // the missing shard journal is skipped
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.duplicates, 1u);
  EXPECT_EQ(report.malformed_lines, 1u);

  // The merged output is itself a resumable journal.
  CheckpointJournal merged(out_path);
  EXPECT_EQ(merged.load(), 3u);
  const auto k2 = merged.lookup("k2");
  ASSERT_TRUE(k2.has_value());
  EXPECT_EQ(k2->value_or("value", 0.0), 2.0);  // shard order, first wins
}

// ---------------------------------------------------------------------------
// Shard partition

TEST(ShardSpec, ParsesValidAndRejectsInvalid) {
  const auto ok = robust::ShardSpec::parse("1/4");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->index, 1);
  EXPECT_EQ(ok->count, 4);
  EXPECT_EQ(ok->to_string(), "1/4");
  EXPECT_TRUE(robust::ShardSpec::parse("0/1").has_value());

  for (const char* bad :
       {"", "4/4", "5/4", "-1/4", "1/0", "1/-2", "x/4", "1/y", "1", "1/2/3"}) {
    EXPECT_FALSE(robust::ShardSpec::parse(bad).has_value()) << bad;
  }
}

TEST(ShardSpec, RoundRobinPartitionIsDisjointAndComplete) {
  constexpr int kShards = 3;
  constexpr std::size_t kCells = 32;
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    int owners = 0;
    for (int shard = 0; shard < kShards; ++shard) {
      if (robust::ShardSpec{shard, kShards}.owns(cell)) {
        ++owners;
      }
    }
    EXPECT_EQ(owners, 1) << "cell " << cell;
  }
  // A single-shard spec owns everything.
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    EXPECT_TRUE((robust::ShardSpec{0, 1}.owns(cell)));
  }
}

// ---------------------------------------------------------------------------
// Backoff policy

TEST(BackoffPolicy, DelaysCompoundAndSaturateAtCap) {
  robust::BackoffPolicy policy;
  policy.initial_delay_seconds = 1.0;
  policy.multiplier = 10.0;
  policy.max_delay_seconds = 5.0;
  EXPECT_EQ(policy.delay_for_attempt(0), 1.0);
  EXPECT_EQ(policy.delay_for_attempt(1), 5.0);  // 10 clamped to the cap
  EXPECT_EQ(policy.delay_for_attempt(2), 5.0);  // saturated, no overflow
  EXPECT_EQ(policy.delay_for_attempt(50), 5.0);
}

TEST(BackoffPolicy, DegenerateInputsYieldZeroDelay) {
  robust::BackoffPolicy policy;
  EXPECT_EQ(policy.delay_for_attempt(-1), 0.0);
  policy.initial_delay_seconds = 0.0;
  EXPECT_EQ(policy.delay_for_attempt(0), 0.0);
  policy.initial_delay_seconds = 1.0;
  policy.max_delay_seconds = -3.0;  // negative cap clamps to zero, not -3
  EXPECT_EQ(policy.delay_for_attempt(0), 0.0);
}

TEST(BackoffPolicy, WaitReturnsImmediatelyOnZeroDelay) {
  robust::BackoffPolicy policy;
  policy.initial_delay_seconds = 0.0;
  const robust::CancelToken cancel = robust::CancelToken::make();
  EXPECT_TRUE(robust::backoff_wait(policy, 0, cancel));
}

TEST(BackoffPolicy, WaitAbortsWhenLinkedTokenFiresMidBackoff) {
  robust::BackoffPolicy policy;
  policy.initial_delay_seconds = 30.0;  // far beyond any test budget
  const robust::CancelToken parent = robust::CancelToken::make();
  const robust::CancelToken child = robust::CancelToken::make_linked(parent);

  std::thread firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    parent.request_cancel();  // cancelling the parent reaches the child
  });
  const auto begin = std::chrono::steady_clock::now();
  const bool completed = robust::backoff_wait(policy, 0, child);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  firer.join();
  EXPECT_FALSE(completed);  // the caller must abandon the retry
  EXPECT_LT(waited, 10.0);  // aborted the 30 s sleep, not served it out
}

// ---------------------------------------------------------------------------
// Crash injection plan

TEST(CrashPlan, ReadsEnvironmentHooks) {
  ::unsetenv("BVC_CRASH_AFTER_CELLS");
  ::unsetenv("BVC_CRASH_SHARD");
  EXPECT_FALSE(robust::crash_plan_from_env().armed_for(0));

  ::setenv("BVC_CRASH_AFTER_CELLS", "3", 1);
  robust::CrashPlan plan = robust::crash_plan_from_env();
  EXPECT_EQ(plan.crash_after_appends, 3u);
  EXPECT_TRUE(plan.armed_for(-1));  // unsharded process
  EXPECT_TRUE(plan.armed_for(2));   // any shard

  ::setenv("BVC_CRASH_SHARD", "1", 1);
  plan = robust::crash_plan_from_env();
  EXPECT_TRUE(plan.armed_for(1));
  EXPECT_FALSE(plan.armed_for(0));  // only the named shard crashes

  ::unsetenv("BVC_CRASH_AFTER_CELLS");
  ::unsetenv("BVC_CRASH_SHARD");
}

// ---------------------------------------------------------------------------
// Checkpointed batch engine

mdp::BatchCheckpoint numbered_checkpoint(CheckpointJournal& journal,
                                         std::vector<double>& results) {
  mdp::BatchCheckpoint checkpoint;
  checkpoint.journal = &journal;
  checkpoint.cell_key = [](std::size_t i) {
    return "cell-" + std::to_string(i);
  };
  checkpoint.restore = [&results](std::size_t i,
                                  const CheckpointRecord& record) {
    if (!record.has_value("value")) {
      return false;
    }
    results[i] = record.value_or("value", 0.0);
    return true;
  };
  checkpoint.snapshot = [&results](std::size_t i) {
    return make_record("cell-" + std::to_string(i), results[i]);
  };
  return checkpoint;
}

TEST(CheckpointedBatch, JournalsOnFirstRunResumesOnSecond) {
  const std::string path = temp_path("batch_resume.jsonl");
  constexpr std::size_t kCells = 5;
  const auto run_item = [](std::vector<double>& results, std::atomic<int>& n) {
    return [&results, &n](std::size_t i, const robust::RunControl&) {
      ++n;
      results[i] = static_cast<double>(i) * 2.5;
      return RunStatus::kConverged;
    };
  };
  const auto skip_item = [](std::size_t, RunStatus) {};

  std::vector<double> first(kCells, -1.0);
  {
    CheckpointJournal journal(path);
    journal.load();
    std::atomic<int> runs{0};
    const mdp::BatchReport report =
        mdp::run_batch(kCells, {}, numbered_checkpoint(journal, first),
                       run_item(first, runs), skip_item);
    EXPECT_EQ(runs.load(), static_cast<int>(kCells));
    EXPECT_EQ(report.items_resumed, 0u);
    EXPECT_EQ(journal.appended(), kCells);  // every success journaled
  }

  // Second run: everything restores from the journal, nothing recomputes.
  std::vector<double> second(kCells, -1.0);
  CheckpointJournal journal(path);
  EXPECT_EQ(journal.load(), kCells);
  std::atomic<int> runs{0};
  const mdp::BatchReport report =
      mdp::run_batch(kCells, {}, numbered_checkpoint(journal, second),
                     run_item(second, runs), skip_item);
  EXPECT_EQ(runs.load(), 0);
  EXPECT_EQ(report.items_resumed, kCells);
  EXPECT_EQ(report.status, RunStatus::kConverged);
  EXPECT_EQ(second, first);
}

TEST(CheckpointedBatch, FailedRestoreFallsBackToRecompute) {
  const std::string path = temp_path("batch_stale.jsonl");
  constexpr std::size_t kCells = 3;
  {
    // A stale journal whose middle record lost its value (schema drift).
    std::ofstream out(path);
    out << to_jsonl(make_record("cell-0", 0.0)) << '\n';
    CheckpointRecord hollow;
    hollow.key = "cell-1";
    out << to_jsonl(hollow) << '\n';
    out << to_jsonl(make_record("cell-2", 5.0)) << '\n';
  }
  CheckpointJournal journal(path);
  journal.load();
  std::vector<double> results(kCells, -1.0);
  std::atomic<int> runs{0};
  const mdp::BatchReport report = mdp::run_batch(
      kCells, {}, numbered_checkpoint(journal, results),
      [&](std::size_t i, const robust::RunControl&) {
        ++runs;
        results[i] = static_cast<double>(i) * 2.5;
        return RunStatus::kConverged;
      },
      [](std::size_t, RunStatus) {});
  EXPECT_EQ(runs.load(), 1);  // only the hollow record recomputes
  EXPECT_EQ(report.items_resumed, kCells - 1);
  EXPECT_EQ(results[1], 2.5);
}

TEST(CheckpointedBatch, ShardFilterExcludesForeignCells) {
  const std::string path = temp_path("batch_shard.jsonl");
  constexpr std::size_t kCells = 6;
  const robust::ShardSpec shard{1, 2};  // owns the odd cells
  CheckpointJournal journal(path);
  std::vector<double> results(kCells, 0.0);
  mdp::BatchCheckpoint checkpoint = numbered_checkpoint(journal, results);
  checkpoint.include = [shard](std::size_t i) { return shard.owns(i); };
  checkpoint.exclude = [&results](std::size_t i) { results[i] = -1.0; };

  const mdp::BatchReport report = mdp::run_batch(
      kCells, {}, checkpoint,
      [&results](std::size_t i, const robust::RunControl&) {
        results[i] = static_cast<double>(i);
        return RunStatus::kConverged;
      },
      [](std::size_t, RunStatus) {});

  EXPECT_EQ(report.items_excluded, kCells / 2);
  EXPECT_EQ(report.items_converged, kCells / 2);
  EXPECT_EQ(report.status, RunStatus::kConverged);
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(results[i], shard.owns(i) ? static_cast<double>(i) : -1.0) << i;
  }
  // Only owned cells reach the journal — merging shard journals can never
  // collide on a key.
  EXPECT_EQ(journal.appended(), kCells / 2);
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_EQ(journal.contains("cell-" + std::to_string(i)), shard.owns(i));
  }
}

TEST(CheckpointedBatch, OnlySuccessfulCellsAreJournaled) {
  const std::string path = temp_path("batch_failures.jsonl");
  CheckpointJournal journal(path);
  std::vector<double> results(2, 0.0);
  const mdp::BatchReport report = mdp::run_batch(
      2, {}, numbered_checkpoint(journal, results),
      [&results](std::size_t i, const robust::RunControl&) {
        results[i] = 1.0;
        return i == 0 ? RunStatus::kConverged : RunStatus::kDegenerateModel;
      },
      [](std::size_t, RunStatus) {});
  EXPECT_EQ(report.status, RunStatus::kDegenerateModel);  // worst status
  EXPECT_EQ(journal.appended(), 1u);
  EXPECT_TRUE(journal.contains("cell-0"));
  EXPECT_FALSE(journal.contains("cell-1"));  // a resume retries the failure
}

// ---------------------------------------------------------------------------
// Shard supervisor (cheap /bin/sh workers; the real-bench path is covered
// end-to-end by scripts/check_resume.sh)

robust::WorkerSpawn shell_worker(const std::string& command,
                                 const std::string& tag) {
  robust::WorkerSpawn spawn;
  spawn.argv = {"/bin/sh", "-c", command};
  spawn.log_path = temp_path("supervisor_" + tag + ".log");
  spawn.journal_path = temp_path("supervisor_" + tag + ".jsonl");
  return spawn;
}

TEST(Supervisor, CleanWorkersCompleteWithoutRestarts) {
  const std::vector<robust::WorkerSpawn> workers = {
      shell_worker("exit 0", "clean0"), shell_worker("exit 0", "clean1")};
  robust::SupervisorOptions options;
  options.backoff.initial_delay_seconds = 0.01;
  const robust::SupervisorReport report =
      robust::supervise_shards(workers, options);
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.total_restarts, 0);
  EXPECT_FALSE(report.cancelled);
}

TEST(Supervisor, ZeroRetryBudgetGivesUpAfterFirstCrash) {
  const std::vector<robust::WorkerSpawn> workers = {
      shell_worker("exit 7", "zeroretry")};
  robust::SupervisorOptions options;
  options.backoff.max_retries = 0;  // never restart
  options.backoff.initial_delay_seconds = 0.01;
  const robust::SupervisorReport report =
      robust::supervise_shards(workers, options);
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_FALSE(report.all_completed());
  EXPECT_TRUE(report.shards[0].gave_up);
  EXPECT_EQ(report.shards[0].restarts, 0);
  EXPECT_EQ(report.shards[0].last_exit_code, 7);
  EXPECT_EQ(report.total_restarts, 0);
}

TEST(Supervisor, RestartsCrashedWorkerUntilItSucceeds) {
  // First incarnation crashes, the respawn finds the marker and exits 0 —
  // exactly the journal-backed resume pattern the supervisor exists for.
  const std::string marker = temp_path("supervisor_marker");
  const std::vector<robust::WorkerSpawn> workers = {shell_worker(
      "if [ -f '" + marker + "' ]; then exit 0; else touch '" + marker +
          "'; exit 1; fi",
      "restart")};
  robust::SupervisorOptions options;
  options.backoff.max_retries = 3;
  options.backoff.initial_delay_seconds = 0.01;
  options.backoff.max_delay_seconds = 0.05;
  const robust::SupervisorReport report =
      robust::supervise_shards(workers, options);
  EXPECT_TRUE(report.all_completed());
  ASSERT_EQ(report.shards.size(), 1u);
  EXPECT_EQ(report.shards[0].restarts, 1);
  EXPECT_FALSE(report.shards[0].gave_up);
  EXPECT_EQ(report.total_restarts, 1);
  std::remove(marker.c_str());
}

TEST(Supervisor, CancelTokenStopsLiveWorkers) {
  const std::vector<robust::WorkerSpawn> workers = {
      shell_worker("sleep 600", "cancel")};
  robust::SupervisorOptions options;
  options.cancel = robust::CancelToken::make();
  std::thread firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    options.cancel.request_cancel();
  });
  const auto begin = std::chrono::steady_clock::now();
  const robust::SupervisorReport report =
      robust::supervise_shards(workers, options);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  firer.join();
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.all_completed());
  EXPECT_LT(waited, 60.0);  // SIGTERMed the sleeper instead of waiting it out
}

TEST(Supervisor, SelfExecutablePathIsAbsolute) {
  const std::string path = robust::self_executable_path("fallback");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), '/');  // /proc/self/exe resolves on Linux
}

// ---------------------------------------------------------------------------
// Domain record/restore roundtrips

TEST(DomainCheckpoint, AnalysisRecordRoundTrips) {
  bu::AnalysisResult result;
  result.status = RunStatus::kConverged;
  result.iterations = 17;
  result.wall_clock_ns = 123456789;
  result.utility_value = 0.34567891234567891;
  result.honest_baseline = 0.3;
  result.attack_beats_honest = true;
  result.reward_rate = 1.25;
  result.weight_rate = 3.5;
  result.policy.action = {0, 1, 2, 0};

  const CheckpointRecord record =
      bu::analysis_record("cell", result, /*persist_policy=*/true);
  bu::AnalysisResult restored;
  ASSERT_TRUE(bu::analysis_restore(record, restored));
  EXPECT_EQ(restored.status, result.status);
  EXPECT_EQ(restored.iterations, result.iterations);
  EXPECT_EQ(restored.wall_clock_ns, result.wall_clock_ns);
  EXPECT_EQ(restored.utility_value, result.utility_value);
  EXPECT_EQ(restored.honest_baseline, result.honest_baseline);
  EXPECT_TRUE(restored.attack_beats_honest);
  EXPECT_EQ(restored.reward_rate, result.reward_rate);
  EXPECT_EQ(restored.weight_rate, result.weight_rate);
  EXPECT_EQ(restored.policy.action, result.policy.action);

  // Without persist_policy the record stays small and restore leaves the
  // policy empty.
  const CheckpointRecord slim =
      bu::analysis_record("cell", result, /*persist_policy=*/false);
  EXPECT_TRUE(slim.policy.empty());
  bu::AnalysisResult slim_restored;
  ASSERT_TRUE(bu::analysis_restore(slim, slim_restored));
  EXPECT_TRUE(slim_restored.policy.action.empty());
  EXPECT_EQ(slim_restored.utility_value, result.utility_value);
}

TEST(DomainCheckpoint, AnalysisRestoreRejectsSchemaDrift) {
  CheckpointRecord hollow;
  hollow.key = "cell";
  hollow.values.emplace_back("honest_baseline", 0.3);  // utility_value gone
  bu::AnalysisResult result;
  EXPECT_FALSE(bu::analysis_restore(hollow, result));
}

TEST(DomainCheckpoint, SmRecordRoundTrips) {
  btc::SmResult result;
  result.status = RunStatus::kConverged;
  result.iterations = 9;
  result.wall_clock_ns = 42;
  result.utility_value = 0.41234567890123456;
  result.policy.action = {3, 1, 0};

  const CheckpointRecord record =
      btc::sm_record("cell", result, /*persist_policy=*/true);
  btc::SmResult restored;
  ASSERT_TRUE(btc::sm_restore(record, restored));
  EXPECT_EQ(restored.utility_value, result.utility_value);
  EXPECT_EQ(restored.iterations, result.iterations);
  EXPECT_EQ(restored.wall_clock_ns, result.wall_clock_ns);
  EXPECT_EQ(restored.policy.action, result.policy.action);

  CheckpointRecord hollow;
  hollow.key = "cell";
  btc::SmResult rejected;
  EXPECT_FALSE(btc::sm_restore(hollow, rejected));
}

TEST(DomainCheckpoint, VotingRecordRoundTripsEpochTrace) {
  counter::VotingSimResult result;
  result.status = RunStatus::kConverged;
  result.iterations = 3;
  result.wall_clock_ns = 777;
  result.final_limit = 1'300'000;
  result.increases = 3;
  result.decreases = 1;
  result.blocks = 3 * 2016;
  result.limit_per_epoch = {1'000'000, 1'100'000, 1'200'000};

  const CheckpointRecord record = counter::voting_record("cell", result);
  counter::VotingSimResult restored;
  ASSERT_TRUE(counter::voting_restore(record, restored));
  EXPECT_EQ(restored.final_limit, result.final_limit);
  EXPECT_EQ(restored.increases, result.increases);
  EXPECT_EQ(restored.decreases, result.decreases);
  EXPECT_EQ(restored.blocks, result.blocks);
  EXPECT_EQ(restored.limit_per_epoch, result.limit_per_epoch);  // in order
  EXPECT_EQ(restored.iterations, result.iterations);
}

TEST(DomainCheckpoint, JobKeysSeparateDistinctCells) {
  bu::AnalysisJob a;
  bu::AnalysisJob b = a;
  b.params.alpha = a.params.alpha + 1e-12;  // tiny change, distinct key
  EXPECT_NE(bu::analysis_job_key(a, {}), bu::analysis_job_key(b, {}));
  bu::AnalysisOptions loose;
  loose.tolerance = 1e-3;
  EXPECT_NE(bu::analysis_job_key(a, {}), bu::analysis_job_key(a, loose));

  btc::SmJob sm_a;
  btc::SmJob sm_b = sm_a;
  sm_b.tolerance = sm_a.tolerance * 0.5;
  EXPECT_NE(btc::sm_job_key(sm_a), btc::sm_job_key(sm_b));

  counter::VotingJob vote_a;
  vote_a.config.cohorts = {{1.0, 1'000'000, false}};
  counter::VotingJob vote_b = vote_a;
  vote_b.seed = vote_a.seed + 1;
  EXPECT_NE(counter::voting_job_key(vote_a), counter::voting_job_key(vote_b));
  counter::VotingJob vote_c = vote_a;
  vote_c.config.cohorts[0].adversarial = true;
  EXPECT_NE(counter::voting_job_key(vote_a), counter::voting_job_key(vote_c));
}

TEST(DomainCheckpoint, VotingBatchResumesBitIdentically) {
  const std::string path = temp_path("voting_resume.jsonl");
  counter::VoteRuleConfig rule;
  rule.epoch_length = 20;
  rule.adjust_threshold = 0.6;
  rule.veto_threshold = 0.15;
  rule.activation_delay = 2;
  rule.step = 100'000;
  rule.initial_limit = 1'000'000;
  rule.max_limit = 2'000'000;

  std::vector<counter::VotingJob> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].config.rule = rule;
    jobs[i].config.cohorts = {{0.8, 2'000'000, false},
                              {0.2, 1'000'000, i == 2}};
    jobs[i].epochs = 4;
    jobs[i].seed = 1000 + i;
  }

  std::vector<counter::VotingSimResult> computed;
  {
    CheckpointJournal journal(path);
    journal.load();
    counter::VotingCheckpoint checkpoint;
    checkpoint.journal = &journal;
    computed = counter::run_voting_batch(jobs, {}, checkpoint);
    EXPECT_EQ(journal.appended(), jobs.size());
  }

  CheckpointJournal journal(path);
  EXPECT_EQ(journal.load(), jobs.size());
  counter::VotingCheckpoint checkpoint;
  checkpoint.journal = &journal;
  const std::vector<counter::VotingSimResult> resumed =
      counter::run_voting_batch(jobs, {}, checkpoint);
  EXPECT_EQ(journal.appended(), 0u);  // nothing recomputed
  ASSERT_EQ(resumed.size(), computed.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i].final_limit, computed[i].final_limit) << i;
    EXPECT_EQ(resumed[i].blocks, computed[i].blocks) << i;
    EXPECT_EQ(resumed[i].limit_per_epoch, computed[i].limit_per_epoch) << i;
    EXPECT_EQ(resumed[i].increases, computed[i].increases) << i;
  }
}

}  // namespace
