// Policy iteration (exact dense evaluation) as an independent oracle for
// the relative-value-iteration solver, and on the paper's own models.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bu/attack_model.hpp"
#include "mdp/average_reward.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/solver_config.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using namespace bvc::mdp;

Model random_model(Rng& rng, StateId states, std::size_t actions) {
  ModelBuilder builder(states);
  for (StateId s = 0; s < states; ++s) {
    for (std::size_t a = 0; a < actions; ++a) {
      builder.begin_action(s, static_cast<ActionLabel>(a));
      std::vector<double> probs(states);
      double total = 0.0;
      for (double& p : probs) {
        p = 0.05 + rng.next_double();
        total += p;
      }
      for (StateId next = 0; next < states; ++next) {
        builder.add_outcome(next, probs[next] / total,
                            rng.next_double() * 4.0 - 1.0, 0.0);
      }
    }
  }
  return builder.build();
}

TEST(PolicyIteration, ExactEvaluationOnTwoStateChain) {
  // Alternator with rewards 1 and 3: g = 2, h(1) - h(0) satisfies
  // g + h(0) = 1 + h(1) => h(1) = 1 (with h(0) = 0).
  ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0, 1.0, 0.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0, 3.0, 0.0);
  const Model model = builder.build();
  std::vector<double> rewards = {1.0, 3.0};
  Policy policy;
  policy.action = {0, 0};
  const PolicyIterationResult result =
      evaluate_policy_exact(model, policy, rewards);
  EXPECT_NEAR(result.gain, 2.0, 1e-12);
  EXPECT_NEAR(result.bias[1], 1.0, 1e-12);
}

TEST(PolicyIteration, AgreesWithRviOnRandomModels) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const StateId states = 2 + static_cast<StateId>(rng.next_below(8));
    const std::size_t actions = 1 + rng.next_below(4);
    const Model model = random_model(rng, states, actions);

    const PolicyIterationResult exact = policy_iteration(model);
    const GainResult iterative = maximize_average_reward(model);
    EXPECT_TRUE(exact.converged());
    EXPECT_NEAR(exact.gain, iterative.gain, 1e-6) << "trial " << trial;
  }
}

TEST(PolicyIteration, ConvergesInFewImprovements) {
  Rng rng(7);
  const Model model = random_model(rng, 10, 3);
  const PolicyIterationResult result = policy_iteration(model);
  EXPECT_TRUE(result.converged());
  EXPECT_LE(result.improvements(), 20);
}

TEST(PolicyIteration, SolvesTheSetting1AttackModelExactly) {
  // The paper's setting-1 model at AD = 4 (86 states): policy iteration
  // must reproduce the RVI gain for the linearized u1 objective at the
  // optimal rho (where the gain is ~0).
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.375;
  params.gamma = 0.375;
  params.ad = 6;
  const bu::AttackModel attack =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);

  // Linearize at rho = the known optimum 0.2624: optimal gain ~ 0.
  const double rho = 0.2624;
  std::vector<double> rewards(attack.model.num_state_actions());
  for (SaIndex sa = 0; sa < rewards.size(); ++sa) {
    rewards[sa] = attack.model.expected_reward(sa) -
                  rho * attack.model.expected_weight(sa);
  }
  const PolicyIterationResult exact =
      policy_iteration(attack.model, rewards);
  const GainResult iterative =
      maximize_average_reward(attack.model, rewards);
  EXPECT_TRUE(exact.converged());
  EXPECT_NEAR(exact.gain, iterative.gain, 1e-6);
  EXPECT_NEAR(exact.gain, 0.0, 1e-3);
}

TEST(PolicyIteration, RejectsOversizedModels) {
  Rng rng(3);
  const Model model = random_model(rng, 6, 2);
  SolverConfig config;
  config.policy_iteration.max_states = 4;
  EXPECT_THROW((void)policy_iteration(model, config),
               std::invalid_argument);
}

TEST(PolicyIteration, RejectsBadPolicy) {
  Rng rng(4);
  const Model model = random_model(rng, 4, 2);
  Policy short_policy;
  short_policy.action = {0, 0};
  std::vector<double> rewards(model.num_state_actions(), 1.0);
  EXPECT_THROW(
      (void)evaluate_policy_exact(model, short_policy, rewards),
      std::invalid_argument);
}

}  // namespace
