// Property tests for the BU validity rules on randomly grown block trees.
#include <gtest/gtest.h>

#include <vector>

#include "chain/block_tree.hpp"
#include "chain/bu_validity.hpp"
#include "chain/bitcoin_validity.hpp"
#include "chain/selection.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using namespace bvc::chain;

constexpr ByteSize kMB = kMegabyte;

struct RandomChainCase {
  BlockTree tree;
  std::vector<BlockId> blocks;  // every non-genesis block
};

/// Grows a random tree whose block sizes are drawn from {0.5, 1, 2, 8, 20}
/// MB, attaching each new block to a uniformly random existing block.
RandomChainCase random_tree(Rng& rng, std::size_t blocks) {
  RandomChainCase result;
  const ByteSize sizes[] = {kMB / 2, kMB, 2 * kMB, 8 * kMB, 20 * kMB};
  for (std::size_t i = 0; i < blocks; ++i) {
    const auto parent = static_cast<BlockId>(
        rng.next_below(result.tree.size()));
    const ByteSize size = sizes[rng.next_below(5)];
    result.blocks.push_back(result.tree.add_block(parent, size, 0));
  }
  return result;
}

BuParams random_params(Rng& rng) {
  BuParams params;
  const ByteSize ebs[] = {kMB, 2 * kMB, 8 * kMB};
  params.eb = ebs[rng.next_below(3)];
  params.ad = 1 + static_cast<Height>(rng.next_below(6));
  params.gate_period = 2 + static_cast<Height>(rng.next_below(10));
  params.sticky_gate = rng.next_bernoulli(0.7);
  return params;
}

class ChainProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainProperties, AppendingNonExcessiveKeepsAcceptable) {
  // Monotonicity of the Rizun rule: extending an acceptable chain with a
  // non-excessive block keeps it acceptable (unlike the source-code rule,
  // whose counterexample lives in chain_test.cpp).
  Rng rng(GetParam());
  RandomChainCase c = random_tree(rng, 40);
  const BuNodeRule rule(random_params(rng));
  for (const BlockId id : c.blocks) {
    if (rule.evaluate(c.tree, id).verdict != ChainVerdict::kAcceptable) {
      continue;
    }
    const BlockId extended = c.tree.add_block(id, kMB / 2, 1);
    EXPECT_EQ(rule.evaluate(c.tree, extended).verdict,
              ChainVerdict::kAcceptable);
  }
}

TEST_P(ChainProperties, PendingChainsBecomeAcceptableWithDepth) {
  // Liveness: any pending chain turns acceptable after enough blocks are
  // mined on top (pending_blocks_needed is truthful).
  Rng rng(GetParam() ^ 0xFEED);
  RandomChainCase c = random_tree(rng, 30);
  const BuNodeRule rule(random_params(rng));
  for (const BlockId id : c.blocks) {
    const ChainStatus status = rule.evaluate(c.tree, id);
    if (status.verdict != ChainVerdict::kPendingDepth) {
      continue;
    }
    BlockId tip = id;
    for (Height i = 0; i + 1 < status.pending_blocks_needed; ++i) {
      tip = c.tree.add_block(tip, kMB / 2, 1);
      const ChainStatus mid = rule.evaluate(c.tree, tip);
      ASSERT_EQ(mid.verdict, ChainVerdict::kPendingDepth);
      EXPECT_EQ(*mid.pending_block, *status.pending_block);
    }
    tip = c.tree.add_block(tip, kMB / 2, 1);
    // Exactly pending_blocks_needed additional blocks resolve the *first*
    // pending excessive block. The chain is then acceptable unless a later
    // excessive block (not covered by an open gate) starts its own window.
    const ChainStatus after = rule.evaluate(c.tree, tip);
    if (after.verdict == ChainVerdict::kPendingDepth) {
      ASSERT_TRUE(after.pending_block.has_value());
      EXPECT_GT(c.tree.block(*after.pending_block).height,
                c.tree.block(*status.pending_block).height);
    } else {
      EXPECT_EQ(after.verdict, ChainVerdict::kAcceptable);
    }
  }
}

TEST_P(ChainProperties, EqualParametersImplyEqualVerdicts) {
  // Restoring a prescribed BVC: nodes with identical parameters agree on
  // every chain — BU's divergence comes only from parameter choice.
  Rng rng(GetParam() ^ 0xB0C);
  RandomChainCase c = random_tree(rng, 50);
  const BuParams params = random_params(rng);
  const BuNodeRule node_a(params);
  const BuNodeRule node_b(params);
  for (const BlockId id : c.blocks) {
    EXPECT_EQ(node_a.evaluate(c.tree, id).verdict,
              node_b.evaluate(c.tree, id).verdict);
  }
}

TEST_P(ChainProperties, WithoutGateLargerEbAcceptsWheneverSmallerDoes) {
  // Without the sticky gate, verdicts are monotone in EB: every block the
  // large-EB node deems excessive is also excessive for the small-EB node,
  // so any depth that satisfies the small node satisfies the large one.
  Rng rng(GetParam() ^ 0x7777);
  RandomChainCase c = random_tree(rng, 50);
  BuParams small = random_params(rng);
  small.eb = kMB;
  small.sticky_gate = false;
  BuParams large = small;
  large.eb = 8 * kMB;
  const BuNodeRule small_node(small);
  const BuNodeRule large_node(large);
  for (const BlockId id : c.blocks) {
    if (small_node.evaluate(c.tree, id).verdict ==
        ChainVerdict::kAcceptable) {
      EXPECT_EQ(large_node.evaluate(c.tree, id).verdict,
                ChainVerdict::kAcceptable);
    }
  }
}

TEST(ChainCounterexamples, StickyGateBreaksEbMonotonicity) {
  // With sticky gates, raising EB can make a node REJECT a chain that a
  // stricter node accepts: the strict node's gate opened at a mid-size
  // block and waved the giant one through, while the lenient node never
  // opened a gate and now pends on the giant block. Found by the random
  // sweep above; pinned here as a named counterexample — one more way BU
  // nodes with "compatible-looking" parameters end up on different chains.
  BuParams small;
  small.eb = kMB;
  small.ad = 3;
  BuParams large = small;
  large.eb = 8 * kMB;
  const BuNodeRule small_node(small);
  const BuNodeRule large_node(large);

  BlockTree tree;
  BlockId tip = tree.add_block(tree.genesis(), 2 * kMB, 0);  // gate seed
  tip = tree.add_block(tip, kMB, 0);
  tip = tree.add_block(tip, kMB, 0);   // small node: depth 3 -> gate opens
  tip = tree.add_block(tip, 20 * kMB, 0);  // giant block

  EXPECT_EQ(small_node.evaluate(tree, tip).verdict,
            ChainVerdict::kAcceptable);  // gate open: 20 MB accepted
  EXPECT_EQ(large_node.evaluate(tree, tip).verdict,
            ChainVerdict::kPendingDepth);  // no gate: 20 MB pends
}

TEST_P(ChainProperties, GateCarryMatchesFullEvaluation) {
  // Re-rooting correctness: evaluating a suffix with the carried GateState
  // must agree (verdict and gate) with evaluating the whole chain.
  Rng rng(GetParam() ^ 0xCAFE);
  const BuParams params = random_params(rng);
  const BuNodeRule rule(params);

  // Build one linear chain; split it at a random acceptable midpoint.
  BlockTree whole;
  std::vector<ByteSize> sizes;
  const ByteSize choices[] = {kMB / 2, kMB, 2 * kMB, 8 * kMB};
  BlockId tip = whole.genesis();
  for (int i = 0; i < 40; ++i) {
    const ByteSize size = choices[rng.next_below(4)];
    sizes.push_back(size);
    tip = whole.add_block(tip, size, 0);
  }
  const ChainStatus full = rule.evaluate(whole, tip);

  for (std::size_t split = 1; split < sizes.size(); ++split) {
    // The prefix must itself be acceptable for the carried state to be
    // meaningful (a node re-roots only at agreement points).
    const BlockId prefix_tip = whole.ancestor_at_height(
        tip, static_cast<Height>(split));
    const ChainStatus prefix = rule.evaluate(whole, prefix_tip);
    if (prefix.verdict != ChainVerdict::kAcceptable) {
      continue;
    }
    BlockTree suffix;
    BlockId suffix_tip = suffix.genesis();
    for (std::size_t i = split; i < sizes.size(); ++i) {
      suffix_tip = suffix.add_block(suffix_tip, sizes[i], 0);
    }
    const ChainStatus carried =
        rule.evaluate(suffix, suffix_tip, prefix.gate);
    EXPECT_EQ(carried.verdict, full.verdict) << "split at " << split;
    if (full.verdict == ChainVerdict::kAcceptable) {
      EXPECT_EQ(carried.gate_open, full.gate_open) << "split at " << split;
      if (full.gate_open) {
        EXPECT_EQ(carried.blocks_until_gate_close,
                  full.blocks_until_gate_close);
      }
    }
  }
}

TEST_P(ChainProperties, SelectionPrefersDepthAndRespectsValidity) {
  Rng rng(GetParam() ^ 0x5E1);
  RandomChainCase c = random_tree(rng, 40);
  const BuNodeRule rule(random_params(rng));
  const BlockId best = select_best_block(c.tree, rule);
  // The selected block heads an acceptable chain...
  EXPECT_TRUE(rule.chain_acceptable(c.tree, best));
  // ...and no acceptable block is strictly deeper.
  for (const BlockId id : c.blocks) {
    if (rule.chain_acceptable(c.tree, id)) {
      EXPECT_LE(c.tree.block(id).height, c.tree.block(best).height);
    }
  }
}

TEST_P(ChainProperties, BitcoinIsBuWithEqualEbAndInfiniteAd) {
  // A Bitcoin node is a BU node whose EB equals the consensus limit and
  // whose AD is unreachable: verdicts agree on every chain (pending ==
  // invalid for selection purposes).
  Rng rng(GetParam() ^ 0xB17C);
  RandomChainCase c = random_tree(rng, 50);
  const BitcoinValidity bitcoin(kMB);
  BuParams params;
  params.eb = kMB;
  params.ad = 64;  // deeper than any chain in this test
  params.sticky_gate = false;
  const BuNodeRule bu(params);
  for (const BlockId id : c.blocks) {
    const bool bitcoin_ok = bitcoin.chain_acceptable(c.tree, id);
    const bool bu_ok = bu.chain_acceptable(c.tree, id);
    EXPECT_EQ(bitcoin_ok, bu_ok);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ChainProperties,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{16}));

}  // namespace
