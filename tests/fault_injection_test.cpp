// Tests of the fault-injection subsystem: FaultPlan semantics and
// validation, determinism under a fixed seed, the zero-plan ≡ baseline
// guarantee, and the qualitative effect of each fault class on the network
// simulation.
#include <gtest/gtest.h>

#include <string>

#include "robust/fault_plan.hpp"
#include "sim/network_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using robust::CrashWindow;
using robust::FaultPlan;
using robust::LinkFault;
using robust::LinkFaultOverride;
using robust::PartitionWindow;
using chain::kMegabyte;

sim::NetworkConfig two_miner_config() {
  sim::NetworkConfig config;
  for (int i = 0; i < 2; ++i) {
    sim::NetMiner m;
    m.name = "m" + std::to_string(i);
    m.power = 0.5;
    m.rule.eb = 32 * kMegabyte;
    m.rule.mg = 32 * kMegabyte;
    m.block_size = 4 * kMegabyte;
    m.bandwidth = 1e6;
    m.latency = 2.0;
    config.miners.push_back(std::move(m));
  }
  return config;
}

sim::NetworkResult run(const sim::NetworkConfig& config, std::uint64_t blocks,
                       std::uint64_t seed = 42) {
  sim::NetworkSimulation simulation(config);
  Rng rng(seed);
  return simulation.run(blocks, rng);
}

// ------------------------------------------------------- plan semantics ---

TEST(FaultPlan, DefaultPlanIsEmpty) {
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlan, NonTrivialPlansAreNotEmpty) {
  FaultPlan drops;
  drops.link.drop_probability = 0.1;
  EXPECT_FALSE(drops.empty());

  FaultPlan crash;
  crash.crashes.push_back({0, 1.0, 2.0});
  EXPECT_FALSE(crash.empty());

  FaultPlan degenerate;  // zero-length windows can have no effect
  degenerate.crashes.push_back({0, 5.0, 5.0});
  degenerate.partitions.push_back({{0}, 3.0, 3.0});
  EXPECT_TRUE(degenerate.empty());
}

TEST(FaultPlan, LinkOverridesShadowTheDefault) {
  FaultPlan plan;
  plan.link.drop_probability = 0.5;
  LinkFault clean;
  plan.link_overrides.push_back({0, 1, clean});
  EXPECT_DOUBLE_EQ(plan.link_fault(0, 1).drop_probability, 0.0);
  EXPECT_DOUBLE_EQ(plan.link_fault(1, 0).drop_probability, 0.5);  // directed
}

TEST(FaultPlan, CrashWindowsAreHalfOpen) {
  FaultPlan plan;
  plan.crashes.push_back({1, 10.0, 20.0});
  double up_at = 0.0;
  EXPECT_FALSE(plan.crashed_at(1, 9.999));
  EXPECT_TRUE(plan.crashed_at(1, 10.0, &up_at));
  EXPECT_DOUBLE_EQ(up_at, 20.0);
  EXPECT_TRUE(plan.crashed_at(1, 19.999));
  EXPECT_FALSE(plan.crashed_at(1, 20.0));
  EXPECT_FALSE(plan.crashed_at(0, 15.0));  // other nodes unaffected
}

TEST(FaultPlan, PartitionSeparatesOnlyCrossCutPairs) {
  FaultPlan plan;
  plan.partitions.push_back({{0, 1}, 100.0, 200.0});
  double heals_at = 0.0;
  EXPECT_TRUE(plan.partitioned_at(0, 2, 150.0, &heals_at));
  EXPECT_DOUBLE_EQ(heals_at, 200.0);
  EXPECT_TRUE(plan.partitioned_at(2, 1, 150.0));  // symmetric
  EXPECT_FALSE(plan.partitioned_at(0, 1, 150.0));  // same side: island
  EXPECT_FALSE(plan.partitioned_at(2, 3, 150.0));  // same side: complement
  EXPECT_FALSE(plan.partitioned_at(0, 2, 99.9));   // before the window
  EXPECT_FALSE(plan.partitioned_at(0, 2, 200.0));  // after it heals
}

// ------------------------------------------------------------ validation ---

TEST(FaultPlanValidation, AcceptsReasonablePlans) {
  FaultPlan plan;
  plan.link.drop_probability = 0.3;
  plan.link.duplicate_probability = 0.2;
  plan.link.jitter_seconds = 5.0;
  plan.link_overrides.push_back({0, 2, LinkFault{1.0, 0.0, 0.0}});
  plan.crashes.push_back({1, 0.0, 100.0});
  plan.partitions.push_back({{0, 1}, 50.0, 60.0});
  EXPECT_NO_THROW(plan.validate(3));
}

TEST(FaultPlanValidation, RejectsDropProbabilityOutOfRange) {
  FaultPlan plan;
  plan.link.drop_probability = 1.5;
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
  plan.link.drop_probability = -0.1;
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsDuplicateProbabilityOutOfRange) {
  FaultPlan plan;
  plan.link.duplicate_probability = 2.0;
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsNegativeJitter) {
  FaultPlan plan;
  plan.link.jitter_seconds = -1.0;
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsSelfLinkOverride) {
  FaultPlan plan;
  plan.link_overrides.push_back({1, 1, LinkFault{}});
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsOverrideEndpointOutOfRange) {
  FaultPlan plan;
  plan.link_overrides.push_back({0, 5, LinkFault{}});
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsBackwardsCrashWindow) {
  FaultPlan plan;
  plan.crashes.push_back({0, 10.0, 5.0});
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
  plan.crashes[0] = {0, -1.0, 5.0};
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsCrashNodeOutOfRange) {
  FaultPlan plan;
  plan.crashes.push_back({7, 0.0, 1.0});
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsPartitionNodeOutOfRange) {
  FaultPlan plan;
  plan.partitions.push_back({{0, 9}, 0.0, 1.0});
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(FaultPlanValidation, RejectsBackwardsPartitionWindow) {
  FaultPlan plan;
  plan.partitions.push_back({{0}, 2.0, 1.0});
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

// ----------------------------------------------------------- determinism ---

TEST(FaultInjection, SameSeedAndPlanAreBitIdentical) {
  sim::NetworkConfig config = two_miner_config();
  config.faults.seed = 999;
  config.faults.link.drop_probability = 0.1;
  config.faults.link.duplicate_probability = 0.05;
  config.faults.link.jitter_seconds = 3.0;
  config.faults.crashes.push_back({1, 60'000.0, 120'000.0});
  config.faults.partitions.push_back({{0}, 300'000.0, 360'000.0});

  const sim::NetworkResult a = run(config, 5000);
  const sim::NetworkResult b = run(config, 5000);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.dropped_messages, 0u);
}

TEST(FaultInjection, DifferentFaultSeedsDiverge) {
  sim::NetworkConfig config = two_miner_config();
  config.faults.link.drop_probability = 0.2;
  config.faults.seed = 1;
  const sim::NetworkResult a = run(config, 5000);
  config.faults.seed = 2;
  const sim::NetworkResult b = run(config, 5000);
  // Same mining stream, different fault draws: the runs must not coincide.
  EXPECT_NE(a, b);
}

TEST(FaultInjection, ZeroFaultPlanMatchesNoFaultBaseline) {
  const sim::NetworkResult baseline = run(two_miner_config(), 5000);

  // All-zero probabilities and empty windows, but a non-default seed: the
  // fault stream exists yet is never drawn from, so the run is bit-identical
  // to one with no fault machinery at all.
  sim::NetworkConfig config = two_miner_config();
  config.faults.seed = 123456789;
  config.faults.link.drop_probability = 0.0;
  config.faults.link.duplicate_probability = 0.0;
  config.faults.link.jitter_seconds = 0.0;
  const sim::NetworkResult zeroed = run(config, 5000);
  EXPECT_EQ(baseline, zeroed);

  // Zero-length windows are equally inert.
  config.faults.crashes.push_back({0, 100.0, 100.0});
  config.faults.partitions.push_back({{1}, 100.0, 100.0});
  const sim::NetworkResult windows = run(config, 5000);
  EXPECT_EQ(baseline, windows);
}

// ------------------------------------------------------- fault behaviour ---

TEST(FaultInjection, DropsRaiseTheOrphanRate) {
  const sim::NetworkResult baseline = run(two_miner_config(), 5000);

  sim::NetworkConfig config = two_miner_config();
  config.faults.link.drop_probability = 0.2;
  const sim::NetworkResult degraded = run(config, 5000);

  EXPECT_GT(degraded.dropped_messages, 0u);
  EXPECT_GT(degraded.orphan_rate(), baseline.orphan_rate());
  EXPECT_EQ(degraded.blocks_mined, baseline.blocks_mined);
}

TEST(FaultInjection, JitterFreeDuplicatesDoNotChangeTheChain) {
  const sim::NetworkResult baseline = run(two_miner_config(), 5000);

  sim::NetworkConfig config = two_miner_config();
  config.faults.link.duplicate_probability = 0.5;
  const sim::NetworkResult doubled = run(config, 5000);

  // The second copy arrives at the same instant and is already known:
  // delivery is idempotent, so only the counter moves.
  EXPECT_GT(doubled.duplicated_messages, 0u);
  EXPECT_EQ(doubled.orphaned_blocks, baseline.orphaned_blocks);
  EXPECT_EQ(doubled.canonical_length, baseline.canonical_length);
}

TEST(FaultInjection, CrashedMinerWastesItsFinds) {
  sim::NetworkConfig config = two_miner_config();
  // Miner 1 is down for the whole run: every one of its finds is wasted and
  // every delivery to it is deferred to the window end.
  config.faults.crashes.push_back({1, 0.0, 1e18});
  const sim::NetworkResult result = run(config, 2000);

  EXPECT_GT(result.wasted_finds, 0u);
  EXPECT_EQ(result.mined_per_miner[1], 0u);
  EXPECT_EQ(result.mined_per_miner[0], result.blocks_mined);
  EXPECT_GT(result.deferred_deliveries, 0u);
  // The survivor's chain is the canonical one, with no forks.
  EXPECT_EQ(result.orphaned_blocks, 0u);
}

TEST(FaultInjection, PartitionDefersCrossCutDeliveries) {
  sim::NetworkConfig config = two_miner_config();
  const double begin = 600.0 * 1000;  // roughly the middle of a 5k-block run
  config.faults.partitions.push_back({{0}, begin, begin + 600.0 * 200});
  const sim::NetworkResult result = run(config, 5000);

  EXPECT_GT(result.deferred_deliveries, 0u);
  // While split, both halves mine blind: the minority side's blocks orphan.
  const sim::NetworkResult baseline = run(two_miner_config(), 5000);
  EXPECT_GT(result.orphaned_blocks, baseline.orphaned_blocks);
  EXPECT_EQ(result, run(config, 5000));  // and all of it deterministically
}

}  // namespace
