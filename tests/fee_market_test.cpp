#include <gtest/gtest.h>

#include <cmath>

#include "games/block_size_game.hpp"
#include "games/fee_market.hpp"

namespace {

using namespace bvc::games;

FeeMarketParams base_params() {
  FeeMarketParams params;
  params.block_reward = 12.5;
  params.fee_depth = 2.0;
  params.mempool_scale = 4e6;
  params.block_interval = 600.0;
  params.bandwidth = 1e6;
  params.latency = 2.0;
  params.power = 0.1;
  return params;
}

TEST(FeeMarket, EmptyBlockValueIsDiscountedReward) {
  const FeeMarketParams params = base_params();
  const double expected =
      12.5 * std::exp(-2.0 * 0.9 / 600.0);  // latency-only propagation
  EXPECT_NEAR(block_value(params, 0.0), expected, 1e-9);
}

TEST(FeeMarket, ValueIsSinglePeaked) {
  const FeeMarketParams params = base_params();
  const double peak = optimal_block_size(params);
  EXPECT_GT(peak, 0.0);
  EXPECT_GT(block_value(params, peak), block_value(params, 0.0));
  EXPECT_GT(block_value(params, peak), block_value(params, peak * 4.0));
  // Local optimality.
  EXPECT_GE(block_value(params, peak) + 1e-9,
            block_value(params, peak * 0.9));
  EXPECT_GE(block_value(params, peak) + 1e-9,
            block_value(params, peak * 1.1));
}

TEST(FeeMarket, MpbExceedsOptimalSize) {
  const FeeMarketParams params = base_params();
  const double peak = optimal_block_size(params);
  const double mpb = maximum_profitable_size(params);
  EXPECT_GT(mpb, peak);
  // At the MPB the value equals the empty-block floor.
  EXPECT_NEAR(block_value(params, mpb), block_value(params, 0.0),
              1e-6 * block_value(params, 0.0));
}

TEST(FeeMarket, BetterBandwidthRaisesMpb) {
  // The paper's corollary: capacities differ => preferences differ.
  FeeMarketParams slow = base_params();
  slow.bandwidth = 2e5;
  FeeMarketParams fast = base_params();
  fast.bandwidth = 5e6;
  EXPECT_GT(maximum_profitable_size(fast), maximum_profitable_size(slow));
  EXPECT_GT(optimal_block_size(fast), optimal_block_size(slow));
}

TEST(FeeMarket, DeeperMempoolsFavorBiggerBlocks) {
  FeeMarketParams cheap = base_params();
  cheap.fee_depth = 0.5;
  FeeMarketParams rich = base_params();
  rich.fee_depth = 8.0;
  EXPECT_GT(optimal_block_size(rich), optimal_block_size(cheap));
}

TEST(FeeMarket, ZeroFeesMakeEmptyBlocksOptimal) {
  FeeMarketParams params = base_params();
  params.fee_depth = 0.0;
  EXPECT_NEAR(optimal_block_size(params), 0.0, 2.0);
  EXPECT_NEAR(maximum_profitable_size(params), 0.0, 2.0);
}

TEST(FeeMarket, ValidatesParams) {
  FeeMarketParams params = base_params();
  params.bandwidth = 0.0;
  EXPECT_THROW((void)block_value(params, 0.0), std::invalid_argument);
  params = base_params();
  params.power = 1.0;
  EXPECT_THROW((void)optimal_block_size(params), std::invalid_argument);
}

TEST(FeeMarket, DerivedMpbsFeedTheBlockSizeGame) {
  // End-to-end bridge: derive MPBs from heterogeneous bandwidths, sort
  // them into the block size increasing game, and observe the squeeze-out.
  const double bandwidths[] = {1e5, 4e5, 2e6, 1e7};
  const double powers[] = {0.1, 0.2, 0.3, 0.4};
  std::vector<MinerGroup> groups;
  for (int i = 0; i < 4; ++i) {
    FeeMarketParams params = base_params();
    params.bandwidth = bandwidths[i];
    params.power = powers[i];
    groups.push_back(MinerGroup{powers[i],
                                maximum_profitable_size(params)});
  }
  // Faster pipes => strictly larger MPBs (required by the game).
  const BlockSizeIncreasingGame game(groups);
  const auto outcome = game.play();
  // With this capacity spread the weakest group is squeezed out.
  EXPECT_GT(outcome.surviving_from, 0u);
  EXPECT_DOUBLE_EQ(outcome.utilities[0], 0.0);
}

}  // namespace
