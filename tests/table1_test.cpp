// Literal fidelity check against the paper's Table 1: "State transition and
// reward distribution for compliant and profit-driven Alice, setting 1."
//
// For every (state, action) pattern of the table we reconstruct the full
// outcome distribution from apply_event + event_probabilities and compare
// the successor states, probabilities, and (R_A, R_others) rewards with the
// table rows, including the merged-event rows where "the probability is
// defined as the total probability of these events, and the reward is
// weighted according to the distribution" (alpha', beta', alpha'', gamma'').
// The single documented typo (gamma-component of the l1 = l2 = AD-1 onC1
// row) is asserted in its corrected, conservation-consistent form.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "bu/attack_model.hpp"

namespace {

using namespace bvc::bu;

struct OutcomeRow {
  AttackState next;
  double probability = 0.0;
  double reward_alice = 0.0;   // R_A, weighted
  double reward_others = 0.0;  // R_others, weighted
};

/// Aggregates apply_event over the three events exactly like the model
/// builder does, keyed by successor state.
std::map<std::string, OutcomeRow> outcome_distribution(
    const AttackParams& params, const AttackState& state, Action action) {
  std::map<std::string, OutcomeRow> rows;
  const auto probs = event_probabilities(params, action);
  for (const Event event :
       {Event::kAliceBlock, Event::kBobBlock, Event::kCarolBlock}) {
    const double p = probs[static_cast<std::size_t>(event)];
    if (p <= 0.0) {
      continue;
    }
    const StepResult step = apply_event(params, state, action, event);
    OutcomeRow& row = rows[to_string(step.next)];
    row.next = step.next;
    // Probability-weighted average of rewards, as in the table's caption.
    const double total = row.probability + p;
    row.reward_alice =
        (row.reward_alice * row.probability +
         step.deltas.alice_locked * p) / total;
    row.reward_others =
        (row.reward_others * row.probability +
         step.deltas.others_locked * p) / total;
    row.probability = total;
  }
  return rows;
}

class Table1 : public ::testing::Test {
 protected:
  AttackParams params_ = [] {
    AttackParams params;
    params.alpha = 0.2;
    params.beta = 0.35;
    params.gamma = 0.45;
    params.ad = 6;
    params.setting = Setting::kNoStickyGate;
    return params;
  }();
  const double a_ = 0.2;
  const double b_ = 0.35;
  const double g_ = 0.45;

  void expect_row(const std::map<std::string, OutcomeRow>& rows,
                  const AttackState& next, double probability,
                  double reward_alice, double reward_others) {
    const auto it = rows.find(to_string(next));
    ASSERT_NE(it, rows.end()) << "missing successor " << to_string(next);
    EXPECT_NEAR(it->second.probability, probability, 1e-12);
    EXPECT_NEAR(it->second.reward_alice, reward_alice, 1e-12);
    EXPECT_NEAR(it->second.reward_others, reward_others, 1e-12);
  }
};

// Row: (0,0,0,0), onC1 -> (0,0,0,0) w.p. 1, reward (alpha, beta + gamma).
TEST_F(Table1, BaseOnChain1) {
  const auto rows = outcome_distribution(params_, AttackState{},
                                         Action::kOnChain1);
  ASSERT_EQ(rows.size(), 1u);
  expect_row(rows, AttackState{}, 1.0, a_, b_ + g_);
}

// Row: (0,0,0,0), onC2 -> (0,0,0,0) w.p. beta+gamma, reward (0, 1);
//                         (0,1,0,1) w.p. alpha, reward (0, 0).
TEST_F(Table1, BaseOnChain2) {
  const auto rows = outcome_distribution(params_, AttackState{},
                                         Action::kOnChain2);
  ASSERT_EQ(rows.size(), 2u);
  expect_row(rows, AttackState{}, b_ + g_, 0.0, 1.0);
  expect_row(rows, AttackState{0, 1, 0, 1, 0}, a_, 0.0, 0.0);
}

// Row: l1 < l2 != AD-1, onC1 -> three plain growth branches.
TEST_F(Table1, GrowthOnChain1) {
  const AttackState s{1, 3, 0, 2, 0};
  const auto rows = outcome_distribution(params_, s, Action::kOnChain1);
  ASSERT_EQ(rows.size(), 3u);
  expect_row(rows, AttackState{2, 3, 1, 2, 0}, a_, 0.0, 0.0);
  expect_row(rows, AttackState{2, 3, 0, 2, 0}, b_, 0.0, 0.0);
  expect_row(rows, AttackState{1, 4, 0, 2, 0}, g_, 0.0, 0.0);
}

// Row: l1 < l2 != AD-1, onC2.
TEST_F(Table1, GrowthOnChain2) {
  const AttackState s{1, 3, 0, 2, 0};
  const auto rows = outcome_distribution(params_, s, Action::kOnChain2);
  ASSERT_EQ(rows.size(), 3u);
  expect_row(rows, AttackState{1, 4, 0, 3, 0}, a_, 0.0, 0.0);
  expect_row(rows, AttackState{2, 3, 0, 2, 0}, b_, 0.0, 0.0);
  expect_row(rows, AttackState{1, 4, 0, 2, 0}, g_, 0.0, 0.0);
}

// Row: l1 = l2 != AD-1, onC1 -> merged (alpha + beta) Chain-1 win with
// weighted reward (a'(a1+1) + b'a1, a'(l1-a1) + b'(l1+1-a1)).
TEST_F(Table1, TieOnChain1MergesWinningEvents) {
  const AttackState s{2, 2, 1, 1, 0};
  const auto rows = outcome_distribution(params_, s, Action::kOnChain1);
  ASSERT_EQ(rows.size(), 2u);
  const double ap = a_ / (a_ + b_);  // alpha'
  const double bp = b_ / (a_ + b_);  // beta'
  expect_row(rows, AttackState{}, a_ + b_,
             ap * (s.a1 + 1.0) + bp * s.a1,
             ap * (s.l1 - s.a1) + bp * (s.l1 + 1.0 - s.a1));
  expect_row(rows, AttackState{2, 3, 1, 1, 0}, g_, 0.0, 0.0);
}

// Row: l1 = l2 != AD-1, onC2 -> Bob alone wins Chain 1.
TEST_F(Table1, TieOnChain2) {
  const AttackState s{2, 2, 1, 1, 0};
  const auto rows = outcome_distribution(params_, s, Action::kOnChain2);
  ASSERT_EQ(rows.size(), 3u);
  expect_row(rows, AttackState{2, 3, 1, 2, 0}, a_, 0.0, 0.0);
  expect_row(rows, AttackState{}, b_, s.a1, s.l1 + 1.0 - s.a1);
  expect_row(rows, AttackState{2, 3, 1, 1, 0}, g_, 0.0, 0.0);
}

// Row: l1 < l2 = AD-1, onC1 -> Carol completes Chain 2 alone.
TEST_F(Table1, DepthBoundaryOnChain1) {
  const AttackState s{2, 5, 1, 3, 0};
  const auto rows = outcome_distribution(params_, s, Action::kOnChain1);
  ASSERT_EQ(rows.size(), 3u);
  expect_row(rows, AttackState{3, 5, 2, 3, 0}, a_, 0.0, 0.0);
  expect_row(rows, AttackState{3, 5, 1, 3, 0}, b_, 0.0, 0.0);
  expect_row(rows, AttackState{}, g_, s.a2, s.l2 + 1.0 - s.a2);
}

// Row: l1 < l2 = AD-1, onC2 -> merged (alpha + gamma) Chain-2 win with
// weighted reward (a''(a2+1) + g''a2, a''(l2-a2) + g''(l2+1-a2)).
TEST_F(Table1, DepthBoundaryOnChain2MergesWinningEvents) {
  const AttackState s{2, 5, 1, 3, 0};
  const auto rows = outcome_distribution(params_, s, Action::kOnChain2);
  ASSERT_EQ(rows.size(), 2u);
  const double app = a_ / (a_ + g_);  // alpha''
  const double gpp = g_ / (a_ + g_);  // gamma''
  expect_row(rows, AttackState{}, a_ + g_,
             app * (s.a2 + 1.0) + gpp * s.a2,
             app * (s.l2 - s.a2) + gpp * (s.l2 + 1.0 - s.a2));
  expect_row(rows, AttackState{3, 5, 1, 3, 0}, b_, 0.0, 0.0);
}

// Row: l1 = l2 = AD-1, onC1 -> (0,0,0,0) w.p. 1; the paper's printed
// gamma-component "gamma (l2 - a2)" violates block conservation — the
// corrected value is gamma (l2 + 1 - a2).
TEST_F(Table1, DoubleBoundaryOnChain1WithCorrectedTypo) {
  const AttackState s{5, 5, 2, 1, 0};
  const auto rows = outcome_distribution(params_, s, Action::kOnChain1);
  ASSERT_EQ(rows.size(), 1u);
  expect_row(rows, AttackState{}, 1.0,
             a_ * (s.a1 + 1.0) + b_ * s.a1 + g_ * s.a2,
             a_ * (s.l1 - s.a1) + b_ * (s.l1 + 1.0 - s.a1) +
                 g_ * (s.l2 + 1.0 - s.a2));
}

// Row: l1 = l2 = AD-1, onC2 -> (0,0,0,0) w.p. 1. The paper's printed
// beta-component "beta (l1 - a1)" drops the winning block like the onC1
// row's gamma-component does; conservation fixes it to beta (l1 + 1 - a1).
TEST_F(Table1, DoubleBoundaryOnChain2WithCorrectedTypo) {
  const AttackState s{5, 5, 2, 1, 0};
  const auto rows = outcome_distribution(params_, s, Action::kOnChain2);
  ASSERT_EQ(rows.size(), 1u);
  expect_row(rows, AttackState{}, 1.0,
             a_ * (s.a2 + 1.0) + b_ * s.a1 + g_ * s.a2,
             a_ * (s.l2 - s.a2) + b_ * (s.l1 + 1.0 - s.a1) +
                 g_ * (s.l2 + 1.0 - s.a2));
}

}  // namespace
