#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "games/block_size_game.hpp"
#include "games/eb_choosing.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc::games;
using bvc::Rng;

// --------------------------------------------------------- EbChoosingGame --

TEST(EbChoosing, ExactTieLeavesEveryoneWithNothing) {
  // M1 == M2 is the paper's "unpredictable" case: zero utility for all.
  EbChoosingGame game({0.25, 0.25, 0.25, 0.25});
  const std::vector<std::size_t> profile = {0, 0, 1, 1};
  const auto u = game.utilities(profile);
  for (const double ui : u) {
    EXPECT_DOUBLE_EQ(ui, 0.0);
  }
}

TEST(EbChoosing, WinningGroupSplitsProportionally) {
  EbChoosingGame game({0.4, 0.35, 0.25});
  const std::vector<std::size_t> profile = {0, 0, 1};
  const auto u = game.utilities(profile);
  EXPECT_NEAR(u[0], 0.4 / 0.75, 1e-12);
  EXPECT_NEAR(u[1], 0.35 / 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(u[2], 0.0);
}

TEST(EbChoosing, AllSameEbIsNashEquilibrium) {
  // Analytical Result 4.
  EbChoosingGame game({0.1, 0.2, 0.3, 0.4});
  for (std::size_t v = 0; v < game.num_values(); ++v) {
    const std::vector<std::size_t> profile(4, v);
    EXPECT_TRUE(game.is_nash_equilibrium(profile));
  }
}

TEST(EbChoosing, LosingMinerWantsToJoinTheMajority) {
  EbChoosingGame game({0.45, 0.35, 0.2});
  const std::vector<std::size_t> profile = {0, 0, 1};
  EXPECT_EQ(game.best_response(profile, 2), 0u);
  EXPECT_FALSE(game.is_nash_equilibrium(profile));
}

TEST(EbChoosing, WinnerMayDefectToASmallerWinningCoalition) {
  // A subtlety of the utility: miner 0 (45%) deviating to miner 2's value
  // still wins (45 + 20 > 35) and shares with less power — so mixed
  // profiles are doubly unstable; only all-same-EB profiles are equilibria.
  EbChoosingGame game({0.45, 0.35, 0.2});
  const std::vector<std::size_t> profile = {0, 0, 1};
  EXPECT_EQ(game.best_response(profile, 0), 1u);
  EXPECT_FALSE(game.is_nash_equilibrium(profile));
}

TEST(EbChoosing, DynamicsConvergeToConsensus) {
  // From any split, best-response dynamics end in an all-same-EB NE — the
  // "following the majority is rational" observation of Sect. 6.1.
  EbChoosingGame game({0.3, 0.25, 0.25, 0.2}, 3);
  Rng rng(1234);
  const EbChoosingGame::DynamicsResult result =
      game.best_response_dynamics({0, 1, 2, 1}, rng);
  EXPECT_TRUE(result.converged());
  EXPECT_TRUE(game.is_nash_equilibrium(result.profile));
  for (const std::size_t choice : result.profile) {
    EXPECT_EQ(choice, result.profile.front());
  }
}

TEST(EbChoosing, DynamicsSweepOverRandomStarts) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    // Random powers for 3-6 miners, each < 0.5.
    const std::size_t n = 3 + rng.next_below(4);
    std::vector<double> power(n);
    double total = 0.0;
    for (double& p : power) {
      p = 0.1 + rng.next_double();
      total += p;
    }
    bool ok = true;
    for (double& p : power) {
      p /= total;
      ok = ok && p < 0.5;
    }
    if (!ok) {
      continue;
    }
    EbChoosingGame game(power, 2 + rng.next_below(3));
    std::vector<std::size_t> start(n);
    for (auto& choice : start) {
      choice = rng.next_below(game.num_values());
    }
    const auto result = game.best_response_dynamics(start, rng, 200);
    EXPECT_TRUE(result.converged());
    EXPECT_TRUE(game.is_nash_equilibrium(result.profile));
  }
}

TEST(EbChoosing, RejectsInvalidPowers) {
  EXPECT_THROW(EbChoosingGame({0.6, 0.4}), std::invalid_argument);  // >= 0.5
  EXPECT_THROW(EbChoosingGame({0.3, 0.3}), std::invalid_argument);  // sum != 1
  EXPECT_THROW(EbChoosingGame({1.0}), std::invalid_argument);  // one miner
}

// ---------------------------------------------- BlockSizeIncreasingGame ---

std::vector<MinerGroup> make_groups(const std::vector<double>& powers) {
  std::vector<MinerGroup> groups;
  double mpb = 1.0;
  for (const double p : powers) {
    groups.push_back(MinerGroup{p, mpb});
    mpb *= 2.0;
  }
  return groups;
}

TEST(BlockSizeGame, Figure4Instance) {
  // m = (10, 20, 30, 40)%: round 1 raises the size and squeezes group 1 out;
  // round 2's vote fails (groups 2+3 hold 50% >= 40%) and the game ends.
  BlockSizeIncreasingGame game(make_groups({0.1, 0.2, 0.3, 0.4}));
  EXPECT_FALSE(game.is_stable_suffix(0));
  EXPECT_TRUE(game.is_stable_suffix(1));
  EXPECT_EQ(game.termination_suffix(), 1u);
  EXPECT_FALSE(game.emergent_consensus_holds());

  const auto outcome = game.play();
  ASSERT_EQ(outcome.rounds.size(), 2u);
  EXPECT_TRUE(outcome.rounds[0].passed);
  EXPECT_EQ(outcome.rounds[0].leaving_group, 0u);
  EXPECT_NEAR(outcome.rounds[0].yes_power, 0.9, 1e-12);
  EXPECT_FALSE(outcome.rounds[1].passed);
  EXPECT_NEAR(outcome.rounds[1].no_power, 0.5, 1e-12);
  EXPECT_NEAR(outcome.rounds[1].yes_power, 0.4, 1e-12);
  EXPECT_EQ(outcome.surviving_from, 1u);
  // Survivors split rewards by power: 20/90, 30/90, 40/90.
  EXPECT_DOUBLE_EQ(outcome.utilities[0], 0.0);
  EXPECT_NEAR(outcome.utilities[1], 0.2 / 0.9, 1e-12);
  EXPECT_NEAR(outcome.utilities[2], 0.3 / 0.9, 1e-12);
  EXPECT_NEAR(outcome.utilities[3], 0.4 / 0.9, 1e-12);
}

TEST(BlockSizeGame, SingleGroupIsTriviallyStable) {
  BlockSizeIncreasingGame game(make_groups({1.0}));
  EXPECT_TRUE(game.is_stable_suffix(0));
  EXPECT_TRUE(game.emergent_consensus_holds());
  const auto outcome = game.play();
  EXPECT_TRUE(outcome.rounds.empty());
  EXPECT_DOUBLE_EQ(outcome.utilities[0], 1.0);
}

TEST(BlockSizeGame, LastGroupAloneAlwaysStable) {
  BlockSizeIncreasingGame game(make_groups({0.2, 0.3, 0.5}));
  EXPECT_TRUE(game.is_stable_suffix(2));
}

TEST(BlockSizeGame, DominantLastGroupSqueezesEveryoneOut) {
  // A 60% group at the top: every vote passes until it is alone... unless a
  // front coalition can hold. With (0.2, 0.2, 0.6) the front never holds.
  BlockSizeIncreasingGame game(make_groups({0.2, 0.2, 0.6}));
  EXPECT_EQ(game.termination_suffix(), 2u);
  const auto outcome = game.play();
  EXPECT_EQ(outcome.surviving_from, 2u);
  EXPECT_DOUBLE_EQ(outcome.utilities[2], 1.0);
}

TEST(BlockSizeGame, BalancedPairSurvives) {
  // Two groups 50/50: suffix {1} stable; is {0,1} stable? front = m0 = 0.5,
  // back = 0.5: 0.5 > 0.5 fails -> not stable -> group 0 leaves.
  BlockSizeIncreasingGame game(make_groups({0.5, 0.5}));
  EXPECT_EQ(game.termination_suffix(), 1u);
}

TEST(BlockSizeGame, MajorityFrontGroupTerminatesImmediately) {
  // Group 0 with 60%: front majority votes no in round 1.
  BlockSizeIncreasingGame game(make_groups({0.6, 0.4}));
  EXPECT_TRUE(game.is_stable_suffix(0));
  EXPECT_TRUE(game.emergent_consensus_holds());
  const auto outcome = game.play();
  ASSERT_EQ(outcome.rounds.size(), 1u);  // only the failed terminating vote
  EXPECT_FALSE(outcome.rounds[0].passed);
}

TEST(BlockSizeGame, StabilityNeedsBothConditions) {
  // (0.4, 0.2, 0.4): suffix {2} stable. {1,2}: front 0.2 > 0.4? no -> not
  // stable. {0,1,2}: largest stable subset {2}; front = 0.6 > 0.4 and
  // front-tail = 0.2 <= 0.4 -> stable: groups 0 and 1 jointly deter raises.
  BlockSizeIncreasingGame game(make_groups({0.4, 0.2, 0.4}));
  EXPECT_FALSE(game.is_stable_suffix(1));
  EXPECT_TRUE(game.is_stable_suffix(0));
  EXPECT_TRUE(game.emergent_consensus_holds());
}

TEST(BlockSizeGame, PlayTraceNeverViolatesStableCharacterization) {
  // Property sweep: for random power splits, play() terminates exactly at
  // termination_suffix(), every passing round has yes-power >= no-power and
  // utilities sum to 1 over survivors.
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng.next_below(6);
    std::vector<double> powers(n);
    double total = 0.0;
    for (double& p : powers) {
      p = 0.05 + rng.next_double();
      total += p;
    }
    for (double& p : powers) {
      p /= total;
    }
    BlockSizeIncreasingGame game(make_groups(powers));
    const auto outcome = game.play();
    EXPECT_EQ(outcome.surviving_from, game.termination_suffix());
    double utility_sum = 0.0;
    for (const double u : outcome.utilities) {
      utility_sum += u;
    }
    EXPECT_NEAR(utility_sum, 1.0, 1e-9);
    for (const auto& round : outcome.rounds) {
      if (round.passed) {
        EXPECT_GE(round.yes_power + 1e-12, round.no_power);
      }
    }
    // The terminating failed vote exists whenever >1 group survives.
    if (game.termination_suffix() + 1 < n) {
      ASSERT_FALSE(outcome.rounds.empty());
      EXPECT_FALSE(outcome.rounds.back().passed);
    }
  }
}

TEST(BlockSizeGame, DescribeMentionsRoundsAndSurvivors) {
  BlockSizeIncreasingGame game(make_groups({0.1, 0.2, 0.3, 0.4}));
  const std::string text = game.describe(game.play());
  EXPECT_NE(text.find("round 1"), std::string::npos);
  EXPECT_NE(text.find("group 1 leaves"), std::string::npos);
  EXPECT_NE(text.find("terminated"), std::string::npos);
}

TEST(BlockSizeGame, RejectsNonIncreasingMpb) {
  std::vector<MinerGroup> groups = {{0.5, 2.0}, {0.5, 1.0}};
  EXPECT_THROW(BlockSizeIncreasingGame{groups}, std::invalid_argument);
}

}  // namespace
