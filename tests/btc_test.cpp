#include <gtest/gtest.h>

#include <cmath>

#include "btc/honest.hpp"
#include "btc/selfish_mining.hpp"

namespace {

using namespace bvc::btc;
using bvc::bu::Utility;

// ----------------------------------------------------------------- honest --

TEST(Honest, RelativeRevenueIsAlpha) {
  EXPECT_DOUBLE_EQ(honest_relative_revenue(0.3), 0.3);
  EXPECT_DOUBLE_EQ(honest_absolute_reward(0.3), 0.3);
}

TEST(Honest, OrphaningBoundIsOne) {
  EXPECT_DOUBLE_EQ(bitcoin_orphaning_bound(), 1.0);
}

TEST(Honest, CatchUpProbability) {
  EXPECT_NEAR(catch_up_probability(0.25, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(catch_up_probability(0.25, 2), 1.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(catch_up_probability(0.25, 0), 1.0);
  EXPECT_THROW((void)catch_up_probability(0.0, 1), std::invalid_argument);
}

// ------------------------------------------------------------- state space --

TEST(SmStateSpace, RoundTrips) {
  const SmStateSpace space(8);
  for (bvc::mdp::StateId id = 0; id < space.size(); ++id) {
    EXPECT_EQ(space.index(space.state(id)), id);
  }
}

TEST(SmStateSpace, RejectsOutOfRange) {
  const SmStateSpace space(8);
  EXPECT_THROW((void)space.index(SmState{9, 0, Fork::kIrrelevant}),
               std::invalid_argument);
}

// ------------------------------------------------------------------ model --

SmParams small_params(double alpha, double gamma_tie) {
  SmParams params;
  params.alpha = alpha;
  params.gamma_tie = gamma_tie;
  params.max_len = 12;  // keeps tests fast; accuracy ~1e-4 for alpha <= 1/3
  return params;
}

TEST(SmModel, BuildsWellFormedModel) {
  const SmModel model = build_sm_model(small_params(0.3, 0.5),
                                       Utility::kRelativeRevenue);
  EXPECT_EQ(model.model.num_states(), model.space.size());
  for (bvc::mdp::StateId id = 0; id < model.model.num_states(); ++id) {
    EXPECT_GE(model.model.num_actions(id), 1u);
  }
}

TEST(SmModel, ParamsValidated) {
  SmParams params = small_params(0.6, 0.5);
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = small_params(0.3, 1.5);
  EXPECT_THROW(params.validate(), std::invalid_argument);
  params = small_params(0.3, 0.5);
  params.max_len = 2;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

// ------------------------------------------------------ selfish mining u1 --

/// Eyal–Sirer closed-form selfish-mining revenue (their fixed strategy);
/// the *optimal* strategy must do at least as well.
double eyal_sirer_revenue(double a, double g) {
  const double num =
      a * (1 - a) * (1 - a) * (4.0 * a + g * (1 - 2 * a)) - a * a * a;
  const double den = 1.0 - a * (1.0 + (2.0 - a) * a);
  return num / den;
}

TEST(SelfishMining, HonestIsOptimalForSmallAlpha) {
  // Below the profitability threshold (~25% at gamma = 0), honest mining is
  // optimal: relative revenue equals alpha.
  const SmResult result = analyze_sm(small_params(0.2, 0.0),
                                     Utility::kRelativeRevenue, 1e-5);
  EXPECT_TRUE(result.converged());
  EXPECT_NEAR(result.utility_value, 0.2, 5e-4);
}

TEST(SelfishMining, BeatsHonestAboveThreshold) {
  const SmResult result = analyze_sm(small_params(0.35, 0.0),
                                     Utility::kRelativeRevenue, 1e-5);
  EXPECT_GT(result.utility_value, 0.35 + 1e-3);
}

TEST(SelfishMining, OptimalDominatesEyalSirer) {
  for (const double alpha : {0.3, 0.35, 0.4}) {
    for (const double gamma : {0.0, 0.5, 1.0}) {
      SmParams params = small_params(alpha, gamma);
      params.max_len = 48;  // high alpha needs deeper truncation
      const SmResult result =
          analyze_sm(params, Utility::kRelativeRevenue, 1e-4);
      const double es = eyal_sirer_revenue(alpha, gamma);
      EXPECT_GE(result.utility_value + 5e-4, std::max(alpha, es))
          << "alpha=" << alpha << " gamma=" << gamma;
    }
  }
}

TEST(SelfishMining, MatchesSapirshteinBenchmark) {
  // Sapirshtein et al. (FC'16) report 0.37077 optimal relative revenue for
  // alpha = 0.35, gamma = 0; our solver converges to the same value.
  SmParams params = small_params(0.35, 0.0);
  params.max_len = 48;
  const SmResult result =
      analyze_sm(params, Utility::kRelativeRevenue, 1e-5);
  EXPECT_NEAR(result.utility_value, 0.37077, 5e-4);
}

TEST(SelfishMining, FullTieWinMatchesClosedForm) {
  // With gamma = 1 the optimum approaches alpha / (1 - alpha).
  SmParams params = small_params(0.3, 1.0);
  params.max_len = 48;
  const SmResult result =
      analyze_sm(params, Utility::kRelativeRevenue, 1e-5);
  EXPECT_NEAR(result.utility_value, 0.3 / 0.7, 1e-3);
}

TEST(SelfishMining, RevenueIncreasesWithGamma) {
  const double low = analyze_sm(small_params(0.3, 0.0),
                                Utility::kRelativeRevenue, 1e-5)
                         .utility_value;
  const double high = analyze_sm(small_params(0.3, 1.0),
                                 Utility::kRelativeRevenue, 1e-5)
                          .utility_value;
  EXPECT_GT(high, low);
}

// ----------------------------------------------- double-spending baseline --

TEST(SmDoubleSpend, UnprofitableForSmallMiner) {
  // Table 3 bottom: with alpha = 10% and tie-win 50%, the best strategy is
  // essentially honest mining (0.1 per block).
  SmParams params = small_params(0.10, 0.5);
  const SmResult result = analyze_sm(params, Utility::kAbsoluteReward, 1e-5);
  EXPECT_NEAR(result.utility_value, 0.10, 5e-3);
}

TEST(SmDoubleSpend, ProfitableForLargeMiner) {
  // alpha = 25%, tie-win 100%: the paper reports 0.52.
  SmParams params = small_params(0.25, 1.0);
  params.max_len = 20;
  const SmResult result = analyze_sm(params, Utility::kAbsoluteReward, 1e-5);
  EXPECT_GT(result.utility_value, 0.4);
  EXPECT_LT(result.utility_value, 0.65);
}

TEST(SmDoubleSpend, RdsZeroReducesToSelfishMiningRates) {
  // With no double-spend value, absolute reward per block cannot exceed the
  // honest rate by much at small alpha... in fact per-step attacker revenue
  // is bounded by alpha (each step mines an attacker block w.p. alpha).
  SmParams params = small_params(0.2, 0.5);
  params.rds = 0.0;
  const SmResult result = analyze_sm(params, Utility::kAbsoluteReward, 1e-5);
  EXPECT_LE(result.utility_value, 0.2 + 1e-3);
}

TEST(SmDoubleSpend, MoreConfirmationsLowerRevenue) {
  SmParams loose = small_params(0.25, 1.0);
  loose.confirmations = 3;
  SmParams strict = small_params(0.25, 1.0);
  strict.confirmations = 6;
  const double easy =
      analyze_sm(loose, Utility::kAbsoluteReward, 1e-5).utility_value;
  const double hard =
      analyze_sm(strict, Utility::kAbsoluteReward, 1e-5).utility_value;
  EXPECT_GT(easy, hard);
}

// ------------------------------------------------------------ orphaning u3 --

TEST(SmOrphaning, BoundedByOneAtFullTieWin) {
  // The paper: in Bitcoin, max u3 <= 1 (one compliant block orphaned per
  // attacker block), approached with gamma = 1.
  const SmResult result = analyze_sm(small_params(0.3, 1.0),
                                     Utility::kOrphaning, 1e-5);
  EXPECT_LE(result.utility_value, 1.0 + 1e-3);
  EXPECT_GT(result.utility_value, 0.9);
}

TEST(SmOrphaning, WellBelowOneWithoutTieAdvantage) {
  const SmResult result = analyze_sm(small_params(0.3, 0.0),
                                     Utility::kOrphaning, 1e-5);
  EXPECT_LT(result.utility_value, 1.0);
}

}  // namespace

// ------------------------------------------------- Monte-Carlo validation --

#include "mdp/rollout.hpp"
#include "util/rng.hpp"

namespace {

TEST(SmRollout, OptimalPolicyRatioMatchesSolver) {
  SmParams params = small_params(0.3, 0.5);
  const SmResult solved = analyze_sm(params, Utility::kRelativeRevenue, 1e-5);
  const SmModel model = build_sm_model(params, Utility::kRelativeRevenue);
  bvc::Rng rng(31337);
  const bvc::mdp::ModelRolloutResult rollout = bvc::mdp::rollout_model(
      model.model, solved.policy,
      model.space.index(SmState{0, 0, Fork::kIrrelevant}), 2'000'000, rng);
  EXPECT_NEAR(rollout.ratio(), solved.utility_value, 5e-3);
}

TEST(SmRollout, DoubleSpendRevenueMatchesSolver) {
  SmParams params = small_params(0.25, 1.0);
  const SmResult solved = analyze_sm(params, Utility::kAbsoluteReward, 1e-5);
  const SmModel model = build_sm_model(params, Utility::kAbsoluteReward);
  bvc::Rng rng(424242);
  const bvc::mdp::ModelRolloutResult rollout = bvc::mdp::rollout_model(
      model.model, solved.policy,
      model.space.index(SmState{0, 0, Fork::kIrrelevant}), 2'000'000, rng);
  EXPECT_NEAR(rollout.ratio(), solved.utility_value, 0.02);
}

}  // namespace

// ------------------------------------------------------ policy inspection --

namespace {

TEST(SmPolicy, DescribeShowsActionGrids) {
  SmParams params = small_params(0.35, 0.0);
  const SmModel model = build_sm_model(params, Utility::kRelativeRevenue);
  const SmResult solved = analyze_sm(params, Utility::kRelativeRevenue, 1e-5);
  const std::string text = describe_sm_policy(model, solved.policy, 6);
  EXPECT_NE(text.find("fork = irrelevant"), std::string::npos);
  EXPECT_NE(text.find("fork = relevant"), std::string::npos);
  EXPECT_NE(text.find("fork = active"), std::string::npos);
  // The classic structure: at (a=1, h=0) a profitable selfish miner waits.
  EXPECT_EQ(policy_action(model, solved.policy,
                          SmState{1, 0, Fork::kIrrelevant}),
            SmAction::kWait);
  // Far behind, the attacker adopts.
  EXPECT_EQ(policy_action(model, solved.policy,
                          SmState{0, 5, Fork::kRelevant}),
            SmAction::kAdopt);
}

TEST(SmPolicy, HonestMinerNeverWithholdsLong) {
  // Below the threshold the optimal policy adopts quickly: at (a=1, h=1)
  // with gamma = 0 the attacker gains nothing from matching.
  SmParams params = small_params(0.15, 0.0);
  const SmModel model = build_sm_model(params, Utility::kRelativeRevenue);
  const SmResult solved = analyze_sm(params, Utility::kRelativeRevenue, 1e-5);
  EXPECT_EQ(policy_action(model, solved.policy,
                          SmState{0, 1, Fork::kRelevant}),
            SmAction::kAdopt);
}

}  // namespace
