// ModelCache: content-addressed sharing of compiled models — hit/miss
// accounting, key canonicalization, and cross-thread sharing (registered
// under the `parallel` ctest label; the sharing test is the TSan target).
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bu/attack_model.hpp"
#include "mdp/compiled_model.hpp"
#include "mdp/model.hpp"
#include "mdp/model_cache.hpp"

namespace {

using namespace bvc;

mdp::Model tiny_model() {
  mdp::ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0, 1.0, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0, 0.0, 1.0);
  return std::move(builder).build();
}

TEST(ModelCache, MissThenHitSharesOneEntry) {
  mdp::ModelCache cache;
  int builds = 0;
  const auto compile = [&] {
    ++builds;
    return mdp::CompiledModel::compile_shared(tiny_model());
  };

  const auto first = cache.get_or_compile("k1", compile);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(builds, 1);

  const auto second = cache.get_or_compile("k1", compile);
  EXPECT_EQ(second.get(), first.get());  // same immutable entry
  EXPECT_EQ(builds, 1);                  // no recompilation on a hit

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ModelCache, DistinctKeysGetDistinctEntries) {
  mdp::ModelCache cache;
  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(tiny_model());
  };
  const auto a = cache.get_or_compile("a", compile);
  const auto b = cache.get_or_compile("b", compile);
  EXPECT_NE(a.get(), b.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ModelCache, FindProbesWithoutFillingOrCounting) {
  mdp::ModelCache cache;
  EXPECT_EQ(cache.find("missing"), nullptr);
  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(tiny_model());
  };
  const auto entry = cache.get_or_compile("k", compile);
  EXPECT_EQ(cache.find("k").get(), entry.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);  // find() counts neither hits nor misses
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ModelCache, ClearDropsEntriesButKeepsOutstandingModelsAlive) {
  mdp::ModelCache cache;
  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(tiny_model());
  };
  const auto held = cache.get_or_compile("k", compile);
  cache.clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(cache.find("k"), nullptr);
  // The caller's shared_ptr still owns a live model.
  EXPECT_EQ(held->num_states(), 2u);
}

TEST(ModelCache, BytesResidentTracksInsertionsAndClear) {
  mdp::ModelCache cache;
  EXPECT_EQ(cache.stats().bytes_resident, 0u);

  const auto model = mdp::CompiledModel::compile_shared(tiny_model());
  const std::size_t per_model = model->bytes_resident();
  EXPECT_GT(per_model, 0u);  // the SoA columns of a 2-state model

  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(tiny_model());
  };
  (void)cache.get_or_compile("a", compile);
  EXPECT_EQ(cache.stats().bytes_resident, per_model);
  // A hit shares the existing entry: no new resident bytes.
  (void)cache.get_or_compile("a", compile);
  EXPECT_EQ(cache.stats().bytes_resident, per_model);
  (void)cache.get_or_compile("b", compile);
  EXPECT_EQ(cache.stats().bytes_resident, 2 * per_model);

  cache.clear();
  EXPECT_EQ(cache.stats().bytes_resident, 0u);
}

TEST(ModelCache, AppendKeyIsCanonical) {
  std::string key;
  mdp::append_key(key, "alpha", 0.1);
  mdp::append_key(key, "ad", std::int64_t{6});
  mdp::append_key(key, "wait", false);
  std::string same;
  mdp::append_key(same, "alpha", 0.1);
  mdp::append_key(same, "ad", std::int64_t{6});
  mdp::append_key(same, "wait", false);
  EXPECT_EQ(key, same);

  // Doubles that differ below printf's default precision must still get
  // distinct keys (round-trip %.17g rendering).
  std::string a;
  std::string b;
  mdp::append_key(a, "x", 0.1);
  mdp::append_key(b, "x", 0.1 + 1e-16);
  EXPECT_NE(a, b);
}

TEST(ModelCache, BuilderKeyCanonicalizesNormalizedInputs) {
  // The orphaning utility forces allow_wait inside the builder, so the two
  // parameter structs build the same model and must share one key.
  bu::AttackParams with_wait;
  with_wait.allow_wait = true;
  bu::AttackParams without_wait;
  without_wait.allow_wait = false;
  EXPECT_EQ(bu::attack_model_cache_key(with_wait, bu::Utility::kOrphaning),
            bu::attack_model_cache_key(without_wait, bu::Utility::kOrphaning));
  // ...but stay distinct where the flag genuinely shapes the model.
  EXPECT_NE(
      bu::attack_model_cache_key(with_wait, bu::Utility::kRelativeRevenue),
      bu::attack_model_cache_key(without_wait, bu::Utility::kRelativeRevenue));
}

TEST(ModelCache, CrossThreadLookupsShareOneCompilation) {
  mdp::ModelCache cache;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLookupsPerThread = 50;

  std::vector<std::shared_ptr<const mdp::CompiledModel>> seen(
      kThreads * kLookupsPerThread);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &seen, t] {
      for (std::size_t i = 0; i < kLookupsPerThread; ++i) {
        seen[t * kLookupsPerThread + i] = cache.get_or_compile("shared", [] {
          return mdp::CompiledModel::compile_shared(tiny_model());
        });
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  // Every lookup observed the same immutable entry (first insert wins).
  for (const auto& entry : seen) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), seen[0].get());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  // Racing fills may each count a miss, but accounting stays consistent:
  // every lookup is classified exactly once.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kLookupsPerThread);
  EXPECT_GE(stats.misses, 1u);
}

TEST(ModelCache, GlobalCacheServesTheModelBuilders) {
  bu::AttackParams params;
  params.alpha = 0.31;  // a cell no other test builds
  params.beta = 0.35;
  params.gamma = 0.34;
  const std::string key =
      bu::attack_model_cache_key(params, bu::Utility::kRelativeRevenue);

  const bu::AttackModel first =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
  ASSERT_NE(first.compiled, nullptr);
  EXPECT_EQ(mdp::ModelCache::global().find(key).get(), first.compiled.get());

  const bu::AttackModel second =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
  EXPECT_EQ(second.compiled.get(), first.compiled.get());
}

}  // namespace
