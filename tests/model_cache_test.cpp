// ModelCache: content-addressed sharing of compiled models — hit/miss
// accounting, key canonicalization, and cross-thread sharing (registered
// under the `parallel` ctest label; the sharing test is the TSan target).
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bu/attack_model.hpp"
#include "mdp/compiled_model.hpp"
#include "mdp/model.hpp"
#include "mdp/model_cache.hpp"

namespace {

using namespace bvc;

mdp::Model tiny_model() {
  mdp::ModelBuilder builder(2);
  builder.begin_action(0, 0);
  builder.add_outcome(1, 1.0, 1.0, 1.0);
  builder.begin_action(1, 0);
  builder.add_outcome(0, 1.0, 0.0, 1.0);
  return std::move(builder).build();
}

TEST(ModelCache, MissThenHitSharesOneEntry) {
  mdp::ModelCache cache;
  int builds = 0;
  const auto compile = [&] {
    ++builds;
    return mdp::CompiledModel::compile_shared(tiny_model());
  };

  const auto first = cache.get_or_compile("k1", compile);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(builds, 1);

  const auto second = cache.get_or_compile("k1", compile);
  EXPECT_EQ(second.get(), first.get());  // same immutable entry
  EXPECT_EQ(builds, 1);                  // no recompilation on a hit

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ModelCache, DistinctKeysGetDistinctEntries) {
  mdp::ModelCache cache;
  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(tiny_model());
  };
  const auto a = cache.get_or_compile("a", compile);
  const auto b = cache.get_or_compile("b", compile);
  EXPECT_NE(a.get(), b.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ModelCache, FindProbesWithoutFillingOrCounting) {
  mdp::ModelCache cache;
  EXPECT_EQ(cache.find("missing"), nullptr);
  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(tiny_model());
  };
  const auto entry = cache.get_or_compile("k", compile);
  EXPECT_EQ(cache.find("k").get(), entry.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);  // find() counts neither hits nor misses
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ModelCache, ClearDropsEntriesButKeepsOutstandingModelsAlive) {
  mdp::ModelCache cache;
  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(tiny_model());
  };
  const auto held = cache.get_or_compile("k", compile);
  cache.clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(cache.find("k"), nullptr);
  // The caller's shared_ptr still owns a live model.
  EXPECT_EQ(held->num_states(), 2u);
}

TEST(ModelCache, BytesResidentTracksInsertionsAndClear) {
  mdp::ModelCache cache;
  EXPECT_EQ(cache.stats().bytes_resident, 0u);

  const auto model = mdp::CompiledModel::compile_shared(tiny_model());
  const std::size_t per_model = model->bytes_resident();
  EXPECT_GT(per_model, 0u);  // the SoA columns of a 2-state model

  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(tiny_model());
  };
  (void)cache.get_or_compile("a", compile);
  EXPECT_EQ(cache.stats().bytes_resident, per_model);
  // A hit shares the existing entry: no new resident bytes.
  (void)cache.get_or_compile("a", compile);
  EXPECT_EQ(cache.stats().bytes_resident, per_model);
  (void)cache.get_or_compile("b", compile);
  EXPECT_EQ(cache.stats().bytes_resident, 2 * per_model);

  cache.clear();
  EXPECT_EQ(cache.stats().bytes_resident, 0u);
}

TEST(ModelCache, AppendKeyIsCanonical) {
  std::string key;
  mdp::append_key(key, "alpha", 0.1);
  mdp::append_key(key, "ad", std::int64_t{6});
  mdp::append_key(key, "wait", false);
  std::string same;
  mdp::append_key(same, "alpha", 0.1);
  mdp::append_key(same, "ad", std::int64_t{6});
  mdp::append_key(same, "wait", false);
  EXPECT_EQ(key, same);

  // Doubles that differ below printf's default precision must still get
  // distinct keys (round-trip %.17g rendering).
  std::string a;
  std::string b;
  mdp::append_key(a, "x", 0.1);
  mdp::append_key(b, "x", 0.1 + 1e-16);
  EXPECT_NE(a, b);
}

TEST(ModelCache, BuilderKeyCanonicalizesNormalizedInputs) {
  // The orphaning utility forces allow_wait inside the builder, so the two
  // parameter structs build the same model and must share one key.
  bu::AttackParams with_wait;
  with_wait.allow_wait = true;
  bu::AttackParams without_wait;
  without_wait.allow_wait = false;
  EXPECT_EQ(bu::attack_model_cache_key(with_wait, bu::Utility::kOrphaning),
            bu::attack_model_cache_key(without_wait, bu::Utility::kOrphaning));
  // ...but stay distinct where the flag genuinely shapes the model.
  EXPECT_NE(
      bu::attack_model_cache_key(with_wait, bu::Utility::kRelativeRevenue),
      bu::attack_model_cache_key(without_wait, bu::Utility::kRelativeRevenue));
}

TEST(ModelCache, CrossThreadLookupsShareOneCompilation) {
  mdp::ModelCache cache;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLookupsPerThread = 50;

  std::vector<std::shared_ptr<const mdp::CompiledModel>> seen(
      kThreads * kLookupsPerThread);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, &seen, t] {
      for (std::size_t i = 0; i < kLookupsPerThread; ++i) {
        seen[t * kLookupsPerThread + i] = cache.get_or_compile("shared", [] {
          return mdp::CompiledModel::compile_shared(tiny_model());
        });
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }

  // Every lookup observed the same immutable entry (first insert wins).
  for (const auto& entry : seen) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry.get(), seen[0].get());
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  // Racing fills may each count a miss, but accounting stays consistent:
  // every lookup is classified exactly once.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kLookupsPerThread);
  EXPECT_GE(stats.misses, 1u);
}

// ---- capacity cap: deferred cost-aware LRU eviction -----------------------

/// A chain model with `states` states: bytes_resident scales with the
/// state count, giving the eviction tests models of controlled size.
mdp::Model chain_model(mdp::StateId states) {
  mdp::ModelBuilder builder(states);
  for (mdp::StateId s = 0; s < states; ++s) {
    builder.begin_action(s, 0);
    builder.add_outcome((s + 1) % states, 1.0, 1.0, 1.0);
  }
  return std::move(builder).build();
}

TEST(ModelCacheEviction, CapBoundsBytesResidentExactly) {
  mdp::ModelCache cache;
  const std::size_t per_model =
      mdp::CompiledModel::compile_shared(chain_model(8))->bytes_resident();
  // Room for exactly two 8-state models.
  cache.set_capacity_bytes(2 * per_model);

  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(chain_model(8));
  };
  (void)cache.get_or_compile("a", compile);
  (void)cache.get_or_compile("b", compile);
  {
    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.bytes_resident, 2 * per_model);
  }
  (void)cache.get_or_compile("c", compile);
  const auto stats = cache.stats();
  // The accounting must agree with CompiledModel::bytes_resident: two
  // entries retained, one evicted, residency exactly two models.
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.bytes_resident, 2 * per_model);
  EXPECT_LE(stats.bytes_resident, stats.capacity_bytes);
}

/// A compile callback whose measured cost is dominated by a busy-wait, so
/// the tests can order entry priorities deterministically.
std::function<std::shared_ptr<const mdp::CompiledModel>()> costing(int ms) {
  return [ms] {
    const auto begin = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - begin <
           std::chrono::milliseconds(ms)) {
    }
    return mdp::CompiledModel::compile_shared(chain_model(8));
  };
}

TEST(ModelCacheEviction, HitRefreshRescuesEntryFromEviction) {
  // GreedyDual-Size recency: once an eviction advances the clock, touching
  // an entry re-bases its priority on the new clock. Costs (in ms busy-wait)
  // are ordered so every victim choice is deterministic:
  //   insert a=50, b=200, c=100; cap forces one eviction -> a (min H = 50),
  //   clock becomes 50. Touch c: H_c = 50 + 100 = 150. Insert d=70:
  //   H_d = 120, the new minimum -> d evicts itself, the touched c
  //   survives. Without the touch c (H = 100) would have been the victim.
  //   The gaps are tens of ms so scheduler preemption of the busy-wait
  //   (the costs are wall-clock-measured) cannot reorder the victims
  //   when the suite runs under full parallel load.
  mdp::ModelCache cache;
  const std::size_t per_model =
      mdp::CompiledModel::compile_shared(chain_model(8))->bytes_resident();
  cache.set_capacity_bytes(2 * per_model);
  (void)cache.get_or_compile("a", costing(50));
  (void)cache.get_or_compile("b", costing(200));
  (void)cache.get_or_compile("c", costing(100));
  EXPECT_EQ(cache.find("a"), nullptr);  // cheapest of the first generation
  (void)cache.get_or_compile("c", costing(100));  // hit: re-base on the clock
  (void)cache.get_or_compile("d", costing(70));
  EXPECT_EQ(cache.find("d"), nullptr);
  EXPECT_NE(cache.find("b"), nullptr);
  EXPECT_NE(cache.find("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ModelCacheEviction, SelfEvictingInsertStillReturnsItsModel) {
  // A large model whose compile is near-instant has the minimum
  // GreedyDual-Size priority the moment it is inserted, so enforcing the
  // cap evicts the entry that was just created. The caller must still get
  // the compiled model back (regression: the post-eviction read of the
  // erased entry was a use-after-free).
  mdp::ModelCache cache;
  const std::size_t per_model =
      mdp::CompiledModel::compile_shared(chain_model(8))->bytes_resident();
  cache.set_capacity_bytes(2 * per_model);
  (void)cache.get_or_compile("a", costing(20));
  (void)cache.get_or_compile("b", costing(20));
  const auto huge = cache.get_or_compile(
      "huge", [] { return mdp::CompiledModel::compile_shared(chain_model(64)); });
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(huge->num_states(), 64);
  EXPECT_EQ(cache.find("huge"), nullptr);  // the insert was its own victim
  EXPECT_NE(cache.find("a"), nullptr);
  EXPECT_NE(cache.find("b"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes_resident, 2 * per_model);
}

TEST(ModelCacheEviction, EqualRecencyPrefersEvictingCheapEntries) {
  // Cost-aware tie-break: with every entry equally recent, the one whose
  // compilation cost the least per byte goes first. The cheap entry's
  // compile is instant; the expensive one gets a synthetic stall.
  mdp::ModelCache cache;
  const std::size_t small_bytes =
      mdp::CompiledModel::compile_shared(chain_model(8))->bytes_resident();
  (void)cache.get_or_compile("expensive", [] {
    // A bigger build stands in for a slow one: its wall clock is what the
    // cache records as reconstruction cost.
    const auto begin = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - begin <
           std::chrono::milliseconds(5)) {
    }
    return mdp::CompiledModel::compile_shared(chain_model(8));
  });
  (void)cache.get_or_compile("cheap", [] {
    return mdp::CompiledModel::compile_shared(chain_model(8));
  });
  // Cap to one model: exactly one of the two must go.
  cache.set_capacity_bytes(small_bytes);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.find("cheap"), nullptr);
  EXPECT_NE(cache.find("expensive"), nullptr);
}

TEST(ModelCacheEviction, SettingCapacityEvictsImmediately) {
  mdp::ModelCache cache;
  const auto compile = [] {
    return mdp::CompiledModel::compile_shared(chain_model(16));
  };
  (void)cache.get_or_compile("a", compile);
  (void)cache.get_or_compile("b", compile);
  (void)cache.get_or_compile("c", compile);
  ASSERT_EQ(cache.stats().entries, 3u);
  cache.set_capacity_bytes(1);  // below one model: keep only the floor of 1
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);  // never evicts the last entry
  EXPECT_EQ(stats.evictions, 2u);
  // Returning to unbounded stops evicting but keeps the tallies.
  cache.set_capacity_bytes(0);
  (void)cache.get_or_compile("d", compile);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

// ---- disk tier ------------------------------------------------------------

class ModelCacheDiskTier : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "bvc_cache_tier_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(ModelCacheDiskTier, SpillsOnCompileAndReloadsAfterClear) {
  mdp::ModelCache cache;
  cache.set_disk_tier(dir_);
  int builds = 0;
  const auto compile = [&] {
    ++builds;
    return mdp::CompiledModel::compile_shared(chain_model(8));
  };
  const auto first = cache.get_or_compile("k", compile);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.stats().disk_stores, 1u);
  EXPECT_TRUE(
      std::filesystem::exists(mdp::ModelCache::disk_path(dir_, "k")));

  cache.clear();  // memory gone, disk tier survives
  const auto reloaded = cache.get_or_compile("k", compile);
  EXPECT_EQ(builds, 1);  // served from disk, not recompiled
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->num_states(), first->num_states());
  EXPECT_EQ(reloaded->bytes_resident(), first->bytes_resident());
}

TEST_F(ModelCacheDiskTier, KeyMismatchInFileFallsBackToCompile) {
  mdp::ModelCache cache;
  cache.set_disk_tier(dir_);
  // Plant a file for key "other" at the path "victim" hashes to: a forced
  // filename collision. The stored-key check must reject it.
  const std::string path = mdp::ModelCache::disk_path(dir_, "victim");
  {
    mdp::ModelCache planter;
    planter.set_disk_tier(dir_);
    (void)planter.get_or_compile("other", [] {
      return mdp::CompiledModel::compile_shared(chain_model(8));
    });
    std::filesystem::rename(mdp::ModelCache::disk_path(dir_, "other"), path);
  }
  int builds = 0;
  (void)cache.get_or_compile("victim", [&] {
    ++builds;
    return mdp::CompiledModel::compile_shared(chain_model(8));
  });
  EXPECT_EQ(builds, 1);  // collision detected, recompiled
  EXPECT_EQ(cache.stats().disk_hits, 0u);
}

TEST_F(ModelCacheDiskTier, CorruptFileFallsBackToCompile) {
  mdp::ModelCache cache;
  cache.set_disk_tier(dir_);
  const std::string path = mdp::ModelCache::disk_path(dir_, "k");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a model";
  }
  int builds = 0;
  const auto model = cache.get_or_compile("k", [&] {
    ++builds;
    return mdp::CompiledModel::compile_shared(chain_model(8));
  });
  EXPECT_EQ(builds, 1);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->num_states(), 8u);
}

TEST(CompiledModelSerialization, RoundTripIsBitIdentical) {
  const auto original =
      mdp::CompiledModel::compile_shared(chain_model(5), /*tau=*/0.875);
  std::stringstream buffer;
  original->serialize(buffer);
  const auto restored = mdp::CompiledModel::deserialize(buffer);
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->num_states(), original->num_states());
  ASSERT_EQ(restored->num_state_actions(), original->num_state_actions());
  ASSERT_EQ(restored->num_outcomes(), original->num_outcomes());
  EXPECT_EQ(restored->compiled_tau(), original->compiled_tau());
  EXPECT_EQ(restored->bytes_resident(), original->bytes_resident());
  for (std::size_t i = 0; i < original->num_outcomes(); ++i) {
    ASSERT_EQ(restored->next()[i], original->next()[i]);
    ASSERT_EQ(restored->prob()[i], original->prob()[i]);
    ASSERT_EQ(restored->damped_prob()[i], original->damped_prob()[i]);
    ASSERT_EQ(restored->reward()[i], original->reward()[i]);
    ASSERT_EQ(restored->weight()[i], original->weight()[i]);
  }
  for (std::size_t sa = 0; sa < original->num_state_actions(); ++sa) {
    ASSERT_EQ(restored->expected_reward(sa), original->expected_reward(sa));
    ASSERT_EQ(restored->expected_weight(sa), original->expected_weight(sa));
  }
}

TEST(CompiledModelSerialization, TruncatedStreamIsRejected) {
  const auto original = mdp::CompiledModel::compile_shared(chain_model(5));
  std::stringstream buffer;
  original->serialize(buffer);
  const std::string full = buffer.str();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, full.size() / 2, full.size() - 1}) {
    std::stringstream truncated(full.substr(0, keep));
    EXPECT_EQ(mdp::CompiledModel::deserialize(truncated), nullptr)
        << "accepted a stream truncated to " << keep << " bytes";
  }
}

TEST(ModelCache, GlobalCacheServesTheModelBuilders) {
  bu::AttackParams params;
  params.alpha = 0.31;  // a cell no other test builds
  params.beta = 0.35;
  params.gamma = 0.34;
  const std::string key =
      bu::attack_model_cache_key(params, bu::Utility::kRelativeRevenue);

  const bu::AttackModel first =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
  ASSERT_NE(first.compiled, nullptr);
  EXPECT_EQ(mdp::ModelCache::global().find(key).get(), first.compiled.get());

  const bu::AttackModel second =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
  EXPECT_EQ(second.compiled.get(), first.compiled.get());
}

}  // namespace
