// Equivalence of the CompiledModel SoA kernel layer with the Model (AoS)
// representation it compiles: structural fidelity, bit-identical solver
// results through both overload families, and bit-identical raw sweeps
// against an in-test replica of the seed's AoS Gauss-Seidel backup loop.
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "btc/selfish_mining.hpp"
#include "bu/attack_model.hpp"
#include "mdp/average_reward.hpp"
#include "mdp/compiled_model.hpp"
#include "mdp/discounted.hpp"
#include "mdp/model.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/ratio.hpp"
#include "mdp/rollout.hpp"
#include "mdp/solver_config.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;

bu::AttackModel setting1_model() {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.setting = bu::Setting::kNoStickyGate;
  return bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
}

bu::AttackModel setting2_model() {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.setting = bu::Setting::kStickyGate;
  params.gate_period = 12;  // paper-shaped but small enough for a fast test
  return bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
}

btc::SmModel btc_model() {
  btc::SmParams params;
  params.alpha = 0.30;
  params.gamma_tie = 0.5;
  params.max_len = 12;
  return btc::build_sm_model(params, bu::Utility::kRelativeRevenue);
}

// ---- structural fidelity --------------------------------------------------

TEST(CompiledModel, MirrorsModelStructure) {
  const bu::AttackModel attack = setting1_model();
  const mdp::Model& model = attack.model;
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(model);

  ASSERT_EQ(compiled.num_states(), model.num_states());
  ASSERT_EQ(compiled.num_state_actions(), model.num_state_actions());

  std::size_t total_outcomes = 0;
  for (mdp::StateId s = 0; s < model.num_states(); ++s) {
    ASSERT_EQ(compiled.num_actions(s), model.num_actions(s));
    for (std::size_t a = 0; a < model.num_actions(s); ++a) {
      const mdp::SaIndex sa = model.sa_index(s, a);
      ASSERT_EQ(compiled.sa_index(s, a), sa);
      EXPECT_EQ(compiled.action_label(sa), model.action_label(s, a));
      EXPECT_EQ(compiled.expected_reward(sa), model.expected_reward(sa));
      EXPECT_EQ(compiled.expected_weight(sa), model.expected_weight(sa));
      const std::span<const mdp::Outcome> outcomes = model.outcomes(sa);
      ASSERT_EQ(compiled.outcome_end(sa) - compiled.outcome_begin(sa),
                outcomes.size());
      std::size_t k = compiled.outcome_begin(sa);
      for (const mdp::Outcome& outcome : outcomes) {
        EXPECT_EQ(compiled.next()[k], outcome.next);
        EXPECT_EQ(compiled.prob()[k], outcome.probability);
        EXPECT_EQ(compiled.reward()[k], outcome.reward);
        EXPECT_EQ(compiled.weight()[k], outcome.weight);
        // The damped column is exactly tau * p (the kernel-bench layout).
        EXPECT_EQ(compiled.damped_prob()[k],
                  compiled.compiled_tau() * outcome.probability);
        ++k;
      }
      total_outcomes += outcomes.size();
    }
  }
  EXPECT_EQ(compiled.num_outcomes(), total_outcomes);
}

TEST(CompiledModel, RejectsBadTau) {
  const bu::AttackModel attack = setting1_model();
  EXPECT_THROW((void)mdp::CompiledModel::compile(attack.model, 0.0),
               std::exception);
  EXPECT_THROW((void)mdp::CompiledModel::compile(attack.model, 1.5),
               std::exception);
}

// ---- raw sweep equivalence vs an AoS reference replica --------------------

// The seed's serial Gauss-Seidel greedy backup sweep, written against the
// AoS Model exactly as average_reward.cpp's rvi_core used to sweep it.
void reference_aos_sweep(const mdp::Model& model,
                         std::span<const double> rewards, double tau,
                         std::vector<double>& bias) {
  double ref = 0.0;
  for (mdp::StateId s = 0; s < model.num_states(); ++s) {
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < model.num_actions(s); ++a) {
      const mdp::SaIndex sa = model.sa_index(s, a);
      double q = rewards[sa];
      double expected_next = 0.0;
      for (const mdp::Outcome& outcome : model.outcomes(sa)) {
        expected_next += outcome.probability * bias[outcome.next];
      }
      q = tau * (q + expected_next) + (1.0 - tau) * bias[s];
      if (q > best) {
        best = q;
      }
    }
    if (s == 0) {
      ref = best - bias[0];
    }
    bias[s] = best - ref;
  }
}

// The same sweep over the compiled columns (the layout rvi_core now runs).
void compiled_soa_sweep(const mdp::CompiledModel& model,
                        std::span<const double> rewards, double tau,
                        std::vector<double>& bias) {
  const mdp::StateId* next_col = model.next();
  const double* prob_col = model.prob();
  double ref = 0.0;
  for (mdp::StateId s = 0; s < model.num_states(); ++s) {
    const mdp::SaIndex sa_base = model.state_begin(s);
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < model.num_actions(s); ++a) {
      const mdp::SaIndex sa = sa_base + a;
      double q = rewards[sa];
      double expected_next = 0.0;
      const std::size_t end = model.outcome_end(sa);
      for (std::size_t k = model.outcome_begin(sa); k < end; ++k) {
        expected_next += prob_col[k] * bias[next_col[k]];
      }
      q = tau * (q + expected_next) + (1.0 - tau) * bias[s];
      if (q > best) {
        best = q;
      }
    }
    if (s == 0) {
      ref = best - bias[0];
    }
    bias[s] = best - ref;
  }
}

void expect_sweeps_bit_identical(const mdp::Model& model) {
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(model);
  const std::span<const double> rewards{compiled.expected_reward(),
                                        compiled.num_state_actions()};
  constexpr double kTau = 0.999;
  std::vector<double> aos_bias(model.num_states(), 0.0);
  std::vector<double> soa_bias(model.num_states(), 0.0);
  for (int sweep = 0; sweep < 25; ++sweep) {
    reference_aos_sweep(model, rewards, kTau, aos_bias);
    compiled_soa_sweep(compiled, rewards, kTau, soa_bias);
  }
  for (std::size_t i = 0; i < aos_bias.size(); ++i) {
    ASSERT_EQ(aos_bias[i], soa_bias[i]) << "bias diverged at state " << i;
  }
}

TEST(CompiledModel, SweepBitIdenticalToAosReferenceSetting1) {
  expect_sweeps_bit_identical(setting1_model().model);
}

TEST(CompiledModel, SweepBitIdenticalToAosReferenceSetting2) {
  expect_sweeps_bit_identical(setting2_model().model);
}

TEST(CompiledModel, SweepBitIdenticalToAosReferenceBtc) {
  expect_sweeps_bit_identical(btc_model().model);
}

// ---- full-solver equivalence: Model vs CompiledModel overloads ------------

void expect_gain_results_identical(const mdp::GainResult& a,
                                   const mdp::GainResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.bias.size(), b.bias.size());
  for (std::size_t i = 0; i < a.bias.size(); ++i) {
    ASSERT_EQ(a.bias[i], b.bias[i]) << "bias differs at state " << i;
  }
  EXPECT_EQ(a.gain, b.gain);
  EXPECT_EQ(a.policy.action, b.policy.action);
}

void expect_gain_equivalence(const mdp::Model& model) {
  mdp::SolverConfig config;
  config.average_reward.tolerance = 1e-8;
  const mdp::GainResult via_model = mdp::maximize_average_reward(model, config);
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(model);
  const mdp::GainResult via_compiled =
      mdp::maximize_average_reward(compiled, config);
  expect_gain_results_identical(via_model, via_compiled);
}

TEST(CompiledModel, GainResultBitIdenticalSetting1) {
  expect_gain_equivalence(setting1_model().model);
}

TEST(CompiledModel, GainResultBitIdenticalSetting2) {
  expect_gain_equivalence(setting2_model().model);
}

TEST(CompiledModel, GainResultBitIdenticalBtc) {
  expect_gain_equivalence(btc_model().model);
}

void expect_ratio_equivalence(const mdp::Model& model, double upper_bound) {
  mdp::SolverConfig config;
  config.ratio.tolerance = 1e-6;
  config.ratio.upper_bound = upper_bound;
  const mdp::RatioResult via_model = mdp::maximize_ratio(model, config);
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(model);
  const mdp::RatioResult via_compiled =
      mdp::maximize_ratio(compiled, config);
  EXPECT_EQ(via_model.status, via_compiled.status);
  EXPECT_EQ(via_model.iterations, via_compiled.iterations);
  EXPECT_EQ(via_model.ratio, via_compiled.ratio);
  EXPECT_EQ(via_model.reward_rate, via_compiled.reward_rate);
  EXPECT_EQ(via_model.weight_rate, via_compiled.weight_rate);
  EXPECT_EQ(via_model.used_bisection, via_compiled.used_bisection);
  EXPECT_EQ(via_model.policy.action, via_compiled.policy.action);
}

TEST(CompiledModel, RatioResultBitIdenticalSetting1) {
  expect_ratio_equivalence(setting1_model().model, 1.0);
}

TEST(CompiledModel, RatioResultBitIdenticalSetting2) {
  expect_ratio_equivalence(setting2_model().model, 1.0);
}

TEST(CompiledModel, RatioResultBitIdenticalBtc) {
  expect_ratio_equivalence(btc_model().model, 1.0);
}

TEST(CompiledModel, DiscountedAndPolicyIterationBitIdentical) {
  const mdp::Model& model = setting1_model().model;
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(model);

  mdp::SolverConfig discounted_config;
  discounted_config.discounted.discount = 0.95;
  const mdp::DiscountedResult da =
      mdp::solve_discounted(model, discounted_config);
  const mdp::DiscountedResult db =
      mdp::solve_discounted(compiled, discounted_config);
  EXPECT_EQ(da.status, db.status);
  EXPECT_EQ(da.iterations, db.iterations);
  ASSERT_EQ(da.value.size(), db.value.size());
  for (std::size_t i = 0; i < da.value.size(); ++i) {
    ASSERT_EQ(da.value[i], db.value[i]);
  }
  EXPECT_EQ(da.policy.action, db.policy.action);

  const mdp::SolverConfig howard;
  const mdp::PolicyIterationResult pa = mdp::policy_iteration(model, howard);
  const mdp::PolicyIterationResult pb =
      mdp::policy_iteration(compiled, howard);
  EXPECT_EQ(pa.status, pb.status);
  EXPECT_EQ(pa.iterations, pb.iterations);
  EXPECT_EQ(pa.gain, pb.gain);
  EXPECT_EQ(pa.policy.action, pb.policy.action);
}

TEST(CompiledModel, RolloutDrawsIdenticalTrajectory) {
  const mdp::Model& model = setting1_model().model;
  const mdp::CompiledModel compiled = mdp::CompiledModel::compile(model);
  const mdp::GainResult gain =
      mdp::maximize_average_reward(model, mdp::SolverConfig{});

  Rng rng_a(99);
  Rng rng_b(99);
  const mdp::ModelRolloutResult via_model =
      mdp::rollout_model(model, gain.policy, /*start=*/0, 20'000, rng_a);
  const mdp::ModelRolloutResult via_compiled =
      mdp::rollout_model(compiled, gain.policy, /*start=*/0, 20'000, rng_b);
  EXPECT_EQ(via_model.steps, via_compiled.steps);
  EXPECT_EQ(via_model.reward_total, via_compiled.reward_total);
  EXPECT_EQ(via_model.weight_total, via_compiled.weight_total);
}

// ---- the cached compilation carried by the analysis layers ----------------

TEST(CompiledModel, AttackModelCarriesCachedCompilation) {
  const bu::AttackModel attack = setting1_model();
  ASSERT_NE(attack.compiled, nullptr);
  EXPECT_EQ(attack.compiled->num_states(), attack.model.num_states());
  // A rebuild of the same cell shares the same immutable compilation.
  const bu::AttackModel again = setting1_model();
  EXPECT_EQ(attack.compiled.get(), again.compiled.get());
}

TEST(CompiledModel, SmModelCarriesCachedCompilation) {
  const btc::SmModel sm = btc_model();
  ASSERT_NE(sm.compiled, nullptr);
  EXPECT_EQ(sm.compiled->num_states(), sm.model.num_states());
}

}  // namespace
