// The service wire format: strict parsing, deterministic writing, and the
// malformed-input rejections the HTTP 400 path depends on.
#include "svc/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace {

using bvc::svc::Json;

std::string reparse_dump(const std::string& text) {
  const std::optional<Json> value = Json::parse(text);
  EXPECT_TRUE(value.has_value()) << text;
  return value ? value->dump() : "";
}

TEST(SvcJson, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool(true));
  EXPECT_DOUBLE_EQ(Json::parse("0.25")->as_number(), 0.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e-5")->as_number(), 1e-5);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(SvcJson, ParsesNestedDocuments) {
  const std::optional<Json> doc = Json::parse(
      R"({"kind":"bu-attack","cells":[{"alpha":0.2,"flags":[true,null]}]})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->string_or("kind", ""), "bu-attack");
  const Json* cells = doc->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->size(), 1u);
  EXPECT_DOUBLE_EQ(cells->at(0).number_or("alpha", 0.0), 0.2);
  const Json* flags = cells->at(0).find("flags");
  ASSERT_NE(flags, nullptr);
  EXPECT_TRUE(flags->at(0).as_bool());
  EXPECT_TRUE(flags->at(1).is_null());
}

TEST(SvcJson, DumpRoundTripsAndIsDeterministic) {
  const std::string compact =
      R"({"a":1,"b":[1.5,"x",false,null],"c":{"d":-2}})";
  EXPECT_EQ(reparse_dump(compact), compact);
  // Whitespace in the input normalizes away.
  EXPECT_EQ(reparse_dump(" { \"a\" : 1 ,\n \"b\" : [ 1.5 ] } "),
            R"({"a":1,"b":[1.5]})");
}

TEST(SvcJson, IntegralNumbersPrintAsIntegers) {
  EXPECT_EQ(Json::number(144).dump(), "144");
  EXPECT_EQ(Json::number(-3).dump(), "-3");
  EXPECT_EQ(Json::number(0.25).dump(), "0.25");
  // Round-trip of a value needing full precision.
  const std::string dumped = Json::number(0.20000000076779917).dump();
  EXPECT_DOUBLE_EQ(Json::parse(dumped)->as_number(), 0.20000000076779917);
}

TEST(SvcJson, HugeNumbersDumpWithoutIntegerNarrowing) {
  // Values outside long long range must never reach the integer cast
  // (that cast is UB); they print via %.17g and round-trip. Reachable from
  // the wire: submit() echoes unknown request fields back through dump().
  EXPECT_DOUBLE_EQ(Json::parse(Json::number(1e300).dump())->as_number(),
                   1e300);
  EXPECT_DOUBLE_EQ(Json::parse(Json::number(-1e300).dump())->as_number(),
                   -1e300);
  // NaN fails every range comparison; dumping must not crash or cast.
  const std::string nan_dump =
      Json::number(std::numeric_limits<double>::quiet_NaN()).dump();
  EXPECT_FALSE(nan_dump.empty());
}

TEST(SvcJson, StringEscapesRoundTrip) {
  const std::string raw = "quote\" slash\\ tab\t nl\n ctrl\x01 text";
  const std::string dumped = Json::string(raw).dump();
  const std::optional<Json> back = Json::parse(dumped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_string(), raw);
}

TEST(SvcJson, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse(R"("\u0041\u00e9")")->as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1D11E (musical G clef) -> 4-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("\ud834\udd1e")")->as_string(),
            "\xf0\x9d\x84\x9e");
  // Lone surrogate is malformed.
  EXPECT_FALSE(Json::parse(R"("\ud834")").has_value());
}

TEST(SvcJson, RejectsMalformedDocuments) {
  for (const char* bad : {
           "",            // empty
           "{",           // unterminated object
           "[1,",         // unterminated array
           "{\"a\" 1}",   // missing colon
           "{\"a\":1,}",  // trailing comma
           "[1 2]",       // missing comma
           "nul",         // truncated literal
           "\"abc",       // unterminated string
           "\"\\q\"",     // unknown escape
           "01",          // leading zero
           "-",           // bare minus
           "1.",          // trailing dot
           "NaN",         // not JSON
           "Infinity",    // not JSON
           "1e999",       // overflows to inf
           "{} extra",    // trailing garbage
           "[1] [2]",     // two documents
       }) {
    EXPECT_FALSE(Json::parse(bad).has_value()) << "accepted: " << bad;
  }
}

TEST(SvcJson, RejectsDocumentsAboveTheDepthCap) {
  std::string deep;
  for (std::size_t i = 0; i < Json::kMaxDepth + 1; ++i) deep += "[";
  deep += "1";
  for (std::size_t i = 0; i < Json::kMaxDepth + 1; ++i) deep += "]";
  EXPECT_FALSE(Json::parse(deep).has_value());

  std::string shallow;
  for (std::size_t i = 0; i < Json::kMaxDepth - 1; ++i) shallow += "[";
  shallow += "1";
  for (std::size_t i = 0; i < Json::kMaxDepth - 1; ++i) shallow += "]";
  EXPECT_TRUE(Json::parse(shallow).has_value());
}

TEST(SvcJson, ObjectLookupIsFirstMatchAndOrderPreserving) {
  Json object = Json::object();
  object.set("b", Json::number(2));
  object.set("a", Json::number(1));
  ASSERT_EQ(object.members().size(), 2u);
  EXPECT_EQ(object.members()[0].first, "b");
  EXPECT_EQ(object.dump(), R"({"b":2,"a":1})");
  EXPECT_DOUBLE_EQ(object.number_or("missing", 7.5), 7.5);
  EXPECT_EQ(object.find("missing"), nullptr);
}

TEST(SvcJson, TypedFallbacksOnWrongTypes) {
  const Json number = Json::number(1.0);
  EXPECT_EQ(number.as_string(), "");
  EXPECT_FALSE(number.as_bool());
  EXPECT_DOUBLE_EQ(Json::string("x").as_number(3.0), 3.0);
}

}  // namespace
