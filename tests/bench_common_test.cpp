// Tests for the shared bench helpers (bench/bench_common.hpp): the
// describe_cell formatter (regression: long parameter names used to be
// silently truncated by a fixed 64-byte intermediate buffer) and the
// ObsSession flag-driven observability front door every bench binary uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace bvc;

TEST(DescribeCell, FormatsNameValuePairs) {
  EXPECT_EQ(bench::describe_cell({{"alpha", 0.2}, {"gamma", 0.45}, {"AD", 6}}),
            "alpha=0.2 gamma=0.45 AD=6");
  EXPECT_EQ(bench::describe_cell({}), "");
  EXPECT_EQ(bench::describe_cell({{"x", 0.5}}), "x=0.5");
}

TEST(DescribeCell, LongParameterNamesAreNotTruncated) {
  // Regression: the old implementation rendered into a fixed char[64] and
  // lost everything past it. A cell description exists to make a failing
  // sweep reproducible, so every byte of every name must survive.
  const std::string long_name(100, 'p');
  const std::string other_name(80, 'q');
  const std::string text = bench::describe_cell(
      {{long_name.c_str(), 1.5}, {other_name.c_str(), 2.5}});
  EXPECT_EQ(text, long_name + "=1.5 " + other_name + "=2.5");
  EXPECT_GT(text.size(), 64u);
}

TEST(DescribeCell, ValuesUseCompactFloatFormat) {
  // %g: no trailing zeros, scientific only when warranted — matches what
  // the tables print, so a cell description can be grepped from the output.
  EXPECT_EQ(bench::describe_cell({{"EB", 1000000}}), "EB=1e+06");
  EXPECT_EQ(bench::describe_cell({{"tol", 0.000001}}), "tol=1e-06");
  EXPECT_EQ(bench::describe_cell({{"n", 3}}), "n=3");
}

TEST(ObsSession, NoFlagsLeavesInstrumentationDisabled) {
  const char* argv[] = {"bench_fake", "--threads", "2"};
  {
    bench::ObsSession session(3, argv);
    EXPECT_FALSE(obs::metrics_enabled());
    EXPECT_FALSE(obs::trace_enabled());
  }
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_FALSE(obs::trace_enabled());
}

TEST(ObsSession, TraceFlagEnablesTracerAndWritesChromeTraceOnExit) {
  const std::string path =
      testing::TempDir() + "bvc_obs_session_trace_test.json";
  const std::string flag = "--trace-out=" + path;
  const char* argv[] = {"bench_fake", flag.c_str()};
  obs::Tracer::global().reset();
  {
    bench::ObsSession session(2, argv);
    ASSERT_TRUE(obs::trace_enabled());
    obs::Span span("bench_common_test.work", "test");
  }
  obs::Tracer::global().disable();
  obs::Tracer::global().reset();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "ObsSession did not write " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"bench_common_test.work\""),
            std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ObsSession, MetricsFlagEnablesMetricsAndWritesSnapshotOnExit) {
  const std::string path =
      testing::TempDir() + "bvc_obs_session_metrics_test.json";
  const std::string flag = "--metrics-out=" + path;
  const char* argv[] = {"bench_fake", flag.c_str()};
  {
    bench::ObsSession session(2, argv);
    ASSERT_TRUE(obs::metrics_enabled());
    obs::MetricsRegistry::global()
        .counter("bench_common_test.sessions")
        .add();
  }
  obs::set_metrics_enabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "ObsSession did not write " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"bench_common_test.sessions\""), std::string::npos);
}

TEST(ObsSession, ManifestRecordsNotedOutputs) {
  const std::string path =
      testing::TempDir() + "bvc_obs_session_manifest_test.json";
  const std::string flag = "--manifest-out=" + path;
  const char* argv[] = {"bench_fake", flag.c_str(), "--quick"};
  {
    bench::ObsSession session(3, argv);
    session.note_output("csv", "out/table.csv");
  }
  obs::set_metrics_enabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "ObsSession did not write " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"binary\""), std::string::npos);
  EXPECT_NE(json.find("--quick"), std::string::npos);
  EXPECT_NE(json.find("out/table.csv"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

}  // namespace
