#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc;

// ---------------------------------------------------------------- check ---

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(BVC_REQUIRE(false, "nope"), std::invalid_argument);
  EXPECT_NO_THROW(BVC_REQUIRE(true, "fine"));
}

TEST(Check, EnsureThrowsInternalError) {
  EXPECT_THROW(BVC_ENSURE(false, "bug"), InternalError);
  EXPECT_NO_THROW(BVC_ENSURE(true, "fine"));
}

TEST(Check, MessagesCarryContext) {
  try {
    BVC_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Check, RequireMessageCarriesFileAndLine) {
  int thrown_line = 0;
  try {
    thrown_line = __LINE__ + 1;
    BVC_REQUIRE(false, "where am I");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(thrown_line)), std::string::npos)
        << what;
    EXPECT_NE(what.find("where am I"), std::string::npos) << what;
    EXPECT_NE(what.find("false"), std::string::npos) << what;
  }
}

TEST(Check, EnsureMessageCarriesFileAndLine) {
  int thrown_line = 0;
  try {
    thrown_line = __LINE__ + 1;
    BVC_ENSURE(2 + 2 == 5, "internal bug marker");
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(thrown_line)), std::string::npos)
        << what;
    EXPECT_NE(what.find("internal bug marker"), std::string::npos) << what;
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
  }
}

TEST(Check, InternalErrorIsLogicError) {
  // Callers catching std::logic_error (but not std::invalid_argument
  // handlers for caller mistakes) must see library bugs.
  EXPECT_THROW(BVC_ENSURE(false, "bug"), std::logic_error);
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanIsHalf) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.next_double());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(9);
  std::array<int, 5> counts{};
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.next_below(5)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.2, 0.02);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bernoulli(0.0));
    EXPECT_TRUE(rng.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    hits += rng.next_bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.next_exponential(2.0));
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, CategoricalMatchesWeights) {
  Rng rng(10);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    ++counts[rng.next_categorical(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.6, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(12);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.next_categorical(weights), 1u);
  }
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(13);
  const std::vector<double> empty;
  EXPECT_THROW((void)rng.next_categorical(empty), std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW((void)rng.next_categorical(zeros), std::invalid_argument);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW((void)rng.next_categorical(negative), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(CategoricalSampler, MatchesWeights) {
  Rng rng(14);
  CategoricalSampler sampler(std::vector<double>{2.0, 2.0, 6.0});
  std::array<int, 3> counts{};
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    ++counts[sampler.sample(rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.6, 0.01);
}

TEST(CategoricalSampler, RejectsAllZero) {
  EXPECT_THROW(CategoricalSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- stats ---

TEST(RunningStats, MeanAndVariance) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderr_mean(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(21);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RatioAccumulator, BasicRatio) {
  RatioAccumulator acc;
  acc.add(1.0, 4.0);
  acc.add(1.0, 4.0);
  EXPECT_DOUBLE_EQ(acc.ratio(), 0.25);
  EXPECT_EQ(acc.count(), 2u);
}

TEST(RatioAccumulator, FallbackWhenDenominatorZero) {
  RatioAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.ratio(-1.0), -1.0);
}

// ---------------------------------------------------------------- table ---

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "0.25"});
  table.add_row({"beta-gamma", "1"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("-+-"), std::string::npos);
  // Each line has the same length (aligned columns).
  std::istringstream in(text);
  std::string line;
  std::size_t expected = 0;
  while (std::getline(in, line)) {
    if (expected == 0) {
      expected = line.size();
    }
    EXPECT_EQ(line.size(), expected);
  }
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableFormat, FixedAndPercent) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_percent(0.2529), "25.29%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

// ------------------------------------------------------------------ csv ---

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b,c"});
  writer.write_row({"1", "2"});
  EXPECT_EQ(out.str(), "a,\"b,c\"\n1,2\n");
}

// ------------------------------------------------------------------ cli ---

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--alpha", "0.25", "--setting=2", "input.txt",
                        "--verbose"};
  CliArgs args(6, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.25);
  EXPECT_EQ(args.get_long("setting", 0), 2);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.125), 0.125);
  EXPECT_EQ(args.get_string("name", "default"), "default");
}

TEST(Cli, BooleanValueForms) {
  const char* argv[] = {"prog", "--on=true", "--off=false"};
  CliArgs args(3, argv);
  EXPECT_TRUE(args.get_bool("on", false));
  EXPECT_FALSE(args.get_bool("off", true));
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--alpha", "abc"};
  CliArgs args(3, argv);
  EXPECT_THROW((void)args.get_double("alpha", 0.0), std::invalid_argument);
}

}  // namespace
