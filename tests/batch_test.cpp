// The batch-solve engine and the SolverConfig front door: input-order
// determinism across thread counts, shared-budget semantics (deadline,
// tick cap, cancellation), parallel-vs-serial value-iteration equivalence,
// and front-door/legacy-overload equivalence for all four solvers.
#include "mdp/batch.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "bu/attack_analysis.hpp"
#include "bu/attack_model.hpp"
#include "mdp/average_reward.hpp"
#include "mdp/discounted.hpp"
#include "mdp/policy_iteration.hpp"
#include "mdp/ratio.hpp"
#include "mdp/solver_config.hpp"
#include "robust/run_control.hpp"

namespace bvc {
namespace {

bu::AttackParams small_params(double alpha, double beta, double gamma) {
  bu::AttackParams params;
  params.alpha = alpha;
  params.beta = beta;
  params.gamma = gamma;
  params.setting = bu::Setting::kNoStickyGate;
  params.ad = 4;  // small state space: these tests solve many models
  return params;
}

std::vector<bu::AttackModel> small_model_set() {
  std::vector<bu::AttackModel> models;
  models.push_back(bu::build_attack_model(
      small_params(0.25, 0.30, 0.45), bu::Utility::kRelativeRevenue));
  models.push_back(bu::build_attack_model(
      small_params(0.15, 0.40, 0.45), bu::Utility::kRelativeRevenue));
  models.push_back(bu::build_attack_model(
      small_params(0.10, 0.45, 0.45), bu::Utility::kRelativeRevenue));
  models.push_back(bu::build_attack_model(
      small_params(0.20, 0.40, 0.40), bu::Utility::kRelativeRevenue));
  return models;
}

std::vector<mdp::RatioJob> jobs_for(const std::vector<bu::AttackModel>& models) {
  std::vector<mdp::RatioJob> jobs;
  for (const bu::AttackModel& model : models) {
    mdp::RatioJob job;
    job.model = &model.model;
    job.config.ratio.tolerance = 1e-6;
    job.config.ratio.upper_bound = 1.0;
    jobs.push_back(job);
  }
  return jobs;
}

// ------------------------------------------------------------ solve_batch --

TEST(SolveBatch, EmptyBatchConverges) {
  const mdp::RatioBatchResult result = mdp::solve_batch({}, {});
  EXPECT_TRUE(result.items.empty());
  EXPECT_EQ(result.report.status, robust::RunStatus::kConverged);
  EXPECT_EQ(result.report.items, 0u);
  EXPECT_TRUE(result.report.all_converged());
}

TEST(SolveBatch, ResultsAreBitIdenticalAcrossThreadCounts) {
  const std::vector<bu::AttackModel> models = small_model_set();
  const std::vector<mdp::RatioJob> jobs = jobs_for(models);

  mdp::BatchConfig serial;
  serial.threads = 1;
  const mdp::RatioBatchResult baseline = mdp::solve_batch(jobs, serial);
  ASSERT_EQ(baseline.items.size(), jobs.size());
  EXPECT_TRUE(baseline.report.all_converged());

  for (const int threads : {2, 8}) {
    mdp::BatchConfig config;
    config.threads = threads;
    const mdp::RatioBatchResult result = mdp::solve_batch(jobs, config);
    ASSERT_EQ(result.items.size(), jobs.size());
    EXPECT_EQ(result.report.status, baseline.report.status);
    EXPECT_EQ(result.report.items_converged,
              baseline.report.items_converged);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      // Bitwise: the engine only reorders wall-clock slices, never the
      // arithmetic each item performs.
      EXPECT_EQ(result.items[i].ratio, baseline.items[i].ratio)
          << "item " << i << " threads " << threads;
      EXPECT_EQ(result.items[i].policy, baseline.items[i].policy)
          << "item " << i << " threads " << threads;
      EXPECT_EQ(result.items[i].reward_rate, baseline.items[i].reward_rate);
      EXPECT_EQ(result.items[i].weight_rate, baseline.items[i].weight_rate);
      EXPECT_EQ(result.items[i].status, baseline.items[i].status);
    }
  }
}

TEST(SolveBatch, ExpiredDeadlineSkipsEveryItemWithoutHanging) {
  const std::vector<bu::AttackModel> models = small_model_set();
  const std::vector<mdp::RatioJob> jobs = jobs_for(models);

  mdp::BatchConfig config;
  config.threads = 4;
  config.control.budget = robust::RunBudget::deadline(0.0);
  const mdp::RatioBatchResult result = mdp::solve_batch(jobs, config);
  ASSERT_EQ(result.items.size(), jobs.size());
  EXPECT_EQ(result.report.status, robust::RunStatus::kBudgetExhausted);
  EXPECT_EQ(result.report.items_skipped, jobs.size());
  EXPECT_EQ(result.report.items_converged, 0u);
  for (const mdp::RatioResult& item : result.items) {
    EXPECT_EQ(item.status, robust::RunStatus::kBudgetExhausted);
  }
}

TEST(SolveBatch, TickBudgetCapsItemsStarted) {
  const std::vector<bu::AttackModel> models = small_model_set();
  const std::vector<mdp::RatioJob> jobs = jobs_for(models);

  mdp::BatchConfig config;
  config.threads = 2;
  config.control.budget = robust::RunBudget::ticks(2);
  const mdp::RatioBatchResult result = mdp::solve_batch(jobs, config);
  ASSERT_EQ(result.items.size(), jobs.size());
  // Pickup is index-ordered, so exactly the first two items run.
  EXPECT_TRUE(result.items[0].converged());
  EXPECT_TRUE(result.items[1].converged());
  EXPECT_EQ(result.items[2].status, robust::RunStatus::kBudgetExhausted);
  EXPECT_EQ(result.items[3].status, robust::RunStatus::kBudgetExhausted);
  EXPECT_EQ(result.report.items_skipped, 2u);
}

TEST(SolveBatch, PreCancelledTokenSkipsEveryItem) {
  const std::vector<bu::AttackModel> models = small_model_set();
  const std::vector<mdp::RatioJob> jobs = jobs_for(models);

  mdp::BatchConfig config;
  config.threads = 4;
  config.control.cancel = robust::CancelToken::make();
  config.control.cancel.request_cancel();
  const mdp::RatioBatchResult result = mdp::solve_batch(jobs, config);
  EXPECT_EQ(result.report.status, robust::RunStatus::kCancelled);
  EXPECT_EQ(result.report.items_skipped, jobs.size());
  for (const mdp::RatioResult& item : result.items) {
    EXPECT_EQ(item.status, robust::RunStatus::kCancelled);
  }
}

// -------------------------------------------------------------- run_batch --

TEST(RunBatch, PropagatesFirstItemException) {
  mdp::BatchConfig config;
  config.threads = 2;
  std::vector<robust::RunStatus> statuses(8, robust::RunStatus::kConverged);
  EXPECT_THROW(
      (void)mdp::run_batch(
          8, config,
          [&](std::size_t i, const robust::RunControl&) {
            if (i == 1) {
              throw std::runtime_error("item 1 failed");
            }
            return robust::RunStatus::kConverged;
          },
          [&](std::size_t i, robust::RunStatus status) {
            statuses[i] = status;
          }),
      std::runtime_error);
}

TEST(RunBatch, SharedDeadlineBoundsInFlightItems) {
  // Items that are already running when the deadline passes must receive a
  // finite remaining allowance and report kBudgetExhausted themselves.
  mdp::BatchConfig config;
  config.threads = 1;
  config.control.budget = robust::RunBudget::deadline(1e-6);
  std::vector<robust::RunStatus> statuses(3, robust::RunStatus::kConverged);
  const mdp::BatchReport report = mdp::run_batch(
      3, config,
      [&](std::size_t i, const robust::RunControl& control) {
        EXPECT_LT(control.budget.wall_clock_seconds, 1.0);
        robust::RunGuard guard(control);
        while (true) {
          if (const auto stop = guard.tick()) {
            statuses[i] = *stop;
            return *stop;
          }
        }
      },
      [&](std::size_t i, robust::RunStatus status) { statuses[i] = status; });
  EXPECT_EQ(report.status, robust::RunStatus::kBudgetExhausted);
  for (const robust::RunStatus status : statuses) {
    EXPECT_EQ(status, robust::RunStatus::kBudgetExhausted);
  }
}

// -------------------------------------------------- linked cancel tokens --

TEST(CancelToken, LinkedChildSeesParentButNotViceVersa) {
  const robust::CancelToken parent = robust::CancelToken::make();
  const robust::CancelToken child = robust::CancelToken::make_linked(parent);
  EXPECT_FALSE(child.cancel_requested());

  child.request_cancel();
  EXPECT_TRUE(child.cancel_requested());
  EXPECT_FALSE(parent.cancel_requested());

  const robust::CancelToken sibling =
      robust::CancelToken::make_linked(parent);
  EXPECT_FALSE(sibling.cancel_requested());
  parent.request_cancel();
  EXPECT_TRUE(sibling.cancel_requested());
  EXPECT_TRUE(parent.cancel_requested());
}

// ------------------------------------------------- bu/btc batch wrappers --

TEST(AnalyzeBatch, MatchesSerialAnalyzeForEveryThreadCount) {
  std::vector<bu::AnalysisJob> jobs = {
      {small_params(0.25, 0.30, 0.45), bu::Utility::kRelativeRevenue},
      {small_params(0.15, 0.40, 0.45), bu::Utility::kRelativeRevenue},
      {small_params(0.10, 0.45, 0.45), bu::Utility::kOrphaning},
  };
  std::vector<bu::AnalysisResult> serial;
  for (const bu::AnalysisJob& job : jobs) {
    serial.push_back(bu::analyze(job.params, job.utility));
  }

  for (const int threads : {1, 2, 8}) {
    mdp::BatchConfig config;
    config.threads = threads;
    const std::vector<bu::AnalysisResult> batch =
        bu::analyze_batch(jobs, {}, config);
    ASSERT_EQ(batch.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(batch[i].utility_value, serial[i].utility_value)
          << "item " << i << " threads " << threads;
      EXPECT_EQ(batch[i].policy, serial[i].policy);
      EXPECT_EQ(batch[i].status, serial[i].status);
      EXPECT_EQ(batch[i].honest_baseline, serial[i].honest_baseline);
    }
  }
}

// ------------------------------------- parallel value-iteration sweeps --

TEST(ParallelVi, MatchesSerialGainAndPolicyOnTable2Model) {
  const bu::AttackModel model = bu::build_attack_model(
      [] {
        bu::AttackParams params;
        params.alpha = 0.25;
        params.beta = 0.30;
        params.gamma = 0.45;
        params.setting = bu::Setting::kNoStickyGate;
        return params;
      }(),
      bu::Utility::kRelativeRevenue);

  mdp::SolverConfig serial_config;
  serial_config.average_reward.tolerance = 1e-9;
  const mdp::GainResult serial =
      mdp::maximize_average_reward(model.model, serial_config);
  ASSERT_TRUE(serial.converged());

  mdp::SolverConfig parallel_config = serial_config;
  parallel_config.threads = 4;
  const mdp::GainResult parallel =
      mdp::maximize_average_reward(model.model, parallel_config);
  ASSERT_TRUE(parallel.converged());

  // Gauss-Seidel (serial) and Jacobi (parallel) follow different sweep
  // trajectories to the same optimum: gains agree to solver tolerance and
  // the greedy policies coincide.
  EXPECT_NEAR(parallel.gain, serial.gain, 1e-7);
  EXPECT_EQ(parallel.policy, serial.policy);
}

TEST(ParallelVi, BitIdenticalAcrossParallelThreadCounts) {
  const bu::AttackModel model = bu::build_attack_model(
      small_params(0.20, 0.40, 0.40), bu::Utility::kRelativeRevenue);

  mdp::SolverConfig config;
  config.average_reward.tolerance = 1e-9;
  config.threads = 2;
  const mdp::GainResult two =
      mdp::maximize_average_reward(model.model, config);
  config.threads = 8;
  const mdp::GainResult eight =
      mdp::maximize_average_reward(model.model, config);

  // The chunk partition depends only on (state count, chunk count) and the
  // span reduction is exact, so EVERY parallel thread count produces the
  // same bits.
  EXPECT_EQ(two.gain, eight.gain);
  EXPECT_EQ(two.iterations, eight.iterations);
  EXPECT_EQ(two.policy, eight.policy);
  ASSERT_EQ(two.bias.size(), eight.bias.size());
  for (std::size_t s = 0; s < two.bias.size(); ++s) {
    ASSERT_EQ(two.bias[s], eight.bias[s]) << "state " << s;
  }
}

// --------------------------------------------- SolverConfig front door --

TEST(SolverConfig, FrontDoorMatchesLegacyOverloads) {
  const bu::AttackModel attack = bu::build_attack_model(
      small_params(0.25, 0.30, 0.45), bu::Utility::kRelativeRevenue);
  const mdp::Model& model = attack.model;

  mdp::SolverConfig config;
  config.average_reward.tolerance = 1e-9;
  config.ratio.tolerance = 1e-6;
  config.discounted.discount = 0.995;
  config.policy_iteration.max_improvements = 50;

  {
    const mdp::GainResult front = mdp::maximize_average_reward(model, config);
    const mdp::GainResult legacy =
        mdp::maximize_average_reward(model, config.average_reward_options());
    EXPECT_EQ(front.gain, legacy.gain);
    EXPECT_EQ(front.policy, legacy.policy);
    EXPECT_EQ(front.iterations, legacy.iterations);
  }
  {
    const mdp::DiscountedResult front = mdp::solve_discounted(model, config);
    const mdp::DiscountedResult legacy =
        mdp::solve_discounted(model, config.discounted_options());
    EXPECT_EQ(front.value, legacy.value);
    EXPECT_EQ(front.policy, legacy.policy);
  }
  {
    const mdp::PolicyIterationResult front =
        mdp::policy_iteration(model, config);
    const mdp::PolicyIterationResult legacy =
        mdp::policy_iteration(model, config.policy_iteration_options());
    EXPECT_EQ(front.gain, legacy.gain);
    EXPECT_EQ(front.policy, legacy.policy);
    EXPECT_EQ(front.improvements(), legacy.improvements());
  }
  {
    const mdp::RatioResult front = mdp::maximize_ratio(model, config);
    const mdp::RatioResult legacy =
        mdp::maximize_ratio(model, config.ratio_options());
    EXPECT_EQ(front.ratio, legacy.ratio);
    EXPECT_EQ(front.policy, legacy.policy);
    EXPECT_EQ(front.status, legacy.status);
  }
}

TEST(SolverConfig, ThreadsAndControlStampTheLoweredOptions) {
  mdp::SolverConfig config;
  config.threads = 6;
  config.control.budget = robust::RunBudget::ticks(123);

  const mdp::AverageRewardKnobs avg = config.average_reward_options();
  EXPECT_EQ(avg.threads, 6);
  EXPECT_EQ(avg.control.budget.max_ticks, 123);

  const mdp::RatioKnobs ratio = config.ratio_options();
  EXPECT_EQ(ratio.inner.threads, 6);
  EXPECT_EQ(ratio.control.budget.max_ticks, 123);
  // The outer guard owns the budget; inner solves get the remaining wall
  // clock stamped at call time, not a second copy of the tick cap.
  EXPECT_TRUE(ratio.inner.control.budget.unlimited());

  EXPECT_EQ(config.discounted_options().control.budget.max_ticks, 123);
  EXPECT_EQ(config.policy_iteration_options().control.budget.max_ticks, 123);
}

}  // namespace
}  // namespace bvc
