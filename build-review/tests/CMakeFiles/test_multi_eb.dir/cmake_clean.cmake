file(REMOVE_RECURSE
  "CMakeFiles/test_multi_eb.dir/multi_eb_test.cpp.o"
  "CMakeFiles/test_multi_eb.dir/multi_eb_test.cpp.o.d"
  "test_multi_eb"
  "test_multi_eb.pdb"
  "test_multi_eb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_eb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
