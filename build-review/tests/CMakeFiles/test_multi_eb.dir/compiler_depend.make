# Empty compiler generated dependencies file for test_multi_eb.
# This may be replaced when dependencies are built.
