# Empty compiler generated dependencies file for test_policy_iteration.
# This may be replaced when dependencies are built.
