file(REMOVE_RECURSE
  "CMakeFiles/test_policy_iteration.dir/policy_iteration_test.cpp.o"
  "CMakeFiles/test_policy_iteration.dir/policy_iteration_test.cpp.o.d"
  "test_policy_iteration"
  "test_policy_iteration.pdb"
  "test_policy_iteration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
