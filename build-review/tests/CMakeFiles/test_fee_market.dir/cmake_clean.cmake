file(REMOVE_RECURSE
  "CMakeFiles/test_fee_market.dir/fee_market_test.cpp.o"
  "CMakeFiles/test_fee_market.dir/fee_market_test.cpp.o.d"
  "test_fee_market"
  "test_fee_market.pdb"
  "test_fee_market[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fee_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
