# Empty dependencies file for test_compiled_model.
# This may be replaced when dependencies are built.
