file(REMOVE_RECURSE
  "CMakeFiles/test_compiled_model.dir/compiled_model_test.cpp.o"
  "CMakeFiles/test_compiled_model.dir/compiled_model_test.cpp.o.d"
  "test_compiled_model"
  "test_compiled_model.pdb"
  "test_compiled_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiled_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
