# Empty dependencies file for test_mdp_property.
# This may be replaced when dependencies are built.
