file(REMOVE_RECURSE
  "CMakeFiles/test_mdp_property.dir/mdp_property_test.cpp.o"
  "CMakeFiles/test_mdp_property.dir/mdp_property_test.cpp.o.d"
  "test_mdp_property"
  "test_mdp_property.pdb"
  "test_mdp_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mdp_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
