file(REMOVE_RECURSE
  "CMakeFiles/test_chain_property.dir/chain_property_test.cpp.o"
  "CMakeFiles/test_chain_property.dir/chain_property_test.cpp.o.d"
  "test_chain_property"
  "test_chain_property.pdb"
  "test_chain_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
