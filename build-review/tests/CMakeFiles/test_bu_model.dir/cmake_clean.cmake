file(REMOVE_RECURSE
  "CMakeFiles/test_bu_model.dir/bu_model_test.cpp.o"
  "CMakeFiles/test_bu_model.dir/bu_model_test.cpp.o.d"
  "test_bu_model"
  "test_bu_model.pdb"
  "test_bu_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bu_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
