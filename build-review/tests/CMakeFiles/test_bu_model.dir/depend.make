# Empty dependencies file for test_bu_model.
# This may be replaced when dependencies are built.
