file(REMOVE_RECURSE
  "CMakeFiles/test_node_view.dir/node_view_test.cpp.o"
  "CMakeFiles/test_node_view.dir/node_view_test.cpp.o.d"
  "test_node_view"
  "test_node_view.pdb"
  "test_node_view[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
