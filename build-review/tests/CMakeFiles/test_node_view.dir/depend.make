# Empty dependencies file for test_node_view.
# This may be replaced when dependencies are built.
