
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hetero_ad_test.cpp" "tests/CMakeFiles/test_hetero_ad.dir/hetero_ad_test.cpp.o" "gcc" "tests/CMakeFiles/test_hetero_ad.dir/hetero_ad_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/bu/CMakeFiles/bvc_bu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/btc/CMakeFiles/bvc_btc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chain/CMakeFiles/bvc_chain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/counter/CMakeFiles/bvc_counter.dir/DependInfo.cmake"
  "/root/repo/build-review/src/games/CMakeFiles/bvc_games.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mdp/CMakeFiles/bvc_mdp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/bvc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/bvc_robust.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
