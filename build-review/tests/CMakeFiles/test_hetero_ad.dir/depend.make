# Empty dependencies file for test_hetero_ad.
# This may be replaced when dependencies are built.
