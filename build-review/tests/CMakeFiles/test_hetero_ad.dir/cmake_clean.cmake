file(REMOVE_RECURSE
  "CMakeFiles/test_hetero_ad.dir/hetero_ad_test.cpp.o"
  "CMakeFiles/test_hetero_ad.dir/hetero_ad_test.cpp.o.d"
  "test_hetero_ad"
  "test_hetero_ad.pdb"
  "test_hetero_ad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hetero_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
