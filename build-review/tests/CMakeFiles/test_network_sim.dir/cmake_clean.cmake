file(REMOVE_RECURSE
  "CMakeFiles/test_network_sim.dir/network_sim_test.cpp.o"
  "CMakeFiles/test_network_sim.dir/network_sim_test.cpp.o.d"
  "test_network_sim"
  "test_network_sim.pdb"
  "test_network_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
