file(REMOVE_RECURSE
  "CMakeFiles/test_counter.dir/counter_test.cpp.o"
  "CMakeFiles/test_counter.dir/counter_test.cpp.o.d"
  "test_counter"
  "test_counter.pdb"
  "test_counter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
