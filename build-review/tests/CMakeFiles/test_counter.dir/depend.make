# Empty dependencies file for test_counter.
# This may be replaced when dependencies are built.
