file(REMOVE_RECURSE
  "CMakeFiles/test_bu_analysis.dir/bu_analysis_test.cpp.o"
  "CMakeFiles/test_bu_analysis.dir/bu_analysis_test.cpp.o.d"
  "test_bu_analysis"
  "test_bu_analysis.pdb"
  "test_bu_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bu_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
