# Empty dependencies file for test_bu_analysis.
# This may be replaced when dependencies are built.
