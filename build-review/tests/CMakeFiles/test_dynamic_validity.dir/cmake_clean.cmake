file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_validity.dir/dynamic_validity_test.cpp.o"
  "CMakeFiles/test_dynamic_validity.dir/dynamic_validity_test.cpp.o.d"
  "test_dynamic_validity"
  "test_dynamic_validity.pdb"
  "test_dynamic_validity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
