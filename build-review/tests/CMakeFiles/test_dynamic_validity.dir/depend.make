# Empty dependencies file for test_dynamic_validity.
# This may be replaced when dependencies are built.
