file(REMOVE_RECURSE
  "CMakeFiles/test_btc.dir/btc_test.cpp.o"
  "CMakeFiles/test_btc.dir/btc_test.cpp.o.d"
  "test_btc"
  "test_btc.pdb"
  "test_btc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
