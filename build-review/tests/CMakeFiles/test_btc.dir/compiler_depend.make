# Empty compiler generated dependencies file for test_btc.
# This may be replaced when dependencies are built.
