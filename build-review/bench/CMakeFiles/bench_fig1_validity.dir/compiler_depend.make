# Empty compiler generated dependencies file for bench_fig1_validity.
# This may be replaced when dependencies are built.
