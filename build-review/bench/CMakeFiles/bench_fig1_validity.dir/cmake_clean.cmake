file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_validity.dir/bench_fig1_validity.cpp.o"
  "CMakeFiles/bench_fig1_validity.dir/bench_fig1_validity.cpp.o.d"
  "bench_fig1_validity"
  "bench_fig1_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
