# Empty dependencies file for bench_ablation_ad.
# This may be replaced when dependencies are built.
