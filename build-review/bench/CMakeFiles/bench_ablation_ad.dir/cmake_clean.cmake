file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ad.dir/bench_ablation_ad.cpp.o"
  "CMakeFiles/bench_ablation_ad.dir/bench_ablation_ad.cpp.o.d"
  "bench_ablation_ad"
  "bench_ablation_ad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
