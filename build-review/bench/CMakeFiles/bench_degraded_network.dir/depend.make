# Empty dependencies file for bench_degraded_network.
# This may be replaced when dependencies are built.
