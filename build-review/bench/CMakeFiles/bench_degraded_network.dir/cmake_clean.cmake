file(REMOVE_RECURSE
  "CMakeFiles/bench_degraded_network.dir/bench_degraded_network.cpp.o"
  "CMakeFiles/bench_degraded_network.dir/bench_degraded_network.cpp.o.d"
  "bench_degraded_network"
  "bench_degraded_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_degraded_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
