file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_micro.dir/bench_solver_micro.cpp.o"
  "CMakeFiles/bench_solver_micro.dir/bench_solver_micro.cpp.o.d"
  "bench_solver_micro"
  "bench_solver_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
