# Empty compiler generated dependencies file for bench_solver_micro.
# This may be replaced when dependencies are built.
