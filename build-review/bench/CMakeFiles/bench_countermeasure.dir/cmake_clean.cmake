file(REMOVE_RECURSE
  "CMakeFiles/bench_countermeasure.dir/bench_countermeasure.cpp.o"
  "CMakeFiles/bench_countermeasure.dir/bench_countermeasure.cpp.o.d"
  "bench_countermeasure"
  "bench_countermeasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_countermeasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
