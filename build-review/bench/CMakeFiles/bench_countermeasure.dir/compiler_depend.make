# Empty compiler generated dependencies file for bench_countermeasure.
# This may be replaced when dependencies are built.
