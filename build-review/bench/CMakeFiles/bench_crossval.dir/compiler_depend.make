# Empty compiler generated dependencies file for bench_crossval.
# This may be replaced when dependencies are built.
