file(REMOVE_RECURSE
  "CMakeFiles/bench_crossval.dir/bench_crossval.cpp.o"
  "CMakeFiles/bench_crossval.dir/bench_crossval.cpp.o.d"
  "bench_crossval"
  "bench_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
