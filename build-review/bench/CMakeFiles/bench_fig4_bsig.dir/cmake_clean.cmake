file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_bsig.dir/bench_fig4_bsig.cpp.o"
  "CMakeFiles/bench_fig4_bsig.dir/bench_fig4_bsig.cpp.o.d"
  "bench_fig4_bsig"
  "bench_fig4_bsig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bsig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
