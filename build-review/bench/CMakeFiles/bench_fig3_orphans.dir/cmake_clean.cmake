file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_orphans.dir/bench_fig3_orphans.cpp.o"
  "CMakeFiles/bench_fig3_orphans.dir/bench_fig3_orphans.cpp.o.d"
  "bench_fig3_orphans"
  "bench_fig3_orphans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_orphans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
