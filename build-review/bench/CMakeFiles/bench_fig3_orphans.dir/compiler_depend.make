# Empty compiler generated dependencies file for bench_fig3_orphans.
# This may be replaced when dependencies are built.
