# Empty compiler generated dependencies file for bench_ablation_ds.
# This may be replaced when dependencies are built.
