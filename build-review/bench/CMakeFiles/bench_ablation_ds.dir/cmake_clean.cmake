file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ds.dir/bench_ablation_ds.cpp.o"
  "CMakeFiles/bench_ablation_ds.dir/bench_ablation_ds.cpp.o.d"
  "bench_ablation_ds"
  "bench_ablation_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
