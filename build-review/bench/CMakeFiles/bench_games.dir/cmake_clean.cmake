file(REMOVE_RECURSE
  "CMakeFiles/bench_games.dir/bench_games.cpp.o"
  "CMakeFiles/bench_games.dir/bench_games.cpp.o.d"
  "bench_games"
  "bench_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
