# Empty dependencies file for bench_games.
# This may be replaced when dependencies are built.
