
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/games/block_size_game.cpp" "src/games/CMakeFiles/bvc_games.dir/block_size_game.cpp.o" "gcc" "src/games/CMakeFiles/bvc_games.dir/block_size_game.cpp.o.d"
  "/root/repo/src/games/eb_choosing.cpp" "src/games/CMakeFiles/bvc_games.dir/eb_choosing.cpp.o" "gcc" "src/games/CMakeFiles/bvc_games.dir/eb_choosing.cpp.o.d"
  "/root/repo/src/games/fee_market.cpp" "src/games/CMakeFiles/bvc_games.dir/fee_market.cpp.o" "gcc" "src/games/CMakeFiles/bvc_games.dir/fee_market.cpp.o.d"
  "/root/repo/src/games/game_batch.cpp" "src/games/CMakeFiles/bvc_games.dir/game_batch.cpp.o" "gcc" "src/games/CMakeFiles/bvc_games.dir/game_batch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/mdp/CMakeFiles/bvc_mdp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/bvc_robust.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
