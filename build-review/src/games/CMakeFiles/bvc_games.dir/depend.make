# Empty dependencies file for bvc_games.
# This may be replaced when dependencies are built.
