file(REMOVE_RECURSE
  "libbvc_games.a"
)
