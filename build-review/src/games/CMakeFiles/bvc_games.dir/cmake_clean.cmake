file(REMOVE_RECURSE
  "CMakeFiles/bvc_games.dir/block_size_game.cpp.o"
  "CMakeFiles/bvc_games.dir/block_size_game.cpp.o.d"
  "CMakeFiles/bvc_games.dir/eb_choosing.cpp.o"
  "CMakeFiles/bvc_games.dir/eb_choosing.cpp.o.d"
  "CMakeFiles/bvc_games.dir/fee_market.cpp.o"
  "CMakeFiles/bvc_games.dir/fee_market.cpp.o.d"
  "CMakeFiles/bvc_games.dir/game_batch.cpp.o"
  "CMakeFiles/bvc_games.dir/game_batch.cpp.o.d"
  "libbvc_games.a"
  "libbvc_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
