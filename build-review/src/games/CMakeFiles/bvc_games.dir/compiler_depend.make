# Empty compiler generated dependencies file for bvc_games.
# This may be replaced when dependencies are built.
