file(REMOVE_RECURSE
  "libbvc_chain.a"
)
