file(REMOVE_RECURSE
  "CMakeFiles/bvc_chain.dir/bitcoin_validity.cpp.o"
  "CMakeFiles/bvc_chain.dir/bitcoin_validity.cpp.o.d"
  "CMakeFiles/bvc_chain.dir/block_tree.cpp.o"
  "CMakeFiles/bvc_chain.dir/block_tree.cpp.o.d"
  "CMakeFiles/bvc_chain.dir/bu_validity.cpp.o"
  "CMakeFiles/bvc_chain.dir/bu_validity.cpp.o.d"
  "CMakeFiles/bvc_chain.dir/selection.cpp.o"
  "CMakeFiles/bvc_chain.dir/selection.cpp.o.d"
  "libbvc_chain.a"
  "libbvc_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
