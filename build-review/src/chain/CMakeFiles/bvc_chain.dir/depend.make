# Empty dependencies file for bvc_chain.
# This may be replaced when dependencies are built.
