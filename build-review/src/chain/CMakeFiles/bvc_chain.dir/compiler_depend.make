# Empty compiler generated dependencies file for bvc_chain.
# This may be replaced when dependencies are built.
