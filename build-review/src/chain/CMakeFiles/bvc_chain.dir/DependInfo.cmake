
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/bitcoin_validity.cpp" "src/chain/CMakeFiles/bvc_chain.dir/bitcoin_validity.cpp.o" "gcc" "src/chain/CMakeFiles/bvc_chain.dir/bitcoin_validity.cpp.o.d"
  "/root/repo/src/chain/block_tree.cpp" "src/chain/CMakeFiles/bvc_chain.dir/block_tree.cpp.o" "gcc" "src/chain/CMakeFiles/bvc_chain.dir/block_tree.cpp.o.d"
  "/root/repo/src/chain/bu_validity.cpp" "src/chain/CMakeFiles/bvc_chain.dir/bu_validity.cpp.o" "gcc" "src/chain/CMakeFiles/bvc_chain.dir/bu_validity.cpp.o.d"
  "/root/repo/src/chain/selection.cpp" "src/chain/CMakeFiles/bvc_chain.dir/selection.cpp.o" "gcc" "src/chain/CMakeFiles/bvc_chain.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
