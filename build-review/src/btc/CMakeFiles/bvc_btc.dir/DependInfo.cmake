
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btc/honest.cpp" "src/btc/CMakeFiles/bvc_btc.dir/honest.cpp.o" "gcc" "src/btc/CMakeFiles/bvc_btc.dir/honest.cpp.o.d"
  "/root/repo/src/btc/selfish_mining.cpp" "src/btc/CMakeFiles/bvc_btc.dir/selfish_mining.cpp.o" "gcc" "src/btc/CMakeFiles/bvc_btc.dir/selfish_mining.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/bu/CMakeFiles/bvc_bu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mdp/CMakeFiles/bvc_mdp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/bvc_robust.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
