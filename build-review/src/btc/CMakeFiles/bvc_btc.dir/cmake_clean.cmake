file(REMOVE_RECURSE
  "CMakeFiles/bvc_btc.dir/honest.cpp.o"
  "CMakeFiles/bvc_btc.dir/honest.cpp.o.d"
  "CMakeFiles/bvc_btc.dir/selfish_mining.cpp.o"
  "CMakeFiles/bvc_btc.dir/selfish_mining.cpp.o.d"
  "libbvc_btc.a"
  "libbvc_btc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_btc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
