# Empty compiler generated dependencies file for bvc_btc.
# This may be replaced when dependencies are built.
