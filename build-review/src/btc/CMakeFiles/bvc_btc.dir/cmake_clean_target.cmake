file(REMOVE_RECURSE
  "libbvc_btc.a"
)
