# Empty dependencies file for bvc_btc.
# This may be replaced when dependencies are built.
