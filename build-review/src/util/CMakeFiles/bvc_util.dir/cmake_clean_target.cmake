file(REMOVE_RECURSE
  "libbvc_util.a"
)
