file(REMOVE_RECURSE
  "CMakeFiles/bvc_util.dir/check.cpp.o"
  "CMakeFiles/bvc_util.dir/check.cpp.o.d"
  "CMakeFiles/bvc_util.dir/cli.cpp.o"
  "CMakeFiles/bvc_util.dir/cli.cpp.o.d"
  "CMakeFiles/bvc_util.dir/csv.cpp.o"
  "CMakeFiles/bvc_util.dir/csv.cpp.o.d"
  "CMakeFiles/bvc_util.dir/rng.cpp.o"
  "CMakeFiles/bvc_util.dir/rng.cpp.o.d"
  "CMakeFiles/bvc_util.dir/stats.cpp.o"
  "CMakeFiles/bvc_util.dir/stats.cpp.o.d"
  "CMakeFiles/bvc_util.dir/table.cpp.o"
  "CMakeFiles/bvc_util.dir/table.cpp.o.d"
  "CMakeFiles/bvc_util.dir/thread_pool.cpp.o"
  "CMakeFiles/bvc_util.dir/thread_pool.cpp.o.d"
  "libbvc_util.a"
  "libbvc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
