# Empty compiler generated dependencies file for bvc_util.
# This may be replaced when dependencies are built.
