# Empty dependencies file for bvc_obs.
# This may be replaced when dependencies are built.
