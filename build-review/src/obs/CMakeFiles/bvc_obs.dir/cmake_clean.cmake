file(REMOVE_RECURSE
  "CMakeFiles/bvc_obs.dir/manifest.cpp.o"
  "CMakeFiles/bvc_obs.dir/manifest.cpp.o.d"
  "CMakeFiles/bvc_obs.dir/metrics.cpp.o"
  "CMakeFiles/bvc_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/bvc_obs.dir/trace.cpp.o"
  "CMakeFiles/bvc_obs.dir/trace.cpp.o.d"
  "libbvc_obs.a"
  "libbvc_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
