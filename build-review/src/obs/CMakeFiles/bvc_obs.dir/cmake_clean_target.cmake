file(REMOVE_RECURSE
  "libbvc_obs.a"
)
