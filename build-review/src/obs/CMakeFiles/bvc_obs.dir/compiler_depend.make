# Empty compiler generated dependencies file for bvc_obs.
# This may be replaced when dependencies are built.
