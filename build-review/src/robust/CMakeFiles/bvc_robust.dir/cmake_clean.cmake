file(REMOVE_RECURSE
  "CMakeFiles/bvc_robust.dir/fault_plan.cpp.o"
  "CMakeFiles/bvc_robust.dir/fault_plan.cpp.o.d"
  "CMakeFiles/bvc_robust.dir/run_control.cpp.o"
  "CMakeFiles/bvc_robust.dir/run_control.cpp.o.d"
  "libbvc_robust.a"
  "libbvc_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
