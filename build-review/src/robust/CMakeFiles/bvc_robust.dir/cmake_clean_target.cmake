file(REMOVE_RECURSE
  "libbvc_robust.a"
)
