
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/robust/fault_plan.cpp" "src/robust/CMakeFiles/bvc_robust.dir/fault_plan.cpp.o" "gcc" "src/robust/CMakeFiles/bvc_robust.dir/fault_plan.cpp.o.d"
  "/root/repo/src/robust/run_control.cpp" "src/robust/CMakeFiles/bvc_robust.dir/run_control.cpp.o" "gcc" "src/robust/CMakeFiles/bvc_robust.dir/run_control.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
