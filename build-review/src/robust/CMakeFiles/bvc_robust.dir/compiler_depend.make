# Empty compiler generated dependencies file for bvc_robust.
# This may be replaced when dependencies are built.
