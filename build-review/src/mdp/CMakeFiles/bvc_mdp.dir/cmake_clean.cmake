file(REMOVE_RECURSE
  "CMakeFiles/bvc_mdp.dir/average_reward.cpp.o"
  "CMakeFiles/bvc_mdp.dir/average_reward.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/batch.cpp.o"
  "CMakeFiles/bvc_mdp.dir/batch.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/compiled_model.cpp.o"
  "CMakeFiles/bvc_mdp.dir/compiled_model.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/discounted.cpp.o"
  "CMakeFiles/bvc_mdp.dir/discounted.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/model.cpp.o"
  "CMakeFiles/bvc_mdp.dir/model.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/model_cache.cpp.o"
  "CMakeFiles/bvc_mdp.dir/model_cache.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/policy_iteration.cpp.o"
  "CMakeFiles/bvc_mdp.dir/policy_iteration.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/ratio.cpp.o"
  "CMakeFiles/bvc_mdp.dir/ratio.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/rollout.cpp.o"
  "CMakeFiles/bvc_mdp.dir/rollout.cpp.o.d"
  "CMakeFiles/bvc_mdp.dir/solver_config.cpp.o"
  "CMakeFiles/bvc_mdp.dir/solver_config.cpp.o.d"
  "libbvc_mdp.a"
  "libbvc_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
