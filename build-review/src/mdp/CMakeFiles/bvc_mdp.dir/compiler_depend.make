# Empty compiler generated dependencies file for bvc_mdp.
# This may be replaced when dependencies are built.
