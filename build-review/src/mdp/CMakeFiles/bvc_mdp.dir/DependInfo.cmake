
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdp/average_reward.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/average_reward.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/average_reward.cpp.o.d"
  "/root/repo/src/mdp/batch.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/batch.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/batch.cpp.o.d"
  "/root/repo/src/mdp/compiled_model.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/compiled_model.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/compiled_model.cpp.o.d"
  "/root/repo/src/mdp/discounted.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/discounted.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/discounted.cpp.o.d"
  "/root/repo/src/mdp/model.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/model.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/model.cpp.o.d"
  "/root/repo/src/mdp/model_cache.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/model_cache.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/model_cache.cpp.o.d"
  "/root/repo/src/mdp/policy_iteration.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/policy_iteration.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/policy_iteration.cpp.o.d"
  "/root/repo/src/mdp/ratio.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/ratio.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/ratio.cpp.o.d"
  "/root/repo/src/mdp/rollout.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/rollout.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/rollout.cpp.o.d"
  "/root/repo/src/mdp/solver_config.cpp" "src/mdp/CMakeFiles/bvc_mdp.dir/solver_config.cpp.o" "gcc" "src/mdp/CMakeFiles/bvc_mdp.dir/solver_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/robust/CMakeFiles/bvc_robust.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
