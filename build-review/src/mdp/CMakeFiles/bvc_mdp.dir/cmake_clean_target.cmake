file(REMOVE_RECURSE
  "libbvc_mdp.a"
)
