# Empty compiler generated dependencies file for bvc_sim.
# This may be replaced when dependencies are built.
