
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attack_scenario.cpp" "src/sim/CMakeFiles/bvc_sim.dir/attack_scenario.cpp.o" "gcc" "src/sim/CMakeFiles/bvc_sim.dir/attack_scenario.cpp.o.d"
  "/root/repo/src/sim/fork_simulation.cpp" "src/sim/CMakeFiles/bvc_sim.dir/fork_simulation.cpp.o" "gcc" "src/sim/CMakeFiles/bvc_sim.dir/fork_simulation.cpp.o.d"
  "/root/repo/src/sim/network_sim.cpp" "src/sim/CMakeFiles/bvc_sim.dir/network_sim.cpp.o" "gcc" "src/sim/CMakeFiles/bvc_sim.dir/network_sim.cpp.o.d"
  "/root/repo/src/sim/node_view.cpp" "src/sim/CMakeFiles/bvc_sim.dir/node_view.cpp.o" "gcc" "src/sim/CMakeFiles/bvc_sim.dir/node_view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/bu/CMakeFiles/bvc_bu.dir/DependInfo.cmake"
  "/root/repo/build-review/src/chain/CMakeFiles/bvc_chain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mdp/CMakeFiles/bvc_mdp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/bvc_robust.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
