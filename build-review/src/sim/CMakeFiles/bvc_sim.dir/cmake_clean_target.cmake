file(REMOVE_RECURSE
  "libbvc_sim.a"
)
