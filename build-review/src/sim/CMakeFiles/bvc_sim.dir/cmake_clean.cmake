file(REMOVE_RECURSE
  "CMakeFiles/bvc_sim.dir/attack_scenario.cpp.o"
  "CMakeFiles/bvc_sim.dir/attack_scenario.cpp.o.d"
  "CMakeFiles/bvc_sim.dir/fork_simulation.cpp.o"
  "CMakeFiles/bvc_sim.dir/fork_simulation.cpp.o.d"
  "CMakeFiles/bvc_sim.dir/network_sim.cpp.o"
  "CMakeFiles/bvc_sim.dir/network_sim.cpp.o.d"
  "CMakeFiles/bvc_sim.dir/node_view.cpp.o"
  "CMakeFiles/bvc_sim.dir/node_view.cpp.o.d"
  "libbvc_sim.a"
  "libbvc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
