# Empty dependencies file for bvc_sim.
# This may be replaced when dependencies are built.
