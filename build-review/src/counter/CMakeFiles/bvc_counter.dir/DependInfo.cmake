
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/counter/dynamic_limit.cpp" "src/counter/CMakeFiles/bvc_counter.dir/dynamic_limit.cpp.o" "gcc" "src/counter/CMakeFiles/bvc_counter.dir/dynamic_limit.cpp.o.d"
  "/root/repo/src/counter/dynamic_validity.cpp" "src/counter/CMakeFiles/bvc_counter.dir/dynamic_validity.cpp.o" "gcc" "src/counter/CMakeFiles/bvc_counter.dir/dynamic_validity.cpp.o.d"
  "/root/repo/src/counter/voting_simulation.cpp" "src/counter/CMakeFiles/bvc_counter.dir/voting_simulation.cpp.o" "gcc" "src/counter/CMakeFiles/bvc_counter.dir/voting_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/chain/CMakeFiles/bvc_chain.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mdp/CMakeFiles/bvc_mdp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/bvc_robust.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
