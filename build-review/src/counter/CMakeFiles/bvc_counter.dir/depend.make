# Empty dependencies file for bvc_counter.
# This may be replaced when dependencies are built.
