file(REMOVE_RECURSE
  "CMakeFiles/bvc_counter.dir/dynamic_limit.cpp.o"
  "CMakeFiles/bvc_counter.dir/dynamic_limit.cpp.o.d"
  "CMakeFiles/bvc_counter.dir/dynamic_validity.cpp.o"
  "CMakeFiles/bvc_counter.dir/dynamic_validity.cpp.o.d"
  "CMakeFiles/bvc_counter.dir/voting_simulation.cpp.o"
  "CMakeFiles/bvc_counter.dir/voting_simulation.cpp.o.d"
  "libbvc_counter.a"
  "libbvc_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
