# Empty compiler generated dependencies file for bvc_counter.
# This may be replaced when dependencies are built.
