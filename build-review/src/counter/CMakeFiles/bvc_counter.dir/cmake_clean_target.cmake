file(REMOVE_RECURSE
  "libbvc_counter.a"
)
