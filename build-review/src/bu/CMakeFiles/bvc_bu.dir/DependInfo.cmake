
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bu/attack_analysis.cpp" "src/bu/CMakeFiles/bvc_bu.dir/attack_analysis.cpp.o" "gcc" "src/bu/CMakeFiles/bvc_bu.dir/attack_analysis.cpp.o.d"
  "/root/repo/src/bu/attack_model.cpp" "src/bu/CMakeFiles/bvc_bu.dir/attack_model.cpp.o" "gcc" "src/bu/CMakeFiles/bvc_bu.dir/attack_model.cpp.o.d"
  "/root/repo/src/bu/attack_state.cpp" "src/bu/CMakeFiles/bvc_bu.dir/attack_state.cpp.o" "gcc" "src/bu/CMakeFiles/bvc_bu.dir/attack_state.cpp.o.d"
  "/root/repo/src/bu/multi_eb.cpp" "src/bu/CMakeFiles/bvc_bu.dir/multi_eb.cpp.o" "gcc" "src/bu/CMakeFiles/bvc_bu.dir/multi_eb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/mdp/CMakeFiles/bvc_mdp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/bvc_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/robust/CMakeFiles/bvc_robust.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/bvc_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
