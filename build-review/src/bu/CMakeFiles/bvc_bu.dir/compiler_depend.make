# Empty compiler generated dependencies file for bvc_bu.
# This may be replaced when dependencies are built.
