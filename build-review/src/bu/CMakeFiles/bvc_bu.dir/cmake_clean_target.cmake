file(REMOVE_RECURSE
  "libbvc_bu.a"
)
