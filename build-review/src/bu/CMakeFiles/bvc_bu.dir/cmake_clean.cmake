file(REMOVE_RECURSE
  "CMakeFiles/bvc_bu.dir/attack_analysis.cpp.o"
  "CMakeFiles/bvc_bu.dir/attack_analysis.cpp.o.d"
  "CMakeFiles/bvc_bu.dir/attack_model.cpp.o"
  "CMakeFiles/bvc_bu.dir/attack_model.cpp.o.d"
  "CMakeFiles/bvc_bu.dir/attack_state.cpp.o"
  "CMakeFiles/bvc_bu.dir/attack_state.cpp.o.d"
  "CMakeFiles/bvc_bu.dir/multi_eb.cpp.o"
  "CMakeFiles/bvc_bu.dir/multi_eb.cpp.o.d"
  "libbvc_bu.a"
  "libbvc_bu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvc_bu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
