# Empty dependencies file for bvc_bu.
# This may be replaced when dependencies are built.
