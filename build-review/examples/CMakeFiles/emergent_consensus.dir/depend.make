# Empty dependencies file for emergent_consensus.
# This may be replaced when dependencies are built.
