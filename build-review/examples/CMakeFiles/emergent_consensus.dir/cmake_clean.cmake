file(REMOVE_RECURSE
  "CMakeFiles/emergent_consensus.dir/emergent_consensus.cpp.o"
  "CMakeFiles/emergent_consensus.dir/emergent_consensus.cpp.o.d"
  "emergent_consensus"
  "emergent_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergent_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
