file(REMOVE_RECURSE
  "CMakeFiles/double_spend_planner.dir/double_spend_planner.cpp.o"
  "CMakeFiles/double_spend_planner.dir/double_spend_planner.cpp.o.d"
  "double_spend_planner"
  "double_spend_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_spend_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
