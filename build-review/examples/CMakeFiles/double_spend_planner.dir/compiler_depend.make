# Empty compiler generated dependencies file for double_spend_planner.
# This may be replaced when dependencies are built.
