file(REMOVE_RECURSE
  "CMakeFiles/countermeasure_vote.dir/countermeasure_vote.cpp.o"
  "CMakeFiles/countermeasure_vote.dir/countermeasure_vote.cpp.o.d"
  "countermeasure_vote"
  "countermeasure_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/countermeasure_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
