# Empty compiler generated dependencies file for countermeasure_vote.
# This may be replaced when dependencies are built.
