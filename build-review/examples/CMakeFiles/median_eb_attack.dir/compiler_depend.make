# Empty compiler generated dependencies file for median_eb_attack.
# This may be replaced when dependencies are built.
