file(REMOVE_RECURSE
  "CMakeFiles/median_eb_attack.dir/median_eb_attack.cpp.o"
  "CMakeFiles/median_eb_attack.dir/median_eb_attack.cpp.o.d"
  "median_eb_attack"
  "median_eb_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/median_eb_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
