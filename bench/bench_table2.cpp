// Regenerates Table 2: Alice's expected relative revenue for a compliant
// and profit-driven strategic miner (utility u1, Eq. 1), under setting 1
// (sticky gate removed) and setting 2 (sticky gate enabled), AD = 6.
//
// The paper reports only the cells where the value departs from alpha (all
// others satisfy max u1 = alpha); we regenerate the full grid and print the
// paper's reference value next to ours.
//
// Flags: --quick (skip setting 2), --threads N (batch-solve workers;
// 0 = all hardware threads), plus the crash-safe sweep flags
// (--checkpoint/--resume/--shards, see sweep_session.hpp). --alphas
// 0.1,0.25 style overrides are intentionally not provided — the grid is
// the paper's.
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "sweep_session.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc;

struct Ratio {
  int b;
  int g;
  [[nodiscard]] std::string label() const {
    return std::to_string(b) + ":" + std::to_string(g);
  }
};

// Paper Table 2 reference values (relative revenue), keyed by
// (beta:gamma label, alpha, setting). Cells the paper leaves implicit equal
// alpha.
std::optional<double> paper_value(const std::string& ratio, double alpha,
                                  bu::Setting setting) {
  using Key = std::pair<std::string, int>;
  static const std::map<Key, double> kSetting1 = {
      {{"1:1", 25}, 0.2624},  {{"2:3", 15}, 0.1505}, {{"2:3", 20}, 0.2115},
      {{"2:3", 25}, 0.2739},  {{"1:2", 15}, 0.1562}, {{"1:2", 20}, 0.2156},
      {{"1:2", 25}, 0.2756},  {{"1:3", 10}, 0.1026}, {{"1:3", 15}, 0.1587},
      {{"1:3", 20}, 0.2158},  {{"1:4", 10}, 0.1034}, {{"1:4", 15}, 0.1584},
  };
  static const std::map<Key, double> kSetting2 = {
      {{"3:2", 25}, 0.2529},
      {{"1:1", 25}, 0.2624},
      {{"2:3", 25}, 0.2529},
      {{"1:2", 25}, 0.2500},
  };
  const Key key{ratio, static_cast<int>(alpha * 100.0 + 0.5)};
  const auto& table =
      setting == bu::Setting::kNoStickyGate ? kSetting1 : kSetting2;
  const auto it = table.find(key);
  if (it != table.end()) {
    return it->second;
  }
  // The paper states every unlisted cell equals alpha.
  return alpha;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_table2", "Reproduce Table 2: relative revenue u1, settings 1+2");
  bench::add_standard_bench_args(parser);
  bench::add_sweep_args(parser);
  parser.add({
      {"quick", util::ArgType::kFlag, "", "solve setting 1 only", ""},
      {"ad", util::ArgType::kLong, "N", "attack duration (excessive-block depth)", "6"},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  bench::SweepSession sweep(argc, argv, obs, "bench_table2");
  const bool quick = args.get_bool("quick", false);
  const unsigned ad = static_cast<unsigned>(args.get_long("ad", 6));
  const mdp::BatchConfig batch = sweep.batch_config(args);
  bench::CsvSink csv = bench::open_csv(
      args, {"setting", "beta", "gamma", "alpha", "u1", "paper"});

  const std::vector<double> alphas = {0.10, 0.15, 0.20, 0.25};
  const std::vector<Ratio> ratios = {{3, 2}, {1, 1}, {2, 3},
                                     {1, 2}, {1, 3}, {1, 4}};

  std::printf(
      "Table 2 — Alice's expected relative revenue "
      "(compliant & profit-driven, u1), AD=%u\n"
      "paper values in parentheses; unlisted paper cells equal alpha\n\n",
      ad);

  for (const bu::Setting setting :
       {bu::Setting::kNoStickyGate, bu::Setting::kStickyGate}) {
    if (quick && setting == bu::Setting::kStickyGate) {
      std::printf("(setting 2 skipped: --quick)\n");
      break;
    }
    std::printf("Setting %d (%s)\n",
                setting == bu::Setting::kNoStickyGate ? 1 : 2,
                setting == bu::Setting::kNoStickyGate
                    ? "sticky gate removed; phase 1 only"
                    : "sticky gate enabled; phases 1+2");

    TextTable table([&] {
      std::vector<std::string> header = {"beta:gamma"};
      for (const double alpha : alphas) {
        header.push_back("a=" + format_percent(alpha, 0));
      }
      return header;
    }());

    // Pass 1: enumerate the grid cells inside the paper's alpha <=
    // min(beta, gamma) region; pass 2 fans them across the batch engine;
    // pass 3 prints in grid order (batch results are input-ordered).
    struct Cell {
      std::size_t ratio_index;
      double alpha;
      double beta;
      double gamma;
    };
    std::vector<bu::AnalysisJob> jobs;
    std::vector<Cell> cells;
    for (std::size_t r = 0; r < ratios.size(); ++r) {
      const Ratio& ratio = ratios[r];
      for (const double alpha : alphas) {
        const double rest = 1.0 - alpha;
        const double beta = rest * ratio.b / (ratio.b + ratio.g);
        const double gamma = rest - beta;
        if (alpha > beta || alpha > gamma) {
          continue;  // outside the paper's alpha <= min(beta,gamma)
        }
        bu::AttackParams params;
        params.alpha = alpha;
        params.beta = beta;
        params.gamma = gamma;
        params.setting = setting;
        params.ad = ad;
        jobs.push_back({params, bu::Utility::kRelativeRevenue});
        cells.push_back({r, alpha, beta, gamma});
      }
    }
    bu::AnalysisCheckpoint ckpt;
    ckpt.journal = sweep.journal();
    ckpt.include = sweep.include_next(jobs.size());
    mdp::BatchReport report;
    const std::vector<bu::AnalysisResult> results =
        bu::analyze_batch(jobs, {}, batch, ckpt, &report);
    if (batch.warm_start) {
      std::fprintf(stderr,
                   "[warm-start] setting %d: %zu/%zu cells seeded, "
                   "~%lld inner sweeps saved vs same-batch cold mean\n",
                   setting == bu::Setting::kNoStickyGate ? 1 : 2,
                   report.items_warm_started, report.items,
                   static_cast<long long>(report.sweeps_saved_estimate));
    }

    std::size_t next_cell = 0;
    for (std::size_t r = 0; r < ratios.size(); ++r) {
      const Ratio& ratio = ratios[r];
      std::vector<std::string> row = {ratio.label()};
      for (const double alpha : alphas) {
        if (next_cell >= cells.size() || cells[next_cell].ratio_index != r ||
            cells[next_cell].alpha != alpha) {
          row.push_back("-");  // outside the paper's alpha <= min(beta,gamma)
          continue;
        }
        const Cell& cell_info = cells[next_cell];
        const bu::AnalysisResult& analysis = results[next_cell];
        ++next_cell;
        bench::require_solved(
            analysis,
            "u1 setting " +
                std::string(setting == bu::Setting::kNoStickyGate ? "1"
                                                                  : "2") +
                " " +
                bench::describe_cell({{"alpha", cell_info.alpha},
                                      {"beta", cell_info.beta},
                                      {"gamma", cell_info.gamma},
                                      {"AD", static_cast<double>(ad)}}));
        const double value = analysis.utility_value;
        const auto paper = paper_value(ratio.label(), alpha, setting);
        std::string cell = format_percent(value);
        if (paper) {
          cell += " (" + format_percent(*paper) + ")";
        }
        row.push_back(std::move(cell));
        csv.row({setting == bu::Setting::kNoStickyGate ? "1" : "2",
                 format_fixed(cell_info.beta, 4),
                 format_fixed(cell_info.gamma, 4),
                 format_fixed(alpha, 4), format_fixed(value, 6),
                 paper ? format_fixed(*paper, 4) : ""});
      }
      table.add_row(std::move(row));
      std::printf(".");  // progress
      std::fflush(stdout);
    }
    std::printf("\n%s\n", table.to_string().c_str());
  }

  std::printf(
      "Reading: Alice gains unfair relative revenue exactly when\n"
      "alpha + gamma > beta (Analytical Result 1); Bitcoin always gives\n"
      "max u1 = alpha under compliance.\n");
  bench::print_cache_stats("bench_table2");
  return 0;
}
