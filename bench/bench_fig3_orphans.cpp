// Regenerates Figure 3: one Alice block orphaning two compliant blocks.
//
// In the figure, Alice's size-EB_C block splits Bob and Carol; Carol mines
// two blocks on Chain 2 before Bob's Chain 1 outgrows it, so Carol's two
// blocks (plus Alice's trigger) are orphaned by a single Alice block. We
// first script that exact trace, then measure the long-run orphaning rate
// of the optimal non-profit-driven policy and compare it with the MDP.
#include <cstdio>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "sim/attack_scenario.hpp"
#include "util/rng.hpp"

namespace {
using namespace bvc;
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_fig3_orphans", "Regenerate Figure 3: one Alice block orphaning two blocks");
  bench::add_standard_bench_args(parser);
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  // ---- The scripted Figure 3 trace, via the abstract step semantics ------
  bu::AttackParams params;
  params.alpha = 0.01;
  params.beta = 0.596;  // beta:gamma ~ 3:2 as drawn
  params.gamma = 0.394;
  params.ad = 6;
  params.allow_wait = true;

  std::printf("Figure 3 — two compliant blocks orphaned by one Alice "
              "block\n\n");
  bu::AttackState state{};
  bu::Deltas totals;
  const auto step = [&](bu::Action action, bu::Event event,
                        const char* note) {
    const bu::StepResult result =
        bu::apply_event(params, state, action, event);
    totals.others_orphaned += result.deltas.others_orphaned;
    totals.alice_orphaned += result.deltas.alice_orphaned;
    std::printf("  %-12s %-18s %s -> %s\n",
                std::string(bu::to_string(action)).c_str(), note,
                bu::to_string(state).c_str(),
                bu::to_string(result.next).c_str());
    state = result.next;
  };

  step(bu::Action::kOnChain2, bu::Event::kAliceBlock,
       "Alice forks (EB_C)");
  step(bu::Action::kWait, bu::Event::kCarolBlock, "Carol on Chain 2");
  step(bu::Action::kWait, bu::Event::kCarolBlock, "Carol on Chain 2");
  step(bu::Action::kWait, bu::Event::kBobBlock, "Bob on Chain 1");
  step(bu::Action::kWait, bu::Event::kBobBlock, "Bob on Chain 1");
  step(bu::Action::kWait, bu::Event::kBobBlock, "Bob on Chain 1");
  step(bu::Action::kWait, bu::Event::kBobBlock,
       "Chain 1 outgrows: Carol switches");
  std::printf(
      "\n  => %.0f compliant blocks (and Alice's trigger) orphaned by "
      "Alice's single block\n\n",
      totals.others_orphaned);

  // ---- Long-run orphaning of the optimal policy, on chain semantics ------
  bu::AttackParams opt = params;
  opt.beta = 0.396;  // 2:3, the paper's worst case (u3 = 1.77)
  opt.gamma = 0.594;
  const bu::AttackModel model =
      bu::build_attack_model(opt, bu::Utility::kOrphaning);
  bu::AnalysisOptions analysis_options;
  analysis_options.control = bench::run_control_from_args(args);
  const bu::AnalysisResult analysis = bu::analyze(model, analysis_options);
  bench::require_solved(
      analysis,
      "u3 worst-case solve " +
          bench::describe_cell({{"alpha", opt.alpha},
                                {"gamma", opt.gamma},
                                {"AD", static_cast<double>(opt.ad)}}),
      /*fatal=*/false);

  sim::ScenarioOptions options;
  options.check_against_model = true;
  sim::AttackScenarioSim simulator(model, options);
  Rng rng(3);
  const sim::ScenarioResult sim_result =
      simulator.run(analysis.policy, 1'000'000, rng);

  std::printf(
      "Optimal non-profit-driven policy (alpha=1%%, beta:gamma=2:3, AD=6),\n"
      "replayed on chain semantics for 1M blocks:\n"
      "  u3 (compliant blocks orphaned per Alice block): %.3f\n"
      "  MDP optimum: %.3f   (paper Table 4: 1.77; Bitcoin bound: 1.00)\n",
      sim_result.utility_estimate, analysis.utility_value);
  return 0;
}
