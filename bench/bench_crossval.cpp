// Cross-validation harness (V1 in DESIGN.md): replays MDP-optimal policies
// on the chain-semantics simulator with step-by-step model checking enabled
// and compares the Monte-Carlo utility estimates with the analytic optima,
// for all three utilities and both settings.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "sim/attack_scenario.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {
using namespace bvc;
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_crossval", "MDP optima vs chain-semantics simulator cross-validation");
  bench::add_standard_bench_args(parser);
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  const mdp::BatchConfig batch = bench::batch_config_from_args(args);
  std::printf(
      "MDP <-> chain-semantics cross-validation (every step checked: any\n"
      "divergence between the abstract model and the per-node validity\n"
      "rules throws)\n\n");

  TextTable table({"utility", "setting", "analytic", "simulated (1M blocks)",
                   "forks", "gate openings"});

  struct Case {
    bu::Utility utility;
    bu::Setting setting;
  };
  const Case cases[] = {
      {bu::Utility::kRelativeRevenue, bu::Setting::kNoStickyGate},
      {bu::Utility::kRelativeRevenue, bu::Setting::kStickyGate},
      {bu::Utility::kAbsoluteReward, bu::Setting::kNoStickyGate},
      {bu::Utility::kAbsoluteReward, bu::Setting::kStickyGate},
      {bu::Utility::kOrphaning, bu::Setting::kNoStickyGate},
      {bu::Utility::kOrphaning, bu::Setting::kStickyGate},
  };

  // The six analytic solves run as one batch; the (deterministic,
  // single-RNG-stream) simulation replays stay serial so the Monte-Carlo
  // numbers are identical for every --threads value.
  std::vector<bu::AnalysisJob> jobs;
  for (const Case& c : cases) {
    bu::AttackParams params;
    params.alpha = 0.20;
    params.beta = 0.32;
    params.gamma = 0.48;
    params.setting = c.setting;
    params.gate_period = 36;  // shorter than 144 to visit phase 2 often
    jobs.push_back({params, c.utility});
  }
  const std::vector<bu::AnalysisResult> analyses =
      bu::analyze_batch(jobs, {}, batch);

  Rng rng(424242);
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    const Case& c = cases[i];
    const bu::AnalysisResult& analysis = analyses[i];
    bench::require_solved(analysis,
                          std::string(bu::to_string(c.utility)) + " setting " +
                              (c.setting == bu::Setting::kNoStickyGate ? "1"
                                                                       : "2"),
                          /*fatal=*/false);

    const bu::AttackModel model =
        bu::build_attack_model(jobs[i].params, c.utility);
    sim::ScenarioOptions options;
    options.check_against_model = true;
    sim::AttackScenarioSim simulator(model, options);
    const sim::ScenarioResult result =
        simulator.run(analysis.policy, 1'000'000, rng);

    table.add_row({std::string(bu::to_string(c.utility)),
                   c.setting == bu::Setting::kNoStickyGate ? "1" : "2",
                   format_fixed(analysis.utility_value, 4),
                   format_fixed(result.utility_estimate, 4),
                   std::to_string(result.forks_started),
                   std::to_string(result.gate_openings)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "All rows ran with check_against_model=true: 6M block events were\n"
      "verified to produce exactly the state transitions and rewards the\n"
      "Table-1-style model predicts, from real per-node EB/AD/sticky-gate\n"
      "evaluations.\n");
  return 0;
}
