// Exercises the Sect. 6.3 countermeasure: miners vote for/against a block
// size increase inside their blocks; per 2016-block period the limit moves
// by a fixed step when the vote clears an approval threshold and stays
// under a veto threshold, activating only 200 blocks into the next period.
//
// Scenarios:
//  1. A supermajority that wants bigger blocks grows the limit gradually.
//  2. A >10% minority that cannot handle bigger blocks vetoes the change
//     (unlike BU's block size increasing game, small miners keep a voice).
//  3. An adversarial cohort biases votes but can never split validity: two
//     independent replayers agree on the limit at every height.
//
// The scenarios run through counter::run_voting_batch (each with a private
// RNG seed) under the shared --threads / --wall-clock-ms / --max-ticks
// flags, so the table is identical for every thread count.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "counter/dynamic_limit.hpp"
#include "counter/voting_simulation.hpp"
#include "sweep_session.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {
using namespace bvc;
using namespace bvc::counter;
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_countermeasure", "Block-size-increase voting countermeasure study (Sect. 6.3)");
  bench::add_standard_bench_args(parser);
  bench::add_sweep_args(parser);
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  bench::SweepSession sweep(argc, argv, obs, "bench_countermeasure");
  const mdp::BatchConfig batch = sweep.batch_config(args);

  VoteRuleConfig rule;  // paper-scale: 2016-block epochs, 200-block delay
  rule.epoch_length = 2016;
  rule.adjust_threshold = 0.75;
  rule.veto_threshold = 0.10;
  rule.activation_delay = 200;
  rule.step = 100'000;
  rule.initial_limit = 1'000'000;
  rule.max_limit = 8'000'000;

  std::printf(
      "Countermeasure (Sect. 6.3): dynamically adjustable limit with a\n"
      "prescribed BVC (epoch 2016, approve >= 75%%, veto > 10%%, "
      "activation +200)\n\n");

  std::vector<const char*> names;
  std::vector<VotingJob> jobs;
  Rng seed_rng(63);
  const auto scenario = [&](const char* name,
                            std::vector<VoterCohort> cohorts,
                            std::size_t epochs) {
    VotingJob job;
    job.config.rule = rule;
    job.config.cohorts = std::move(cohorts);
    job.epochs = epochs;
    job.seed = seed_rng.next_u64();
    names.push_back(name);
    jobs.push_back(std::move(job));
  };

  scenario("1. 90% want 4 MB, 10% happy at 1 MB",
           {{0.90, 4'000'000, false}, {0.10, 1'000'000, false}}, 40);
  scenario("2. 80% want 4 MB, 20% veto",
           {{0.80, 4'000'000, false}, {0.20, 1'000'000, false}}, 40);
  scenario("3. 85% want 2 MB, 15% adversarial",
           {{0.85, 2'000'000, false}, {0.15, 2'000'000, true}}, 40);
  scenario("4. consensus shrinks back to 0.5 MB",
           {{1.0, 500'000, false}}, 20);

  VotingCheckpoint ckpt;
  ckpt.journal = sweep.journal();
  ckpt.include = sweep.include_next(jobs.size());
  const std::vector<VotingSimResult> results =
      run_voting_batch(jobs, batch, ckpt);

  TextTable table({"scenario", "epochs", "final limit", "increases",
                   "decreases"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const VotingSimResult& result = results[i];
    bench::require_solved(result, std::string(names[i]), /*fatal=*/false);
    table.add_row({names[i], std::to_string(jobs[i].epochs),
                   format_fixed(static_cast<double>(result.final_limit) / 1e6,
                                1) +
                       " MB",
                   std::to_string(result.increases),
                   std::to_string(result.decreases)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // BVC preservation: two independent nodes replaying the same votes agree
  // at every height — by construction the limit is a pure function of the
  // chain, so a prescribed BVC holds while the rules adjust.
  DynamicLimitTracker node_a(rule);
  DynamicLimitTracker node_b(rule);
  Rng vote_rng(7);
  bool agree = true;
  for (int i = 0; i < 50 * 2016; ++i) {
    const auto vote = static_cast<Vote>(vote_rng.next_below(3));
    agree = agree && node_a.on_block(vote) == node_b.on_block(vote);
  }
  std::printf(
      "BVC check: two replayers across 50 epochs of random votes agree at\n"
      "every height: %s (adjustments applied: %zu)\n",
      agree ? "YES" : "NO", node_a.adjustments().size());
  return 0;
}
