// Regenerates Figure 1: a BU miner's choice of parent block under the
// excessive-block rules (AD = 3 in the figure).
//
//  (top)    Excessive blocks are rejected while they lack acceptance depth.
//  (middle) Two blocks mined on the excessive block: the chain is accepted
//           as the longest chain and the sticky gate opens — the size limit
//           on that chain becomes the 32 MB message limit.
//  (bottom) After 144 consecutive non-excessive blocks the gate closes.
//
// Output: a per-block trace of one node's verdicts on a growing chain.
#include <cstdio>

#include "bench_common.hpp"
#include "chain/block_tree.hpp"
#include "chain/bu_validity.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc::chain;

const char* verdict_name(ChainVerdict verdict) {
  switch (verdict) {
    case ChainVerdict::kAcceptable:
      return "ACCEPT";
    case ChainVerdict::kPendingDepth:
      return "pending";
    case ChainVerdict::kInvalid:
      return "INVALID";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  // The shared bench flags are accepted (and validated) for CLI uniformity;
  // this trace replay has no iterative loop for the budget to bound.
  bvc::util::ArgParser parser("bench_fig1_validity", "Regenerate Figure 1: BU parent-block choice (AD = 3)");
  bvc::bench::add_standard_bench_args(parser);
  const bvc::CliArgs args = parser.parse(argc, argv);
  bvc::bench::ObsSession obs(argc, argv);
  (void)bvc::bench::run_control_from_args(args);
  (void)bvc::bench::batch_config_from_args(args);

  BuParams params;
  params.eb = 1 * kMegabyte;
  params.ad = 3;             // as in Figure 1
  params.gate_period = 144;  // "closed after 144 consecutive non-excessive"
  const BuNodeRule node(params);

  std::printf(
      "Figure 1 — a BU node's verdicts (EB = 1 MB, AD = 3, gate period "
      "144)\n\n");

  BlockTree tree;
  bvc::TextTable table(
      {"height", "block size", "verdict", "gate", "note"});

  const auto record = [&](BlockId tip, const char* note) {
    const ChainStatus status = node.evaluate(tree, tip);
    std::string gate = "closed";
    if (status.gate_open) {
      gate = "open (closes in " +
             std::to_string(status.blocks_until_gate_close) + ")";
    }
    const Block& block = tree.block(tip);
    table.add_row({std::to_string(block.height),
                   bvc::format_fixed(static_cast<double>(block.size) /
                                         static_cast<double>(kMegabyte),
                                     1) +
                       " MB",
                   verdict_name(status.verdict), gate, note});
  };

  // Top panel: an excessive block appears and pends.
  BlockId tip = tree.add_block(tree.genesis(), kMegabyte, 0);
  record(tip, "ordinary 1 MB block");
  tip = tree.add_block(tip, 2 * kMegabyte, 0);
  record(tip, "excessive: needs a chain of AD=3 on it");
  tip = tree.add_block(tip, kMegabyte, 0);
  record(tip, "depth 2 of 3: still rejected");

  // Middle panel: acceptance depth reached; the sticky gate opens.
  tip = tree.add_block(tip, kMegabyte, 0);
  record(tip, "depth 3: chain accepted, sticky gate OPENS");
  tip = tree.add_block(tip, 20 * kMegabyte, 0);
  record(tip, "20 MB block sails through the open gate");

  // Bottom panel: 144 consecutive non-excessive blocks close the gate.
  for (int i = 0; i < 143; ++i) {
    tip = tree.add_block(tip, kMegabyte, 0);
  }
  record(tip, "143 of 144 non-excessive blocks");
  tip = tree.add_block(tip, kMegabyte, 0);
  record(tip, "144th consecutive: sticky gate CLOSES");
  tip = tree.add_block(tip, 2 * kMegabyte, 0);
  record(tip, "new excessive block pends again");

  std::printf("%s\n", table.to_string().c_str());

  // The same chain seen by a large-EB node is never pending: no prescribed
  // block validity consensus.
  BuParams big = params;
  big.eb = 32 * kMegabyte;
  const BuNodeRule big_node(big);
  std::printf(
      "The same chain under EB = 32 MB: every verdict is %s — two\n"
      "compliant nodes disagree about identical blocks (no BVC).\n",
      verdict_name(big_node.evaluate(tree, tip).verdict));
  return 0;
}
