// Regenerates Figure 2: the two fork states of the attack.
//
//   Phase 1: Alice mines a block of size EB_C — Carol accepts it (Chain 2)
//            while Bob rejects it and stays on Chain 1.
//   Phase 2: Bob's sticky gate is open; Alice mines a block slightly larger
//            than EB_C — Bob accepts it (Chain 2) while Carol rejects it.
//
// We replay both splits on a real block tree with per-node validity rules
// and print each side's verdicts, then drive the full scenario simulator to
// show phase transitions occurring end-to-end.
#include <cstdio>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "chain/block_tree.hpp"
#include "chain/bu_validity.hpp"
#include "sim/attack_scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;
using namespace bvc::chain;

const char* verdict_name(ChainVerdict verdict) {
  switch (verdict) {
    case ChainVerdict::kAcceptable:
      return "accepts";
    case ChainVerdict::kPendingDepth:
      return "REJECTS (pending depth)";
    case ChainVerdict::kInvalid:
      return "REJECTS (invalid)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_fig2_phases", "Regenerate Figure 2: the two fork phases of the attack");
  bench::add_standard_bench_args(parser);
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  constexpr ByteSize kEbBob = 1 * kMegabyte;
  constexpr ByteSize kEbCarol = 8 * kMegabyte;
  BuParams bob_params;
  bob_params.eb = kEbBob;
  bob_params.ad = 3;
  BuParams carol_params = bob_params;
  carol_params.eb = kEbCarol;
  const BuNodeRule bob(bob_params);
  const BuNodeRule carol(carol_params);

  std::printf("Figure 2 — the two fork phases (EB_B = 1 MB, EB_C = 8 MB, "
              "AD = 3)\n\n");

  // ---- Phase 1 ----------------------------------------------------------
  {
    BlockTree tree;
    const BlockId trigger = tree.add_block(tree.genesis(), kEbCarol, 0);
    std::printf("Phase 1: Alice mines a block of size exactly EB_C = 8 MB\n");
    std::printf("  Bob   %s\n",
                verdict_name(bob.evaluate(tree, trigger).verdict));
    std::printf("  Carol %s -> mines on Chain 2\n",
                verdict_name(carol.evaluate(tree, trigger).verdict));
    // Carol extends Chain 2 to the acceptance depth; Bob flips.
    BlockId tip = trigger;
    for (int i = 0; i < 2; ++i) {
      tip = tree.add_block(tip, kMegabyte, 2);
    }
    const ChainStatus after = bob.evaluate(tree, tip);
    std::printf(
        "  after AD-1 = 2 blocks on top: Bob %s; his sticky gate is %s\n\n",
        verdict_name(after.verdict), after.gate_open ? "OPEN" : "closed");
  }

  // ---- Phase 2 ----------------------------------------------------------
  {
    BlockTree tree;
    const BlockId trigger = tree.add_block(tree.genesis(), kEbCarol + 1, 0);
    std::printf(
        "Phase 2: Bob's gate is open; Alice mines a block of EB_C + 1 "
        "byte\n");
    const GateState open_gate{true, 0};
    std::printf("  Bob   %s (open gate: limit is the 32 MB message size)\n",
                verdict_name(bob.evaluate(tree, trigger, open_gate).verdict));
    std::printf("  Carol %s -> stays on Chain 1\n\n",
                verdict_name(carol.evaluate(tree, trigger).verdict));
  }

  // ---- End-to-end: phases emerging in the simulator ----------------------
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.ad = 4;
  params.gate_period = 16;
  params.setting = bu::Setting::kStickyGate;
  const bu::AttackModel model =
      bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
  bu::AnalysisOptions analysis_options;
  analysis_options.control = bench::run_control_from_args(args);
  const bu::AnalysisResult analysis = bu::analyze(model, analysis_options);
  bench::require_solved(
      analysis,
      "u1 phase-replay solve " +
          bench::describe_cell({{"alpha", params.alpha},
                                {"gamma", params.gamma},
                                {"AD", static_cast<double>(params.ad)}}),
      /*fatal=*/false);

  sim::ScenarioOptions options;
  options.eb_bob = kEbBob;
  options.eb_carol = kEbCarol;
  options.check_against_model = true;
  sim::AttackScenarioSim simulator(model, options);
  Rng rng(2017);
  const sim::ScenarioResult result =
      simulator.run(analysis.policy, 200'000, rng);

  std::printf(
      "Optimal attack replayed on chain semantics (alpha=25%%, "
      "beta:gamma=2:3,\nAD=4, gate period 16, 200k blocks):\n"
      "  forks started: %llu\n"
      "  Chain-1 wins:  %llu\n"
      "  Chain-2 wins (acceptance-depth takeovers): %llu\n"
      "  sticky-gate openings (phase-2 entries):    %llu\n"
      "  utility u1: %.4f (solver: %.4f) vs honest alpha = 0.2500\n",
      static_cast<unsigned long long>(result.forks_started),
      static_cast<unsigned long long>(result.chain1_wins),
      static_cast<unsigned long long>(result.chain2_wins),
      static_cast<unsigned long long>(result.gate_openings),
      result.utility_estimate, analysis.utility_value);
  return 0;
}
