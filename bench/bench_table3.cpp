// Regenerates Table 3: Alice's expected absolute revenue for a
// non-compliant and profit-driven attacker combining chain-splitting with
// double-spending (utility u2, Eq. 2; R_DS = 10 block rewards, four
// confirmations), plus the paper's Bitcoin comparison block: optimal
// selfish mining + double-spending (Sompolinsky-Zohar setting, solved with
// a Sapirshtein-style MDP).
//
// Reproduction status (see EXPERIMENTS.md): the Bitcoin block and the BU
// setting-2 grid match the paper to ~0.01; our BU setting-1 values are
// 20-30% below the paper's. The paper's text does not pin down the
// double-spend accounting of its setting-1 run precisely enough to close
// that gap (we tested five reward conventions and two race-depth variants,
// which bracket the published numbers). All qualitative claims —
// profitability for a 1% miner, the beta-heavy asymmetry, BU >> Bitcoin —
// reproduce under every convention.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "btc/selfish_mining.hpp"
#include "bu/attack_analysis.hpp"
#include "sweep_session.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc;

struct Ratio {
  int b;
  int g;
  [[nodiscard]] std::string label() const {
    return std::to_string(b) + ":" + std::to_string(g);
  }
};

// Paper Table 3 values, [setting][ratio][alpha index].
constexpr double kNoValue = -1.0;
const std::vector<double> kAlphas = {0.01, 0.025, 0.05, 0.10,
                                     0.15, 0.20,  0.25};
const std::vector<Ratio> kRatios = {{4, 1}, {2, 1}, {1, 1}, {1, 2}, {1, 4}};
const double kPaperSetting1[5][7] = {
    {0.013, 0.038, 0.090, 0.24, 0.44, kNoValue, kNoValue},
    {0.035, 0.089, 0.18, 0.39, 0.61, 0.83, 1.1},
    {0.042, 0.10, 0.20, 0.40, 0.59, 0.78, 0.97},
    {0.025, 0.063, 0.13, 0.26, 0.40, 0.55, 0.71},
    {0.013, 0.033, 0.067, 0.14, 0.23, kNoValue, kNoValue},
};
const double kPaperSetting2[5][7] = {
    {0.01, 0.027, 0.063, 0.16, 0.28, kNoValue, kNoValue},
    {0.025, 0.064, 0.13, 0.27, 0.41, 0.55, 0.69},
    {0.034, 0.084, 0.16, 0.31, 0.46, 0.59, 0.73},
    {0.024, 0.063, 0.13, 0.27, 0.41, 0.55, 0.69},
    {0.011, 0.028, 0.064, 0.16, 0.29, kNoValue, kNoValue},
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_table3", "Reproduce Table 3: absolute revenue u2 with double-spending");
  bench::add_standard_bench_args(parser);
  bench::add_sweep_args(parser);
  parser.add({
      {"quick", util::ArgType::kFlag, "", "solve the reduced grid only", ""},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  bench::SweepSession sweep(argc, argv, obs, "bench_table3");
  const bool quick = args.get_bool("quick", false);
  const mdp::BatchConfig batch = sweep.batch_config(args);
  bench::CsvSink csv = bench::open_csv(
      args,
      {"protocol", "setting_or_tiewin", "beta", "gamma", "alpha", "u2",
       "paper"});

  std::printf(
      "Table 3 — Alice's expected absolute revenue per network block\n"
      "(non-compliant & profit-driven, u2; R_DS = 10, 4 confirmations)\n"
      "paper values in parentheses; '-' = outside alpha <= min(beta,gamma)\n\n");

  for (const bu::Setting setting :
       {bu::Setting::kNoStickyGate, bu::Setting::kStickyGate}) {
    if (quick && setting == bu::Setting::kStickyGate) {
      std::printf("(setting 2 skipped: --quick)\n");
      break;
    }
    const bool s1 = setting == bu::Setting::kNoStickyGate;
    std::printf("Setting %d\n", s1 ? 1 : 2);

    TextTable table([&] {
      std::vector<std::string> header = {"alpha \\ beta:gamma"};
      for (const Ratio& ratio : kRatios) {
        header.push_back(ratio.label());
      }
      return header;
    }());

    // Enumerate the in-region grid cells, batch-solve them, then print in
    // grid order (batch results are input-ordered).
    struct Cell {
      std::size_t alpha_index;
      std::size_t ratio_index;
      double beta;
      double gamma;
    };
    std::vector<bu::AnalysisJob> jobs;
    std::vector<Cell> cells;
    for (std::size_t ai = 0; ai < kAlphas.size(); ++ai) {
      const double alpha = kAlphas[ai];
      for (std::size_t ri = 0; ri < kRatios.size(); ++ri) {
        const Ratio& ratio = kRatios[ri];
        const double rest = 1.0 - alpha;
        const double beta = rest * ratio.b / (ratio.b + ratio.g);
        const double gamma = rest - beta;
        if (alpha > beta || alpha > gamma) {
          continue;
        }
        bu::AttackParams params;
        params.alpha = alpha;
        params.beta = beta;
        params.gamma = gamma;
        params.setting = setting;
        jobs.push_back({params, bu::Utility::kAbsoluteReward});
        cells.push_back({ai, ri, beta, gamma});
      }
    }
    bu::AnalysisCheckpoint ckpt;
    ckpt.journal = sweep.journal();
    ckpt.include = sweep.include_next(jobs.size());
    const std::vector<bu::AnalysisResult> results =
        bu::analyze_batch(jobs, {}, batch, ckpt);

    std::size_t next_cell = 0;
    for (std::size_t ai = 0; ai < kAlphas.size(); ++ai) {
      const double alpha = kAlphas[ai];
      std::vector<std::string> row = {format_percent(alpha, 1)};
      for (std::size_t ri = 0; ri < kRatios.size(); ++ri) {
        if (next_cell >= cells.size() ||
            cells[next_cell].alpha_index != ai ||
            cells[next_cell].ratio_index != ri) {
          row.push_back("-");
          continue;
        }
        const Cell& cell_info = cells[next_cell];
        const bu::AnalysisResult& analysis = results[next_cell];
        ++next_cell;
        bench::require_solved(
            analysis,
            "u2 setting " + (s1 ? std::string("1") : std::string("2")) + " " +
                bench::describe_cell({{"alpha", alpha},
                                      {"beta", cell_info.beta},
                                      {"gamma", cell_info.gamma}}));
        const double value = analysis.utility_value;
        const double paper =
            (s1 ? kPaperSetting1 : kPaperSetting2)[ri][ai];
        std::string cell = format_fixed(value, 3);
        if (paper != kNoValue) {
          cell += " (" + format_fixed(paper, 3) + ")";
        }
        row.push_back(std::move(cell));
        csv.row({"bu", s1 ? "1" : "2", format_fixed(cell_info.beta, 4),
                 format_fixed(cell_info.gamma, 4), format_fixed(alpha, 4),
                 format_fixed(value, 6),
                 paper != kNoValue ? format_fixed(paper, 3) : ""});
        std::printf(".");
        std::fflush(stdout);
      }
      table.add_row(std::move(row));
    }
    std::printf("\n%s\n", table.to_string().c_str());
  }

  // --- Bitcoin comparison: optimal selfish mining + double-spending -------
  std::printf(
      "Selfish Mining + Double-Spending on Bitcoin "
      "(optimal, Sapirshtein-style MDP)\n");
  const double kPaperBtc[2][4] = {{0.1, 0.15, 0.2, 0.38},
                                  {0.11, 0.18, 0.30, 0.52}};
  TextTable btc_table({"P(win a tie)", "a=10%", "a=15%", "a=20%", "a=25%"});
  const std::vector<double> btc_alphas = {0.10, 0.15, 0.20, 0.25};
  const std::vector<double> ties = {0.5, 1.0};
  std::vector<btc::SmJob> sm_jobs;
  for (const double tie : ties) {
    for (const double alpha : btc_alphas) {
      btc::SmParams sm_params;
      sm_params.alpha = alpha;
      sm_params.gamma_tie = tie;
      sm_jobs.push_back({sm_params, bu::Utility::kAbsoluteReward, 1e-5});
    }
  }
  btc::SmCheckpoint sm_ckpt;
  sm_ckpt.journal = sweep.journal();
  sm_ckpt.include = sweep.include_next(sm_jobs.size());
  const std::vector<btc::SmResult> sm_results =
      btc::analyze_sm_batch(sm_jobs, batch, sm_ckpt);

  for (std::size_t ti = 0; ti < ties.size(); ++ti) {
    const double tie = ties[ti];
    std::vector<std::string> row = {format_percent(tie, 0)};
    for (std::size_t i = 0; i < btc_alphas.size(); ++i) {
      const btc::SmResult& sm = sm_results[ti * btc_alphas.size() + i];
      bench::require_solved(
          sm, "btc sm+ds " + bench::describe_cell({{"alpha", btc_alphas[i]},
                                                   {"tie", tie}}));
      const double value = sm.utility_value;
      row.push_back(format_fixed(value, 3) + " (" +
                    format_fixed(kPaperBtc[ti][i], 2) + ")");
      csv.row({"bitcoin-sm-ds", format_fixed(tie, 2), "", "",
               format_fixed(btc_alphas[i], 4), format_fixed(value, 6),
               format_fixed(kPaperBtc[ti][i], 2)});
      std::printf(".");
      std::fflush(stdout);
    }
    btc_table.add_row(std::move(row));
  }
  std::printf("\n%s\n", btc_table.to_string().c_str());

  std::printf(
      "Reading (Analytical Result 2): in BU even a 1%% miner profits from\n"
      "double-spending (u2 > alpha), whereas in Bitcoin double-spending is\n"
      "unprofitable below ~10%% mining power even when winning every tie.\n");
  bench::print_cache_stats("bench_table3");
  return 0;
}
