// Propagation substrate study (Sect. 2.3 / Sect. 6.4): the relationship
// between block size, network capacity and orphan rate that gives every
// miner a maximum profitable block size — the premise of the block size
// increasing game. Uses the continuous-time network simulator and compares
// the measured orphan rates with the analytic fee-market model.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "games/fee_market.hpp"
#include "sim/network_sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {
using namespace bvc;
using chain::kMegabyte;

sim::NetMiner make_miner(std::string name, double power,
                         chain::ByteSize size, double bandwidth) {
  sim::NetMiner miner;
  miner.name = std::move(name);
  miner.power = power;
  miner.rule.eb = 32 * kMegabyte;
  miner.rule.mg = 32 * kMegabyte;
  miner.block_size = size;
  miner.bandwidth = bandwidth;
  miner.latency = 2.0;
  return miner;
}
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_propagation", "Orphan rate vs block size and network capacity (Sect. 6.4)");
  bench::add_standard_bench_args(parser);
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  // Bounds each simulated cell (one guard tick per simulated block).
  const robust::RunControl control = bench::run_control_from_args(args);
  std::printf(
      "Propagation study — orphan rate vs block size and bandwidth\n"
      "(5 equal miners, 600 s interval, 2 s latency, 30k blocks per "
      "cell)\n\n");

  TextTable table({"block size", "200 kB/s", "1 MB/s", "5 MB/s",
                   "analytic survival loss @1MB/s"});
  const double bandwidths[] = {2e5, 1e6, 5e6};
  for (const chain::ByteSize size :
       {kMegabyte, 2 * kMegabyte, 4 * kMegabyte, 8 * kMegabyte,
        16 * kMegabyte}) {
    std::vector<std::string> row = {
        format_fixed(static_cast<double>(size) / kMegabyte, 0) + " MB"};
    for (const double bandwidth : bandwidths) {
      sim::NetworkConfig config;
      for (int i = 0; i < 5; ++i) {
        config.miners.push_back(make_miner("m" + std::to_string(i), 0.2,
                                           size, bandwidth));
      }
      sim::NetworkSimulation simulation(config);
      Rng rng(size + static_cast<std::uint64_t>(bandwidth));
      const sim::NetworkResult result = simulation.run(30'000, rng, control);
      row.push_back(format_percent(result.orphan_rate()));
      std::printf(".");
      std::fflush(stdout);
    }
    // Analytic: probability a rival block appears during propagation.
    games::FeeMarketParams analytic;
    analytic.bandwidth = 1e6;
    analytic.latency = 2.0;
    analytic.power = 0.2;
    const double tau = analytic.latency +
                       static_cast<double>(size) / analytic.bandwidth;
    const double loss =
        1.0 - std::exp(-tau * (1.0 - analytic.power) / 600.0);
    row.push_back(format_percent(loss));
    table.add_row(std::move(row));
  }
  std::printf("\n%s\n", table.to_string().c_str());

  // Derived MPBs across capacities: the heterogeneity that drives Sect. 5.2.
  std::printf("Derived block size preferences (fee market, Sect. 2.3):\n");
  TextTable mpb_table({"bandwidth", "profit-maximizing size",
                       "maximum profitable size (MPB)"});
  for (const double bandwidth : {1e5, 5e5, 1e6, 5e6, 2e7}) {
    games::FeeMarketParams params;
    params.bandwidth = bandwidth;
    params.power = 0.2;
    mpb_table.add_row(
        {format_fixed(bandwidth / 1e6, 2) + " MB/s",
         format_fixed(games::optimal_block_size(params) / kMegabyte, 2) +
             " MB",
         format_fixed(
             games::maximum_profitable_size(params) / kMegabyte, 1) +
             " MB"});
  }
  std::printf("%s\n", mpb_table.to_string().c_str());
  std::printf(
      "Reading: orphan risk rises with block size and falls with capacity,\n"
      "so miners' profitable block sizes genuinely differ — the premise of\n"
      "the block size increasing game, and the reason BU's miner-decided\n"
      "limit squeezes out the slow (Result 5).\n");
  return 0;
}
