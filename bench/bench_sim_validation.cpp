// Simulator validation: the event-driven network simulator against
// closed-form predictions, plus a scale probe.
//
// 1. Race/orphan validation. With miners on a direct mesh, a block found by
//    miner i is orphan-raced exactly when another miner finds within i's
//    propagation window tau_i (the receiver's latency + transfer time).
//    Finds are Poisson, so the per-find race probability is the classic
//    1 - exp(-lambda_other * tau): the bench sweeps the latency and compares
//    the measured orphan rate (mean +/- 95% CI over --replicas independent
//    replicas) against that prediction.
// 2. Split/duration validation. Heterogeneous powers: miner i's share of
//    mined blocks must match its power p_i (multinomial), and the total
//    simulated duration must match blocks * interval (sum of exponentials).
// 3. Scale probe. A generated random topology with --nodes nodes (default
//    1200) gossips --scale-blocks blocks under a RunControl wall-clock
//    budget, demonstrating that thousand-node relay runs fit the budget.
//
// Exit code 1 if any prediction deviates by more than the tolerance or the
// scale run misses its budget, so scripts can gate on it.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "robust/run_control.hpp"
#include "sim/network_sim.hpp"
#include "sim/replicas.hpp"
#include "sim/topology.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc;

/// Measured-vs-predicted gate: within 3 CI half-widths, with an absolute
/// floor so near-zero cells do not demand impossible precision.
bool within_tolerance(double measured, double predicted, double ci95_half) {
  const double tolerance = std::max(3.0 * ci95_half, 2e-3);
  return std::abs(measured - predicted) <= tolerance;
}

std::string verdict(bool ok) { return ok ? "ok" : "DEVIATES"; }

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_sim_validation",
                         "Event-driven simulator vs closed-form predictions");
  bench::add_standard_bench_args(parser);
  parser.add({
      {"blocks", util::ArgType::kLong, "N", "blocks per replica", "4000"},
      {"replicas", util::ArgType::kLong, "N",
       "independent replicas per cell", "8"},
      {"seed", util::ArgType::kLong, "N", "base simulation seed", "2026"},
      {"nodes", util::ArgType::kLong, "N",
       "topology size of the scale probe", "1200"},
      {"scale-blocks", util::ArgType::kLong, "N",
       "blocks gossiped in the scale probe", "500"},
      {"scale-wall-clock-ms", util::ArgType::kLong, "MS",
       "wall-clock budget of the scale probe", "30000"},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  const auto blocks = static_cast<std::uint64_t>(args.get_long("blocks", 4000));
  const auto replicas =
      static_cast<std::size_t>(args.get_long("replicas", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 2026));
  if (blocks == 0 || replicas == 0) {
    std::fprintf(stderr, "error: --blocks and --replicas must be positive\n");
    return 1;
  }

  const auto run_set = [&](const sim::NetworkConfig& config) {
    sim::ReplicaOptions options;
    options.replicas = replicas;
    options.blocks = blocks;
    options.seed = seed;
    options.batch = bench::batch_config_from_args(args);
    return sim::run_replicas(config, options);
  };

  bool all_ok = true;
  const double interval = 600.0;

  // ---- 1. Orphan rate vs 1 - exp(-lambda_other * tau) --------------------
  std::printf(
      "Simulator validation — measured vs closed-form predictions\n"
      "(%llu blocks x %zu replicas per cell, base seed %llu)\n\n"
      "Race validation: two equal miners, negligible transfer time, so a\n"
      "find is raced iff the other miner finds within the latency window.\n\n",
      static_cast<unsigned long long>(blocks), replicas,
      static_cast<unsigned long long>(seed));

  bench::CsvSink csv = bench::open_csv(
      args, {"latency_s", "predicted_orphan_rate", "measured_orphan_rate",
             "ci95_half", "verdict"});

  TextTable race({"latency", "predicted", "measured (±95% CI)", "verdict"});
  for (const double latency : {2.0, 5.0, 15.0, 30.0, 60.0}) {
    sim::NetworkConfig config;
    for (int i = 0; i < 2; ++i) {
      sim::NetMiner miner;
      miner.name = std::string(1, static_cast<char>('a' + i));
      miner.power = 0.5;
      miner.rule.eb = 32 * chain::kMegabyte;
      miner.rule.mg = 32 * chain::kMegabyte;
      miner.block_size = 1000;   // transfer time 1 us: tau == latency
      miner.bandwidth = 1e9;
      miner.latency = latency;
      config.miners.push_back(std::move(miner));
    }
    const sim::ReplicaSetResult set = run_set(config);
    bench::require_solved(set.report.status,
                          "race cell tau=" + format_fixed(latency, 0),
                          /*fatal=*/false);
    // Per find by either miner, the other's find process has rate
    // 0.5/interval, so a height is contested with probability
    // q = 1 - exp(-lambda_other * tau). A contested height yields one
    // orphan but also one extra block in the denominator: rate q/(1+q).
    const double q = 1.0 - std::exp(-0.5 * latency / interval);
    const double predicted = q / (1.0 + q);
    const bool ok = within_tolerance(set.orphan_rate.mean, predicted,
                                     set.orphan_rate.ci95_half);
    all_ok = all_ok && ok;
    race.add_row({format_fixed(latency, 0) + " s", format_percent(predicted),
                  format_percent(set.orphan_rate.mean) + " ±" +
                      format_fixed(set.orphan_rate.ci95_half * 100.0, 2),
                  verdict(ok)});
    csv.row({format_fixed(latency, 1), format_fixed(predicted, 6),
             format_fixed(set.orphan_rate.mean, 6),
             format_fixed(set.orphan_rate.ci95_half, 6), verdict(ok)});
  }
  std::printf("%s\n", race.to_string().c_str());

  // ---- 2. Mining split and duration ---------------------------------------
  std::printf(
      "Split/duration validation: heterogeneous powers 0.5/0.3/0.2 — each\n"
      "miner's mined share must track its power, and the total duration\n"
      "must track blocks x interval.\n\n");
  sim::NetworkConfig hetero;
  {
    const double powers[] = {0.5, 0.3, 0.2};
    for (int i = 0; i < 3; ++i) {
      sim::NetMiner miner;
      miner.name = "m" + std::to_string(i);
      miner.power = powers[i];
      miner.rule.eb = 32 * chain::kMegabyte;
      miner.rule.mg = 32 * chain::kMegabyte;
      miner.block_size = 1000;
      miner.bandwidth = 1e9;
      miner.latency = 1.0;
      hetero.miners.push_back(std::move(miner));
    }
  }
  const sim::ReplicaSetResult hetero_set = run_set(hetero);
  bench::require_solved(hetero_set.report.status, "split cell",
                        /*fatal=*/false);

  TextTable split({"quantity", "predicted", "measured (mean over replicas)",
                   "verdict"});
  const double total_blocks = static_cast<double>(blocks);
  for (std::size_t m = 0; m < hetero.miners.size(); ++m) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const sim::NetworkResult& replica : hetero_set.replicas) {
      if (replica.status == robust::RunStatus::kConverged &&
          replica.blocks_mined > 0) {
        sum += static_cast<double>(replica.mined_per_miner[m]) / total_blocks;
        ++count;
      }
    }
    const double measured = count == 0 ? 0.0 : sum / count;
    const double p = hetero.miners[m].power;
    // Multinomial share stderr per replica, shrunk by the replica count.
    const double stderr_share =
        std::sqrt(p * (1.0 - p) / total_blocks /
                  std::max<std::size_t>(count, 1));
    const bool ok = within_tolerance(measured, p, 1.96 * stderr_share);
    all_ok = all_ok && ok;
    split.add_row({"mined share " + hetero.miners[m].name,
                   format_percent(p, 0), format_percent(measured),
                   verdict(ok)});
  }
  {
    const double predicted = total_blocks * interval;
    // Duration is a sum of `blocks` exponential inter-find times (plus a
    // propagation-delay-sized drain tail).
    const double stderr_duration =
        interval * std::sqrt(total_blocks) /
        std::sqrt(static_cast<double>(
            std::max<std::size_t>(hetero_set.duration.count, 1)));
    const bool ok =
        std::abs(hetero_set.duration.mean - predicted) <=
        3.0 * 1.96 * stderr_duration + 120.0;
    all_ok = all_ok && ok;
    split.add_row({"duration", format_fixed(predicted, 0) + " s",
                   format_fixed(hetero_set.duration.mean, 0) + " s ±" +
                       format_fixed(hetero_set.duration.ci95_half, 0),
                   verdict(ok)});
  }
  std::printf("%s\n", split.to_string().c_str());

  // ---- 3. Thousand-node scale probe --------------------------------------
  const auto nodes = static_cast<std::size_t>(args.get_long("nodes", 1200));
  const auto scale_blocks =
      static_cast<std::uint64_t>(args.get_long("scale-blocks", 500));
  const double scale_budget_seconds =
      static_cast<double>(args.get_long("scale-wall-clock-ms", 30'000)) * 1e-3;
  std::printf(
      "Scale probe: %zu-node random gossip topology, %llu blocks, "
      "%.1f s wall-clock budget.\n",
      nodes, static_cast<unsigned long long>(scale_blocks),
      scale_budget_seconds);

  sim::NetworkConfig scale;
  {
    const double powers[] = {0.3, 0.25, 0.2, 0.15, 0.1};
    for (int i = 0; i < 5; ++i) {
      sim::NetMiner miner;
      miner.name = "m" + std::to_string(i);
      miner.power = powers[i];
      miner.rule.eb = 32 * chain::kMegabyte;
      miner.rule.mg = 32 * chain::kMegabyte;
      miner.block_size = chain::kMegabyte;
      miner.bandwidth = 1e6;
      miner.latency = 0.1;
      scale.miners.push_back(std::move(miner));
    }
    sim::RandomTopologyConfig graph;
    graph.nodes = nodes;
    graph.extra_degree = 2;
    graph.seed = seed;
    scale.topology = sim::random_topology(graph);
    for (std::size_t m = 0; m < scale.miners.size(); ++m) {
      scale.miner_nodes.push_back(
          static_cast<std::uint32_t>(m * (nodes / scale.miners.size())));
    }
    scale.relay.compact = true;
  }
  robust::RunControl scale_control;
  scale_control.budget.wall_clock_seconds = scale_budget_seconds;

  const sim::NetworkSimulation simulation(scale);
  Rng rng(seed);
  const auto start = std::chrono::steady_clock::now();
  const sim::NetworkResult scale_result =
      simulation.run(scale_blocks, rng, scale_control);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const bool scale_ok =
      scale_result.status == robust::RunStatus::kConverged &&
      elapsed <= scale_budget_seconds;
  all_ok = all_ok && scale_ok;
  std::printf(
      "  status %s, %.2f s elapsed, %llu gossip copies relayed, orphan "
      "rate %s -> %s\n\n",
      robust::to_string(scale_result.status).data(), elapsed,
      static_cast<unsigned long long>(scale_result.relayed_messages),
      format_percent(scale_result.orphan_rate()).c_str(),
      verdict(scale_ok).c_str());

  std::printf(all_ok
                  ? "VALIDATION_OK: every measurement matches its "
                    "closed-form prediction.\n"
                  : "VALIDATION_FAILED: at least one cell deviates (see "
                    "tables above).\n");
  return all_ok ? 0 : 1;
}
