// Quantifies Analytical Results 4 and 5 beyond the single Figure 4
// instance:
//
//  * EB choosing game — verifies that all-same-EB profiles are Nash
//    equilibria across random power distributions and that best-response
//    dynamics from random splits always converge to consensus (Result 4 /
//    the Sect. 6.1 "follow the majority" observation).
//
//  * Block size increasing game — sweeps random mining-power distributions
//    and reports how often emergent consensus survives (no group squeezed
//    out), how many groups are squeezed out on average, and how much mining
//    power exits — the paper's Result 5 claim that consensus fails "for a
//    large space of mining power and block size preference distributions".
//
// Both sweeps fan out through games/game_batch.hpp under the shared
// --threads / --wall-clock-ms / --max-ticks flags: job lists (including
// per-trial RNG seeds) are generated serially, so the reported statistics
// are independent of the thread count.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "games/game_batch.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc;
using namespace bvc::games;

std::vector<double> random_powers(Rng& rng, std::size_t n, double cap) {
  for (;;) {
    std::vector<double> powers(n);
    double total = 0.0;
    for (double& p : powers) {
      p = 0.02 + rng.next_double();
      total += p;
    }
    bool ok = true;
    for (double& p : powers) {
      p /= total;
      ok = ok && p < cap;
    }
    if (ok) {
      return powers;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_games", "EB-choosing and block-size-increasing games at scale");
  bench::add_standard_bench_args(parser);
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  const mdp::BatchConfig batch = bench::batch_config_from_args(args);
  Rng rng(20171213);

  // ---- Result 4: EB choosing game ----------------------------------------
  std::printf("EB choosing game (Analytical Result 4)\n");
  std::size_t equilibria_checked = 0;
  const std::size_t kTrials = 500;
  std::vector<EbDynamicsJob> dynamics_jobs;
  dynamics_jobs.reserve(kTrials);
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const std::size_t n = 3 + rng.next_below(6);
    EbDynamicsJob job;
    job.power = random_powers(rng, n, 0.5);
    job.num_values = 2 + rng.next_below(3);
    const EbChoosingGame game(job.power, job.num_values);
    // All-same profiles are NEs (checked inline; the check is cheap).
    bool all_ne = true;
    for (std::size_t v = 0; v < game.num_values(); ++v) {
      all_ne = all_ne &&
               game.is_nash_equilibrium(std::vector<std::size_t>(n, v));
    }
    equilibria_checked += all_ne ? 1 : 0;
    // Dynamics converge to consensus (batched; private seed per trial).
    job.start.resize(n);
    for (auto& choice : job.start) {
      choice = rng.next_below(game.num_values());
    }
    job.seed = rng.next_u64();
    job.max_rounds = 500;
    dynamics_jobs.push_back(std::move(job));
  }
  std::size_t dynamics_converged = 0;
  std::size_t dynamics_skipped = 0;
  for (const auto& result : best_response_dynamics_batch(dynamics_jobs, batch)) {
    if (!result.converged()) {
      ++dynamics_skipped;
      continue;
    }
    bool consensus = true;
    for (const std::size_t choice : result.profile) {
      consensus = consensus && choice == result.profile.front();
    }
    dynamics_converged += consensus ? 1 : 0;
  }
  std::printf(
      "  %zu/%zu random games: every all-same-EB profile is a Nash "
      "equilibrium\n"
      "  %zu/%zu random starts: best-response dynamics reach EB consensus\n",
      equilibria_checked, kTrials, dynamics_converged, kTrials);
  if (dynamics_skipped > 0) {
    std::printf("  (%zu trials stopped early by the run budget)\n",
                dynamics_skipped);
  }
  std::printf("\n");

  // ---- Result 5: block size increasing game ------------------------------
  std::printf("Block size increasing game (Analytical Result 5)\n");
  TextTable table({"groups", "P[consensus holds]", "avg groups squeezed",
                   "avg power squeezed"});
  for (const std::size_t n : {2u, 3u, 4u, 5u, 6u, 8u}) {
    const std::size_t kGameTrials = 2000;
    std::vector<BlockSizeGameJob> game_jobs;
    game_jobs.reserve(kGameTrials);
    for (std::size_t trial = 0; trial < kGameTrials; ++trial) {
      const std::vector<double> powers = random_powers(rng, n, 1.0);
      BlockSizeGameJob job;
      double mpb = 1.0;
      for (const double p : powers) {
        job.groups.push_back(MinerGroup{p, mpb});
        mpb *= 2.0;
      }
      game_jobs.push_back(std::move(job));
    }
    std::size_t holds = 0;
    std::size_t played = 0;
    RunningStats squeezed_groups;
    RunningStats squeezed_power;
    const auto outcomes = play_block_size_batch(game_jobs, batch);
    for (std::size_t idx = 0; idx < outcomes.size(); ++idx) {
      const auto& outcome = outcomes[idx];
      if (!outcome.converged()) {
        continue;  // stopped by the run budget; excluded from the stats
      }
      ++played;
      const std::size_t t = outcome.surviving_from;
      holds += t == 0 ? 1 : 0;
      squeezed_groups.add(static_cast<double>(t));
      double power_out = 0.0;
      for (std::size_t i = 0; i < t; ++i) {
        power_out += game_jobs[idx].groups[i].power;
      }
      squeezed_power.add(power_out);
    }
    table.add_row({std::to_string(n),
                   format_percent(static_cast<double>(holds) /
                                  static_cast<double>(
                                      played > 0 ? played : std::size_t{1})),
                   format_fixed(squeezed_groups.mean(), 2),
                   format_percent(squeezed_power.mean())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: as preference diversity grows, emergent consensus survives\n"
      "in an ever-smaller fraction of power distributions; large-MPB\n"
      "coalitions squeeze out smaller miners (Result 5), and any change in\n"
      "capacities can re-trigger the game (Sect. 5.2.3).\n");
  return 0;
}
