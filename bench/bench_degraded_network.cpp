// Degraded-network study: how message-level faults translate into consensus
// damage. The paper's propagation substrate (Sect. 2.3 / 6.4) assumes every
// block announcement eventually arrives; real networks drop, delay and
// duplicate messages, nodes crash, and links partition. This bench sweeps a
// seeded robust::FaultPlan over the event-driven simulator and reports the
// orphan rate as a function of the message-drop rate, plus the effect of
// latency jitter, a node-crash window and a temporary partition.
//
// Every cell runs through sim::run_replicas: --replicas N averages N
// independent Monte-Carlo replicas per cell (mean ± 95% CI), --threads
// fans the replicas across the batch engine, and the sweep-session flags
// (--checkpoint/--resume/--shards, bench/sweep_session.hpp) make long
// campaigns crash-safe — every finished replica is journaled under its
// canonical replica key and a resumed or sharded run reproduces the
// uninterrupted stdout byte for byte.
//
// Flags: --blocks N (default 20000), --seed S (fault-plan seed),
// --replicas N (default 1), plus the shared budget/batch flags
// (--wall-clock-ms / --max-ticks / --threads) and the sweep-session family.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "robust/fault_plan.hpp"
#include "robust/run_control.hpp"
#include "sim/network_sim.hpp"
#include "sim/replicas.hpp"
#include "sim/topology.hpp"
#include "sweep_session.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc;
using chain::kMegabyte;

/// The study network: 5 equal miners on a direct mesh, or — with
/// `nodes > 0` — the same miners gossiping over an `nodes`-node random
/// topology (miners sit at nodes 0..4, every other node relays), so the
/// whole campaign machinery runs at thousand-node scale unchanged.
sim::NetworkConfig make_network(std::size_t nodes) {
  sim::NetworkConfig config;
  for (int i = 0; i < 5; ++i) {
    sim::NetMiner miner;
    miner.name = "m" + std::to_string(i);
    miner.power = 0.2;
    miner.rule.eb = 32 * kMegabyte;
    miner.rule.mg = 32 * kMegabyte;
    miner.block_size = 8 * kMegabyte;
    miner.bandwidth = 1e6;
    miner.latency = 2.0;
    config.miners.push_back(std::move(miner));
  }
  if (nodes > 0) {
    sim::RandomTopologyConfig graph;
    graph.nodes = nodes;
    config.topology = sim::random_topology(graph);
    config.relay_rule = config.miners.front().rule;
  }
  return config;
}

/// "12.34%" or "12.34% ±0.56" depending on whether the cell was averaged.
std::string format_rate(const sim::SummaryStat& stat) {
  std::string text = format_percent(stat.mean);
  if (stat.count > 1) {
    text += " ±" + format_fixed(stat.ci95_half * 100.0, 2);
  }
  return text;
}

/// Mean of a per-replica counter over the converged replicas this process
/// actually ran (excluded shard cells are stamped converged with default
/// values, so blocks_mined == 0 filters them out).
double mean_counter(const sim::ReplicaSetResult& set,
                    std::uint64_t sim::NetworkResult::*field) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const sim::NetworkResult& replica : set.replicas) {
    if (replica.status == robust::RunStatus::kConverged &&
        replica.blocks_mined > 0) {
      sum += static_cast<double>(replica.*field);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_degraded_network", "Consensus damage under message loss/delay/duplication");
  bench::add_standard_bench_args(parser);
  bench::add_sweep_args(parser);
  parser.add({
      {"blocks", util::ArgType::kLong, "N", "simulated blocks per cell", "20000"},
      {"seed", util::ArgType::kLong, "N", "simulation RNG seed", "20170406"},
      {"replicas", util::ArgType::kLong, "N",
       "independent Monte-Carlo replicas per cell (mean ± CI)", "1"},
      {"nodes", util::ArgType::kLong, "N",
       "gossip the campaign over an N-node random topology "
       "(0 = direct miner mesh)", "0"},
      {"timeline-out", util::ArgType::kString, "FILE",
       "after the campaign, run one fault-free simulation (seed 42, at "
       "most 500 blocks) with a sim-clock recorder and write a per-node "
       "Chrome trace to FILE", ""},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  bench::SweepSession sweep(argc, argv, obs, "bench_degraded_network");
  const long blocks_arg = args.get_long("blocks", 20'000);
  if (blocks_arg <= 0) {
    std::fprintf(stderr, "error: --blocks must be positive (got %ld)\n",
                 blocks_arg);
    return 1;
  }
  const long replicas_arg = args.get_long("replicas", 1);
  if (replicas_arg <= 0) {
    std::fprintf(stderr, "error: --replicas must be positive (got %ld)\n",
                 replicas_arg);
    return 1;
  }
  const long nodes_arg = args.get_long("nodes", 0);
  if (nodes_arg < 0) {
    std::fprintf(stderr, "error: --nodes must be non-negative (got %ld)\n",
                 nodes_arg);
    return 1;
  }
  const auto blocks = static_cast<std::uint64_t>(blocks_arg);
  const auto replicas = static_cast<std::size_t>(replicas_arg);
  const auto nodes = static_cast<std::size_t>(nodes_arg);
  const auto fault_seed =
      static_cast<std::uint64_t>(args.get_long("seed", 20170406));

  // One cell = one run_replicas call; journal + shard filter + shared
  // budget come from the sweep session so every path (direct, --resume,
  // --shards) enumerates identical replica keys.
  const auto run_cell = [&](const sim::NetworkConfig& config) {
    sim::ReplicaOptions options;
    options.replicas = replicas;
    options.blocks = blocks;
    options.seed = 42;  // identical per-replica mining streams in every cell
    options.batch = sweep.batch_config(args);
    options.journal = sweep.journal();
    options.include = sweep.include_next(replicas);
    return sim::run_replicas(config, options);
  };

  std::printf(
      "Degraded-network study — orphan rate vs message-drop rate\n"
      "(5 equal miners, 8 MB blocks, 1 MB/s, 2 s latency, 600 s interval,\n"
      "%llu blocks per cell, %zu replica%s; deterministic fault seed %llu)\n",
      static_cast<unsigned long long>(blocks), replicas,
      replicas == 1 ? "" : "s",
      static_cast<unsigned long long>(fault_seed));
  if (nodes > 0) {
    std::printf("(gossip relay over a %zu-node random topology)\n", nodes);
  }
  std::printf("\n");

  bench::CsvSink csv = bench::open_csv(
      args, {"drop_rate", "jitter_s", "replicas", "orphan_rate",
             "orphan_ci95", "dropped", "duplicated", "deferred",
             "wasted_finds"});

  const std::vector<double> drop_rates = {0.0, 0.01, 0.05, 0.10, 0.20, 0.40};
  TextTable table({"drop rate", "orphan rate", "orphan rate (+5s jitter)",
                   "messages dropped"});
  for (const double drop : drop_rates) {
    std::vector<std::string> row = {format_percent(drop, 0)};
    double dropped = 0.0;
    for (const double jitter : {0.0, 5.0}) {
      sim::NetworkConfig config = make_network(nodes);
      config.faults.seed = fault_seed;
      config.faults.link.drop_probability = drop;
      config.faults.link.jitter_seconds = jitter;
      const sim::ReplicaSetResult set = run_cell(config);
      bench::require_solved(set.report.status,
                            "degraded sim drop=" + format_percent(drop, 0),
                            /*fatal=*/false);
      row.push_back(format_rate(set.orphan_rate));
      dropped = mean_counter(set, &sim::NetworkResult::dropped_messages);
      csv.row({format_fixed(drop, 3), format_fixed(jitter, 1),
               std::to_string(replicas),
               format_fixed(set.orphan_rate.mean, 6),
               format_fixed(set.orphan_rate.ci95_half, 6),
               format_fixed(
                   mean_counter(set, &sim::NetworkResult::dropped_messages), 1),
               format_fixed(
                   mean_counter(set, &sim::NetworkResult::duplicated_messages),
                   1),
               format_fixed(
                   mean_counter(set, &sim::NetworkResult::deferred_deliveries),
                   1),
               format_fixed(mean_counter(set, &sim::NetworkResult::wasted_finds),
                            1)});
      std::printf(".");
      std::fflush(stdout);
    }
    row.push_back(format_fixed(dropped, replicas == 1 ? 0 : 1));
    table.add_row(std::move(row));
  }
  std::printf("\n%s\n", table.to_string().c_str());

  // ---- Crash window and partition, against the fault-free baseline -------
  std::printf("Structural faults (same mining streams, base seed 42):\n");
  TextTable structural({"scenario", "orphan rate", "deferred deliveries",
                        "wasted finds"});
  const auto run_plan = [&](const char* label, const robust::FaultPlan& plan) {
    sim::NetworkConfig config = make_network(nodes);
    config.faults = plan;
    const sim::ReplicaSetResult set = run_cell(config);
    structural.add_row(
        {label, format_rate(set.orphan_rate),
         format_fixed(mean_counter(set, &sim::NetworkResult::deferred_deliveries),
                      replicas == 1 ? 0 : 1),
         format_fixed(mean_counter(set, &sim::NetworkResult::wasted_finds),
                      replicas == 1 ? 0 : 1)});
    std::printf(".");
    std::fflush(stdout);
  };

  robust::FaultPlan none;
  run_plan("no faults (baseline)", none);

  robust::FaultPlan crash;
  crash.seed = fault_seed;
  // Miner 0 is down for ~1/6 of the run: its finds are wasted and blocks
  // addressed to it queue up until it restarts.
  crash.crashes.push_back({0, 0.0, 600.0 * static_cast<double>(blocks) / 6.0});
  run_plan("miner 0 down for 1/6 of the run", crash);

  robust::FaultPlan split;
  split.seed = fault_seed;
  // Miners {0, 1} (40% of the power) are cut off from the rest for ~100
  // block intervals mid-run: two chains grow independently, then merge.
  const double mid = 600.0 * static_cast<double>(blocks) / 2.0;
  split.partitions.push_back({{0, 1}, mid, mid + 600.0 * 100.0});
  run_plan("40/60 partition for ~100 intervals", split);

  std::printf("\n%s\n", structural.to_string().c_str());

  // Sim-clock timeline: one dedicated fault-free run with the recorder
  // attached (identical config and seed as the baseline cell, capped at
  // 500 blocks so the trace stays viewer-sized). Workers skip it — the
  // timeline is a whole-run artifact the parent owns.
  const std::string timeline_out = args.get_string("timeline-out", "");
  if (!timeline_out.empty() && !sweep.is_worker()) {
    sim::Timeline timeline;
    sim::NetworkSimulation simulation(make_network(nodes));
    Rng timeline_rng(42);
    (void)simulation.run(std::min<std::uint64_t>(blocks, 500), timeline_rng,
                         {}, &timeline);
    std::ofstream out(timeline_out, std::ios::trunc);
    if (out) {
      timeline.write_chrome_trace(out);
      obs.note_output("timeline", timeline_out);
    } else {
      std::fprintf(stderr, "error: cannot write --timeline-out %s\n",
                   timeline_out.c_str());
    }
  }

  std::printf(
      "Reading: losing block announcements is qualitatively worse than\n"
      "delaying them — a dropped message permanently forks the receiver\n"
      "until a later block reconverges it, so the orphan rate climbs\n"
      "steeply with the drop rate, while even 5 s of jitter only adds a\n"
      "propagation-delay-sized penalty. Partitions convert the minority\n"
      "side's entire output into orphans for the window's duration.\n");
  return 0;
}
