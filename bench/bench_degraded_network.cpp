// Degraded-network study: how message-level faults translate into consensus
// damage. The paper's propagation substrate (Sect. 2.3 / 6.4) assumes every
// block announcement eventually arrives; real networks drop, delay and
// duplicate messages, nodes crash, and links partition. This bench sweeps a
// seeded robust::FaultPlan over the continuous-time simulator and reports
// the orphan rate as a function of the message-drop rate, plus the effect
// of latency jitter, a node-crash window and a temporary partition.
//
// Flags: --blocks N (default 20000), --seed S (fault-plan seed), plus the
// shared budget flags --wall-clock-ms / --max-ticks (bench_common.hpp).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "robust/fault_plan.hpp"
#include "robust/run_control.hpp"
#include "sim/network_sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc;
using chain::kMegabyte;

sim::NetworkConfig make_network() {
  sim::NetworkConfig config;
  for (int i = 0; i < 5; ++i) {
    sim::NetMiner miner;
    miner.name = "m" + std::to_string(i);
    miner.power = 0.2;
    miner.rule.eb = 32 * kMegabyte;
    miner.rule.mg = 32 * kMegabyte;
    miner.block_size = 8 * kMegabyte;
    miner.bandwidth = 1e6;
    miner.latency = 2.0;
    config.miners.push_back(std::move(miner));
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_degraded_network", "Consensus damage under message loss/delay/duplication");
  bench::add_standard_bench_args(parser);
  parser.add({
      {"blocks", util::ArgType::kLong, "N", "simulated blocks per cell", "20000"},
      {"seed", util::ArgType::kLong, "N", "simulation RNG seed", "20170406"},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  const long blocks_arg = args.get_long("blocks", 20'000);
  if (blocks_arg <= 0) {
    std::fprintf(stderr, "error: --blocks must be positive (got %ld)\n",
                 blocks_arg);
    return 1;
  }
  const auto blocks = static_cast<std::uint64_t>(blocks_arg);
  const auto fault_seed =
      static_cast<std::uint64_t>(args.get_long("seed", 20170406));
  const robust::RunControl control = bench::run_control_from_args(args);

  std::printf(
      "Degraded-network study — orphan rate vs message-drop rate\n"
      "(5 equal miners, 8 MB blocks, 1 MB/s, 2 s latency, 600 s interval,\n"
      "%llu blocks per cell; deterministic fault seed %llu)\n\n",
      static_cast<unsigned long long>(blocks),
      static_cast<unsigned long long>(fault_seed));

  bench::CsvSink csv = bench::open_csv(
      args, {"drop_rate", "jitter_s", "orphan_rate", "dropped", "duplicated",
             "deferred", "wasted_finds"});

  const std::vector<double> drop_rates = {0.0, 0.01, 0.05, 0.10, 0.20, 0.40};
  TextTable table({"drop rate", "orphan rate", "orphan rate (+5s jitter)",
                   "messages dropped"});
  for (const double drop : drop_rates) {
    std::vector<std::string> row = {format_percent(drop, 0)};
    std::uint64_t dropped = 0;
    for (const double jitter : {0.0, 5.0}) {
      sim::NetworkConfig config = make_network();
      config.faults.seed = fault_seed;
      config.faults.link.drop_probability = drop;
      config.faults.link.jitter_seconds = jitter;
      sim::NetworkSimulation simulation(config);
      Rng rng(42);  // identical mining stream in every cell
      const sim::NetworkResult result = simulation.run(blocks, rng, control);
      bench::require_solved(result.status,
                            "degraded sim drop=" + format_percent(drop, 0),
                            /*fatal=*/false);
      row.push_back(format_percent(result.orphan_rate()));
      dropped = result.dropped_messages;
      csv.row({format_fixed(drop, 3), format_fixed(jitter, 1),
               format_fixed(result.orphan_rate(), 6),
               std::to_string(result.dropped_messages),
               std::to_string(result.duplicated_messages),
               std::to_string(result.deferred_deliveries),
               std::to_string(result.wasted_finds)});
      std::printf(".");
      std::fflush(stdout);
    }
    row.push_back(std::to_string(dropped));
    table.add_row(std::move(row));
  }
  std::printf("\n%s\n", table.to_string().c_str());

  // ---- Crash window and partition, against the fault-free baseline -------
  std::printf("Structural faults (same mining stream, seed 42):\n");
  TextTable structural({"scenario", "orphan rate", "deferred deliveries",
                        "wasted finds"});
  const auto run_plan = [&](const char* label, const robust::FaultPlan& plan) {
    sim::NetworkConfig config = make_network();
    config.faults = plan;
    sim::NetworkSimulation simulation(config);
    Rng rng(42);
    const sim::NetworkResult result = simulation.run(blocks, rng, control);
    structural.add_row({label, format_percent(result.orphan_rate()),
                        std::to_string(result.deferred_deliveries),
                        std::to_string(result.wasted_finds)});
    std::printf(".");
    std::fflush(stdout);
  };

  robust::FaultPlan none;
  run_plan("no faults (baseline)", none);

  robust::FaultPlan crash;
  crash.seed = fault_seed;
  // Miner 0 is down for ~1/6 of the run: its finds are wasted and blocks
  // addressed to it queue up until it restarts.
  crash.crashes.push_back({0, 0.0, 600.0 * static_cast<double>(blocks) / 6.0});
  run_plan("miner 0 down for 1/6 of the run", crash);

  robust::FaultPlan split;
  split.seed = fault_seed;
  // Miners {0, 1} (40% of the power) are cut off from the rest for ~100
  // block intervals mid-run: two chains grow independently, then merge.
  const double mid = 600.0 * static_cast<double>(blocks) / 2.0;
  split.partitions.push_back({{0, 1}, mid, mid + 600.0 * 100.0});
  run_plan("40/60 partition for ~100 intervals", split);

  std::printf("\n%s\n", structural.to_string().c_str());
  std::printf(
      "Reading: losing block announcements is qualitatively worse than\n"
      "delaying them — a dropped message permanently forks the receiver\n"
      "until a later block reconverges it, so the orphan rate climbs\n"
      "steeply with the drop rate, while even 5 s of jitter only adds a\n"
      "propagation-delay-sized penalty. Partitions convert the minority\n"
      "side's entire output into orphans for the window's duration.\n");
  return 0;
}
