// Crash-safe sweep front door for the bench binaries: one SweepSession at
// the top of main turns the shared flags
//
//   --checkpoint FILE      journal completed cells to FILE (JSONL)
//   --resume               skip cells already in FILE
//   --shards N             split the sweep over N supervised worker
//                          processes of this same binary (requires
//                          --checkpoint; implies a final in-process resume
//                          pass that renders the table)
//   --shard i/N            (internal) run as shard worker i of N
//   --worker-retries K     restarts per crashed/stalled worker (default 2)
//   --stall-timeout-ms T   kill a worker whose journal is frozen for T ms
//                          (default 0 = disabled)
//
// into the plumbing of src/robust/: a CheckpointJournal every batch records
// into, shard include-predicates over a global cell cursor, and — in
// supervisor mode — the full fork/monitor/restart/merge dance before the
// bench's own sweep code runs.
//
// Supervisor mode works because the parent is also a renderer: after the
// workers finish (or exhaust their retry budgets), the parent merges the
// per-shard journals into the main checkpoint file, loads it, and falls
// through to the normal bench code with resume enabled. Every journaled
// cell replays in microseconds; cells a permanently failed shard never
// reached are computed in-process at reduced parallelism (graceful
// degradation). stdout of an N-shard run is therefore byte-identical to an
// uninterrupted single-process run. docs/ROBUSTNESS.md §6 walks through the
// recovery scenarios.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "robust/checkpoint.hpp"
#include "robust/supervisor.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace bvc::bench {

/// ArgParser declarations for the SweepSession flag family above.
inline void add_sweep_args(util::ArgParser& parser) {
  parser.add({
      {"checkpoint", util::ArgType::kString, "FILE",
       "journal completed cells to FILE (JSONL)", ""},
      {"resume", util::ArgType::kFlag, "",
       "skip cells already journaled in the checkpoint file", ""},
      {"shards", util::ArgType::kLong, "N",
       "split the sweep over N supervised worker processes", "0"},
      {"shard", util::ArgType::kString, "i/N",
       "(internal) run as shard worker i of N", ""},
      {"worker-retries", util::ArgType::kLong, "K",
       "restarts per crashed/stalled worker", "2"},
      {"stall-timeout-ms", util::ArgType::kLong, "T",
       "kill a worker whose journal is frozen for T ms", "0 = disabled"},
  });
}

/// Per-shard journal path: `<checkpoint>.shard-<i>`.
inline std::string shard_journal_path(const std::string& checkpoint_path,
                                      int shard) {
  return checkpoint_path + ".shard-" + std::to_string(shard);
}

class SweepSession {
 public:
  /// Must be constructed before any sweep runs (in supervisor mode the
  /// constructor blocks until every worker finished) and after the
  /// ObsSession, so ~SweepSession's annotations land in the obs manifest.
  SweepSession(int argc, char** argv, ObsSession& obs, const char* bench_name)
      : obs_(obs), bench_name_(bench_name) {
    const CliArgs args(argc, argv);
    checkpoint_path_ = args.get_string("checkpoint", "");
    resume_ = args.get_bool("resume", false);
    const long shards = args.get_long("shards", 0);

    const std::string shard_text = args.get_string("shard", "");
    if (!shard_text.empty()) {
      const auto spec = robust::ShardSpec::parse(shard_text);
      if (!spec) {
        std::fprintf(stderr, "[%s] bad --shard value '%s' (expected i/N)\n",
                     bench_name_, shard_text.c_str());
        std::exit(2);
      }
      shard_ = *spec;
      is_worker_ = true;
    }

    if (checkpoint_path_.empty()) {
      if (shards > 1 || is_worker_) {
        std::fprintf(stderr, "[%s] --shards/--shard require --checkpoint\n",
                     bench_name_);
        std::exit(2);
      }
      return;  // layer disabled: journal() is null, include_next() is null
    }

    robust::JournalOptions options;
    options.crash = robust::crash_plan_from_env();
    options.shard_index = is_worker_ ? shard_.index : -1;

    if (!is_worker_ && shards > 1) {
      run_supervisor(argc, argv, static_cast<int>(shards), args);
      // The parent now re-renders from the merged journal; never arm crash
      // injection for this pass — the injection targeted the workers.
      options.crash = robust::CrashPlan{};
      resume_ = true;
    }

    journal_ = std::make_unique<robust::CheckpointJournal>(checkpoint_path_,
                                                           options);
    if (resume_) {
      loaded_ = journal_->load();
      std::fprintf(stderr, "[%s] checkpoint: %zu cells on file in %s%s\n",
                   bench_name_, loaded_, checkpoint_path_.c_str(),
                   journal_->skipped_lines() > 0 ? " (malformed lines skipped)"
                                                 : "");
    }
  }

  SweepSession(const SweepSession&) = delete;
  SweepSession& operator=(const SweepSession&) = delete;

  ~SweepSession() {
    if (journal_ == nullptr) {
      return;
    }
    journal_->flush();
    obs_.annotate("checkpoint", checkpoint_path_);
    obs_.annotate("cells_on_file", std::to_string(loaded_));
    obs_.annotate("cells_computed", std::to_string(journal_->appended()));
    if (supervised_) {
      obs_.annotate("shards", std::to_string(report_.shards.size()));
      obs_.annotate("shard_restarts", std::to_string(report_.total_restarts));
      write_merged_manifest();
    }
    std::fprintf(stderr,
                 "[%s] checkpoint: %zu cells resumed, %zu computed -> %s\n",
                 bench_name_, loaded_, journal_->appended(),
                 checkpoint_path_.c_str());
  }

  /// The journal every domain checkpoint struct should point at; null when
  /// --checkpoint was not passed (the domain structs treat that as
  /// disabled).
  [[nodiscard]] robust::CheckpointJournal* journal() const noexcept {
    return journal_.get();
  }

  /// Shard include-predicate covering the NEXT `cells` cells of the sweep.
  /// Benches run several batches per invocation (one per table block); the
  /// round-robin partition must span them all, so every batch claims its
  /// cell range from this cursor — in the same order in every process.
  /// Returns null (include everything) outside worker mode, but always
  /// advances the cursor so worker and parent enumerate identically.
  [[nodiscard]] std::function<bool(std::size_t)> include_next(
      std::size_t cells) {
    const std::size_t base = cursor_;
    cursor_ += cells;
    if (!is_worker_) {
      return nullptr;
    }
    const robust::ShardSpec shard = shard_;
    return [shard, base](std::size_t i) { return shard.owns(base + i); };
  }

  /// batch_config_from_args, with the thread count halved when a shard
  /// exhausted its retry budget and its cells are being recomputed
  /// in-process: the shard may have died of resource exhaustion, so the
  /// recovery pass deliberately leaves headroom.
  [[nodiscard]] mdp::BatchConfig batch_config(const CliArgs& args) const {
    mdp::BatchConfig config = batch_config_from_args(args);
    if (degraded_) {
      const int requested = config.threads == 0
                                ? util::ThreadPool::hardware_threads()
                                : config.threads;
      config.threads = std::max(1, requested / 2);
      std::fprintf(stderr,
                   "[%s] degraded mode: a shard gave up; recomputing its "
                   "cells in-process with %d threads\n",
                   bench_name_, config.threads);
    }
    return config;
  }

  [[nodiscard]] bool is_worker() const noexcept { return is_worker_; }
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }
  [[nodiscard]] const robust::SupervisorReport& supervisor_report()
      const noexcept {
    return report_;
  }

 private:
  /// Flags that must NOT propagate to shard workers: the sharding flags
  /// themselves, the artifact sinks (the parent's render pass owns those —
  /// a worker writing the same CSV would clobber it), --threads (the
  /// parent divides it across workers), and the telemetry flags (the
  /// parent re-issues per-worker --telemetry-dir/--telemetry-label so each
  /// worker flushes into its own lane of one shared directory).
  [[nodiscard]] static bool strip_for_worker(std::string_view name) {
    return name == "shards" || name == "shard" || name == "checkpoint" ||
           name == "resume" || name == "worker-retries" ||
           name == "stall-timeout-ms" || name == "threads" || name == "csv" ||
           name == "manifest-out" || name == "metrics-out" ||
           name == "metrics-prom-out" || name == "trace-out" ||
           name == "trace-jsonl" || name == "log-out" ||
           name == "telemetry-dir" || name == "telemetry-label";
  }

  void run_supervisor(int argc, char** argv, int shards, const CliArgs& args) {
    // Worker thread budget: divide the requested parallelism (default: all
    // hardware threads) across the workers instead of oversubscribing N-fold.
    const long requested = args.get_long("threads", 0);
    const int total = requested > 0 ? static_cast<int>(requested)
                                    : util::ThreadPool::hardware_threads();
    const int per_worker = std::max(1, total / shards);

    // Keep every flag of this invocation except the ones the workers must
    // not inherit (both `--name=value` and `--name value` forms).
    std::vector<std::string> passthrough;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.size() < 3 || arg.substr(0, 2) != "--") {
        passthrough.emplace_back(arg);
        continue;
      }
      const std::string_view body = arg.substr(2);
      const auto eq = body.find('=');
      const std::string_view name =
          eq == std::string_view::npos ? body : body.substr(0, eq);
      const bool split_value = eq == std::string_view::npos && i + 1 < argc &&
                               std::string_view(argv[i + 1]).substr(0, 2) !=
                                   "--";
      if (strip_for_worker(name)) {
        if (split_value) {
          ++i;
        }
        continue;
      }
      passthrough.emplace_back(arg);
      if (split_value) {
        passthrough.emplace_back(argv[i + 1]);
        ++i;
      }
    }

    // Telemetry plane: whenever the run wants any aggregate artifact (or
    // an explicit --telemetry-dir), the workers flush periodic metrics/
    // trace deltas into one shared directory; the parent merges them into
    // ONE snapshot and ONE multi-pid Chrome trace, and the supervisor
    // reads the same directory for live progress reports.
    const bool wants_telemetry = !args.get_string("trace-out", "").empty() ||
                                 !args.get_string("metrics-out", "").empty() ||
                                 !args.get_string("metrics-prom-out", "")
                                      .empty() ||
                                 !args.get_string("manifest-out", "").empty() ||
                                 !args.get_string("telemetry-dir", "").empty();
    std::string telemetry_dir = args.get_string("telemetry-dir", "");
    if (wants_telemetry) {
      if (telemetry_dir.empty()) {
        telemetry_dir = checkpoint_path_ + ".telemetry";
      }
      // Fresh directory per supervised run: stale flushes from a previous
      // run must not leak into this run's merge.
      std::error_code ec;
      std::filesystem::remove_all(telemetry_dir, ec);
      std::filesystem::create_directories(telemetry_dir, ec);
      if (ec) {
        obs::log_warn("supervisor", "cannot create telemetry dir; live "
                      "aggregation disabled for this run",
                      {{"dir", telemetry_dir}, {"error", ec.message()}});
        telemetry_dir.clear();
      }
    }

    const std::string exe = robust::self_executable_path(argv[0]);
    std::vector<robust::WorkerSpawn> workers;
    workers.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      robust::WorkerSpawn worker;
      worker.journal_path = shard_journal_path(checkpoint_path_, s);
      worker.log_path = worker.journal_path + ".log";
      worker.argv.push_back(exe);
      worker.argv.insert(worker.argv.end(), passthrough.begin(),
                         passthrough.end());
      worker.argv.push_back("--shard=" + std::to_string(s) + "/" +
                            std::to_string(shards));
      worker.argv.push_back("--checkpoint=" + worker.journal_path);
      // Always resume: a respawned worker must skip what it already solved,
      // and on first launch an empty/missing journal resumes nothing.
      worker.argv.push_back("--resume");
      worker.argv.push_back("--threads=" + std::to_string(per_worker));
      // Per-worker obs manifest (provenance of each shard incarnation);
      // the roll-up in write_merged_manifest links back to these.
      worker.argv.push_back("--manifest-out=" + worker.journal_path +
                            ".manifest.json");
      if (!telemetry_dir.empty()) {
        worker.argv.push_back("--telemetry-dir=" + telemetry_dir);
        worker.argv.push_back("--telemetry-label=shard-" + std::to_string(s));
      }
      workers.push_back(std::move(worker));
    }

    robust::SupervisorOptions options;
    options.backoff.max_retries =
        static_cast<int>(args.get_long("worker-retries", 2));
    options.stall_timeout_seconds =
        static_cast<double>(args.get_long("stall-timeout-ms", 0)) * 1e-3;
    if (!telemetry_dir.empty()) {
      options.telemetry_dir = telemetry_dir;
      options.progress_interval_seconds = 2.0;
    }
    std::fprintf(stderr, "[%s] supervising %d shard workers (journals at "
                 "%s.shard-*)\n",
                 bench_name_, shards, checkpoint_path_.c_str());
    report_ = robust::supervise_shards(workers, options);
    supervised_ = true;
    for (const robust::ShardOutcome& shard : report_.shards) {
      if (shard.gave_up) {
        degraded_ = true;
      }
    }

    std::vector<std::string> shard_paths;
    shard_paths.reserve(workers.size());
    for (const robust::WorkerSpawn& worker : workers) {
      shard_paths.push_back(worker.journal_path);
    }
    merge_ = robust::merge_journals(shard_paths, checkpoint_path_);
    std::fprintf(stderr,
                 "[%s] merged %zu shard journals: %zu cells (%zu duplicate, "
                 "%zu malformed), %d restarts%s\n",
                 bench_name_, merge_.inputs, merge_.records, merge_.duplicates,
                 merge_.malformed_lines, report_.total_restarts,
                 degraded_ ? " — DEGRADED (a shard gave up)" : "");
    if (!telemetry_dir.empty()) {
      obs_.merge_telemetry_from(telemetry_dir);
    }
  }

  /// `<checkpoint>.merged.json`: the supervised run's provenance — per-shard
  /// outcomes, merge tallies, and the resumed-vs-computed split of the final
  /// render pass. Complements the per-worker obs manifests (workers keep
  /// their own --manifest-out-free scratch runs; this file is the roll-up).
  void write_merged_manifest() const {
    const std::string path = checkpoint_path_ + ".merged.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "[%s] cannot write merged manifest: %s\n",
                   bench_name_, path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << bench_name_ << "\",\n";
    out << "  \"checkpoint\": \"" << checkpoint_path_ << "\",\n";
    out << "  \"shards\": " << report_.shards.size() << ",\n";
    out << "  \"total_restarts\": " << report_.total_restarts << ",\n";
    out << "  \"cancelled\": " << (report_.cancelled ? "true" : "false")
        << ",\n";
    out << "  \"degraded\": " << (degraded_ ? "true" : "false") << ",\n";
    out << "  \"merge\": {\"inputs\": " << merge_.inputs
        << ", \"records\": " << merge_.records
        << ", \"duplicates\": " << merge_.duplicates
        << ", \"malformed_lines\": " << merge_.malformed_lines << "},\n";
    out << "  \"render\": {\"cells_resumed\": " << loaded_
        << ", \"cells_computed\": " << journal_->appended() << "},\n";
    out << "  \"shard_outcomes\": [\n";
    for (std::size_t i = 0; i < report_.shards.size(); ++i) {
      const robust::ShardOutcome& shard = report_.shards[i];
      const std::string journal =
          shard_journal_path(checkpoint_path_, shard.index);
      out << "    {\"index\": " << shard.index << ", \"completed\": "
          << (shard.completed ? "true" : "false")
          << ", \"gave_up\": " << (shard.gave_up ? "true" : "false")
          << ", \"restarts\": " << shard.restarts
          << ", \"stall_kills\": " << shard.stall_kills
          << ", \"last_exit_code\": " << shard.last_exit_code
          << ", \"last_signal\": " << shard.last_signal
          << ", \"journal\": \"" << journal << "\""
          << ", \"manifest\": \"" << journal << ".manifest.json\"}"
          << (i + 1 < report_.shards.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "[%s] wrote merged manifest: %s\n", bench_name_,
                 path.c_str());
  }

  ObsSession& obs_;
  const char* bench_name_;
  std::string checkpoint_path_;
  bool resume_ = false;
  bool is_worker_ = false;
  bool supervised_ = false;
  bool degraded_ = false;
  robust::ShardSpec shard_;
  std::unique_ptr<robust::CheckpointJournal> journal_;
  std::size_t loaded_ = 0;
  std::size_t cursor_ = 0;
  robust::SupervisorReport report_;
  robust::MergeReport merge_;
};

}  // namespace bvc::bench
