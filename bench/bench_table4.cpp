// Regenerates Table 4: the number of Bob's and Carol's blocks orphaned per
// Alice block (utility u3, Eq. 3) for a non-profit-driven attacker with the
// Wait action enabled, alpha = 1%.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "sweep_session.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace bvc;

struct Row {
  int b;
  int g;
  double paper_s1;
  double paper_s2;
};

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_table4", "Reproduce Table 4: orphaned blocks per Alice block (u3)");
  bench::add_standard_bench_args(parser);
  bench::add_sweep_args(parser);
  parser.add({
      {"quick", util::ArgType::kFlag, "", "solve the reduced grid only", ""},
      {"alpha", util::ArgType::kDouble, "X", "attacker hash-rate share", "0.01"},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  bench::SweepSession sweep(argc, argv, obs, "bench_table4");
  const bool quick = args.get_bool("quick", false);
  const double alpha = args.get_double("alpha", 0.01);
  const mdp::BatchConfig batch = sweep.batch_config(args);
  bench::CsvSink csv = bench::open_csv(
      args, {"setting", "beta", "gamma", "alpha", "u3", "paper"});

  const std::vector<Row> rows = {
      {4, 1, 0.61, 0.62}, {3, 1, 0.83, 0.85}, {2, 1, 1.22, 1.26},
      {3, 2, 1.50, 1.55}, {1, 1, 1.76, 1.76}, {2, 3, 1.77, 1.77},
      {1, 2, 1.62, 1.62}, {1, 3, 1.30, 1.30}, {1, 4, 1.06, 1.06},
  };

  std::printf(
      "Table 4 — compliant miners' blocks orphaned per Alice block\n"
      "(non-profit-driven, u3, Wait enabled), alpha = %s\n"
      "paper values in parentheses; Bitcoin comparison: max u3 <= 1\n\n",
      format_percent(alpha, 0).c_str());

  // Enumerate every (row, setting) cell, batch-solve, print in row order
  // (batch results are input-ordered: setting 1 then optionally setting 2
  // for each paper row).
  std::vector<bu::AnalysisJob> jobs;
  for (const Row& row : rows) {
    const double rest = 1.0 - alpha;
    const double beta = rest * row.b / (row.b + row.g);
    const double gamma = rest - beta;
    bu::AttackParams params;
    params.alpha = alpha;
    params.beta = beta;
    params.gamma = gamma;
    params.setting = bu::Setting::kNoStickyGate;
    jobs.push_back({params, bu::Utility::kOrphaning});
    if (!quick) {
      params.setting = bu::Setting::kStickyGate;
      jobs.push_back({params, bu::Utility::kOrphaning});
    }
  }
  bu::AnalysisCheckpoint ckpt;
  ckpt.journal = sweep.journal();
  ckpt.include = sweep.include_next(jobs.size());
  const std::vector<bu::AnalysisResult> results =
      bu::analyze_batch(jobs, {}, batch, ckpt);

  TextTable table({"beta:gamma", "Setting 1", "Setting 2"});
  std::size_t next_job = 0;
  for (const Row& row : rows) {
    const double rest = 1.0 - alpha;
    const double beta = rest * row.b / (row.b + row.g);
    const double gamma = rest - beta;
    const bu::AnalysisResult& analysis_s1 = results[next_job++];
    bench::require_solved(
        analysis_s1, "u3 setting 1 " +
                         bench::describe_cell({{"alpha", alpha},
                                               {"beta", beta},
                                               {"gamma", gamma}}));
    const double s1 = analysis_s1.utility_value;
    csv.row({"1", format_fixed(beta, 4), format_fixed(gamma, 4),
             format_fixed(alpha, 4), format_fixed(s1, 6),
             format_fixed(row.paper_s1, 2)});
    std::printf(".");
    std::fflush(stdout);
    std::string s2_cell = "(skipped: --quick)";
    if (!quick) {
      const bu::AnalysisResult& analysis_s2 = results[next_job++];
      bench::require_solved(
          analysis_s2, "u3 setting 2 " +
                           bench::describe_cell({{"alpha", alpha},
                                                 {"beta", beta},
                                                 {"gamma", gamma}}));
      const double s2 = analysis_s2.utility_value;
      s2_cell = format_fixed(s2, 3) + " (" + format_fixed(row.paper_s2, 2) +
                ")";
      csv.row({"2", format_fixed(beta, 4), format_fixed(gamma, 4),
               format_fixed(alpha, 4), format_fixed(s2, 6),
               format_fixed(row.paper_s2, 2)});
      std::printf(".");
      std::fflush(stdout);
    }
    table.add_row({std::to_string(row.b) + ":" + std::to_string(row.g),
                   format_fixed(s1, 3) + " (" + format_fixed(row.paper_s1, 2) +
                       ")",
                   std::move(s2_cell)});
  }
  std::printf("\n%s\n", table.to_string().c_str());

  std::printf(
      "Reading (Analytical Result 3): with any mining power share, a\n"
      "non-profit-driven attacker orphans up to ~1.77 compliant blocks per\n"
      "attacker block by splitting Bob's and Carol's power; in Bitcoin the\n"
      "same utility never exceeds 1 (51%% attack), and selfish mining\n"
      "reaches 1 only with a strict propagation advantage.\n");
  bench::print_cache_stats("bench_table4");
  return 0;
}
