// Ablation (Sect. 6.2): "adjusting the parameters only trades one risk for
// another — a large AD allows an attacker to keep the blockchain forked for
// longer periods of time, whereas a small AD lowers the attacker's effort
// to trigger all sticky gates".
//
// We sweep the acceptance depth AD and report, for a fixed power split:
//   * u1 — the compliant attacker's unfair relative revenue,
//   * u3 — compliant blocks orphaned per attacker block (fork damage),
//   * the gate-trigger rate — how often Chain 2 takeovers occur per block
//     under the u1-optimal policy (proxy for "effort to trigger gates"),
//     measured on chain semantics.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "sim/attack_scenario.hpp"
#include "sweep_session.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {
using namespace bvc;
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_ablation_ad", "Ablation: attack duration AD vs utility u1 (Sect. 6.2)");
  bench::add_standard_bench_args(parser);
  bench::add_sweep_args(parser);
  parser.add({
      {"alpha", util::ArgType::kDouble, "X", "attacker hash-rate share", "0.25"},
      {"beta", util::ArgType::kDouble, "X", "Bob group hash-rate share", "0.30"},
      {"gamma", util::ArgType::kDouble, "X", "Carol group hash-rate share", "0.45"},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  bench::SweepSession sweep(argc, argv, obs, "bench_ablation_ad");
  const double alpha = args.get_double("alpha", 0.25);
  const double beta = args.get_double("beta", 0.30);
  const double gamma = args.get_double("gamma", 0.45);
  const mdp::BatchConfig batch = sweep.batch_config(args);

  std::printf(
      "Ablation — acceptance depth AD (alpha=%.2f, beta=%.2f, gamma=%.2f,\n"
      "setting 1)\n\n",
      alpha, beta, gamma);

  TextTable table({"AD", "u1 (rel. revenue)", "u3 (orphaned/blk)",
                   "Chain-2 takeovers per 1k blocks", "max fork len"});

  // Two jobs per AD value (u1 then u3), batch-solved up front; the print
  // loop rebuilds the (cheap) u1 model for the scenario simulator.
  const std::vector<unsigned> ads = {2u, 3u, 4u, 6u, 8u, 10u, 12u};
  std::vector<bu::AnalysisJob> jobs;
  for (const unsigned ad : ads) {
    bu::AttackParams params;
    params.alpha = alpha;
    params.beta = beta;
    params.gamma = gamma;
    params.ad = ad;
    params.setting = bu::Setting::kNoStickyGate;
    jobs.push_back({params, bu::Utility::kRelativeRevenue});

    bu::AttackParams orphan_params = params;
    orphan_params.alpha = 0.01;
    const double scale = (1.0 - 0.01) / (beta + gamma);
    orphan_params.beta = beta * scale;
    orphan_params.gamma = gamma * scale;
    jobs.push_back({orphan_params, bu::Utility::kOrphaning});
  }
  bu::AnalysisCheckpoint ckpt;
  ckpt.journal = sweep.journal();
  ckpt.include = sweep.include_next(jobs.size());
  // The print loop replays each u1-optimal policy through the scenario
  // simulator, so resumed cells must carry their policies.
  ckpt.persist_policy = true;
  const std::vector<bu::AnalysisResult> results =
      bu::analyze_batch(jobs, {}, batch, ckpt);

  for (std::size_t i = 0; i < ads.size(); ++i) {
    const unsigned ad = ads[i];
    const bu::AnalysisResult& u1 = results[2 * i];
    bench::require_solved(u1, "u1 AD=" + std::to_string(ad),
                          /*fatal=*/false);

    const bu::AnalysisResult& u3_result = results[2 * i + 1];
    bench::require_solved(u3_result, "u3 AD=" + std::to_string(ad),
                          /*fatal=*/false);
    const double u3 = u3_result.utility_value;

    const bu::AttackModel u1_model =
        bu::build_attack_model(jobs[2 * i].params,
                               bu::Utility::kRelativeRevenue);
    // A shard worker's excluded cells (and budget-skipped cells) carry no
    // policy; its rendering is scratch, so print a placeholder instead of
    // feeding the simulator a policy that does not cover the state space.
    std::string takeover_cell = "-";
    if (u1.policy.action.size() == u1_model.space.size()) {
      sim::ScenarioOptions options;
      sim::AttackScenarioSim simulator(u1_model, options);
      Rng rng(ad);
      const sim::ScenarioResult sim_result =
          simulator.run(u1.policy, 300'000, rng);
      takeover_cell =
          format_fixed(1000.0 * static_cast<double>(sim_result.chain2_wins) /
                           static_cast<double>(sim_result.steps),
                       2);
    }

    table.add_row(
        {std::to_string(ad), format_percent(u1.utility_value),
         format_fixed(u3, 3), std::move(takeover_cell), std::to_string(ad)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "Reading: u3 grows with AD (longer forks, more damage) while the\n"
      "takeover rate falls — a small AD instead lets an attacker open\n"
      "sticky gates cheaply and embed giant blocks. No AD value removes\n"
      "the attack: parameters only trade risks (Sect. 6.2).\n\n");

  // ---- heterogeneous ADs, as actually deployed (Sect. 2.2) ---------------
  std::printf(
      "Heterogeneous acceptance depths (April 2017: most mining power\n"
      "signaled AD=6, public nodes AD=12, BitClub AD=20 — Sect. 2.2).\n"
      "Setting 2 with a 24-block gate keeps the sweep tractable;\n"
      "alpha=%.2f, beta=%.2f, gamma=%.2f:\n",
      alpha, beta, gamma);
  TextTable hetero({"AD Bob / AD Carol", "u1 (rel. revenue)",
                    "u3 (orphaned/blk, a=1%)"});
  const unsigned pairs[][2] = {{6, 6}, {6, 12}, {12, 6}};
  std::vector<bu::AnalysisJob> hetero_jobs;
  for (const auto& pair : pairs) {
    bu::AttackParams params;
    params.alpha = alpha;
    params.beta = beta;
    params.gamma = gamma;
    params.ad = pair[0];
    params.ad_carol = pair[1];
    params.gate_period = 24;
    params.setting = bu::Setting::kStickyGate;
    hetero_jobs.push_back({params, bu::Utility::kRelativeRevenue});
    bu::AttackParams orphan = params;
    orphan.alpha = 0.01;
    const double scale = 0.99 / (beta + gamma);
    orphan.beta = beta * scale;
    orphan.gamma = gamma * scale;
    hetero_jobs.push_back({orphan, bu::Utility::kOrphaning});
  }
  bu::AnalysisCheckpoint hetero_ckpt;
  hetero_ckpt.journal = sweep.journal();
  hetero_ckpt.include = sweep.include_next(hetero_jobs.size());
  const std::vector<bu::AnalysisResult> hetero_results =
      bu::analyze_batch(hetero_jobs, {}, batch, hetero_ckpt);

  for (std::size_t i = 0; i < std::size(pairs); ++i) {
    const auto& pair = pairs[i];
    const std::string label =
        std::to_string(pair[0]) + "/" + std::to_string(pair[1]);
    const bu::AnalysisResult& u1_result = hetero_results[2 * i];
    bench::require_solved(u1_result, "hetero u1 AD=" + label,
                          /*fatal=*/false);
    const double u1 = u1_result.utility_value;
    const bu::AnalysisResult& u3_result = hetero_results[2 * i + 1];
    bench::require_solved(u3_result, "hetero u3 AD=" + label,
                          /*fatal=*/false);
    const double u3 = u3_result.utility_value;
    hetero.add_row({std::to_string(pair[0]) + " / " +
                        std::to_string(pair[1]),
                    format_percent(u1), format_fixed(u3, 3)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n%s\n", hetero.to_string().c_str());
  std::printf(
      "Reading: a deeper Carol-side AD (public nodes at 12, BitClub at 20)\n"
      "lengthens phase-2 forks and increases the damage — parameter\n"
      "diversity itself is an attack surface (Sect. 2.3, van Wirdum).\n");
  return 0;
}
