// Ablation — double-spending parameters (Sect. 4.3): the paper fixes four
// confirmations and R_DS = 10 block rewards "to facilitate the comparison";
// merchants might wait for more confirmations when forks happen constantly.
// We sweep both knobs for BU (setting 1) and the Bitcoin SM+DS baseline.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "btc/selfish_mining.hpp"
#include "bu/attack_analysis.hpp"
#include "sweep_session.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
using namespace bvc;
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_ablation_ds", "Ablation: double-spend confirmations and reward (Sect. 4.3)");
  bench::add_standard_bench_args(parser);
  bench::add_sweep_args(parser);
  parser.add({
      {"alpha", util::ArgType::kDouble, "X", "attacker hash-rate share", "0.10"},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  bench::SweepSession sweep(argc, argv, obs, "bench_ablation_ds");
  const double alpha = args.get_double("alpha", 0.10);
  const mdp::BatchConfig batch = sweep.batch_config(args);

  std::printf(
      "Ablation — double-spend parameters (alpha=%.2f, beta:gamma=1:1)\n\n",
      alpha);

  // ---- Confirmation depth sweep ------------------------------------------
  {
    TextTable table({"confirmations", "BU u2 (setting 1)",
                     "Bitcoin SM+DS (tie-win 100%)"});
    const std::vector<unsigned> confs = {2u, 3u, 4u, 5u, 6u};
    std::vector<bu::AnalysisJob> bu_jobs;
    std::vector<btc::SmJob> sm_jobs;
    for (const unsigned conf : confs) {
      bu::AttackParams params;
      params.alpha = alpha;
      params.beta = params.gamma = (1.0 - alpha) / 2.0;
      params.confirmations = conf;
      bu_jobs.push_back({params, bu::Utility::kAbsoluteReward});

      btc::SmParams sm;
      sm.alpha = alpha;
      sm.gamma_tie = 1.0;
      sm.confirmations = conf;
      sm_jobs.push_back({sm, bu::Utility::kAbsoluteReward, 1e-5});
    }
    bu::AnalysisCheckpoint bu_ckpt;
    bu_ckpt.journal = sweep.journal();
    bu_ckpt.include = sweep.include_next(bu_jobs.size());
    const std::vector<bu::AnalysisResult> bu_results =
        bu::analyze_batch(bu_jobs, {}, batch, bu_ckpt);
    btc::SmCheckpoint sm_ckpt;
    sm_ckpt.journal = sweep.journal();
    sm_ckpt.include = sweep.include_next(sm_jobs.size());
    const std::vector<btc::SmResult> sm_results =
        btc::analyze_sm_batch(sm_jobs, batch, sm_ckpt);

    for (std::size_t i = 0; i < confs.size(); ++i) {
      const unsigned conf = confs[i];
      bench::require_solved(bu_results[i],
                            "BU u2 conf=" + std::to_string(conf),
                            /*fatal=*/false);
      const double bu_value = bu_results[i].utility_value;
      bench::require_solved(sm_results[i],
                            "btc sm+ds conf=" + std::to_string(conf),
                            /*fatal=*/false);
      const double btc_value = sm_results[i].utility_value;

      table.add_row({std::to_string(conf), format_fixed(bu_value, 4),
                     format_fixed(btc_value, 4)});
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\nR_DS = 10 block rewards\n%s\n", table.to_string().c_str());
  }

  // ---- Double-spend value sweep ------------------------------------------
  {
    TextTable table({"R_DS (block rewards)", "BU u2 (setting 1)",
                     "Bitcoin SM+DS (tie-win 100%)"});
    const std::vector<double> rds_values = {0.0,  1.0,  5.0,  10.0,
                                            25.0, 50.0, 100.0};
    std::vector<bu::AnalysisJob> bu_jobs;
    std::vector<btc::SmJob> sm_jobs;
    for (const double rds : rds_values) {
      bu::AttackParams params;
      params.alpha = alpha;
      params.beta = params.gamma = (1.0 - alpha) / 2.0;
      params.rds = rds;
      bu_jobs.push_back({params, bu::Utility::kAbsoluteReward});

      btc::SmParams sm;
      sm.alpha = alpha;
      sm.gamma_tie = 1.0;
      sm.rds = rds;
      sm_jobs.push_back({sm, bu::Utility::kAbsoluteReward, 1e-5});
    }
    bu::AnalysisCheckpoint bu_ckpt;
    bu_ckpt.journal = sweep.journal();
    bu_ckpt.include = sweep.include_next(bu_jobs.size());
    const std::vector<bu::AnalysisResult> bu_results =
        bu::analyze_batch(bu_jobs, {}, batch, bu_ckpt);
    btc::SmCheckpoint sm_ckpt;
    sm_ckpt.journal = sweep.journal();
    sm_ckpt.include = sweep.include_next(sm_jobs.size());
    const std::vector<btc::SmResult> sm_results =
        btc::analyze_sm_batch(sm_jobs, batch, sm_ckpt);

    for (std::size_t i = 0; i < rds_values.size(); ++i) {
      const double rds = rds_values[i];
      bench::require_solved(bu_results[i],
                            "BU u2 rds=" + format_fixed(rds, 0),
                            /*fatal=*/false);
      const double bu_value = bu_results[i].utility_value;
      bench::require_solved(sm_results[i],
                            "btc sm+ds rds=" + format_fixed(rds, 0),
                            /*fatal=*/false);
      const double btc_value = sm_results[i].utility_value;

      table.add_row({format_fixed(rds, 0), format_fixed(bu_value, 4),
                     format_fixed(btc_value, 4)});
      std::printf(".");
      std::fflush(stdout);
    }
    std::printf("\n4 confirmations\n%s\n", table.to_string().c_str());
  }

  std::printf(
      "Reading: BU's advantage over Bitcoin persists across confirmation\n"
      "depths and double-spend values — with higher confirmation\n"
      "requirements Bitcoin attacks collapse to honest mining (u2 = alpha)\n"
      "while BU forks still pay; raising R_DS scales BU's attacker revenue\n"
      "roughly linearly once forks are deep enough to settle merchants.\n");
  return 0;
}
