// Ablation (Sect. 6.2): the sticky-gate period. "A longer sticky gate
// period gives the attacker more time to mine giant blocks, whereas a
// shorter period allows the attacker to split the network more frequently."
//
// We sweep the gate period in setting 2 and report the u1-optimal value and
// phase composition under the optimal policy (fraction of time the gate is
// open = exposure to giant blocks; fork starts per 1k blocks = splitting
// frequency).
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "sim/attack_scenario.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {
using namespace bvc;
}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bench_ablation_gate", "Ablation: sticky-gate period vs utility (Sect. 6.2)");
  bench::add_standard_bench_args(parser);
  parser.add({
      {"alpha", util::ArgType::kDouble, "X", "attacker hash-rate share", "0.25"},
      {"beta", util::ArgType::kDouble, "X", "Bob group hash-rate share", "0.30"},
      {"gamma", util::ArgType::kDouble, "X", "Carol group hash-rate share", "0.45"},
  });
  const CliArgs args = parser.parse(argc, argv);
  bench::ObsSession obs(argc, argv);
  const double alpha = args.get_double("alpha", 0.25);
  const double beta = args.get_double("beta", 0.30);
  const double gamma = args.get_double("gamma", 0.45);
  bu::AnalysisOptions analysis_options;
  analysis_options.control = bench::run_control_from_args(args);

  std::printf(
      "Ablation — sticky-gate period (setting 2; alpha=%.2f, beta=%.2f,\n"
      "gamma=%.2f, AD=6; the BU release uses 144)\n\n",
      alpha, beta, gamma);

  TextTable table({"gate period", "u1 (rel. revenue)",
                   "forks per 1k blocks", "gate openings per 1k blocks"});

  for (const unsigned period : {6u, 18u, 36u, 72u, 144u, 288u}) {
    bu::AttackParams params;
    params.alpha = alpha;
    params.beta = beta;
    params.gamma = gamma;
    params.setting = bu::Setting::kStickyGate;
    params.gate_period = period;

    const bu::AttackModel model =
        bu::build_attack_model(params, bu::Utility::kRelativeRevenue);
    const bu::AnalysisResult analysis = bu::analyze(model, analysis_options);
    bench::require_solved(
        analysis,
        "u1 gate period=" + std::to_string(period) + " " +
            bench::describe_cell(
                {{"alpha", alpha}, {"beta", beta}, {"gamma", gamma}}),
        /*fatal=*/false);

    sim::ScenarioOptions options;
    sim::AttackScenarioSim simulator(model, options);
    Rng rng(period);
    const sim::ScenarioResult sim_result =
        simulator.run(analysis.policy, 300'000, rng);
    const double per_k =
        1000.0 / static_cast<double>(sim_result.steps);

    table.add_row(
        {std::to_string(period), format_percent(analysis.utility_value),
         format_fixed(static_cast<double>(sim_result.forks_started) * per_k,
                      2),
         format_fixed(static_cast<double>(sim_result.gate_openings) * per_k,
                      3)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf(
      "Reading: longer periods keep the network in phase 2 (gate open —\n"
      "exposure to 32 MB blocks) for longer; shorter periods return the\n"
      "system to phase 1 quickly, where the attacker splits the network\n"
      "again. Tuning the period trades one vulnerability for the other.\n");
  return 0;
}
