// Small shared helpers for the bench report generators.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <string>

#include <unistd.h>

#include "mdp/batch.hpp"
#include "mdp/kernel.hpp"
#include "mdp/model_cache.hpp"
#include "mdp/solve_report.hpp"
#include "obs/event_log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "robust/run_control.hpp"
#include "util/arg_spec.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace bvc::bench {

/// The flag vocabulary every bench binary shares, declared once for
/// util::ArgParser. Split into the groups the helpers below consume:
/// budget (run_control_from_args), batch (batch_config_from_args), csv
/// (open_csv), and obs (ObsSession). add_standard_bench_args is the union;
/// benches that wrap a SweepSession also call add_sweep_args
/// (bench/sweep_session.hpp). Per-bench flags are add()ed at each main.

inline void add_budget_args(util::ArgParser& parser) {
  parser.add({
      {"wall-clock-ms", util::ArgType::kLong, "MS",
       "abort solving after this wall-clock budget", "unlimited"},
      {"max-ticks", util::ArgType::kLong, "N",
       "abort solving after N solver iterations", "unlimited"},
      // Declared with the budget group because every bench accepts it (the
      // sweep kernel underlies each of them); consumed by ObsSession, which
      // also stamps the resolved ISA into the run manifest.
      {"kernel", util::ArgType::kString, "ISA",
       "sweep kernel ISA: auto|scalar|avx2|avx512 (overrides BVC_KERNEL)",
       "auto"},
  });
}

inline void add_batch_args(util::ArgParser& parser) {
  add_budget_args(parser);
  parser.add({
      {"threads", util::ArgType::kLong, "N",
       "batch solver threads; 0 = all hardware threads", "0"},
      {"warm-start", util::ArgType::kFlag, "",
       "seed each batch cell from its nearest finished neighbor's bias "
       "(deterministic only with --threads=1)",
       ""},
  });
}

inline void add_csv_args(util::ArgParser& parser) {
  parser.add({
      {"csv", util::ArgType::kString, "FILE",
       "also write the table as CSV rows", ""},
  });
}

inline void add_obs_args(util::ArgParser& parser) {
  parser.add({
      {"trace-out", util::ArgType::kString, "FILE",
       "write a Chrome trace-event JSON span trace", ""},
      {"trace-jsonl", util::ArgType::kString, "FILE",
       "write the same trace events as JSON Lines", ""},
      {"metrics-out", util::ArgType::kString, "FILE",
       "write the final metrics snapshot as JSON", ""},
      {"metrics-prom-out", util::ArgType::kString, "FILE",
       "write the final metrics snapshot in Prometheus text exposition "
       "format",
       ""},
      {"manifest-out", util::ArgType::kString, "FILE",
       "write the run manifest (git SHA, args, metrics)", ""},
      {"log-out", util::ArgType::kString, "FILE",
       "write structured JSONL event-log records to FILE "
       "(default: human-readable stderr)",
       ""},
      {"log-level", util::ArgType::kString, "LEVEL",
       "event-log threshold: debug|info|warn|error", "info"},
      {"telemetry-dir", util::ArgType::kString, "DIR",
       "periodically flush metrics/trace deltas into DIR so a supervisor "
       "can aggregate live cross-process telemetry",
       ""},
      {"telemetry-interval-ms", util::ArgType::kLong, "MS",
       "telemetry flush cadence", "500"},
      {"telemetry-label", util::ArgType::kString, "NAME",
       "(internal) lane label for telemetry flushes", ""},
  });
}

inline void add_standard_bench_args(util::ArgParser& parser) {
  add_batch_args(parser);
  add_csv_args(parser);
  add_obs_args(parser);
}

/// One named parameter of a table/figure cell, for diagnostics.
struct CellParam {
  const char* name;
  double value;
};

/// Renders a cell's parameter assignments ("alpha=0.2 gamma=0.45 AD=6") so
/// a failing require_solved names the exact cell, not just its row label.
/// Built into the string directly — a fixed intermediate buffer would
/// silently truncate long parameter names (regression-tested in
/// tests/bench_common_test.cpp).
inline std::string describe_cell(std::initializer_list<CellParam> params) {
  std::string out;
  for (const CellParam& param : params) {
    char value[32];
    std::snprintf(value, sizeof(value), "%g", param.value);
    if (!out.empty()) {
      out += ' ';
    }
    out += param.name;
    out += '=';
    out += value;
  }
  return out;
}

/// Loud solver-status check for report generators. A non-converged solve
/// whose value is printed next to the paper's reference is silently wrong —
/// table-reproduction benches therefore pass fatal=true and abort; the
/// exploratory benches pass fatal=false, warn on stderr, and continue with
/// the best-effort value. Returns true when the solve converged.
///
/// `context` should name the failing cell's parameters (alpha/gamma/EB, via
/// describe_cell), not just the table — a bare status code is useless for
/// reproducing a one-in-a-sweep failure.
inline bool require_solved(robust::RunStatus status, const std::string& context,
                           bool fatal = true) {
  if (robust::is_success(status)) {
    return true;
  }
  std::fprintf(stderr,
               "\n*** WARNING: solve did not converge: %s (status: %s)%s\n",
               context.c_str(), std::string(robust::to_string(status)).c_str(),
               fatal ? " — aborting, this table would be wrong"
                     : "; reported value is a best-effort lower bound");
  if (fatal) {
    std::exit(2);
  }
  return false;
}

/// Overload for any solver result deriving from mdp::SolveReport (ratio,
/// gain, discounted, policy-iteration, bu/btc analysis results alike). Adds
/// the report's iteration count and wall clock to the diagnostic.
inline bool require_solved(const mdp::SolveReport& report,
                           const std::string& context, bool fatal = true) {
  if (robust::is_success(report.status)) {
    return true;
  }
  char detail[96];
  std::snprintf(detail, sizeof(detail), " [%d iterations, %.3fs]",
                report.iterations, report.elapsed_seconds());
  return require_solved(report.status, context + detail, fatal);
}

/// Shared `--wall-clock-ms N` / `--max-ticks N` budget flags, accepted by
/// every bench binary: the returned control bounds the bench's whole solve
/// or simulation loop (partial tables warn through require_solved instead
/// of running forever). Defaults are unlimited.
inline robust::RunControl run_control_from_args(const CliArgs& args) {
  robust::RunControl control;
  const long wall_ms = args.get_long("wall-clock-ms", -1);
  if (wall_ms >= 0) {
    control.budget.wall_clock_seconds = static_cast<double>(wall_ms) * 1e-3;
  }
  const long max_ticks = args.get_long("max-ticks", -1);
  if (max_ticks >= 0) {
    control.budget.max_ticks = max_ticks;
  }
  return control;
}

/// Shared `--threads N` flag for the batch-solving benches: 0 (the default)
/// uses every hardware thread, 1 solves serially on the calling thread. The
/// batch-wide budget comes from run_control_from_args, so every bench
/// accepts the same three flags.
inline mdp::BatchConfig batch_config_from_args(const CliArgs& args) {
  mdp::BatchConfig config;
  config.threads = static_cast<int>(args.get_long("threads", 0));
  config.control = run_control_from_args(args);
  config.warm_start = args.get_bool("warm-start", false);
  return config;
}

/// Optional machine-readable output: when `--csv <path>` is passed, returns
/// an open stream + writer pair; callers emit one row per measured cell.
struct CsvSink {
  std::ofstream file;
  std::unique_ptr<CsvWriter> writer;

  [[nodiscard]] bool enabled() const noexcept { return writer != nullptr; }
  void row(const std::vector<std::string>& cells) {
    if (writer) {
      writer->write_row(cells);
    }
  }
};

inline CsvSink open_csv(const CliArgs& args,
                        const std::vector<std::string>& header) {
  CsvSink sink;
  const auto path = args.value("csv");
  if (!path) {
    return sink;
  }
  sink.file.open(*path);
  if (!sink.file) {
    throw std::invalid_argument("cannot open CSV output file: " + *path);
  }
  sink.writer = std::make_unique<CsvWriter>(sink.file);
  sink.row(header);
  return sink;
}

/// One-line model-cache efficacy summary on stderr (stdout carries the
/// reproduced table and must stay byte-stable). Works without --metrics-out:
/// the cache keeps its own tally.
inline void print_cache_stats(const char* bench_name) {
  const mdp::ModelCache::Stats stats = mdp::ModelCache::global().stats();
  const std::uint64_t lookups = stats.hits + stats.misses;
  std::fprintf(stderr,
               "[%s] model cache: %llu hits / %llu misses (%zu entries, "
               "%.1f MB resident, %.1f%% hit rate)\n",
               bench_name, static_cast<unsigned long long>(stats.hits),
               static_cast<unsigned long long>(stats.misses), stats.entries,
               static_cast<double>(stats.bytes_resident) / 1e6,
               lookups == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(stats.hits) /
                         static_cast<double>(lookups));
}

/// Shared observability front door for every bench binary: the flags
///
///   --trace-out=FILE         span/instant trace, Chrome trace-event JSON
///   --trace-jsonl=FILE       the same events as JSON Lines
///   --metrics-out=FILE       final MetricsRegistry snapshot as JSON
///   --metrics-prom-out=FILE  the same snapshot, Prometheus exposition text
///   --manifest-out=FILE      run manifest (git SHA, args, metrics) as JSON
///   --log-out/--log-level    obs::EventLog sink and threshold
///   --telemetry-dir=DIR      periodic metrics/trace flushes for a
///                            supervising parent to aggregate
///
/// Construct one ObsSession at the top of main (before any solve) and let
/// it run out of scope last: construction enables the tracer/metrics layer
/// exactly when a sink was requested, destruction writes every requested
/// file. With none of the flags present the instrumentation layer stays
/// disabled and every obs call in the hot paths reduces to one relaxed
/// atomic load — bench output is bit-identical to an uninstrumented build.
///
/// In supervisor mode the SweepSession calls merge_telemetry_from(dir)
/// after the workers exit; the final metrics/prometheus/trace/manifest
/// artifacts then cover the WHOLE multi-process run, with one pid lane per
/// worker in the merged Chrome trace.
class ObsSession {
 public:
  ObsSession(int argc, const char* const* argv)
      : manifest_(obs::make_run_manifest(argc, argv)) {
    const CliArgs args(argc, argv);
    trace_path_ = args.get_string("trace-out", "");
    jsonl_path_ = args.get_string("trace-jsonl", "");
    metrics_path_ = args.get_string("metrics-out", "");
    prom_path_ = args.get_string("metrics-prom-out", "");
    manifest_path_ = args.get_string("manifest-out", "");
    if (!trace_path_.empty() || !jsonl_path_.empty()) {
      obs::Tracer::global().enable();
    }
    if (!metrics_path_.empty() || !manifest_path_.empty() ||
        !prom_path_.empty()) {
      obs::set_metrics_enabled(true);
    }
    const std::string log_out = args.get_string("log-out", "");
    const std::string log_level = args.get_string("log-level", "");
    if (!log_out.empty() || !log_level.empty()) {
      obs::LogConfig log_config;
      if (!log_level.empty()) {
        const auto level = obs::parse_log_level(log_level);
        if (!level) {
          std::fprintf(stderr,
                       "*** invalid --log-level value '%s' "
                       "(expected debug|info|warn|error)\n",
                       log_level.c_str());
          std::exit(2);
        }
        log_config.min_level = *level;
      }
      log_config.path = log_out;
      if (!obs::EventLog::global().configure(log_config)) {
        std::fprintf(stderr, "*** cannot open --log-out file: %s\n",
                     log_out.c_str());
        std::exit(2);
      }
    }
    const std::string telemetry_dir = args.get_string("telemetry-dir", "");
    if (!telemetry_dir.empty()) {
      obs::TelemetryConfig telemetry;
      telemetry.dir = telemetry_dir;
      telemetry.label = args.get_string("telemetry-label", "main");
      telemetry.interval_seconds =
          static_cast<double>(args.get_long("telemetry-interval-ms", 500)) *
          1e-3;
      flusher_ = std::make_unique<obs::TelemetryFlusher>(telemetry);
      annotate("telemetry_dir", telemetry_dir);
    }
    // Kernel ISA selection (--kernel flag, over the BVC_KERNEL env
    // default) lives here so every bench picks it up by constructing its
    // ObsSession — and so the manifest records which ISA actually ran.
    const std::string kernel_name = args.get_string("kernel", "");
    if (!kernel_name.empty()) {
      const auto request = mdp::kernel::parse_request(kernel_name);
      if (!request) {
        std::fprintf(stderr,
                     "*** invalid --kernel value '%s' "
                     "(expected auto|scalar|avx2|avx512)\n",
                     kernel_name.c_str());
        std::exit(2);
      }
      mdp::kernel::set_requested(*request);
    }
    annotate("kernel_requested",
             std::string(mdp::kernel::to_string(mdp::kernel::requested())));
    annotate("kernel_isa",
             std::string(mdp::kernel::to_string(mdp::kernel::resolve())));
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Registers an output artifact (kind, path) for the run manifest, e.g.
  /// ("csv", "table2.csv").
  void note_output(std::string kind, std::string path) {
    manifest_.outputs.emplace_back(std::move(kind), std::move(path));
  }

  /// Stamps a free-form provenance note (key, value) into the manifest —
  /// the sweep layer records shard counts, restarts, and resume tallies
  /// here so a recovered run is distinguishable from a straight-through one.
  void annotate(std::string key, std::string value) {
    manifest_.annotations.emplace_back(std::move(key), std::move(value));
  }

  /// Supervisor parents call this after their workers exit: the final
  /// artifacts fold in the per-worker telemetry flushed into `dir`
  /// (metrics merged onto this process's registry, worker trace lanes
  /// joined into the Chrome trace).
  void merge_telemetry_from(std::string dir) { merge_dir_ = std::move(dir); }

  ~ObsSession() {
    // Final worker-side flush happens before any parent could merge us —
    // and before our own merged export below reads the directory.
    flusher_.reset();
    const auto write_file = [](const std::string& path, const char* what,
                               const auto& writer) {
      if (path.empty()) {
        return;
      }
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "*** cannot open %s output file: %s\n", what,
                     path.c_str());
        return;
      }
      writer(out);
      std::fprintf(stderr, "[obs] wrote %s: %s\n", what, path.c_str());
    };

    if (!trace_path_.empty() || !jsonl_path_.empty()) {
      obs::Tracer& tracer = obs::Tracer::global();
      if (!merge_dir_.empty()) {
        write_file(trace_path_, "merged trace", [&](std::ostream& out) {
          obs::write_merged_chrome_trace(out, merge_dir_, &tracer,
                                         "supervisor");
        });
      } else {
        write_file(trace_path_, "trace",
                   [&](std::ostream& out) { tracer.write_chrome_trace(out); });
      }
      write_file(jsonl_path_, "trace-jsonl",
                 [&](std::ostream& out) { tracer.write_jsonl(out); });
      if (tracer.dropped_events() > 0) {
        obs::log_warn("obs", "trace events dropped (ring full)",
                      {{"dropped", tracer.dropped_events()}});
      }
    }
    if (!metrics_path_.empty() || !manifest_path_.empty() ||
        !prom_path_.empty()) {
      obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::global().snapshot();
      if (!merge_dir_.empty()) {
        // Sum the workers' flushed registries onto our own. Our own
        // telemetry flushes (if any) are excluded by pid, so nothing is
        // double-counted.
        const obs::TelemetryMergeReport merged =
            obs::merge_telemetry_dir(merge_dir_, static_cast<long>(getpid()));
        obs::merge_metrics(snapshot, merged.metrics);
        annotate("telemetry_workers_merged",
                 std::to_string(merged.metrics_files));
        for (const std::string& error : merged.errors) {
          obs::log_warn("obs", "telemetry merge skipped a file",
                        {{"detail", error}});
        }
      }
      write_file(metrics_path_, "metrics", [&](std::ostream& out) {
        obs::write_metrics_json(out, snapshot);
      });
      write_file(prom_path_, "prometheus metrics", [&](std::ostream& out) {
        obs::write_prometheus(out, snapshot);
      });
      if (!trace_path_.empty()) {
        manifest_.outputs.emplace_back("trace", trace_path_);
      }
      if (!metrics_path_.empty()) {
        manifest_.outputs.emplace_back("metrics", metrics_path_);
      }
      if (!prom_path_.empty()) {
        manifest_.outputs.emplace_back("metrics-prometheus", prom_path_);
      }
      manifest_.elapsed_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_)
              .count();
      write_file(manifest_path_, "manifest", [&](std::ostream& out) {
        obs::write_manifest_json(out, manifest_, snapshot);
      });
    }
  }

 private:
  obs::RunManifest manifest_;
  std::string trace_path_;
  std::string jsonl_path_;
  std::string metrics_path_;
  std::string prom_path_;
  std::string manifest_path_;
  std::string merge_dir_;
  std::unique_ptr<obs::TelemetryFlusher> flusher_;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

}  // namespace bvc::bench
