// Small shared helpers for the bench report generators.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "mdp/batch.hpp"
#include "mdp/solve_report.hpp"
#include "robust/run_control.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace bvc::bench {

/// Loud solver-status check for report generators. A non-converged solve
/// whose value is printed next to the paper's reference is silently wrong —
/// table-reproduction benches therefore pass fatal=true and abort; the
/// exploratory benches pass fatal=false, warn on stderr, and continue with
/// the best-effort value. Returns true when the solve converged.
inline bool require_solved(robust::RunStatus status, const std::string& context,
                           bool fatal = true) {
  if (robust::is_success(status)) {
    return true;
  }
  std::fprintf(stderr,
               "\n*** WARNING: solve did not converge: %s (status: %s)%s\n",
               context.c_str(), std::string(robust::to_string(status)).c_str(),
               fatal ? " — aborting, this table would be wrong"
                     : "; reported value is a best-effort lower bound");
  if (fatal) {
    std::exit(2);
  }
  return false;
}

/// Overload for any solver result deriving from mdp::SolveReport (ratio,
/// gain, discounted, policy-iteration, bu/btc analysis results alike).
inline bool require_solved(const mdp::SolveReport& report,
                           const std::string& context, bool fatal = true) {
  return require_solved(report.status, context, fatal);
}

/// Shared `--threads N` flag for the batch-solving benches: 0 (the default)
/// uses every hardware thread, 1 solves serially on the calling thread.
inline mdp::BatchConfig batch_config_from_args(const CliArgs& args) {
  mdp::BatchConfig config;
  config.threads = static_cast<int>(args.get_long("threads", 0));
  return config;
}

/// Optional machine-readable output: when `--csv <path>` is passed, returns
/// an open stream + writer pair; callers emit one row per measured cell.
struct CsvSink {
  std::ofstream file;
  std::unique_ptr<CsvWriter> writer;

  [[nodiscard]] bool enabled() const noexcept { return writer != nullptr; }
  void row(const std::vector<std::string>& cells) {
    if (writer) {
      writer->write_row(cells);
    }
  }
};

inline CsvSink open_csv(const CliArgs& args,
                        const std::vector<std::string>& header) {
  CsvSink sink;
  const auto path = args.value("csv");
  if (!path) {
    return sink;
  }
  sink.file.open(*path);
  if (!sink.file) {
    throw std::invalid_argument("cannot open CSV output file: " + *path);
  }
  sink.writer = std::make_unique<CsvWriter>(sink.file);
  sink.row(header);
  return sink;
}

}  // namespace bvc::bench
