// Small shared helpers for the bench report generators.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <string>

#include "mdp/batch.hpp"
#include "mdp/solve_report.hpp"
#include "robust/run_control.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace bvc::bench {

/// One named parameter of a table/figure cell, for diagnostics.
struct CellParam {
  const char* name;
  double value;
};

/// Renders a cell's parameter assignments ("alpha=0.2 gamma=0.45 AD=6") so
/// a failing require_solved names the exact cell, not just its row label.
inline std::string describe_cell(std::initializer_list<CellParam> params) {
  std::string out;
  char buffer[64];
  for (const CellParam& param : params) {
    std::snprintf(buffer, sizeof(buffer), "%s%s=%g", out.empty() ? "" : " ",
                  param.name, param.value);
    out += buffer;
  }
  return out;
}

/// Loud solver-status check for report generators. A non-converged solve
/// whose value is printed next to the paper's reference is silently wrong —
/// table-reproduction benches therefore pass fatal=true and abort; the
/// exploratory benches pass fatal=false, warn on stderr, and continue with
/// the best-effort value. Returns true when the solve converged.
///
/// `context` should name the failing cell's parameters (alpha/gamma/EB, via
/// describe_cell), not just the table — a bare status code is useless for
/// reproducing a one-in-a-sweep failure.
inline bool require_solved(robust::RunStatus status, const std::string& context,
                           bool fatal = true) {
  if (robust::is_success(status)) {
    return true;
  }
  std::fprintf(stderr,
               "\n*** WARNING: solve did not converge: %s (status: %s)%s\n",
               context.c_str(), std::string(robust::to_string(status)).c_str(),
               fatal ? " — aborting, this table would be wrong"
                     : "; reported value is a best-effort lower bound");
  if (fatal) {
    std::exit(2);
  }
  return false;
}

/// Overload for any solver result deriving from mdp::SolveReport (ratio,
/// gain, discounted, policy-iteration, bu/btc analysis results alike). Adds
/// the report's iteration count and wall clock to the diagnostic.
inline bool require_solved(const mdp::SolveReport& report,
                           const std::string& context, bool fatal = true) {
  if (robust::is_success(report.status)) {
    return true;
  }
  char detail[96];
  std::snprintf(detail, sizeof(detail), " [%d iterations, %.3fs]",
                report.iterations, report.elapsed_seconds());
  return require_solved(report.status, context + detail, fatal);
}

/// Shared `--wall-clock-ms N` / `--max-ticks N` budget flags, accepted by
/// every bench binary: the returned control bounds the bench's whole solve
/// or simulation loop (partial tables warn through require_solved instead
/// of running forever). Defaults are unlimited.
inline robust::RunControl run_control_from_args(const CliArgs& args) {
  robust::RunControl control;
  const long wall_ms = args.get_long("wall-clock-ms", -1);
  if (wall_ms >= 0) {
    control.budget.wall_clock_seconds = static_cast<double>(wall_ms) * 1e-3;
  }
  const long max_ticks = args.get_long("max-ticks", -1);
  if (max_ticks >= 0) {
    control.budget.max_ticks = max_ticks;
  }
  return control;
}

/// Shared `--threads N` flag for the batch-solving benches: 0 (the default)
/// uses every hardware thread, 1 solves serially on the calling thread. The
/// batch-wide budget comes from run_control_from_args, so every bench
/// accepts the same three flags.
inline mdp::BatchConfig batch_config_from_args(const CliArgs& args) {
  mdp::BatchConfig config;
  config.threads = static_cast<int>(args.get_long("threads", 0));
  config.control = run_control_from_args(args);
  return config;
}

/// Optional machine-readable output: when `--csv <path>` is passed, returns
/// an open stream + writer pair; callers emit one row per measured cell.
struct CsvSink {
  std::ofstream file;
  std::unique_ptr<CsvWriter> writer;

  [[nodiscard]] bool enabled() const noexcept { return writer != nullptr; }
  void row(const std::vector<std::string>& cells) {
    if (writer) {
      writer->write_row(cells);
    }
  }
};

inline CsvSink open_csv(const CliArgs& args,
                        const std::vector<std::string>& header) {
  CsvSink sink;
  const auto path = args.value("csv");
  if (!path) {
    return sink;
  }
  sink.file.open(*path);
  if (!sink.file) {
    throw std::invalid_argument("cannot open CSV output file: " + *path);
  }
  sink.writer = std::make_unique<CsvWriter>(sink.file);
  sink.row(header);
  return sink;
}

}  // namespace bvc::bench
