// Small shared helpers for the bench report generators.
#pragma once

#include <fstream>
#include <memory>
#include <string>

#include "util/cli.hpp"
#include "util/csv.hpp"

namespace bvc::bench {

/// Optional machine-readable output: when `--csv <path>` is passed, returns
/// an open stream + writer pair; callers emit one row per measured cell.
struct CsvSink {
  std::ofstream file;
  std::unique_ptr<CsvWriter> writer;

  [[nodiscard]] bool enabled() const noexcept { return writer != nullptr; }
  void row(const std::vector<std::string>& cells) {
    if (writer) {
      writer->write_row(cells);
    }
  }
};

inline CsvSink open_csv(const CliArgs& args,
                        const std::vector<std::string>& header) {
  CsvSink sink;
  const auto path = args.value("csv");
  if (!path) {
    return sink;
  }
  sink.file.open(*path);
  if (!sink.file) {
    throw std::invalid_argument("cannot open CSV output file: " + *path);
  }
  sink.writer = std::make_unique<CsvWriter>(sink.file);
  sink.row(header);
  return sink;
}

}  // namespace bvc::bench
