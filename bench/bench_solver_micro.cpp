// google-benchmark microbenchmarks of the numerical core: model builds,
// relative value iteration, ratio (Dinkelbach) solves, and simulator
// throughput. These guard the performance assumptions behind the table
// benches (a setting-2 Dinkelbach solve must stay ~1 s or the full grids
// become impractical).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "btc/selfish_mining.hpp"
#include "mdp/average_reward.hpp"
#include "mdp/batch.hpp"
#include "sim/attack_scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;

bu::AttackParams grid_params(bu::Setting setting) {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.setting = setting;
  return params;
}

void BM_BuildAttackModelSetting1(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kNoStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::build_attack_model(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_BuildAttackModelSetting1);

void BM_BuildAttackModelSetting2(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::build_attack_model(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_BuildAttackModelSetting2);

void BM_RviSweepSetting2(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kStickyGate), bu::Utility::kRelativeRevenue);
  mdp::AverageRewardOptions options;
  options.max_sweeps = static_cast<int>(state.range(0));
  options.tolerance = 1e-30;  // force exactly max_sweeps sweeps
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mdp::maximize_average_reward(model.model, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          model.model.num_states());
}
BENCHMARK(BM_RviSweepSetting2)->Arg(10);

// The same fixed sweep count with the chunked parallel sweep enabled:
// Arg is the thread count (1 = legacy serial baseline). Thread-count
// invariance of the results themselves is asserted in tests/batch_test.cpp;
// this curve shows the wall-clock scaling on multi-core hardware.
void BM_RviParallelSweepSetting2(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kStickyGate), bu::Utility::kRelativeRevenue);
  mdp::AverageRewardOptions options;
  options.max_sweeps = 10;
  options.tolerance = 1e-30;  // force exactly max_sweeps sweeps
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mdp::maximize_average_reward(model.model, options));
  }
  state.SetItemsProcessed(state.iterations() * 10 *
                          model.model.num_states());
}
BENCHMARK(BM_RviParallelSweepSetting2)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Batch of eight Table-3-style setting-1 solves fanned across the batch
// engine; Arg is BatchConfig::threads (1 = serial baseline for the speedup
// ratio). UseRealTime because the work happens on pool threads.
void BM_BatchSolveTable3(benchmark::State& state) {
  struct Grid {
    int b;
    int g;
  };
  const std::vector<Grid> grids = {{2, 1}, {1, 1}};
  const std::vector<double> alphas = {0.05, 0.10, 0.15, 0.20};
  std::vector<bu::AttackModel> models;
  for (const Grid& grid : grids) {
    for (const double alpha : alphas) {
      bu::AttackParams params;
      const double rest = 1.0 - alpha;
      params.alpha = alpha;
      params.beta = rest * grid.b / (grid.b + grid.g);
      params.gamma = rest - params.beta;
      params.setting = bu::Setting::kNoStickyGate;
      models.push_back(
          bu::build_attack_model(params, bu::Utility::kAbsoluteReward));
    }
  }
  std::vector<mdp::RatioJob> jobs;
  for (const bu::AttackModel& model : models) {
    mdp::RatioJob job;
    job.model = &model.model;
    job.config.ratio.tolerance = 1e-5;
    job.config.ratio.upper_bound =
        1.0 + model.params.rds * static_cast<double>(model.params.max_ad());
    job.config.average_reward.tolerance = 2e-7;
    jobs.push_back(job);
  }
  mdp::BatchConfig config;
  config.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const mdp::RatioBatchResult result = mdp::solve_batch(jobs, config);
    benchmark::DoNotOptimize(result.report.items_converged);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_BatchSolveTable3)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

void BM_SolveRelativeRevenueSetting1(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kNoStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::analyze(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveRelativeRevenueSetting1);

void BM_SolveRelativeRevenueSetting2(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::analyze(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveRelativeRevenueSetting2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_SolveSelfishMining(benchmark::State& state) {
  btc::SmParams params;
  params.alpha = 0.35;
  params.gamma_tie = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        btc::analyze_sm(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveSelfishMining);

void BM_ScenarioSimThroughput(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kNoStickyGate), bu::Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);
  bench::require_solved(analysis.status, "scenario-sim setup solve",
                        /*fatal=*/false);
  sim::AttackScenarioSim simulator(model, sim::ScenarioOptions{});
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulator.run(analysis.policy, 100'000, rng));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_ScenarioSimThroughput)->Unit(benchmark::kMillisecond);

void BM_PolicyRollout(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kNoStickyGate), bu::Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);
  bench::require_solved(analysis.status, "rollout setup solve",
                        /*fatal=*/false);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::rollout_policy(model, analysis.policy, 100'000, rng));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_PolicyRollout)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
