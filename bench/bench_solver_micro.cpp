// google-benchmark microbenchmarks of the numerical core: model builds,
// relative value iteration, ratio (Dinkelbach) solves, and simulator
// throughput. These guard the performance assumptions behind the table
// benches (a setting-2 Dinkelbach solve must stay ~1 s or the full grids
// become impractical).
//
// `--mode=kernel` bypasses google-benchmark and runs the AoS-vs-SoA sweep
// kernel comparison instead, writing BENCH_kernel.json (see run_kernel_mode
// below).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "btc/selfish_mining.hpp"
#include "mdp/average_reward.hpp"
#include "mdp/batch.hpp"
#include "mdp/compiled_model.hpp"
#include "mdp/kernel.hpp"
#include "sim/attack_scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;

bu::AttackParams grid_params(bu::Setting setting) {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.setting = setting;
  return params;
}

void BM_BuildAttackModelSetting1(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kNoStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::build_attack_model(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_BuildAttackModelSetting1);

void BM_BuildAttackModelSetting2(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::build_attack_model(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_BuildAttackModelSetting2);

void BM_RviSweepSetting2(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kStickyGate), bu::Utility::kRelativeRevenue);
  mdp::SolverConfig config;
  config.average_reward.max_sweeps = static_cast<int>(state.range(0));
  config.average_reward.tolerance = 1e-30;  // force exactly max_sweeps sweeps
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mdp::maximize_average_reward(model.model, config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          model.model.num_states());
}
BENCHMARK(BM_RviSweepSetting2)->Arg(10);

// The same fixed sweep count with the chunked parallel sweep enabled:
// Arg is the thread count (1 = legacy serial baseline). Thread-count
// invariance of the results themselves is asserted in tests/batch_test.cpp;
// this curve shows the wall-clock scaling on multi-core hardware.
void BM_RviParallelSweepSetting2(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kStickyGate), bu::Utility::kRelativeRevenue);
  mdp::SolverConfig config;
  config.average_reward.max_sweeps = 10;
  config.average_reward.tolerance = 1e-30;  // force exactly max_sweeps sweeps
  config.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mdp::maximize_average_reward(model.model, config));
  }
  state.SetItemsProcessed(state.iterations() * 10 *
                          model.model.num_states());
}
BENCHMARK(BM_RviParallelSweepSetting2)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Batch of eight Table-3-style setting-1 solves fanned across the batch
// engine; Arg is BatchConfig::threads (1 = serial baseline for the speedup
// ratio). UseRealTime because the work happens on pool threads.
void BM_BatchSolveTable3(benchmark::State& state) {
  struct Grid {
    int b;
    int g;
  };
  const std::vector<Grid> grids = {{2, 1}, {1, 1}};
  const std::vector<double> alphas = {0.05, 0.10, 0.15, 0.20};
  std::vector<bu::AttackModel> models;
  for (const Grid& grid : grids) {
    for (const double alpha : alphas) {
      bu::AttackParams params;
      const double rest = 1.0 - alpha;
      params.alpha = alpha;
      params.beta = rest * grid.b / (grid.b + grid.g);
      params.gamma = rest - params.beta;
      params.setting = bu::Setting::kNoStickyGate;
      models.push_back(
          bu::build_attack_model(params, bu::Utility::kAbsoluteReward));
    }
  }
  std::vector<mdp::RatioJob> jobs;
  for (const bu::AttackModel& model : models) {
    mdp::RatioJob job;
    job.model = &model.model;
    job.config.ratio.tolerance = 1e-5;
    job.config.ratio.upper_bound =
        1.0 + model.params.rds * static_cast<double>(model.params.max_ad());
    job.config.average_reward.tolerance = 2e-7;
    jobs.push_back(job);
  }
  mdp::BatchConfig config;
  config.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const mdp::RatioBatchResult result = mdp::solve_batch(jobs, config);
    benchmark::DoNotOptimize(result.report.items_converged);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_BatchSolveTable3)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

void BM_SolveRelativeRevenueSetting1(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kNoStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::analyze(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveRelativeRevenueSetting1);

void BM_SolveRelativeRevenueSetting2(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::analyze(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveRelativeRevenueSetting2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_SolveSelfishMining(benchmark::State& state) {
  btc::SmParams params;
  params.alpha = 0.35;
  params.gamma_tie = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        btc::analyze_sm(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveSelfishMining);

void BM_ScenarioSimThroughput(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kNoStickyGate), bu::Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);
  bench::require_solved(analysis.status, "scenario-sim setup solve",
                        /*fatal=*/false);
  sim::AttackScenarioSim simulator(model, sim::ScenarioOptions{});
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulator.run(analysis.policy, 100'000, rng));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_ScenarioSimThroughput)->Unit(benchmark::kMillisecond);

void BM_PolicyRollout(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kNoStickyGate), bu::Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);
  bench::require_solved(analysis.status, "rollout setup solve",
                        /*fatal=*/false);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::rollout_policy(model, analysis.policy, 100'000, rng));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_PolicyRollout)->Unit(benchmark::kMillisecond);

}  // namespace

// ---- --mode=kernel: AoS vs SoA sweep throughput --------------------------
//
// Measures the raw Bellman-backup sweep — the inner loop every solver and
// every table cell spends its time in — over the two model layouts:
//
//   AoS — the seed data path: bounds-checked std::span lookups over the
//         Model's 32-byte Outcome structs (half of every cache line loaded
//         into the sweep is reward/weight data the backup never touches);
//   SoA — the CompiledModel kernel layout: raw contiguous next/prob columns.
//
// Both variants run the identical serial Gauss-Seidel greedy sweep with the
// identical expression order, so their bias vectors stay bitwise equal —
// which the run asserts, making this a throughput measurement of the same
// computation, not of two different algorithms. A third variant sweeps the
// precompiled tau-damped probability column (mathematically equivalent,
// different FP association — which is why production solvers don't use it;
// see compiled_model.hpp).

namespace {

constexpr double kKernelTau = 0.999;

/// One in-place Gauss-Seidel greedy sweep over the AoS Model layout,
/// mirroring rvi_core's serial discipline (state-0 residual subtracted
/// in-sweep).
void aos_sweep(const mdp::Model& model, std::span<const double> rewards,
               std::vector<double>& bias) {
  const mdp::StateId n = model.num_states();
  double ref = 0.0;
  for (mdp::StateId s = 0; s < n; ++s) {
    const std::size_t actions = model.num_actions(s);
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < actions; ++a) {
      const mdp::SaIndex sa = model.sa_index(s, a);
      double q = rewards[sa];
      double expected_next = 0.0;
      for (const mdp::Outcome& outcome : model.outcomes(sa)) {
        expected_next += outcome.probability * bias[outcome.next];
      }
      q = kKernelTau * (q + expected_next) + (1.0 - kKernelTau) * bias[s];
      if (q > best) {
        best = q;
      }
    }
    if (s == 0) {
      ref = best - bias[0];
    }
    bias[s] = best - ref;
  }
}

/// The same sweep over the CompiledModel SoA columns.
void soa_sweep(const mdp::CompiledModel& model,
               std::span<const double> rewards, std::vector<double>& bias) {
  const mdp::StateId n = model.num_states();
  const mdp::StateId* next_col = model.next();
  const double* prob_col = model.prob();
  const double* rewards_data = rewards.data();
  double ref = 0.0;
  for (mdp::StateId s = 0; s < n; ++s) {
    const std::size_t actions = model.num_actions(s);
    const mdp::SaIndex sa_base = model.state_begin(s);
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < actions; ++a) {
      const mdp::SaIndex sa = sa_base + a;
      double q = rewards_data[sa];
      double expected_next = 0.0;
      const std::size_t end = model.outcome_end(sa);
      for (std::size_t k = model.outcome_begin(sa); k < end; ++k) {
        expected_next += prob_col[k] * bias[next_col[k]];
      }
      q = kKernelTau * (q + expected_next) + (1.0 - kKernelTau) * bias[s];
      if (q > best) {
        best = q;
      }
    }
    if (s == 0) {
      ref = best - bias[0];
    }
    bias[s] = best - ref;
  }
}

/// SoA sweep through the precompiled tau-damped probability column:
/// tau * (q + sum p*b) == tau*q + sum (tau*p)*b up to FP association.
void soa_damped_sweep(const mdp::CompiledModel& model,
                      std::span<const double> rewards,
                      std::vector<double>& bias) {
  const mdp::StateId n = model.num_states();
  const mdp::StateId* next_col = model.next();
  const double* damped_col = model.damped_prob();
  const double* rewards_data = rewards.data();
  double ref = 0.0;
  for (mdp::StateId s = 0; s < n; ++s) {
    const std::size_t actions = model.num_actions(s);
    const mdp::SaIndex sa_base = model.state_begin(s);
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < actions; ++a) {
      const mdp::SaIndex sa = sa_base + a;
      double q = kKernelTau * rewards_data[sa];
      const std::size_t end = model.outcome_end(sa);
      for (std::size_t k = model.outcome_begin(sa); k < end; ++k) {
        q += damped_col[k] * bias[next_col[k]];
      }
      q += (1.0 - kKernelTau) * bias[s];
      if (q > best) {
        best = q;
      }
    }
    if (s == 0) {
      ref = best - bias[0];
    }
    bias[s] = best - ref;
  }
}

/// One greedy Jacobi sweep lowered onto the dispatched kernels
/// (mdp/kernel.hpp), mirroring rvi_core's vector discipline: the state-0
/// reference residual from a small backup_expected slice, then the fused
/// kernel::rvi_sweep over every state (backup + rewards + tau transform +
/// max in one register-resident pass, vectorized over states on this
/// model's uniform 2-action menu). Reads `bias_in`, writes `bias_out`
/// (Jacobi, not in-place Gauss-Seidel — see docs/PARALLELISM.md for why
/// the two disciplines are separately comparable).
void kernel_jacobi_sweep(const mdp::CompiledModel& model,
                         std::span<const double> rewards,
                         const std::vector<double>& bias_in,
                         std::vector<double>& bias_out,
                         std::vector<double>& q_buf, mdp::kernel::Isa isa) {
  const mdp::StateId n = model.num_states();
  const double* rewards_data = rewards.data();
  mdp::kernel::backup_expected(model, nullptr, 1.0, bias_in.data(), 0,
                               model.state_begin(1), q_buf.data(), isa);
  double best0 = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < model.num_actions(0); ++a) {
    const double q = kKernelTau * (rewards_data[a] + q_buf[a]) +
                     (1.0 - kKernelTau) * bias_in[0];
    if (q > best0) {
      best0 = q;
    }
  }
  const double ref = best0 - bias_in[0];
  double span_min = std::numeric_limits<double>::infinity();
  double span_max = -std::numeric_limits<double>::infinity();
  mdp::kernel::rvi_sweep(model, rewards_data, kKernelTau, bias_in.data(), ref,
                         nullptr, 0, n, bias_out.data(), nullptr, &span_min,
                         &span_max, isa);
}

/// One benchmark row: a sweep variant, its best-of-reps time, and the bias
/// vector it converges to (captured on the first rep; every rep starts
/// from the same zero bias, so reps are deterministic replicas).
struct TimedRow {
  const char* kind;  ///< "aos" | "soa" | "damped" | "kernel"
  mdp::kernel::Isa isa = mdp::kernel::Isa::kScalar;  ///< kernel rows only
  std::function<void(std::vector<double>&)> sweep;
  double best_seconds = std::numeric_limits<double>::infinity();
  std::vector<double> result;
};

/// Times every row with reps interleaved round-robin (row A rep 0, row B
/// rep 0, ..., row A rep 1, ...) rather than all reps of one row before
/// the next. On machines with drifting clocks (shared VMs, turbo
/// transitions) sequential phases can see different effective frequencies,
/// which corrupts cross-row ratios; interleaving gives every row samples
/// from the same clock windows, so each row's best-of comes from a fast
/// window available to all. Honors the shared --wall-clock-ms /
/// --max-ticks budget (one tick per row-rep).
void time_rows(std::vector<TimedRow>& rows, std::vector<double>& bias,
               int sweeps, int reps, robust::RunGuard& guard) {
  using Clock = std::chrono::steady_clock;
  for (int rep = 0; rep < reps; ++rep) {
    for (TimedRow& row : rows) {
      std::fill(bias.begin(), bias.end(), 0.0);
      const Clock::time_point start = Clock::now();
      for (int i = 0; i < sweeps; ++i) {
        row.sweep(bias);
      }
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      row.best_seconds = std::min(row.best_seconds, seconds);
      if (rep == 0) {
        row.result = bias;
      }
      if (guard.tick().has_value()) {
        return;  // budget exhausted: report what we have
      }
    }
  }
}

int run_kernel_mode(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string out_path = args.get_string("out", "BENCH_kernel.json");
  // 100-sweep reps: short enough that a rep fits inside one quiet clock
  // window on shared/virtualized hosts (a 200-sweep rep spans several and
  // lets the row that happens to sustain boost clocks longest — not the
  // faster kernel — win), long enough to amortize the scratch swap.
  int sweeps = static_cast<int>(args.get_long("sweeps", 100));
  const robust::RunControl control = bench::run_control_from_args(args);
  if (control.budget.max_ticks != std::numeric_limits<std::int64_t>::max()) {
    sweeps = static_cast<int>(std::min<std::int64_t>(
        sweeps, std::max<std::int64_t>(1, control.budget.max_ticks)));
  }
  robust::RunGuard guard(control);

  // The setting-2 grid cell: the largest model the table benches sweep.
  const bu::AttackModel attack = bu::build_attack_model(
      grid_params(bu::Setting::kStickyGate), bu::Utility::kRelativeRevenue);
  const mdp::Model& model = attack.model;
  const mdp::CompiledModel& compiled = *attack.compiled;
  const std::span<const double> rewards{compiled.expected_reward(),
                                        compiled.num_state_actions()};

  std::vector<double> bias(model.num_states(), 0.0);
  std::vector<double> q_buf(compiled.num_state_actions(), 0.0);
  // Per-kernel-row Jacobi scratch; deque for stable addresses across
  // push_back (the row lambdas capture pointers into it).
  std::deque<std::vector<double>> scratches;

  std::vector<TimedRow> rows;
  const auto push_row = [&rows](const char* kind, mdp::kernel::Isa isa,
                                std::function<void(std::vector<double>&)> fn) {
    TimedRow row;
    row.kind = kind;
    row.isa = isa;
    row.sweep = std::move(fn);
    rows.push_back(std::move(row));
  };
  push_row("aos", mdp::kernel::Isa::kScalar,
           [&](std::vector<double>& b) { aos_sweep(model, rewards, b); });
  push_row("soa", mdp::kernel::Isa::kScalar,
           [&](std::vector<double>& b) { soa_sweep(compiled, rewards, b); });
  push_row("damped", mdp::kernel::Isa::kScalar, [&](std::vector<double>& b) {
    soa_damped_sweep(compiled, rewards, b);
  });
  // Dispatched-kernel rows: the same greedy sweep lowered onto the backup
  // kernel (Jacobi discipline), once per ISA this build+CPU carries. All
  // kernel rows must agree bit-for-bit with each other (same expression
  // tree per row); they are tolerance-equivalent, not bit-equal, to the
  // Gauss-Seidel rows above.
  for (const mdp::kernel::Isa isa :
       {mdp::kernel::Isa::kScalar, mdp::kernel::Isa::kAvx2,
        mdp::kernel::Isa::kAvx512}) {
    if (!mdp::kernel::isa_available(isa) || !compiled.has_ell()) {
      continue;
    }
    scratches.emplace_back(model.num_states(), 0.0);
    std::vector<double>* scratch = &scratches.back();
    push_row("kernel", isa, [&, scratch, isa](std::vector<double>& b) {
      kernel_jacobi_sweep(compiled, rewards, b, *scratch, q_buf, isa);
      b.swap(*scratch);
    });
  }
  constexpr int kReps = 7;
  time_rows(rows, bias, sweeps, kReps, guard);

  const auto row_rate = [&](const char* kind) {
    for (const TimedRow& row : rows) {
      if (std::string_view(row.kind) == kind) {
        return static_cast<double>(sweeps) / row.best_seconds;
      }
    }
    return 0.0;
  };
  std::vector<const TimedRow*> kernel_rows;
  for (const TimedRow& row : rows) {
    if (std::string_view(row.kind) == "kernel") {
      kernel_rows.push_back(&row);
    }
  }
  const bool bit_identical =
      std::memcmp(rows[0].result.data(), rows[1].result.data(),
                  rows[0].result.size() * sizeof(double)) == 0;
  bool kernel_bit_identical = true;
  for (const TimedRow* row : kernel_rows) {
    for (std::size_t s = 0; s < row->result.size(); ++s) {
      // == (not memcmp): ELL padding may flip a zero's sign.
      if (row->result[s] != kernel_rows.front()->result[s]) {
        kernel_bit_identical = false;
        break;
      }
    }
  }

  const double aos_rate = row_rate("aos");
  const double soa_rate = row_rate("soa");
  const double damped_rate = row_rate("damped");
  const double speedup = soa_rate / aos_rate;
  const double threshold = 1.5;

  // The acceptance row: what auto-dispatch actually picks on this machine,
  // compared against the scalar SoA sweep every solver ran before the
  // kernel layer existed.
  const mdp::kernel::Isa dispatched =
      mdp::kernel::resolve(mdp::kernel::Request::kAuto);
  double dispatched_rate = 0.0;
  for (const TimedRow* row : kernel_rows) {
    if (row->isa == dispatched) {
      dispatched_rate = static_cast<double>(sweeps) / row->best_seconds;
    }
  }
  const double vector_speedup =
      soa_rate > 0.0 ? dispatched_rate / soa_rate : 0.0;
  const double vector_threshold = 1.3;
  // Only gate when a vector ISA is actually available; a scalar-only
  // machine trivially "dispatches" scalar at ~1.0x.
  const bool vector_pass = dispatched == mdp::kernel::Isa::kScalar ||
                           vector_speedup >= vector_threshold;

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"mode\": \"kernel\",\n"
       << "  \"model\": \"bu setting-2 alpha=0.25 beta=0.30 gamma=0.45\",\n"
       << "  \"states\": " << model.num_states() << ",\n"
       << "  \"state_actions\": " << model.num_state_actions() << ",\n"
       << "  \"sweeps_per_rep\": " << sweeps << ",\n"
       << "  \"aos_sweeps_per_sec\": " << aos_rate << ",\n"
       << "  \"soa_sweeps_per_sec\": " << soa_rate << ",\n"
       << "  \"soa_damped_sweeps_per_sec\": " << damped_rate << ",\n"
       << "  \"speedup_soa_vs_aos\": " << speedup << ",\n"
       << "  \"threshold\": " << threshold << ",\n"
       << "  \"pass\": " << (speedup >= threshold ? "true" : "false") << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false")
       << ",\n"
       << "  \"kernel_rows\": [";
  for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
    const double rate =
        static_cast<double>(sweeps) / kernel_rows[i]->best_seconds;
    json << (i == 0 ? "\n" : ",\n") << "    {\"isa\": \""
         << mdp::kernel::to_string(kernel_rows[i]->isa)
         << "\", \"sweeps_per_sec\": " << rate << ", \"speedup_vs_soa\": "
         << (soa_rate > 0.0 ? rate / soa_rate : 0.0) << "}";
  }
  json << "\n  ],\n"
       << "  \"kernel_bit_identical\": "
       << (kernel_bit_identical ? "true" : "false") << ",\n"
       << "  \"dispatched_isa\": \"" << mdp::kernel::to_string(dispatched)
       << "\",\n"
       << "  \"speedup_vector_vs_soa\": " << vector_speedup << ",\n"
       << "  \"vector_threshold\": " << vector_threshold << ",\n"
       << "  \"vector_pass\": " << (vector_pass ? "true" : "false")
       << "\n}\n";
  json.close();

  std::printf(
      "kernel sweep microbench (single thread, %d sweeps/rep, best of %d "
      "interleaved reps)\n"
      "  model: %u states, %zu state-actions\n"
      "  AoS (seed Model path):      %10.1f sweeps/s\n"
      "  SoA (CompiledModel):        %10.1f sweeps/s  (%.2fx%s)\n"
      "  SoA damped-prob column:     %10.1f sweeps/s\n"
      "  bias vectors bit-identical: %s\n",
      sweeps, kReps, model.num_states(), model.num_state_actions(), aos_rate,
      soa_rate, speedup, speedup >= threshold ? ", >= 1.5x target" : "",
      damped_rate, bit_identical ? "yes" : "NO (BUG)");
  for (const TimedRow* row : kernel_rows) {
    const double rate = static_cast<double>(sweeps) / row->best_seconds;
    std::printf("  kernel %-7s (Jacobi):    %10.1f sweeps/s  (%.2fx vs SoA)\n",
                std::string(mdp::kernel::to_string(row->isa)).c_str(), rate,
                soa_rate > 0.0 ? rate / soa_rate : 0.0);
  }
  std::printf(
      "  kernel rows bit-identical:  %s\n"
      "  dispatched ISA: %s  (%.2fx vs scalar SoA%s)\n"
      "  -> %s\n",
      kernel_bit_identical ? "yes" : "NO (BUG)",
      std::string(mdp::kernel::to_string(dispatched)).c_str(), vector_speedup,
      vector_pass ? (dispatched == mdp::kernel::Isa::kScalar
                         ? ""
                         : ", >= 1.3x target")
                  : ", BELOW 1.3x target",
      out_path.c_str());
  return bit_identical && kernel_bit_identical && vector_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bvc::util::ArgParser parser(
      "bench_solver_micro",
      "google-benchmark microbenchmarks of the numerical core");
  bvc::bench::add_budget_args(parser);
  bvc::bench::add_obs_args(parser);
  parser.add({
      {"mode", bvc::util::ArgType::kString, "kernel",
       "run the standalone kernel-sweep comparison instead of "
       "google-benchmark", ""},
      {"out", bvc::util::ArgType::kString, "FILE",
       "kernel mode: JSON results path", "BENCH_kernel.json"},
      {"sweeps", bvc::util::ArgType::kLong, "N",
       "kernel mode: sweeps per repetition", "100"},
  });
  // Everything else belongs to google-benchmark (--benchmark_filter etc.).
  parser.allow_prefix("benchmark_").allow_prefix("v");
  (void)parser.parse(argc, argv);

  // The session must outlive the benchmark run; constructed from the full
  // argv so the manifest records every flag.
  bvc::bench::ObsSession obs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--mode=kernel" ||
        (arg == "--mode" && i + 1 < argc &&
         std::string_view(argv[i + 1]) == "kernel")) {
      return run_kernel_mode(argc, argv);
    }
  }
  // Strip the shared obs flags before google-benchmark sees argv — it
  // rejects arguments it does not recognize.
  const auto is_obs_flag = [](std::string_view arg) {
    for (const std::string_view prefix :
         {"--trace-out", "--trace-jsonl", "--metrics-out", "--manifest-out"}) {
      if (arg == prefix || (arg.size() > prefix.size() &&
                            arg.substr(0, prefix.size()) == prefix &&
                            arg[prefix.size()] == '=')) {
        return true;
      }
    }
    return false;
  };
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (is_obs_flag(argv[i])) {
      // `--flag value` form: swallow the value too.
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
          argv[i + 1][0] != '-') {
        ++i;
      }
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
