// google-benchmark microbenchmarks of the numerical core: model builds,
// relative value iteration, ratio (Dinkelbach) solves, and simulator
// throughput. These guard the performance assumptions behind the table
// benches (a setting-2 Dinkelbach solve must stay ~1 s or the full grids
// become impractical).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bu/attack_analysis.hpp"
#include "btc/selfish_mining.hpp"
#include "mdp/average_reward.hpp"
#include "sim/attack_scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace bvc;

bu::AttackParams grid_params(bu::Setting setting) {
  bu::AttackParams params;
  params.alpha = 0.25;
  params.beta = 0.30;
  params.gamma = 0.45;
  params.setting = setting;
  return params;
}

void BM_BuildAttackModelSetting1(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kNoStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::build_attack_model(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_BuildAttackModelSetting1);

void BM_BuildAttackModelSetting2(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::build_attack_model(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_BuildAttackModelSetting2);

void BM_RviSweepSetting2(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kStickyGate), bu::Utility::kRelativeRevenue);
  mdp::AverageRewardOptions options;
  options.max_sweeps = static_cast<int>(state.range(0));
  options.tolerance = 1e-30;  // force exactly max_sweeps sweeps
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mdp::maximize_average_reward(model.model, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          model.model.num_states());
}
BENCHMARK(BM_RviSweepSetting2)->Arg(10);

void BM_SolveRelativeRevenueSetting1(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kNoStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::analyze(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveRelativeRevenueSetting1);

void BM_SolveRelativeRevenueSetting2(benchmark::State& state) {
  const bu::AttackParams params = grid_params(bu::Setting::kStickyGate);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::analyze(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveRelativeRevenueSetting2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_SolveSelfishMining(benchmark::State& state) {
  btc::SmParams params;
  params.alpha = 0.35;
  params.gamma_tie = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        btc::analyze_sm(params, bu::Utility::kRelativeRevenue));
  }
}
BENCHMARK(BM_SolveSelfishMining);

void BM_ScenarioSimThroughput(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kNoStickyGate), bu::Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);
  bench::require_solved(analysis.status, "scenario-sim setup solve",
                        /*fatal=*/false);
  sim::AttackScenarioSim simulator(model, sim::ScenarioOptions{});
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulator.run(analysis.policy, 100'000, rng));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_ScenarioSimThroughput)->Unit(benchmark::kMillisecond);

void BM_PolicyRollout(benchmark::State& state) {
  const bu::AttackModel model = bu::build_attack_model(
      grid_params(bu::Setting::kNoStickyGate), bu::Utility::kRelativeRevenue);
  const bu::AnalysisResult analysis = bu::analyze(model);
  bench::require_solved(analysis.status, "rollout setup solve",
                        /*fatal=*/false);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bu::rollout_policy(model, analysis.policy, 100'000, rng));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_PolicyRollout)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
