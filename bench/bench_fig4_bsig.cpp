// Regenerates Figure 4: the block size increasing game on miner groups
// m = (10%, 20%, 30%, 40%) — round 1 raises the block size and squeezes
// group 1 out; in round 2 groups 2 and 3 vote against (if group 2 left,
// group 4 could squeeze group 3 out too) and the game terminates.
#include <cstdio>

#include "bench_common.hpp"
#include "games/block_size_game.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace bvc::games;
  bvc::util::ArgParser parser("bench_fig4_bsig", "Regenerate Figure 4: the block size increasing game");
  bvc::bench::add_standard_bench_args(parser);
  const bvc::CliArgs args = parser.parse(argc, argv);
  bvc::bench::ObsSession obs(argc, argv);

  const std::vector<MinerGroup> groups = {
      {0.10, 1.0}, {0.20, 2.0}, {0.30, 4.0}, {0.40, 8.0}};
  const BlockSizeIncreasingGame game(groups);

  std::printf(
      "Figure 4 — block size increasing game, m = (10, 20, 30, 40)%%\n"
      "MPBs = (1, 2, 4, 8) MB\n\n");
  bvc::mdp::SolverConfig config;
  config.control = bvc::bench::run_control_from_args(args);
  const auto outcome = game.play(config);
  bvc::bench::require_solved(outcome, "block size increasing game playout",
                             /*fatal=*/false);
  std::printf("%s\n", game.describe(outcome).c_str());

  std::printf("stable suffixes: ");
  for (std::size_t j = 0; j < game.num_groups(); ++j) {
    std::printf("{%zu..%zu}:%s ", j + 1, game.num_groups(),
                game.is_stable_suffix(j) ? "stable" : "unstable");
  }
  std::printf("\n\nutilities: ");
  for (std::size_t i = 0; i < outcome.utilities.size(); ++i) {
    std::printf("group %zu -> %.3f  ", i + 1, outcome.utilities[i]);
  }
  std::printf(
      "\n\nReading (Analytical Result 5): group 1 is forced out of business"
      "\neven though 60%% of the power would lose from raising further —\n"
      "emergent consensus fails unless the initial groups already form a\n"
      "stable set.\n");
  return 0;
}
