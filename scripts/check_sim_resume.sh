#!/usr/bin/env bash
# Crash-safe simulation-campaign test (registered as a `sim`-labeled ctest
# case check_sim_resume): proves the replica engine's acceptance scenario on
# the real bench binary —
#
#   1. an uninterrupted `bench_degraded_network --replicas 3` run is the
#      baseline stdout (every cell averaged over 3 journaled replicas);
#   2. a checkpointed run is SIGKILLed mid-campaign via the deterministic
#      crash hook (BVC_CRASH_AFTER_CELLS), leaving a well-formed journal
#      with exactly the replicas that finished;
#   3. resuming from that journal replays the finished replicas and
#      computes the rest — stdout must be BYTE-IDENTICAL to the baseline;
#   4. a sharded run (--shards 2) with a crash-injected worker is restarted
#      by the supervisor and again reproduces the baseline byte for byte;
#   5. the same SIGKILL -> --resume round trip holds at topology scale: a
#      1000-node gossip campaign (--nodes 1000) is killed mid-run and the
#      resumed stdout is byte-identical to its own uninterrupted baseline.
#
# Usage: scripts/check_sim_resume.sh [build-dir]   (default: build-ci)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
[[ -d "$build" ]] || build="$repo/$1"
bench="$build/bench/bench_degraded_network"
[[ -x "$bench" ]] || {
  echo "check_sim_resume.sh: $bench not built" >&2
  exit 1
}

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# The injection hooks must never leak in from the caller's environment.
unset BVC_CRASH_AFTER_CELLS BVC_CRASH_SHARD

flags=(--blocks 300 --replicas 3 --threads 2)

# 1. Baseline: one uninterrupted run (15 cells x 3 replicas).
"$bench" "${flags[@]}" >"$out/baseline.txt" 2>"$out/baseline.err"

# 2. Kill the campaign after 7 journaled replicas (SIGKILL, as the OOM
# killer would). The journal must survive, well-formed, with exactly 7
# records.
set +e
BVC_CRASH_AFTER_CELLS=7 "$bench" "${flags[@]}" \
  --checkpoint "$out/ck.jsonl" >"$out/crashed.txt" 2>"$out/crashed.err"
status=$?
set -e
[[ $status -eq 137 ]] || {
  echo "check_sim_resume.sh: expected SIGKILL death (137), got $status" >&2
  cat "$out/crashed.err" >&2
  exit 1
}
replicas=$(wc -l <"$out/ck.jsonl")
[[ $replicas -eq 7 ]] || {
  echo "check_sim_resume.sh: journal has $replicas replicas, expected 7" >&2
  exit 1
}

# 3. Resume: the 7 journaled replicas replay (sim_restore), the rest
# compute; stdout must be byte-identical to the uninterrupted baseline.
"$bench" "${flags[@]}" --checkpoint "$out/ck.jsonl" --resume \
  >"$out/resumed.txt" 2>"$out/resumed.err"
diff -u "$out/baseline.txt" "$out/resumed.txt" || {
  echo "check_sim_resume.sh: resumed output differs from baseline" >&2
  exit 1
}
grep -q "7 cells resumed" "$out/resumed.err" || {
  echo "check_sim_resume.sh: resume did not replay the journal:" >&2
  cat "$out/resumed.err" >&2
  exit 1
}

# 4. Sharded campaign with a crash-injected worker: shard 0's first
# incarnation dies after 3 replicas; the supervisor restarts it and the
# parent's render pass reproduces the baseline byte for byte.
BVC_CRASH_AFTER_CELLS=3 BVC_CRASH_SHARD=0 "$bench" "${flags[@]}" \
  --shards 2 --checkpoint "$out/ck2.jsonl" \
  >"$out/sharded.txt" 2>"$out/sharded.err"
diff -u "$out/baseline.txt" "$out/sharded.txt" || {
  echo "check_sim_resume.sh: sharded output differs from baseline" >&2
  cat "$out/sharded.err" >&2
  exit 1
}

python3 - "$out/ck2.jsonl.merged.json" <<'EOF'
import json, sys

manifest = json.load(open(sys.argv[1]))
assert manifest["shards"] == 2, manifest
assert manifest["total_restarts"] >= 1, \
    f"injected crash not recorded: {manifest['total_restarts']} restarts"
assert not manifest["degraded"], manifest
assert all(s["completed"] for s in manifest["shard_outcomes"]), manifest
print(f"check_sim_resume: merged {manifest['merge']['records']} replicas "
      f"from {manifest['shards']} shards, "
      f"{manifest['total_restarts']} restart(s)")
EOF

# 5. Thousand-node scale: the acceptance scenario again, but with every
# cell gossiping through a 1000-node random topology (miners at nodes
# 0..4, everyone else relay-only). Crash after 5 journaled replicas,
# resume, and demand byte-identical stdout.
flags_big=(--blocks 40 --replicas 2 --nodes 1000 --threads 2)

"$bench" "${flags_big[@]}" >"$out/big-baseline.txt" 2>"$out/big-baseline.err"

set +e
BVC_CRASH_AFTER_CELLS=5 "$bench" "${flags_big[@]}" \
  --checkpoint "$out/big-ck.jsonl" \
  >"$out/big-crashed.txt" 2>"$out/big-crashed.err"
status=$?
set -e
[[ $status -eq 137 ]] || {
  echo "check_sim_resume.sh: expected SIGKILL death at scale (137), got $status" >&2
  cat "$out/big-crashed.err" >&2
  exit 1
}

"$bench" "${flags_big[@]}" --checkpoint "$out/big-ck.jsonl" --resume \
  >"$out/big-resumed.txt" 2>"$out/big-resumed.err"
diff -u "$out/big-baseline.txt" "$out/big-resumed.txt" || {
  echo "check_sim_resume.sh: 1000-node resumed output differs from baseline" >&2
  exit 1
}
grep -q "5 cells resumed" "$out/big-resumed.err" || {
  echo "check_sim_resume.sh: 1000-node resume did not replay the journal:" >&2
  cat "$out/big-resumed.err" >&2
  exit 1
}

echo "check_sim_resume.sh: OK (resume, sharded, and 1000-node campaigns byte-identical)"
