#!/usr/bin/env bash
# Crash-safe sweep end-to-end test (registered as the `shard`-labeled ctest
# case check_resume): proves the ISSUE's acceptance scenario on a real bench
# binary —
#
#   1. an uninterrupted bench_table2 run is the baseline stdout;
#   2. a checkpointed run is SIGKILLed mid-sweep via the deterministic
#      crash hook (BVC_CRASH_AFTER_CELLS), leaving a well-formed journal
#      with exactly the cells that finished;
#   3. resuming from that journal replays the finished cells and computes
#      the rest — stdout must be BYTE-IDENTICAL to the baseline;
#   4. a sharded run (--shards 2) whose worker 0 is crash-injected is
#      restarted by the supervisor, completes with zero lost cells, again
#      byte-identical, and the merged manifest records the restart.
#
# Usage: scripts/check_resume.sh [build-dir]   (default: build-ci)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
[[ -d "$build" ]] || build="$repo/$1"
bench="$build/bench/bench_table2"
[[ -x "$bench" ]] || {
  echo "check_resume.sh: $bench not built" >&2
  exit 1
}

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

# The injection hooks must never leak in from the caller's environment.
unset BVC_CRASH_AFTER_CELLS BVC_CRASH_SHARD

flags=(--quick --ad 3 --threads 2)

# 1. Baseline: one uninterrupted run.
"$bench" "${flags[@]}" >"$out/baseline.txt" 2>"$out/baseline.err"

# 2. Kill the sweep after 5 completed cells (SIGKILL, as the OOM killer
# would). The journal must survive, well-formed, with exactly 5 records.
set +e
BVC_CRASH_AFTER_CELLS=5 "$bench" "${flags[@]}" \
  --checkpoint "$out/ck.jsonl" >"$out/crashed.txt" 2>"$out/crashed.err"
status=$?
set -e
[[ $status -eq 137 ]] || {
  echo "check_resume.sh: expected SIGKILL death (137), got $status" >&2
  cat "$out/crashed.err" >&2
  exit 1
}
[[ -f "$out/ck.jsonl" ]] || {
  echo "check_resume.sh: crashed run left no journal" >&2
  exit 1
}
cells=$(wc -l <"$out/ck.jsonl")
[[ $cells -eq 5 ]] || {
  echo "check_resume.sh: journal has $cells cells, expected 5" >&2
  exit 1
}

# 3. Resume: the 5 journaled cells replay, the rest compute; output must be
# byte-identical to the uninterrupted baseline.
"$bench" "${flags[@]}" --checkpoint "$out/ck.jsonl" --resume \
  >"$out/resumed.txt" 2>"$out/resumed.err"
diff -u "$out/baseline.txt" "$out/resumed.txt" || {
  echo "check_resume.sh: resumed output differs from baseline" >&2
  exit 1
}

# 4. Sharded sweep with a crash-injected worker: shard 0's first
# incarnation dies after 3 cells; the supervisor restarts it (respawns
# scrub the injection env), every cell lands in the merged journal, and the
# parent's render pass reproduces the baseline byte-for-byte.
BVC_CRASH_AFTER_CELLS=3 BVC_CRASH_SHARD=0 "$bench" "${flags[@]}" \
  --shards 2 --checkpoint "$out/ck2.jsonl" \
  >"$out/sharded.txt" 2>"$out/sharded.err"
diff -u "$out/baseline.txt" "$out/sharded.txt" || {
  echo "check_resume.sh: sharded output differs from baseline" >&2
  cat "$out/sharded.err" >&2
  exit 1
}

python3 - "$out/ck2.jsonl.merged.json" <<'EOF'
import json, sys

manifest = json.load(open(sys.argv[1]))
assert manifest["shards"] == 2, manifest
assert manifest["total_restarts"] >= 1, \
    f"injected crash not recorded: {manifest['total_restarts']} restarts"
assert not manifest["cancelled"], manifest
assert not manifest["degraded"], manifest
assert manifest["merge"]["records"] > 0, manifest
outcomes = {s["index"]: s for s in manifest["shard_outcomes"]}
assert outcomes[0]["restarts"] >= 1, outcomes  # the crashed shard
assert all(s["completed"] for s in outcomes.values()), outcomes
print(f"check_resume: merged {manifest['merge']['records']} cells from "
      f"{manifest['shards']} shards, {manifest['total_restarts']} restart(s)")
EOF

echo "check_resume.sh: OK (resume and sharded outputs byte-identical)"
