#!/usr/bin/env bash
# Observability smoke test (also registered as the `obs`-labeled ctest case
# check_trace): runs one quick multithreaded bench with every obs sink
# enabled and validates the artifacts:
#
#   * --trace-out is well-formed Chrome trace-event JSON (loadable in
#     chrome://tracing / https://ui.perfetto.dev) with "ph":"X" spans from
#     at least three instrumented subsystems (solver, batch/pool, cache);
#   * --trace-jsonl is one JSON object per line, same event count;
#   * --metrics-out parses and carries the mdp.cache.* counters;
#   * --manifest-out parses and embeds git SHA, argv, and the metrics.
#
# Then the telemetry plane:
#
#   * a run with every sink enabled prints byte-identical stdout to a
#     plain run (all obs chatter goes to artifacts or stderr);
#   * a 2-shard supervised run produces ONE merged metrics snapshot and
#     ONE merged Chrome trace spanning both workers (two distinct pid
#     lanes, labeled process_name rows, summed counters).
#
# Usage: scripts/check_trace.sh [build-dir]   (default: build-ci)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
[[ -d "$build" ]] || build="$repo/$1"
bench="$build/bench/bench_table2"
[[ -x "$bench" ]] || {
  echo "check_trace.sh: $bench not built" >&2
  exit 1
}

out="$(mktemp -d)"
trap 'rm -rf "$out"' EXIT

"$bench" --quick --threads 2 \
  --trace-out="$out/trace.json" \
  --trace-jsonl="$out/trace.jsonl" \
  --metrics-out="$out/metrics.json" \
  --manifest-out="$out/manifest.json" >"$out/stdout.txt"

python3 - "$out" <<'EOF'
import json, sys, pathlib

out = pathlib.Path(sys.argv[1])

trace = json.loads((out / "trace.json").read_text())
events = trace["traceEvents"]
assert events, "trace has no events"
spans = [e for e in events if e.get("ph") == "X"]
cats = {e["cat"] for e in spans}
# The acceptance bar: spans from the solver, the batch engine / thread
# pool, and the model cache must all appear in one multithreaded run.
required = {"solver", "cache"}
assert required <= cats, f"missing span categories: {required - cats}"
assert {"batch", "pool"} & cats, f"no batch/pool spans in {cats}"
for event in events:
    for key in ("name", "cat", "ts", "pid", "tid"):
        assert key in event, f"event missing {key}: {event}"

lines = (out / "trace.jsonl").read_text().splitlines()
assert len(lines) == len(events), (len(lines), len(events))
for line in lines:
    json.loads(line)

metrics = json.loads((out / "metrics.json").read_text())
for section in ("counters", "gauges", "histograms"):
    assert section in metrics, f"metrics missing {section}"
lookups = metrics["counters"].get("mdp.cache.hits", 0) + \
          metrics["counters"].get("mdp.cache.misses", 0)
assert lookups > 0, "cache instrumentation recorded no lookups"

manifest = json.loads((out / "manifest.json").read_text())
for key in ("binary", "args", "git_sha", "metrics", "hardware_threads"):
    assert key in manifest, f"manifest missing {key}"
assert manifest["git_sha"], "manifest git_sha is empty"

print(f"check_trace: {len(events)} events, categories {sorted(cats)}, "
      f"{lookups} cache lookups")
EOF

# Telemetry must be invisible on stdout: a plain run and the fully
# instrumented run above print byte-identical tables.
"$bench" --quick --threads 2 >"$out/plain.txt"
cmp "$out/plain.txt" "$out/stdout.txt" || {
  echo "check_trace.sh: obs sinks changed bench stdout" >&2
  diff "$out/plain.txt" "$out/stdout.txt" >&2 || true
  exit 1
}

# 2-shard supervised run: the parent merges the workers' periodic
# telemetry flushes into ONE snapshot and ONE multi-pid Chrome trace.
"$bench" --quick --threads 2 --shards 2 \
  --checkpoint "$out/shard.ck.jsonl" \
  --telemetry-interval-ms 100 \
  --trace-out="$out/merged.trace.json" \
  --metrics-out="$out/merged.metrics.json" \
  --metrics-prom-out="$out/merged.prom" \
  >"$out/shard-stdout.txt" 2>"$out/shard-stderr.txt" || {
  cat "$out/shard-stderr.txt" >&2
  exit 1
}

python3 - "$out" <<'EOF'
import json, sys, pathlib

out = pathlib.Path(sys.argv[1])

trace = json.loads((out / "merged.trace.json").read_text())
events = trace["traceEvents"]
span_pids = {e["pid"] for e in events if e.get("ph") == "X"}
assert len(span_pids) >= 2, \
    f"merged trace has {len(span_pids)} pid lane(s), expected >= 2: {span_pids}"
lanes = {e["args"]["name"] for e in events if e.get("name") == "process_name"}
assert len(lanes) >= 2, f"expected >= 2 labeled lanes, got {lanes}"
assert any("shard-0" in lane for lane in lanes), lanes
assert any("shard-1" in lane for lane in lanes), lanes

metrics = json.loads((out / "merged.metrics.json").read_text())
lookups = metrics["counters"].get("mdp.cache.hits", 0) + \
          metrics["counters"].get("mdp.cache.misses", 0)
assert lookups > 0, "merged snapshot lost the workers' cache counters"

prom = (out / "merged.prom").read_text()
assert "mdp_cache_" in prom, "prometheus export missing merged counters"

print(f"check_trace: merged {len(span_pids)} worker pid lanes "
      f"({sorted(lanes)}), {lookups} cache lookups after the merge")
EOF

echo "check_trace.sh: OK"
