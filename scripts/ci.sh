#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build everything (libraries, tests,
# bench binaries), run the full ctest suite, then smoke-test the
# observability layer end to end — a real multithreaded bench run with
# --trace-out/--metrics-out/--manifest-out, validated by
# scripts/check_trace.sh (JSON well-formedness + spans from the solver,
# batch/pool, and cache subsystems).
#
#   scripts/ci.sh                # everything, default build dir build-ci
#   scripts/ci.sh -R Ratio       # forward extra args to ctest
#   BVC_BUILD_DIR=build-dev scripts/ci.sh   # reuse an existing build dir
#
# Sanitizer tiers are separate (scripts/sanitize.sh); this script is the
# fast gate every change must pass.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BVC_BUILD_DIR:-build-ci}"

# -Werror=deprecated-declarations keeps the retired per-solver option
# structs (AverageRewardOptions & co., now [[deprecated]] aliases in
# mdp/solver_config.hpp) from creeping back into the tree: any in-repo use
# fails this gate, while out-of-tree builds still get a plain warning.
cmake -S "$repo" -B "$repo/$build" \
  -DCMAKE_CXX_FLAGS="-Werror=deprecated-declarations" >/dev/null
cmake --build "$repo/$build" -j "$(nproc)"

ctest --test-dir "$repo/$build" --output-on-failure "$@"

# Observability smoke: one quick two-threaded table run with every obs sink
# enabled must produce loadable artifacts with spans from >= 3 subsystems.
"$repo/scripts/check_trace.sh" "$repo/$build"

# Telemetry-plane gate, surfaced as its own named step: the obs-labeled
# suite (event log, Prometheus exposition, cross-process telemetry merge,
# plus the check_trace and check_prometheus end-to-end scripts — live bvcd
# scrape, bvc-cli merge, 2-shard merged trace/metrics, byte-stable bench
# stdout) must pass in isolation, not just inside the full suite above.
ctest --test-dir "$repo/$build" --output-on-failure -L obs

# Crash-safety gate, surfaced as its own named step: the shard-labeled
# tests (journal/supervisor unit tests + scripts/check_resume.sh, which
# SIGKILLs bench_table2 mid-sweep and demands a byte-identical recovery)
# must pass in isolation, not just inside the full suite above.
ctest --test-dir "$repo/$build" --output-on-failure -L shard

# Simulation gate: the sim-labeled suite (event engine, fixed-seed
# regression vectors, replica determinism incl. threads-1-vs-8 and
# sharded-vs-unsharded, network sim + relay topologies, and
# scripts/check_sim_resume.sh's SIGKILL -> byte-identical resume) must pass
# in isolation, not just inside the full suite above.
ctest --test-dir "$repo/$build" --output-on-failure -L sim

# Kernel dispatch gate: the kernel-labeled suite (ISA equivalence, fused
# sweep bit-identity, warm starts, NUMA smoke) must hold both with the
# vector kernels forced off and under auto dispatch. Vector-ISA cases
# GTEST_SKIP on machines without AVX2/AVX-512, so both passes stay green
# (not red) on any hardware; BVC_KERNEL=scalar additionally proves the
# env-var override path end to end.
BVC_KERNEL=scalar ctest --test-dir "$repo/$build" --output-on-failure -L kernel
BVC_KERNEL=auto ctest --test-dir "$repo/$build" --output-on-failure -L kernel

echo "ci.sh: all checks passed"
