#!/usr/bin/env bash
# Solve-service end-to-end test (registered as the `svc`-labeled ctest case
# check_service): proves the service stack serves the SAME numbers as the
# in-process bench, including across a real daemon kill —
#
#   1. an uninterrupted `bench_table2 --quick --ad 3` run produces the
#      baseline CSV (setting 1, 21 grid cells);
#   2. bvcd is started on an ephemeral port, the same grid is submitted as
#      one job through bvc-cli, and the polled result's utility values must
#      match the baseline CSV cell for cell;
#   3. a second daemon is crash-injected via BVC_CRASH_AFTER_CELLS: it is
#      SIGKILLed by the journal hook mid-grid, leaving exactly N journaled
#      cells; a restarted daemon on the same state dir RESUMES the job, and
#      the final records must be identical to the uninterrupted service
#      run's (wall_clock_ns aside — replayed cells keep their original
#      timings, resumed-then-solved cells measure their own);
#   4. net-sim leg: a replica campaign journaled by bench_degraded_network
#      is re-run as a `net-sim` job; the records streamed by `bvc-cli tail`
#      must match the bench journal cell for cell (sim records carry no
#      wall-clock, so byte-exact values), and a crash-injected daemon that
#      dies mid-campaign must serve the identical records after restart.
#
# Usage: scripts/check_service.sh [build-dir]   (default: build-ci)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
[[ -d "$build" ]] || build="$repo/$1"
bench="$build/bench/bench_table2"
sim_bench="$build/bench/bench_degraded_network"
bvcd="$build/src/svc/bvcd"
cli="$build/src/svc/bvc-cli"
for bin in "$bench" "$sim_bench" "$bvcd" "$cli"; do
  [[ -x "$bin" ]] || {
    echo "check_service.sh: $bin not built" >&2
    exit 1
  }
done

out="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$out"
}
trap cleanup EXIT

# The injection hook must never leak in from the caller's environment.
unset BVC_CRASH_AFTER_CELLS BVC_CRASH_SHARD

# The same grid, twice: once through the bench, once through the service.
cat >"$out/job.json" <<'EOF'
{"kind": "bu-attack",
 "utility": "relative-revenue",
 "grid": {"alphas": [0.10, 0.15, 0.20, 0.25],
          "ratios": [[3, 2], [1, 1], [2, 3], [1, 2], [1, 3], [1, 4]],
          "ad": 3, "setting": 1}}
EOF

# 1. Baseline: the in-process bench with the identical grid.
"$bench" --quick --ad 3 --threads 2 --csv "$out/baseline.csv" \
  >"$out/baseline.txt" 2>/dev/null

start_daemon() {  # start_daemon <state-dir> [env VAR=...]
  local state="$1"; shift
  rm -f "$out/port.txt"
  env "$@" "$bvcd" --port-file "$out/port.txt" --state-dir "$state" \
    --threads 2 >>"$out/bvcd.log" 2>&1 &
  daemon_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$out/port.txt" ]] && return 0
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
  done
  echo "check_service.sh: bvcd did not start" >&2
  cat "$out/bvcd.log" >&2
  exit 1
}

stop_daemon() {
  kill "$daemon_pid" 2>/dev/null || true
  wait "$daemon_pid" 2>/dev/null || true
  daemon_pid=""
}

# 2. Serve the grid and diff against the baseline CSV.
start_daemon "$out/state1"
"$cli" submit --port-file "$out/port.txt" --file "$out/job.json" \
  >"$out/submit1.json"
"$cli" result j1 --port-file "$out/port.txt" --timeout 600 \
  >"$out/result1.json"
stop_daemon

python3 - "$out/baseline.csv" "$out/result1.json" <<'EOF'
import csv, json, sys

# Baseline cells keyed by (alpha, beta) to 4 decimals, u1 to 6 decimals.
baseline = {}
with open(sys.argv[1]) as f:
    for row in csv.DictReader(f):
        if row["setting"] == "1":
            baseline[(row["alpha"], row["beta"])] = float(row["u1"])
assert len(baseline) == 21, f"expected 21 baseline cells, got {len(baseline)}"

result = json.load(open(sys.argv[2]))
assert result["state"] == "done", result["state"]
assert result["completed"] == 21, result
for record in result["records"]:
    fields = dict(part.split("=", 1)
                  for part in record["key"].split("|")[1:] if "=" in part)
    key = (f"{float(fields['alpha']):.4f}", f"{float(fields['beta']):.4f}")
    value = dict(record["values"])["utility_value"]
    assert key in baseline, f"service cell {key} not in baseline CSV"
    assert abs(value - baseline[key]) < 5e-7, \
        f"cell {key}: service {value!r} vs bench {baseline[key]!r}"
print(f"check_service: {len(result['records'])} service cells match the "
      "bench CSV")
EOF

# 3. Crash leg: the journal hook SIGKILLs the daemon after 5 journaled
# cells; the job is mid-grid when the process dies.
start_daemon "$out/state2" BVC_CRASH_AFTER_CELLS=5
"$cli" submit --port-file "$out/port.txt" --file "$out/job.json" \
  >"$out/submit2.json"
set +e
wait "$daemon_pid"
status=$?
set -e
daemon_pid=""
[[ $status -eq 137 ]] || {
  echo "check_service.sh: expected SIGKILL death (137), got $status" >&2
  cat "$out/bvcd.log" >&2
  exit 1
}
cells=$(wc -l <"$out/state2/job-j1.cells.jsonl")
[[ $cells -eq 5 ]] || {
  echo "check_service.sh: journal has $cells cells, expected 5" >&2
  exit 1
}

# Restart WITHOUT the injection env: the daemon must resume j1 from the
# journal and finish the remaining cells.
start_daemon "$out/state2"
"$cli" result j1 --port-file "$out/port.txt" --timeout 600 \
  >"$out/result2.json"
stop_daemon

python3 - "$out/result1.json" "$out/result2.json" <<'EOF'
import json, sys

def canonical(path):
    result = json.load(open(path))
    assert result["state"] == "done", (path, result["state"])
    cells = {}
    for record in result["records"]:
        values = [(n, v) for n, v in record["values"] if n != "wall_clock_ns"]
        cells[record["key"]] = (record["status"], values)
    return result, cells

first, first_cells = canonical(sys.argv[1])
second, second_cells = canonical(sys.argv[2])
assert second["resumed"] >= 5, \
    f"restarted daemon resumed {second['resumed']} cells, expected >= 5"
assert first_cells == second_cells, "post-crash results differ"
print(f"check_service: kill/restart reproduced all {len(second_cells)} "
      f"cells ({second['resumed']} resumed from the journal)")
EOF

# 4. net-sim leg. The bench journals a replica campaign; the same campaign
# submitted as a net-sim job must stream the identical records. The job's
# network below is bench_degraded_network's make_network() with an empty
# fault plan — the bench's "no faults (baseline)" cell — so the canonical
# replica keys (config digest + blocks/seed/rep) coincide.
"$sim_bench" --blocks 200 --replicas 4 --threads 2 \
  --checkpoint "$out/sim-ck.jsonl" >"$out/sim-bench.txt" 2>/dev/null

cat >"$out/netsim.json" <<'EOF'
{"kind": "net-sim", "blocks": 200, "seed": 42, "replicas": 4,
 "net": {"block_interval": 600,
         "miners": [
  {"name": "m0", "power": 0.2, "block_size": 8000000, "bandwidth": 1000000,
   "latency": 2.0, "eb": 32000000, "mg": 32000000},
  {"name": "m1", "power": 0.2, "block_size": 8000000, "bandwidth": 1000000,
   "latency": 2.0, "eb": 32000000, "mg": 32000000},
  {"name": "m2", "power": 0.2, "block_size": 8000000, "bandwidth": 1000000,
   "latency": 2.0, "eb": 32000000, "mg": 32000000},
  {"name": "m3", "power": 0.2, "block_size": 8000000, "bandwidth": 1000000,
   "latency": 2.0, "eb": 32000000, "mg": 32000000},
  {"name": "m4", "power": 0.2, "block_size": 8000000, "bandwidth": 1000000,
   "latency": 2.0, "eb": 32000000, "mg": 32000000}]}}
EOF

start_daemon "$out/state3"
"$cli" submit --port-file "$out/port.txt" --file "$out/netsim.json" \
  >"$out/submit3.json"
# tail streams each finished replica exactly once via the ?offset cursor.
"$cli" tail j1 --port-file "$out/port.txt" --timeout 600 \
  >"$out/tail3.jsonl"
"$cli" result j1 --port-file "$out/port.txt" --timeout 600 \
  >"$out/result3.json"
stop_daemon

python3 - "$out/sim-ck.jsonl" "$out/tail3.jsonl" "$out/result3.json" <<'EOF'
import json, sys

# The bench journal, keyed by canonical replica key.
bench = {}
with open(sys.argv[1]) as f:
    for line in f:
        record = json.loads(line)
        bench[record["key"]] = record["values"]

tail = [json.loads(line) for line in open(sys.argv[2])]
assert len(tail) == 4, f"tail streamed {len(tail)} records, expected 4"
assert len({r["key"] for r in tail}) == 4, "tail repeated a record"

result = json.load(open(sys.argv[3]))
assert result["state"] == "done", result["state"]
assert result["kind"] == "net-sim", result
assert result["completed"] == 4, result

for record in tail + result["records"]:
    key = record["key"]
    assert key in bench, f"service replica {key} not in the bench journal"
    values = dict(record["values"])
    assert values == bench[key], \
        f"replica {key}: service {values!r} vs bench {bench[key]!r}"
print(f"check_service: net-sim job matches the bench journal cell for cell "
      f"({len(tail)} records tailed)")
EOF

# Crash the daemon two replicas into the campaign, then restart: the
# resumed job must serve records identical to the uninterrupted service
# run's (sim records carry no wall-clock, so the match is exact).
start_daemon "$out/state4" BVC_CRASH_AFTER_CELLS=2
"$cli" submit --port-file "$out/port.txt" --file "$out/netsim.json" \
  >"$out/submit4.json"
set +e
wait "$daemon_pid"
status=$?
set -e
daemon_pid=""
[[ $status -eq 137 ]] || {
  echo "check_service.sh: expected net-sim SIGKILL death (137), got $status" >&2
  cat "$out/bvcd.log" >&2
  exit 1
}

start_daemon "$out/state4"
"$cli" result j1 --port-file "$out/port.txt" --timeout 600 \
  >"$out/result4.json"
stop_daemon

python3 - "$out/result3.json" "$out/result4.json" <<'EOF'
import json, sys

def cells(path):
    result = json.load(open(path))
    assert result["state"] == "done", (path, result["state"])
    return result, {r["key"]: (r["status"], r["values"])
                    for r in result["records"]}

first, first_cells = cells(sys.argv[1])
second, second_cells = cells(sys.argv[2])
assert second["resumed"] >= 2, \
    f"restarted daemon resumed {second['resumed']} replicas, expected >= 2"
assert first_cells == second_cells, "post-crash net-sim results differ"
print(f"check_service: net-sim kill/restart reproduced all "
      f"{len(second_cells)} replicas ({second['resumed']} resumed)")
EOF

echo "check_service.sh: OK (service matches bench; crash/restart resumes)"
