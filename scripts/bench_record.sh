#!/usr/bin/env bash
# Re-records the committed kernel microbenchmark baseline: builds
# bench_solver_micro, runs its --mode=kernel AoS-vs-SoA sweep comparison,
# and rewrites BENCH_kernel.json at the repo root. Run on a quiet machine
# (the bench takes best-of-5, but a loaded box still skews the numbers)
# and commit the refreshed JSON together with the change that moved them.
#
#   scripts/bench_record.sh              # default build dir build-ci
#   BVC_BUILD_DIR=build scripts/bench_record.sh
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BVC_BUILD_DIR:-build-ci}"

cmake -S "$repo" -B "$repo/$build" >/dev/null
cmake --build "$repo/$build" -j "$(nproc)" --target bench_solver_micro

"$repo/$build/bench/bench_solver_micro" --mode=kernel \
  --out="$repo/BENCH_kernel.json"

echo "bench_record.sh: wrote $repo/BENCH_kernel.json"
