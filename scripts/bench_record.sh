#!/usr/bin/env bash
# Re-records the committed kernel microbenchmark baseline: builds
# bench_solver_micro, runs its --mode=kernel comparison (AoS vs SoA vs the
# fused vector sweep, one row per ISA the machine can run), and rewrites
# BENCH_kernel.json at the repo root. Rows are timed interleaved (reps
# round-robin across rows) so slow clock windows hit every row equally;
# still, run on a quiet machine and commit the refreshed JSON together
# with the change that moved the numbers. The JSON records the dispatched
# ISA and its speedup over the scalar SoA sweep; the bench exits nonzero
# if a vector ISA dispatches below the 1.3x acceptance floor.
#
#   scripts/bench_record.sh              # default build dir build-ci
#   BVC_BUILD_DIR=build scripts/bench_record.sh
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BVC_BUILD_DIR:-build-ci}"

cmake -S "$repo" -B "$repo/$build" >/dev/null
cmake --build "$repo/$build" -j "$(nproc)" --target bench_solver_micro

"$repo/$build/bench/bench_solver_micro" --mode=kernel \
  --out="$repo/BENCH_kernel.json"

echo "bench_record.sh: wrote $repo/BENCH_kernel.json"
