#!/usr/bin/env bash
# Tier-2 check: build the whole tree under sanitizers and run the full test
# suite. Slower than the tier-1 build, so each tier lives in its own build
# directory and is run on demand:
#
#   scripts/sanitize.sh                  # ASan+UBSan: configure+build+ctest
#   scripts/sanitize.sh address -R Fault # same, forwarding args to ctest
#   scripts/sanitize.sh thread           # TSan over the full suite
#   scripts/sanitize.sh thread -L parallel   # TSan, parallel-labeled only
#
# The optional first argument picks the tier (address | thread, default
# address — matches the historical behaviour); everything after it is
# forwarded to ctest. BVC_SANITIZE=thread on the cmake line selects TSan
# (see the top-level CMakeLists.txt).
#
# Every tier runs the FULL ctest suite, so the CompiledModel/Model
# equivalence tests (test_compiled_model) run under each sanitizer, and the
# thread tier additionally exercises the shared ModelCache under concurrent
# lookups via the parallel-labeled test_model_cache. The address tier also
# covers the shard-labeled crash-safety suite (test_checkpoint +
# check_resume): the kill-mid-sweep -> resume scenario runs once under
# ASan/UBSan here, on top of the plain-build run in ci.sh. The thread tier
# additionally re-runs the sim-labeled suite in isolation so
# sim::run_replicas' multi-threaded replica fan-out (test_sim_replicas
# drives it at --threads 8) is explicitly TSan-covered.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

tier="address"
case "${1:-}" in
  address|thread)
    tier="$1"
    shift
    ;;
esac

if [ "$tier" = "thread" ]; then
  build="$repo/build-sanitize-thread"
  cmake -B "$build" -S "$repo" -DBVC_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j"$(nproc)"
  export TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1
else
  build="$repo/build-sanitize"
  cmake -B "$build" -S "$repo" -DBVC_SANITIZE=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j"$(nproc)"
  export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
  export UBSAN_OPTIONS=print_stacktrace=1
fi

ctest --test-dir "$build" --output-on-failure -j"$(nproc)" "$@"

# Thread tier: re-run the sim-labeled suite in isolation so the replica
# fan-out (sim::run_replicas at --threads 8 in test_sim_replicas) and the
# event-engine tests get an explicit, named TSan pass. The obs-labeled
# suite follows for the same reason: test_event_log hammers the global
# EventLog from concurrent writers, and the telemetry/trace tests exercise
# the flusher's background thread against the metrics registry.
if [ "$tier" = "thread" ]; then
  ctest --test-dir "$build" --output-on-failure -L sim
  ctest --test-dir "$build" --output-on-failure -L obs
fi
