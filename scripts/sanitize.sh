#!/usr/bin/env bash
# Tier-2 check: build the whole tree with ASan+UBSan and run the full test
# suite under the sanitizers. Slower than the tier-1 build, so it lives in
# its own build directory (build-sanitize/) and is run on demand:
#
#   scripts/sanitize.sh            # configure + build + ctest
#   scripts/sanitize.sh -R Fault   # forward extra args to ctest
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-sanitize"

cmake -B "$build" -S "$repo" -DBVC_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j"$(nproc)"

export ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1
export UBSAN_OPTIONS=print_stacktrace=1
ctest --test-dir "$build" --output-on-failure -j"$(nproc)" "$@"
