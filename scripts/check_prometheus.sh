#!/usr/bin/env bash
# Prometheus exposition end-to-end test (registered as the `obs`-labeled
# ctest case check_prometheus):
#
#   1. bvcd is started with a telemetry dir, a small bu-attack grid is
#      solved, and `bvc-cli metrics --format=prometheus` must print a body
#      that passes a text-format lint (legal metric names, one TYPE per
#      family, ascending cumulative `le` buckets, +Inf == _count) and
#      carries the solve counters;
#   2. the JSON endpoint keeps working (`--format=json` parses and holds
#      the same counter values) and `--format=bogus` exits 4 (HTTP 400);
#   3. after a graceful daemon shutdown, `bvc-cli merge` folds the
#      daemon's flushed telemetry dir into one metrics snapshot (JSON and
#      Prometheus, both linted) and one merged Chrome trace;
#   4. bench_table2 --metrics-prom-out writes a lint-clean exposition too.
#
# Usage: scripts/check_prometheus.sh [build-dir]   (default: build-ci)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-ci}"
[[ -d "$build" ]] || build="$repo/$1"
bench="$build/bench/bench_table2"
bvcd="$build/src/svc/bvcd"
cli="$build/src/svc/bvc-cli"
for bin in "$bench" "$bvcd" "$cli"; do
  [[ -x "$bin" ]] || {
    echo "check_prometheus.sh: $bin not built" >&2
    exit 1
  }
done

out="$(mktemp -d)"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null
  rm -rf "$out"
}
trap cleanup EXIT

unset BVC_CRASH_AFTER_CELLS BVC_CRASH_SHARD

# The format lint, shared by every exposition produced below. Reads one
# exposition file; exits non-zero with a diagnostic on any violation.
lint() {  # lint <exposition-file> [required-substring...]
  python3 - "$@" <<'EOF'
import re, sys

NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
path = sys.argv[1]
lines = open(path).read().splitlines()
assert lines, f"{path}: empty exposition"

typed = {}        # family -> declared type
buckets = {}      # family -> list[(le, cumulative)]
samples = {}      # full sample name (incl. suffix) -> value token
for line in lines:
    if not line:
        continue
    if line.startswith("#"):
        parts = line.split(None, 3)
        assert len(parts) >= 3 and parts[1] in ("HELP", "TYPE"), line
        assert NAME.match(parts[2]), f"bad family name: {line}"
        if parts[1] == "TYPE":
            assert parts[2] not in typed, f"duplicate TYPE for {parts[2]}"
            typed[parts[2]] = parts[3]
        continue
    match = re.match(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$", line)
    assert match, f"unparseable sample line: {line!r}"
    name, labels, value = match.groups()
    if value not in ("NaN", "+Inf", "-Inf"):
        float(value)
    samples[name] = value
    if name.endswith("_bucket") and labels:
        le = re.search(r'le="([^"]*)"', labels)
        assert le, f"bucket without le label: {line}"
        family = name[: -len("_bucket")]
        bound = float("inf") if le.group(1) == "+Inf" else float(le.group(1))
        buckets.setdefault(family, []).append((bound, float(value)))

for family, rows in buckets.items():
    assert typed.get(family) == "histogram", f"{family} buckets untyped"
    bounds = [b for b, _ in rows]
    counts = [c for _, c in rows]
    assert bounds == sorted(bounds), f"{family}: le not ascending: {bounds}"
    assert bounds[-1] == float("inf"), f"{family}: missing +Inf bucket"
    assert counts == sorted(counts), \
        f"{family}: buckets not cumulative: {counts}"
    count = samples.get(family + "_count")
    assert count is not None, f"{family}: missing _count"
    assert samples.get(family + "_sum") is not None, f"{family}: missing _sum"
    assert counts[-1] == float(count), \
        f"{family}: +Inf {counts[-1]} != _count {count}"

for needle in sys.argv[2:]:
    assert any(needle in line for line in lines), \
        f"{path}: expected a line containing {needle!r}"
print(f"lint ok: {path} ({len(samples)} samples, "
      f"{len(typed)} families, {len(buckets)} histograms)")
EOF
}

# 1. Live daemon scrape.
rm -f "$out/port.txt"
"$bvcd" --port-file "$out/port.txt" --state-dir "$out/state" \
  --telemetry-dir "$out/telemetry" --telemetry-interval-ms 100 \
  --threads 2 >"$out/bvcd.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 1 100); do
  [[ -s "$out/port.txt" ]] && break
  kill -0 "$daemon_pid" 2>/dev/null || break
  sleep 0.1
done
[[ -s "$out/port.txt" ]] || {
  echo "check_prometheus.sh: bvcd did not start" >&2
  cat "$out/bvcd.log" >&2
  exit 1
}

cat >"$out/job.json" <<'EOF'
{"kind": "bu-attack",
 "utility": "relative-revenue",
 "grid": {"alphas": [0.1, 0.2], "ratios": [[1, 1]], "ad": 3, "setting": 1}}
EOF
"$cli" submit --port-file "$out/port.txt" --file "$out/job.json" >/dev/null
"$cli" result j1 --port-file "$out/port.txt" --timeout 600 >/dev/null

"$cli" metrics --format=prometheus --port-file "$out/port.txt" \
  >"$out/scrape.prom"
lint "$out/scrape.prom" "svc_jobs_submitted 1" "svc_jobs_done 1" \
  "mdp_cache_" "# TYPE svc_jobs_active gauge"

# 2. The JSON endpoint keeps working; an unknown format exits 4.
"$cli" metrics --format=json --port-file "$out/port.txt" >"$out/scrape.json"
python3 - "$out/scrape.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
for section in ("counters", "gauges", "histograms"):
    assert section in metrics, f"metrics JSON missing {section}"
assert metrics["counters"].get("svc.jobs.submitted") == 1, metrics["counters"]
print("json endpoint ok")
EOF
set +e
"$cli" metrics --format=bogus --port-file "$out/port.txt" \
  >/dev/null 2>&1
status=$?
set -e
[[ $status -eq 4 ]] || {
  echo "check_prometheus.sh: --format=bogus exited $status, expected 4" >&2
  exit 1
}

# 3. Graceful shutdown flushes the daemon's telemetry; merge the dir.
kill "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
"$cli" merge "$out/telemetry" \
  --metrics-out "$out/merged.json" \
  --prom-out "$out/merged.prom" \
  --trace-out "$out/merged.trace.json"
lint "$out/merged.prom" "svc_jobs_done 1"
python3 - "$out/merged.json" "$out/merged.trace.json" <<'EOF'
import json, sys
metrics = json.load(open(sys.argv[1]))
assert metrics["counters"].get("svc.jobs.done") == 1, metrics["counters"]
trace = json.load(open(sys.argv[2]))
events = trace["traceEvents"]
pids = {e["pid"] for e in events if e.get("ph") == "X"}
assert len(pids) == 1, f"expected one daemon pid lane, got {pids}"
names = {e["args"]["name"] for e in events if e.get("name") == "process_name"}
assert any("bvcd" in n for n in names), f"no bvcd lane label in {names}"
print(f"merge ok: {len(events)} trace events from pids {sorted(pids)}")
EOF

# 4. The bench writes the same exposition directly.
"$bench" --quick --threads 2 --metrics-prom-out="$out/bench.prom" \
  >/dev/null
lint "$out/bench.prom" "mdp_cache_"

echo "check_prometheus.sh: OK"
