#include "obs/metrics.hpp"

#include "obs/event_log.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace bvc::obs {

void set_metrics_enabled(bool enabled) noexcept {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be sorted ascending");
  }
}

void Histogram::observe(double value) noexcept {
  if (!metrics_enabled()) {
    return;
  }
  std::size_t bucket = 0;
  while (bucket < bounds_.size() && value > bounds_[bucket]) {
    ++bucket;
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = sum_bits_.load(std::memory_order_relaxed);
  std::uint64_t want;
  do {
    want = std::bit_cast<std::uint64_t>(std::bit_cast<double>(seen) + value);
  } while (!sum_bits_.compare_exchange_weak(seen, want,
                                            std::memory_order_relaxed));
}

void Histogram::reset() noexcept {
  for (auto& count : counts_) {
    count.store(0, std::memory_order_relaxed);
  }
  sum_bits_.store(std::bit_cast<std::uint64_t>(0.0),
                  std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& count : counts_) {
    snap.counts.push_back(count.load(std::memory_order_relaxed));
  }
  snap.sum = std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  snap.count = count_.load(std::memory_order_relaxed);
  return snap;
}

// ----------------------------------------------------------------- Registry

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return *it->second;
  }
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return *it->second;
  }
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  Histogram* found = nullptr;
  bool mismatch = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      found = it->second.get();
      const std::vector<double>& existing = found->bounds();
      mismatch = !std::equal(existing.begin(), existing.end(),
                             upper_bounds.begin(), upper_bounds.end());
    } else {
      found = histograms_
                  .emplace(std::string(name),
                           std::make_unique<Histogram>(std::vector<double>(
                               upper_bounds.begin(), upper_bounds.end())))
                  .first->second.get();
    }
  }
  // Conflict handling happens after the lock is released: counter() takes
  // the same (non-recursive) mutex.
  if (mismatch) {
    counter("obs.metrics.histogram_bound_conflicts").add();
    log_warn("obs",
             "histogram re-registered with different bounds; keeping the "
             "original buckets",
             {{"name", name}});
  }
  return *found;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  return snap;
}

void MetricsRegistry::reset() {
  // Zero in place: instrumentation sites hold references into the maps, so
  // the objects themselves must survive.
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

// --------------------------------------------------------------- JSON sink

namespace {

void write_double(std::ostream& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": ";
    write_double(out, value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : snapshot.histograms) {
    out << (first ? "" : ",") << "\n    \"" << name << "\": {\"bounds\": [";
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      if (i != 0) {
        out << ", ";
      }
      write_double(out, histogram.bounds[i]);
    }
    out << "], \"counts\": [";
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      out << (i == 0 ? "" : ", ") << histogram.counts[i];
    }
    out << "], \"sum\": ";
    write_double(out, histogram.sum);
    out << ", \"count\": " << histogram.count << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::write_json(std::ostream& out) const {
  write_metrics_json(out, snapshot());
}

}  // namespace bvc::obs
