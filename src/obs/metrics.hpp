// Process-wide metrics: named counters, gauges, and fixed-bucket histograms.
//
// Design goals, in order:
//
//   1. Hot paths stay hot. Every mutation (Counter::add, Gauge::set,
//      Histogram::observe) first performs ONE relaxed atomic load of the
//      global enable flag and returns immediately when metrics are off —
//      instrumented code compiled into the solvers' sweep loops costs a
//      single predictable branch per call. When enabled, mutations are
//      lock-free relaxed atomic read-modify-writes; no mutation ever takes
//      a lock.
//   2. Registration is rare and may lock. Instrumentation sites hold a
//      function-local static reference obtained once from
//      MetricsRegistry::global() (one mutex acquisition per site per
//      process); the returned objects have stable addresses for the
//      lifetime of the registry.
//   3. Reads are snapshots. snapshot() / write_json() read every metric
//      with relaxed loads; values observed concurrently with writers are
//      each individually coherent (no torn doubles — Gauge stores the bit
//      pattern in a std::atomic<std::uint64_t>).
//
// Naming scheme (docs/OBSERVABILITY.md): lowercase dotted paths,
// `<subsystem>.<component>.<metric>`, e.g. "mdp.cache.hits",
// "util.pool.busy_ns", "sim.net.dropped_messages".
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bvc::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

/// The one relaxed check every metric mutation performs. Off by default;
/// bench binaries flip it on when `--metrics-out` (or `--manifest-out`) is
/// passed.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) {
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written double (queue depth, utilization, remaining budget...).
/// The bit pattern lives in a uint64 atomic so reads are never torn even
/// on platforms without lock-free atomic<double>.
class Gauge {
 public:
  void set(double value) noexcept {
    if (!metrics_enabled()) {
      return;
    }
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
  }

  void add(double delta) noexcept {
    if (!metrics_enabled()) {
      return;
    }
    std::uint64_t seen = bits_.load(std::memory_order_relaxed);
    std::uint64_t want;
    do {
      want = std::bit_cast<std::uint64_t>(std::bit_cast<double>(seen) + delta);
    } while (!bits_.compare_exchange_weak(seen, want,
                                          std::memory_order_relaxed));
  }

  [[nodiscard]] double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void reset() noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(0.0),
                std::memory_order_relaxed);
  }

 private:
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
/// one implicit overflow bucket. Bounds are fixed at registration, so
/// observe() is a short scan over at most a few dozen bounds followed by
/// one relaxed fetch_add — no allocation, no locking, ever.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  struct Snapshot {
    std::vector<double> bounds;          ///< upper bound per finite bucket
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (overflow last)
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
  std::atomic<std::uint64_t> count_{0};
};

/// Everything the registry knew at one instant, detached from the live
/// atomics; what write_json and the run manifest embed.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime; the global registry is never destroyed before exit.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// The bounds are consulted only on first registration of `name`; a
  /// re-registration with different bounds keeps the original histogram,
  /// bumps the `obs.metrics.histogram_bound_conflicts` counter, and warns
  /// through obs::EventLog so the clash is never silent.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& out) const;

  /// Zeroes every registered metric (entries stay registered). Intended for
  /// tests; not safe concurrently with snapshot consumers that expect
  /// monotonic counters.
  void reset();

  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Serializes a snapshot as the same JSON object write_json emits.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

}  // namespace bvc::obs
