#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"

namespace bvc::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() noexcept {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
void write_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_event_json(std::ostream& out, const TraceEvent& event,
                      std::uint32_t tid, std::uint32_t pid = 0) {
  char buffer[64];
  out << "{\"name\":";
  write_json_string(out, event.name != nullptr ? event.name : "?");
  out << ",\"cat\":";
  write_json_string(out, event.category != nullptr ? event.category : "?");
  if (event.duration_ns < 0) {
    out << ",\"ph\":\"i\",\"s\":\"t\"";
  } else {
    std::snprintf(buffer, sizeof(buffer), ",\"ph\":\"X\",\"dur\":%.3f",
                  static_cast<double>(event.duration_ns) * 1e-3);
    out << buffer;
  }
  std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f,\"pid\":%u,\"tid\":%u",
                static_cast<double>(event.start_ns) * 1e-3, pid, tid);
  out << buffer << ",\"args\":{";
  out.write(event.args, event.args_len);
  out << "}}";
}

/// Satellite: ring-buffer drops must never be silent. Bumps the
/// `obs.trace.dropped_spans` counter and warns ONCE per process through
/// the EventLog. Called from record(), which is noexcept — everything that
/// can throw (first-time counter registration) is contained here.
void note_drop() noexcept {
  try {
    if (metrics_enabled()) {
      static Counter& dropped =
          MetricsRegistry::global().counter("obs.trace.dropped_spans");
      dropped.add();
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      log_warn("obs",
               "trace ring buffer full; further spans on this thread are "
               "being dropped — the exported trace is truncated");
    }
  } catch (...) {
    // Never let accounting for a dropped span take down a recording thread.
  }
}

}  // namespace

std::int64_t trace_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              trace_epoch())
      .count();
}

// ------------------------------------------------------------------ Tracer

void Tracer::enable(std::size_t events_per_thread) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (events_per_thread > 0) {
      capacity_ = events_per_thread;
    }
  }
  (void)trace_epoch();  // pin the epoch before the first event
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() noexcept {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

Tracer::Ring& Tracer::local_ring() {
  struct Binding {
    Tracer* owner = nullptr;
    Ring* ring = nullptr;
  };
  thread_local Binding binding;
  if (binding.owner != this) {
    const std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<std::uint32_t>(rings_.size() + 1)));
    binding.owner = this;
    binding.ring = rings_.back().get();
  }
  return *binding.ring;
}

void Tracer::record(const TraceEvent& event) noexcept {
  Ring& ring = local_ring();
  const std::size_t size = ring.size.load(std::memory_order_relaxed);
  if (size >= ring.slots.size()) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    note_drop();
    return;
  }
  ring.slots[size] = event;
  // Publish: the slot write above happens-before any reader that acquires
  // the new size.
  ring.size.store(size + 1, std::memory_order_release);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  write_events_body(out, /*pid=*/0, first);
  out << (first ? "" : "\n") << "]}\n";
}

void Tracer::write_events_body(std::ostream& out, std::uint32_t pid,
                               bool& first) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    const std::size_t n = ring->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      out << (first ? "\n" : ",\n");
      write_event_json(out, ring->slots[i], ring->tid, pid);
      first = false;
    }
  }
}

void Tracer::write_jsonl(std::ostream& out, std::uint32_t pid) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    const std::size_t n = ring->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      write_event_json(out, ring->slots[i], ring->tid, pid);
      out << "\n";
    }
  }
}

void Tracer::write_jsonl_delta(std::ostream& out,
                               std::vector<std::size_t>& cursor,
                               std::uint32_t pid) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (cursor.size() < rings_.size()) {
    cursor.resize(rings_.size(), 0);
  }
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const Ring& ring = *rings_[r];
    const std::size_t n = ring.size.load(std::memory_order_acquire);
    for (std::size_t i = cursor[r]; i < n; ++i) {
      write_event_json(out, ring.slots[i], ring.tid, pid);
      out << "\n";
    }
    cursor[r] = n;
  }
}

std::size_t Tracer::recorded_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->size.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t Tracer::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void Tracer::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    ring->size.store(0, std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed: worker threads
                                         // may outlive static teardown
  return *tracer;
}

// -------------------------------------------------------------------- Span

void Span::begin(const char* name, const char* category) noexcept {
  event_.name = name;
  event_.category = category;
  event_.start_ns = trace_now_ns();
  event_.duration_ns = 0;
  event_.args_len = 0;
  active_ = true;
}

void Span::end() noexcept {
  event_.duration_ns = trace_now_ns() - event_.start_ns;
  if (trace_enabled()) {
    Tracer::global().record(event_);
  }
  active_ = false;
}

namespace {

/// Appends `"key":<formatted>` (comma-separated) into an event's args
/// buffer; silently keeps the buffer unchanged when the fragment is too
/// long to fit.
void append_arg(TraceEvent& event, const char* key, const char* formatted) {
  char fragment[TraceEvent::kArgsCapacity];
  const int wrote =
      std::snprintf(fragment, sizeof(fragment), "%s\"%s\":%s",
                    event.args_len > 0 ? "," : "", key, formatted);
  if (wrote < 0) {
    return;
  }
  const auto length = static_cast<std::size_t>(wrote);
  if (length >= sizeof(fragment) ||
      event.args_len + length > TraceEvent::kArgsCapacity) {
    return;
  }
  std::memcpy(event.args + event.args_len, fragment, length);
  event.args_len = static_cast<std::uint16_t>(event.args_len + length);
}

/// Appends `"key":"escaped value"`, truncating oversized values.
void append_string_arg(TraceEvent& event, const char* key,
                       std::string_view value) {
  char formatted[96];
  std::size_t at = 0;
  formatted[at++] = '"';
  for (const char c : value) {
    if (at + 4 >= sizeof(formatted)) {
      break;
    }
    if (c == '"' || c == '\\') {
      formatted[at++] = '\\';
      formatted[at++] = c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      formatted[at++] = ' ';
    } else {
      formatted[at++] = c;
    }
  }
  formatted[at++] = '"';
  formatted[at] = '\0';
  append_arg(event, key, formatted);
}

}  // namespace

void Span::arg(const char* key, std::int64_t value) noexcept {
  if (!active_) {
    return;
  }
  char formatted[32];
  std::snprintf(formatted, sizeof(formatted), "%lld",
                static_cast<long long>(value));
  append_arg(event_, key, formatted);
}

void Span::arg(const char* key, double value) noexcept {
  if (!active_) {
    return;
  }
  char formatted[32];
  std::snprintf(formatted, sizeof(formatted), "%.6g", value);
  append_arg(event_, key, formatted);
}

void Span::arg(const char* key, std::string_view value) noexcept {
  if (!active_) {
    return;
  }
  append_string_arg(event_, key, value);
}

// ---------------------------------------------------------------- Instants

void trace_instant(const char* name, const char* category) noexcept {
  trace_instant(name, category, nullptr, {});
}

void trace_instant(const char* name, const char* category, const char* key,
                   std::string_view value) noexcept {
  if (!trace_enabled()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = trace_now_ns();
  event.duration_ns = -1;  // rendered as "ph":"i"
  event.args_len = 0;
  if (key != nullptr) {
    append_string_arg(event, key, value);
  }
  Tracer::global().record(event);
}

void trace_instant(const char* name, const char* category, const char* key,
                   double value) noexcept {
  if (!trace_enabled()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.start_ns = trace_now_ns();
  event.duration_ns = -1;
  event.args_len = 0;
  char formatted[32];
  std::snprintf(formatted, sizeof(formatted), "%.6g", value);
  append_arg(event, key, formatted);
  Tracer::global().record(event);
}

}  // namespace bvc::obs
