#include "obs/prometheus.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>

#include "obs/event_log.hpp"

namespace bvc::obs {
namespace {

/// Sample values: `%.17g` round-trips doubles; NaN/±Inf use the exposition
/// format's spellings.
void write_value(std::ostream& out, double value) {
  if (std::isnan(value)) {
    out << "NaN";
    return;
  }
  if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

/// `le` labels: `%.12g` keeps human-chosen bounds (0.001, 10, 1e6) short
/// while still distinguishing any bounds the registry accepts as distinct.
void write_le(std::ostream& out, double bound) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", bound);
  out << buffer;
}

/// HELP text carries the original dotted name; escape per the format
/// (backslash and newline only).
void write_help_text(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    if (c == '\\') {
      out << "\\\\";
    } else if (c == '\n') {
      out << "\\n";
    } else {
      out << c;
    }
  }
}

/// Emits the HELP/TYPE preamble; returns false (skipping the family) when
/// the sanitized name was already used by an earlier family this dump.
bool open_family(std::ostream& out, std::set<std::string>& used,
                 const std::string& sanitized, std::string_view original,
                 const char* type) {
  if (!used.insert(sanitized).second) {
    log_warn("obs",
             "metric name collides after Prometheus sanitization; skipping",
             {{"name", original}, {"sanitized", sanitized}});
    return false;
  }
  out << "# HELP " << sanitized << ' ';
  write_help_text(out, original);
  out << '\n';
  out << "# TYPE " << sanitized << ' ' << type << '\n';
  return true;
}

}  // namespace

std::string prometheus_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  std::set<std::string> used;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string sanitized = prometheus_metric_name(name);
    if (!open_family(out, used, sanitized, name, "counter")) continue;
    out << sanitized << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string sanitized = prometheus_metric_name(name);
    if (!open_family(out, used, sanitized, name, "gauge")) continue;
    out << sanitized << ' ';
    write_value(out, value);
    out << '\n';
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string sanitized = prometheus_metric_name(name);
    if (!open_family(out, used, sanitized, name, "histogram")) continue;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      cumulative += i < histogram.counts.size() ? histogram.counts[i] : 0;
      out << sanitized << "_bucket{le=\"";
      write_le(out, histogram.bounds[i]);
      out << "\"} " << cumulative << '\n';
    }
    // The +Inf bucket is the total observation count by definition — use
    // the histogram's own count so the invariant holds even if a
    // concurrent writer landed between the per-bucket loads.
    out << sanitized << "_bucket{le=\"+Inf\"} " << histogram.count << '\n';
    out << sanitized << "_sum ";
    write_value(out, histogram.sum);
    out << '\n';
    out << sanitized << "_count " << histogram.count << '\n';
  }
}

}  // namespace bvc::obs
