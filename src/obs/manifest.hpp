// Run manifests: a JSON stamp written next to every bench run's CSV/JSON
// output so a produced number can always be traced back to the exact
// binary, source revision, build flags, CLI arguments, and metric totals
// that produced it. Model-checking reproductions live or die on this kind
// of auditability — a table cell without provenance is a rumor.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace bvc::obs {

struct RunManifest {
  std::string binary;              ///< argv[0]
  std::vector<std::string> args;   ///< argv[1..]
  std::string git_sha;             ///< stamped at configure time
  std::string build_type;          ///< CMAKE_BUILD_TYPE
  std::string compiler;            ///< __VERSION__
  int hardware_threads = 0;        ///< std::thread::hardware_concurrency
  std::string started_at_utc;      ///< ISO-8601, wall clock
  double elapsed_seconds = 0.0;    ///< filled in just before writing
  /// Output artifacts this run produced, as (kind, path) pairs —
  /// e.g. ("csv", "table2.csv"), ("trace", "table2.trace.json").
  std::vector<std::pair<std::string, std::string>> outputs;
  /// Free-form (key, value) provenance notes — e.g. the sweep layer stamps
  /// ("shards", "4"), ("shard_restarts", "1"), ("cells_resumed", "12") so a
  /// sharded/resumed run is distinguishable from a straight-through one.
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// Collects everything knowable at startup (argv, git SHA, build info,
/// hardware threads, start timestamp).
[[nodiscard]] RunManifest make_run_manifest(int argc, const char* const* argv);

/// One JSON object; embeds `metrics` (the final MetricsRegistry snapshot)
/// so the manifest alone explains cache efficacy and solver effort.
void write_manifest_json(std::ostream& out, const RunManifest& manifest,
                         const MetricsSnapshot& metrics);

}  // namespace bvc::obs
