// Structured, leveled, rate-limited event logging — the one front door for
// everything the process used to fprintf(stderr) ad hoc.
//
// Two sink modes:
//
//   * Default (unconfigured, or LogConfig.path empty): human-readable lines
//     on stderr, `[subsystem] message key=value ...` — the same shape the
//     legacy call sites printed, so operators lose nothing.
//   * Structured (LogConfig.path set, e.g. via `--log-out FILE`): one JSON
//     object per line — {"ts_ms":...,"level":...,"subsystem":...,
//     "msg":...,"fields":{...}} — for log pipelines.
//
// Discipline:
//
//   * Levels gate cheaply: write() returns after one relaxed atomic load
//     when the record's level is below the configured threshold
//     (`--log-level`), so debug-level sites cost a predictable branch.
//   * Rate limiting is per subsystem: at most LogConfig.rate_limit_per_sec
//     records per subsystem per one-second window; excess records are
//     dropped and summarized once when the window rolls, so a crash loop
//     cannot flood the sink.
//   * write() never throws and never touches stdout — bench tables stay
//     byte-stable whatever the logging configuration.
//
// docs/OBSERVABILITY.md §"Event log" documents the schema.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>

namespace bvc::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;
/// Parses "debug" | "info" | "warn" | "error" (also "warning").
[[nodiscard]] std::optional<LogLevel> parse_log_level(
    std::string_view text) noexcept;

/// One key=value attachment. The key must be a string literal (or otherwise
/// outlive the write() call); values are copied.
class LogField {
 public:
  LogField(const char* key, std::string_view value)
      : key_(key), kind_(Kind::kString), text_(value) {}
  LogField(const char* key, const char* value)
      : LogField(key, std::string_view(value != nullptr ? value : "")) {}
  LogField(const char* key, const std::string& value)
      : LogField(key, std::string_view(value)) {}
  LogField(const char* key, double value)
      : key_(key), kind_(Kind::kDouble), number_(value) {}
  LogField(const char* key, bool value)
      : key_(key), kind_(Kind::kBool), flag_(value) {}
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  LogField(const char* key, T value)
      : key_(key) {
    if constexpr (std::is_signed_v<T>) {
      kind_ = Kind::kInt;
      int_ = static_cast<std::int64_t>(value);
    } else {
      kind_ = Kind::kUint;
      uint_ = static_cast<std::uint64_t>(value);
    }
  }

 private:
  friend class EventLog;
  enum class Kind { kString, kDouble, kInt, kUint, kBool };

  const char* key_;
  Kind kind_ = Kind::kString;
  std::string text_;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  bool flag_ = false;
};

struct LogConfig {
  LogLevel min_level = LogLevel::kInfo;
  /// "" = human-readable stderr; otherwise a JSONL file (truncated).
  std::string path;
  /// Max records per subsystem per one-second window; overflow is dropped
  /// and summarized when the window rolls. 0 = unlimited.
  std::uint32_t rate_limit_per_sec = 200;
};

class EventLog {
 public:
  /// Installs a new configuration (sink, threshold, rate limit) and resets
  /// the rate-limit windows and counters. Returns false — keeping the
  /// previous sink — when the file cannot be opened.
  bool configure(LogConfig config);

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= min_level_.load(std::memory_order_relaxed);
  }

  /// Emits one record (or drops it: below threshold / over the subsystem's
  /// rate limit). Never throws; sink errors are swallowed.
  void write(LogLevel level, const char* subsystem, std::string_view message,
             std::initializer_list<LogField> fields = {}) noexcept;

  /// Records emitted to the sink (rate-limit summaries excluded).
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Records dropped by the per-subsystem rate limiter.
  [[nodiscard]] std::uint64_t suppressed() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] static EventLog& global();

 private:
  struct Window {
    double start = 0.0;
    std::uint32_t count = 0;
    std::uint64_t suppressed = 0;
  };

  void emit_locked(LogLevel level, const char* subsystem,
                   std::string_view message,
                   std::initializer_list<LogField> fields);

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  mutable std::mutex mutex_;
  LogConfig config_;
  void* sink_ = nullptr;  ///< FILE*; stderr when no path is configured
  bool owns_sink_ = false;
  std::map<std::string, Window, std::less<>> windows_;
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

// Convenience fronts over EventLog::global().
inline void log_debug(const char* subsystem, std::string_view message,
                      std::initializer_list<LogField> fields = {}) noexcept {
  EventLog::global().write(LogLevel::kDebug, subsystem, message, fields);
}
inline void log_info(const char* subsystem, std::string_view message,
                     std::initializer_list<LogField> fields = {}) noexcept {
  EventLog::global().write(LogLevel::kInfo, subsystem, message, fields);
}
inline void log_warn(const char* subsystem, std::string_view message,
                     std::initializer_list<LogField> fields = {}) noexcept {
  EventLog::global().write(LogLevel::kWarn, subsystem, message, fields);
}
inline void log_error(const char* subsystem, std::string_view message,
                      std::initializer_list<LogField> fields = {}) noexcept {
  EventLog::global().write(LogLevel::kError, subsystem, message, fields);
}

}  // namespace bvc::obs
