// Cross-process telemetry aggregation.
//
// Worker processes (supervisor shard workers, bvcd) run a TelemetryFlusher:
// a background thread that every `interval_seconds` (a) atomically rewrites
// `<label>.<pid>.metrics.json` with a full MetricsSnapshot and (b) appends
// the tracer's newly published events to `<label>.<pid>.trace.jsonl`, each
// event stamped with the real pid. The parent merges the directory:
//
//   * merge_telemetry_dir sums every worker's metrics into ONE snapshot
//     (counters add, gauges take the max, histograms add bucket-wise when
//     the bounds match — mismatches keep the first and are logged);
//   * write_merged_chrome_trace emits ONE Chrome trace whose events carry
//     each worker's pid, with `process_name` metadata rows so viewers show
//     one labeled lane per process. Per-process trace clocks start at each
//     process's own epoch, so lanes are individually — not mutually —
//     time-aligned (documented in docs/OBSERVABILITY.md).
//
// Layering: obs sits below svc, so the metrics-JSON reader here is a
// self-contained minimal parser of exactly what write_metrics_json emits
// (it cannot use svc::Json).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace bvc::obs {

class Tracer;

struct TelemetryConfig {
  std::string dir;              ///< created if missing
  std::string label = "worker"; ///< lane label, e.g. "shard-0" or "bvcd"
  double interval_seconds = 0.5;
  /// The flusher needs live sources: by default it switches both on.
  bool enable_metrics = true;
  bool enable_tracing = true;
};

/// Background flusher owned by a worker process. Construction creates the
/// directory and starts the thread; destruction performs a final flush.
class TelemetryFlusher {
 public:
  explicit TelemetryFlusher(TelemetryConfig config);
  ~TelemetryFlusher();

  TelemetryFlusher(const TelemetryFlusher&) = delete;
  TelemetryFlusher& operator=(const TelemetryFlusher&) = delete;

  /// Synchronous flush (also what the background thread calls).
  void flush();

  [[nodiscard]] const std::string& metrics_path() const noexcept {
    return metrics_path_;
  }
  [[nodiscard]] const std::string& trace_path() const noexcept {
    return trace_path_;
  }

 private:
  TelemetryConfig config_;
  std::string metrics_path_;
  std::string trace_path_;
  std::vector<std::size_t> trace_cursor_;
  std::uint32_t pid_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Parses a file produced by write_metrics_json. nullopt on I/O or parse
/// failure (callers treat a half-written file as "try next merge").
[[nodiscard]] std::optional<MetricsSnapshot> read_metrics_json(
    const std::string& path);

/// Folds `from` into `into`: counters sum, gauges keep the max, histograms
/// sum counts/sum/count when bounds match (a mismatch keeps `into`'s data
/// and is reported through obs::EventLog).
void merge_metrics(MetricsSnapshot& into, const MetricsSnapshot& from);

struct TelemetryMergeReport {
  MetricsSnapshot metrics;               ///< sum over all readable workers
  std::size_t metrics_files = 0;         ///< files merged
  std::vector<std::string> trace_files;  ///< *.trace.jsonl found (sorted)
  std::vector<std::string> errors;       ///< unreadable/unparseable files
};

/// Scans `dir` for `*.metrics.json` / `*.trace.jsonl`. Files whose name
/// embeds `skip_pid` are ignored — a parent flushing into the same dir as
/// its workers must not merge its own flushes on top of its live registry.
[[nodiscard]] TelemetryMergeReport merge_telemetry_dir(const std::string& dir,
                                                       long skip_pid = -1);

/// One Chrome trace spanning every process: `own` (may be null) exported
/// under this process's pid and labeled `own_label`, plus each worker
/// trace-jsonl in `dir` verbatim in its own pid lane with a process_name
/// metadata row. Returns false when `dir` cannot be scanned.
bool write_merged_chrome_trace(std::ostream& out, const std::string& dir,
                               const Tracer* own, const std::string& own_label);

}  // namespace bvc::obs
