// Prometheus text exposition (format version 0.0.4) for MetricsSnapshot.
//
// The registry's dotted metric names ("mdp.cache.hits") are sanitized to
// the Prometheus charset ([a-zA-Z_:][a-zA-Z0-9_:]*, dots become
// underscores) and every family gets `# HELP` (carrying the original
// dotted name) and `# TYPE` lines. Histograms are emitted with CUMULATIVE
// `le` buckets — the registry keeps per-bucket counts, so the writer
// accumulates — ending in an `+Inf` bucket equal to `_count`, plus `_sum`
// and `_count` samples.
//
// Consumed by `GET /v1/metrics?format=prometheus` on bvcd and by the
// benches' `--metrics-prom-out` flag; linted by scripts/check_prometheus.sh.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace bvc::obs {

/// The HTTP Content-Type a conforming scraper expects.
inline constexpr std::string_view kPrometheusContentType =
    "text/plain; version=0.0.4";

/// Maps a dotted registry name onto the Prometheus metric-name charset:
/// every character outside [a-zA-Z0-9_:] becomes '_', and a leading digit
/// gets an '_' prefix. Empty input yields "_".
[[nodiscard]] std::string prometheus_metric_name(std::string_view name);

/// Writes the whole snapshot in exposition format: counters, then gauges,
/// then histograms, each alphabetical. Distinct dotted names that sanitize
/// to the same Prometheus name would produce duplicate series; later
/// clashes are skipped and reported through obs::EventLog.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);

}  // namespace bvc::obs
