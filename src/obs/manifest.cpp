#include "obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <ostream>
#include <sstream>
#include <thread>

// Stamped by src/obs/CMakeLists.txt at configure time; the fallbacks keep
// out-of-CMake builds (and IDE syntax passes) compiling.
#ifndef BVC_GIT_SHA
#define BVC_GIT_SHA "unknown"
#endif
#ifndef BVC_BUILD_TYPE
#define BVC_BUILD_TYPE "unknown"
#endif

namespace bvc::obs {

namespace {

void write_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out << buffer;
    } else {
      out << c;
    }
  }
  out << '"';
}

}  // namespace

RunManifest make_run_manifest(int argc, const char* const* argv) {
  RunManifest manifest;
  if (argc > 0) {
    manifest.binary = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    manifest.args.emplace_back(argv[i]);
  }
  manifest.git_sha = BVC_GIT_SHA;
  manifest.build_type = BVC_BUILD_TYPE;
#ifdef __VERSION__
  manifest.compiler = __VERSION__;
#else
  manifest.compiler = "unknown";
#endif
  manifest.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());

  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  manifest.started_at_utc = stamp;
  return manifest;
}

void write_manifest_json(std::ostream& out, const RunManifest& manifest,
                         const MetricsSnapshot& metrics) {
  out << "{\n  \"binary\": ";
  write_json_string(out, manifest.binary);
  out << ",\n  \"args\": [";
  for (std::size_t i = 0; i < manifest.args.size(); ++i) {
    out << (i == 0 ? "" : ", ");
    write_json_string(out, manifest.args[i]);
  }
  out << "],\n  \"git_sha\": ";
  write_json_string(out, manifest.git_sha);
  out << ",\n  \"build_type\": ";
  write_json_string(out, manifest.build_type);
  out << ",\n  \"compiler\": ";
  write_json_string(out, manifest.compiler);
  out << ",\n  \"hardware_threads\": " << manifest.hardware_threads;
  out << ",\n  \"started_at_utc\": ";
  write_json_string(out, manifest.started_at_utc);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", manifest.elapsed_seconds);
  out << ",\n  \"elapsed_seconds\": " << buffer;
  out << ",\n  \"outputs\": {";
  for (std::size_t i = 0; i < manifest.outputs.size(); ++i) {
    out << (i == 0 ? "" : ", ");
    write_json_string(out, manifest.outputs[i].first);
    out << ": ";
    write_json_string(out, manifest.outputs[i].second);
  }
  out << "},\n  \"annotations\": {";
  for (std::size_t i = 0; i < manifest.annotations.size(); ++i) {
    out << (i == 0 ? "" : ", ");
    write_json_string(out, manifest.annotations[i].first);
    out << ": ";
    write_json_string(out, manifest.annotations[i].second);
  }
  out << "},\n  \"metrics\": ";
  // Indentation mismatch with the nested writer is cosmetic; the payload
  // is for machines first.
  std::ostringstream nested;
  write_metrics_json(nested, metrics);
  std::string body = nested.str();
  while (!body.empty() && (body.back() == '\n')) {
    body.pop_back();
  }
  out << body << "\n}\n";
}

}  // namespace bvc::obs
