#include "obs/telemetry.hpp"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/trace.hpp"

namespace bvc::obs {
namespace {

// --------------------------------------------------------- minimal JSON in
//
// Just enough of a recursive-descent parser to read back what
// write_metrics_json emits (obs cannot depend on svc::Json — layering).

struct JsonIn {
  std::string_view text;
  std::size_t pos = 0;
  bool failed = false;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    failed = true;
    return false;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }

  std::string parse_string() {
    if (!consume('"')) return {};
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        const char escaped = text[pos++];
        switch (escaped) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u':
            // \uXXXX: metric names never need it; map to '?'.
            pos = std::min(pos + 4, text.size());
            c = '?';
            break;
          default: c = escaped;
        }
      }
      out.push_back(c);
    }
    if (pos >= text.size()) {
      failed = true;
      return {};
    }
    ++pos;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == 'i' ||
            text[pos] == 'n' || text[pos] == 'f' || text[pos] == 'a')) {
      ++pos;  // the letter set tolerates inf/-inf/nan from %.17g
    }
    if (pos == start) {
      failed = true;
      return 0.0;
    }
    return std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                       nullptr);
  }
};

/// Parses `{"name": <number>, ...}` into `sink(name, value)`.
template <typename Sink>
void parse_number_object(JsonIn& in, Sink&& sink) {
  if (!in.consume('{')) return;
  if (in.peek('}')) {
    in.consume('}');
    return;
  }
  while (!in.failed) {
    const std::string name = in.parse_string();
    if (in.failed || !in.consume(':')) return;
    sink(name, in.parse_number());
    if (in.peek(',')) {
      in.consume(',');
      continue;
    }
    in.consume('}');
    return;
  }
}

void parse_number_array(JsonIn& in, std::vector<double>& out) {
  if (!in.consume('[')) return;
  if (in.peek(']')) {
    in.consume(']');
    return;
  }
  while (!in.failed) {
    out.push_back(in.parse_number());
    if (in.peek(',')) {
      in.consume(',');
      continue;
    }
    in.consume(']');
    return;
  }
}

void parse_histograms(JsonIn& in, MetricsSnapshot& snapshot) {
  if (!in.consume('{')) return;
  if (in.peek('}')) {
    in.consume('}');
    return;
  }
  while (!in.failed) {
    const std::string name = in.parse_string();
    if (in.failed || !in.consume(':') || !in.consume('{')) return;
    Histogram::Snapshot histogram;
    while (!in.failed) {
      const std::string key = in.parse_string();
      if (in.failed || !in.consume(':')) return;
      if (key == "bounds") {
        parse_number_array(in, histogram.bounds);
      } else if (key == "counts") {
        std::vector<double> counts;
        parse_number_array(in, counts);
        histogram.counts.reserve(counts.size());
        for (const double c : counts) {
          histogram.counts.push_back(static_cast<std::uint64_t>(c));
        }
      } else if (key == "sum") {
        histogram.sum = in.parse_number();
      } else if (key == "count") {
        histogram.count = static_cast<std::uint64_t>(in.parse_number());
      } else {
        in.failed = true;
        return;
      }
      if (in.peek(',')) {
        in.consume(',');
        continue;
      }
      in.consume('}');
      break;
    }
    snapshot.histograms.emplace(name, std::move(histogram));
    if (in.peek(',')) {
      in.consume(',');
      continue;
    }
    in.consume('}');
    return;
  }
}

// ------------------------------------------------------------- file naming

/// "<label>.<pid>.metrics.json" → pid, or -1 when the name doesn't parse.
long pid_from_filename(const std::string& stem_name, std::string* label) {
  // stem_name is the filename with the ".metrics.json"/".trace.jsonl"
  // suffix already removed, e.g. "shard-0.12345".
  const std::size_t dot = stem_name.rfind('.');
  if (dot == std::string::npos || dot + 1 >= stem_name.size()) return -1;
  const std::string digits = stem_name.substr(dot + 1);
  if (!std::all_of(digits.begin(), digits.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      })) {
    return -1;
  }
  if (label != nullptr) *label = stem_name.substr(0, dot);
  return std::strtol(digits.c_str(), nullptr, 10);
}

constexpr std::string_view kMetricsSuffix = ".metrics.json";
constexpr std::string_view kTraceSuffix = ".trace.jsonl";

bool ends_with(const std::string& text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

// -------------------------------------------------------- TelemetryFlusher

TelemetryFlusher::TelemetryFlusher(TelemetryConfig config)
    : config_(std::move(config)),
      pid_(static_cast<std::uint32_t>(::getpid())) {
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) {
    log_error("obs", "cannot create telemetry dir",
              {{"dir", config_.dir}, {"error", ec.message()}});
  }
  const std::string base = config_.dir + "/" + config_.label + "." +
                           std::to_string(pid_);
  metrics_path_ = base + std::string(kMetricsSuffix);
  trace_path_ = base + std::string(kTraceSuffix);
  if (config_.enable_metrics) {
    set_metrics_enabled(true);
  }
  if (config_.enable_tracing) {
    Tracer::global().enable();
  }
  // Fresh incarnation, fresh trace file (the pid in the name separates
  // incarnations of a restarted shard).
  std::ofstream(trace_path_, std::ios::trunc);
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock,
                   std::chrono::duration<double>(config_.interval_seconds),
                   [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      flush();
      lock.lock();
    }
  });
}

TelemetryFlusher::~TelemetryFlusher() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  flush();
}

void TelemetryFlusher::flush() {
  // Metrics: full snapshot, atomically published via tmp + rename so a
  // merging parent never reads a half-written file.
  {
    std::ostringstream body;
    write_metrics_json(body, MetricsRegistry::global().snapshot());
    const std::string tmp = metrics_path_ + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (out) {
      out << body.str();
      out.close();
      std::error_code ec;
      std::filesystem::rename(tmp, metrics_path_, ec);
      if (ec) {
        log_error("obs", "cannot publish telemetry metrics",
                  {{"path", metrics_path_}, {"error", ec.message()}});
      }
    }
  }
  // Trace: append only the events published since the previous flush.
  {
    std::ofstream out(trace_path_, std::ios::app);
    if (out) {
      Tracer::global().write_jsonl_delta(out, trace_cursor_, pid_);
    }
  }
}

// ------------------------------------------------------------------- merge

std::optional<MetricsSnapshot> read_metrics_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string body = buffer.str();

  JsonIn json{body};
  MetricsSnapshot snapshot;
  if (!json.consume('{')) return std::nullopt;
  while (!json.failed) {
    const std::string section = json.parse_string();
    if (json.failed || !json.consume(':')) return std::nullopt;
    if (section == "counters") {
      parse_number_object(json, [&](const std::string& name, double value) {
        snapshot.counters.emplace(name, static_cast<std::uint64_t>(value));
      });
    } else if (section == "gauges") {
      parse_number_object(json, [&](const std::string& name, double value) {
        snapshot.gauges.emplace(name, value);
      });
    } else if (section == "histograms") {
      parse_histograms(json, snapshot);
    } else {
      return std::nullopt;
    }
    if (json.failed) return std::nullopt;
    if (json.peek(',')) {
      json.consume(',');
      continue;
    }
    json.consume('}');
    break;
  }
  if (json.failed) return std::nullopt;
  return snapshot;
}

void merge_metrics(MetricsSnapshot& into, const MetricsSnapshot& from) {
  for (const auto& [name, value] : from.counters) {
    into.counters[name] += value;
  }
  for (const auto& [name, value] : from.gauges) {
    const auto [it, inserted] = into.gauges.emplace(name, value);
    if (!inserted) {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, histogram] : from.histograms) {
    const auto [it, inserted] = into.histograms.emplace(name, histogram);
    if (inserted) continue;
    Histogram::Snapshot& target = it->second;
    if (target.bounds != histogram.bounds ||
        target.counts.size() != histogram.counts.size()) {
      log_warn("obs",
               "histogram bounds differ across processes; keeping the "
               "first seen",
               {{"name", name}});
      continue;
    }
    for (std::size_t i = 0; i < target.counts.size(); ++i) {
      target.counts[i] += histogram.counts[i];
    }
    target.sum += histogram.sum;
    target.count += histogram.count;
  }
}

TelemetryMergeReport merge_telemetry_dir(const std::string& dir,
                                         long skip_pid) {
  TelemetryMergeReport report;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    report.errors.push_back(dir + ": " + ec.message());
    return report;
  }
  std::vector<std::string> metrics_files;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (ends_with(name, kMetricsSuffix)) {
      const std::string stem =
          name.substr(0, name.size() - kMetricsSuffix.size());
      if (skip_pid >= 0 && pid_from_filename(stem, nullptr) == skip_pid) {
        continue;
      }
      metrics_files.push_back(entry.path().string());
    } else if (ends_with(name, kTraceSuffix)) {
      const std::string stem =
          name.substr(0, name.size() - kTraceSuffix.size());
      if (skip_pid >= 0 && pid_from_filename(stem, nullptr) == skip_pid) {
        continue;
      }
      report.trace_files.push_back(entry.path().string());
    }
  }
  std::sort(metrics_files.begin(), metrics_files.end());
  std::sort(report.trace_files.begin(), report.trace_files.end());
  for (const std::string& path : metrics_files) {
    std::optional<MetricsSnapshot> snapshot = read_metrics_json(path);
    if (!snapshot.has_value()) {
      report.errors.push_back(path + ": unreadable or malformed");
      continue;
    }
    merge_metrics(report.metrics, *snapshot);
    ++report.metrics_files;
  }
  return report;
}

bool write_merged_chrome_trace(std::ostream& out, const std::string& dir,
                               const Tracer* own,
                               const std::string& own_label) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return false;
  std::vector<std::string> trace_files;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (ends_with(name, kTraceSuffix)) {
      trace_files.push_back(entry.path().string());
    }
  }
  std::sort(trace_files.begin(), trace_files.end());

  const auto own_pid = static_cast<std::uint32_t>(::getpid());
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit_process_name = [&](std::uint32_t pid,
                                     const std::string& label) {
    out << (first ? "\n" : ",\n");
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"" << label << "\"}}";
    first = false;
  };

  if (own != nullptr) {
    emit_process_name(own_pid,
                      own_label.empty() ? "supervisor" : own_label);
    own->write_events_body(out, own_pid, first);
  }
  for (const std::string& path : trace_files) {
    const std::string name = std::filesystem::path(path).filename().string();
    const std::string stem = name.substr(0, name.size() - kTraceSuffix.size());
    std::string label;
    const long pid = pid_from_filename(stem, &label);
    if (pid >= 0 && static_cast<std::uint32_t>(pid) == own_pid &&
        own != nullptr) {
      continue;  // own flushes would duplicate the live export above
    }
    if (pid >= 0) {
      emit_process_name(static_cast<std::uint32_t>(pid),
                        label + " (pid " + std::to_string(pid) + ")");
    }
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      out << (first ? "\n" : ",\n") << line;
      first = false;
    }
  }
  out << (first ? "" : "\n") << "]}\n";
  return true;
}

}  // namespace bvc::obs
