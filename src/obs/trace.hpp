// Span-based tracing with per-thread ring buffers and Chrome trace-event
// JSON export (chrome://tracing, https://ui.perfetto.dev).
//
// Recording discipline:
//
//   * obs::Span is an RAII complete-span: construction stamps the start
//     time, destruction records one event covering the span's lifetime.
//     When tracing is disabled the constructor performs ONE relaxed atomic
//     load and nothing else — a Span on a hot path costs a predictable
//     branch, never a clock read.
//   * Events land in a per-thread ring buffer owned by the global Tracer.
//     Each buffer has exactly one writer (its thread), so recording is
//     lock-free and race-free; the buffer's size counter is published with
//     release stores and read with acquire loads at export time. A full
//     buffer DROPS further events (and counts them) rather than overwrite —
//     every exported event is therefore complete and ordered.
//   * Span names and categories must be string literals (or otherwise
//     outlive the Tracer): events store the pointers, not copies. Dynamic
//     context goes into args (Span::arg), which formats into a small
//     fixed-size buffer inside the event.
//
// Export: write_chrome_trace emits {"traceEvents":[...]} with "ph":"X"
// complete events (instants as "ph":"i"), timestamps in microseconds since
// the process trace epoch; write_jsonl emits the same events one JSON
// object per line for log-pipeline consumption.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace bvc::obs {

namespace detail {
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

/// The one relaxed check every tracing call performs first.
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Steady-clock nanoseconds since the process trace epoch (the first call).
[[nodiscard]] std::int64_t trace_now_ns() noexcept;

/// One recorded event. `args` holds a pre-formatted JSON object body
/// (`"key":value,...` without the braces), built by Span::arg.
struct TraceEvent {
  static constexpr std::size_t kArgsCapacity = 120;

  const char* name = nullptr;
  const char* category = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;  ///< -1 marks an instant event
  std::uint16_t args_len = 0;
  char args[kArgsCapacity];  // first args_len bytes valid
};

class Tracer {
 public:
  /// Turns recording on. Ring buffers are created lazily, one per recording
  /// thread, each holding `events_per_thread` events (~150 B apiece).
  /// Calling enable() again keeps existing buffers and their contents.
  void enable(std::size_t events_per_thread = 1 << 15);

  void disable() noexcept;

  /// Appends one event to the calling thread's ring (drops when full).
  /// Callers must have checked trace_enabled() — Span does.
  void record(const TraceEvent& event) noexcept;

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — loadable by Perfetto
  /// and chrome://tracing. Safe to call while other threads record; it
  /// exports the events published so far.
  void write_chrome_trace(std::ostream& out) const;

  /// The same events as newline-delimited JSON objects, stamped with `pid`
  /// (0 for a standalone process; telemetry flushers pass the real pid so
  /// merged traces get one lane per process).
  void write_jsonl(std::ostream& out, std::uint32_t pid = 0) const;

  /// Appends every published event as comma-separated JSON objects —
  /// no enclosing array — for callers assembling a multi-process trace.
  /// `first` carries comma state across calls.
  void write_events_body(std::ostream& out, std::uint32_t pid,
                         bool& first) const;

  /// Incremental JSONL export: writes only events published since the last
  /// call with the same `cursor` (one consumed-index per ring, grown as
  /// threads appear). What the telemetry flusher appends every interval.
  void write_jsonl_delta(std::ostream& out, std::vector<std::size_t>& cursor,
                         std::uint32_t pid) const;

  [[nodiscard]] std::size_t recorded_events() const;
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Rewinds every ring to empty (buffers and thread bindings survive).
  /// Only safe when no thread is concurrently recording — a test helper.
  void reset() noexcept;

  [[nodiscard]] static Tracer& global();

 private:
  struct Ring {
    explicit Ring(std::size_t capacity, std::uint32_t tid_in)
        : slots(capacity), tid(tid_in) {}
    std::vector<TraceEvent> slots;
    std::atomic<std::size_t> size{0};      // published with release stores
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid;
  };

  [[nodiscard]] Ring& local_ring();

  mutable std::mutex mutex_;  // guards rings_ growth only
  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_ = 1 << 15;
};

/// RAII complete-span. Costs one relaxed load when tracing is off.
class Span {
 public:
  Span(const char* name, const char* category) noexcept {
    if (trace_enabled()) {
      begin(name, category);
    }
  }
  ~Span() {
    if (active_) {
      end();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach `"key":value` to the event (no-ops when tracing is off or the
  /// args buffer is full — args are diagnostics, never load-bearing).
  void arg(const char* key, std::int64_t value) noexcept;
  void arg(const char* key, double value) noexcept;
  void arg(const char* key, std::string_view value) noexcept;

 private:
  void begin(const char* name, const char* category) noexcept;
  void end() noexcept;

  TraceEvent event_;
  bool active_ = false;
};

/// Records a zero-duration instant event (e.g. "deadline expired").
void trace_instant(const char* name, const char* category) noexcept;
void trace_instant(const char* name, const char* category, const char* key,
                   std::string_view value) noexcept;
void trace_instant(const char* name, const char* category, const char* key,
                   double value) noexcept;

}  // namespace bvc::obs
