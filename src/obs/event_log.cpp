#include "obs/event_log.hpp"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace bvc::obs {
namespace {

/// Monotonic seconds for rate-limit windows (cheap, never goes backwards).
double steady_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Wall-clock milliseconds since the Unix epoch for record timestamps.
std::uint64_t wall_ms() {
  using namespace std::chrono;
  return static_cast<std::uint64_t>(
      duration_cast<milliseconds>(system_clock::now().time_since_epoch())
          .count());
}

/// JSON string escaping (control chars, quote, backslash).
void write_json_string(std::FILE* out, std::string_view text) {
  std::fputc('"', out);
  for (const char c : text) {
    switch (c) {
      case '"':
        std::fputs("\\\"", out);
        break;
      case '\\':
        std::fputs("\\\\", out);
        break;
      case '\n':
        std::fputs("\\n", out);
        break;
      case '\r':
        std::fputs("\\r", out);
        break;
      case '\t':
        std::fputs("\\t", out);
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(out, "\\u%04x", static_cast<unsigned char>(c));
        } else {
          std::fputc(c, out);
        }
    }
  }
  std::fputc('"', out);
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

std::optional<LogLevel> parse_log_level(std::string_view text) noexcept {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  return std::nullopt;
}

bool EventLog::configure(LogConfig config) {
  std::FILE* file = nullptr;
  if (!config.path.empty()) {
    file = std::fopen(config.path.c_str(), "w");
    if (file == nullptr) return false;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (owns_sink_ && sink_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(sink_));
  }
  sink_ = file;
  owns_sink_ = file != nullptr;
  config_ = std::move(config);
  min_level_.store(static_cast<int>(config_.min_level),
                   std::memory_order_relaxed);
  windows_.clear();
  emitted_.store(0, std::memory_order_relaxed);
  suppressed_.store(0, std::memory_order_relaxed);
  return true;
}

void EventLog::write(LogLevel level, const char* subsystem,
                     std::string_view message,
                     std::initializer_list<LogField> fields) noexcept {
  if (!enabled(level)) return;
  try {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (config_.rate_limit_per_sec > 0) {
      Window& window = windows_[std::string(subsystem)];
      const double now = steady_seconds();
      if (now - window.start >= 1.0) {
        if (window.suppressed > 0) {
          char summary[96];
          std::snprintf(summary, sizeof(summary),
                        "rate limit: suppressed %" PRIu64
                        " records in the last window",
                        window.suppressed);
          emit_locked(LogLevel::kWarn, subsystem, summary, {});
        }
        window.start = now;
        window.count = 0;
        window.suppressed = 0;
      }
      if (window.count >= config_.rate_limit_per_sec) {
        ++window.suppressed;
        suppressed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      ++window.count;
    }
    emit_locked(level, subsystem, message, fields);
    emitted_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // Logging must never take the process down; drop the record.
  }
}

void EventLog::emit_locked(LogLevel level, const char* subsystem,
                           std::string_view message,
                           std::initializer_list<LogField> fields) {
  std::FILE* out =
      sink_ != nullptr ? static_cast<std::FILE*>(sink_) : stderr;
  if (config_.path.empty()) {
    // Human-readable: `[subsystem] message key=value ...`
    std::fprintf(out, "[%s] %.*s", subsystem,
                 static_cast<int>(message.size()), message.data());
    for (const LogField& field : fields) {
      std::fprintf(out, " %s=", field.key_);
      switch (field.kind_) {
        case LogField::Kind::kString:
          std::fprintf(out, "%s", field.text_.c_str());
          break;
        case LogField::Kind::kDouble:
          std::fprintf(out, "%g", field.number_);
          break;
        case LogField::Kind::kInt:
          std::fprintf(out, "%" PRId64, field.int_);
          break;
        case LogField::Kind::kUint:
          std::fprintf(out, "%" PRIu64, field.uint_);
          break;
        case LogField::Kind::kBool:
          std::fputs(field.flag_ ? "true" : "false", out);
          break;
      }
    }
    std::fputc('\n', out);
  } else {
    // Structured JSONL.
    std::fprintf(out, "{\"ts_ms\":%" PRIu64 ",\"level\":\"%.*s\"",
                 wall_ms(), static_cast<int>(to_string(level).size()),
                 to_string(level).data());
    std::fputs(",\"subsystem\":", out);
    write_json_string(out, subsystem);
    std::fputs(",\"msg\":", out);
    write_json_string(out, message);
    if (fields.size() > 0) {
      std::fputs(",\"fields\":{", out);
      bool first = true;
      for (const LogField& field : fields) {
        if (!first) std::fputc(',', out);
        first = false;
        write_json_string(out, field.key_);
        std::fputc(':', out);
        switch (field.kind_) {
          case LogField::Kind::kString:
            write_json_string(out, field.text_);
            break;
          case LogField::Kind::kDouble:
            // NaN/Inf are not valid JSON numbers; quote them.
            if (!std::isfinite(field.number_)) {
              char buffer[32];
              std::snprintf(buffer, sizeof(buffer), "%g", field.number_);
              write_json_string(out, buffer);
            } else {
              std::fprintf(out, "%.17g", field.number_);
            }
            break;
          case LogField::Kind::kInt:
            std::fprintf(out, "%" PRId64, field.int_);
            break;
          case LogField::Kind::kUint:
            std::fprintf(out, "%" PRIu64, field.uint_);
            break;
          case LogField::Kind::kBool:
            std::fputs(field.flag_ ? "true" : "false", out);
            break;
        }
      }
      std::fputc('}', out);
    }
    std::fputs("}\n", out);
  }
  // Flush per record: these are rare operational events and must survive a
  // crash (the checkpoint layer logs right before a deliberate SIGKILL).
  std::fflush(out);
}

EventLog& EventLog::global() {
  // Leaked on purpose: log sites run during static destruction.
  static EventLog* instance = new EventLog();
  return *instance;
}

}  // namespace bvc::obs
