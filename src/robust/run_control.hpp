// Run control for long-running solves and simulations: wall-clock /
// iteration budgets, cooperative cancellation, and a structured outcome
// taxonomy replacing the bare `bool converged` idiom.
//
// Every iterative component in this library (the four MDP solvers, the
// event-driven network simulation, the fork simulation, and the Monte-Carlo
// rollouts) accepts a RunControl through its options and reports a RunStatus
// on its result. On budget exhaustion or cancellation the component returns
// the best partial result it has instead of spinning to its iteration cap —
// the caller can inspect the status and decide whether the partial answer is
// usable (see docs/ROBUSTNESS.md for the full semantics).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace bvc::robust {

/// How a bounded run ended. Ordered roughly from best to worst; only
/// kConverged means the reported values meet the requested tolerance.
enum class RunStatus : std::uint8_t {
  kConverged = 0,        ///< met the requested tolerance
  kToleranceStalled,     ///< own iteration cap hit before the tolerance
  kBudgetExhausted,      ///< the RunBudget (deadline / iteration cap) expired
  kCancelled,            ///< the CancelToken fired
  kDegenerateModel,      ///< the problem is structurally degenerate
};

/// Short stable identifier, e.g. for logs and CSV columns.
[[nodiscard]] std::string_view to_string(RunStatus status) noexcept;

/// Only kConverged counts as full success.
[[nodiscard]] constexpr bool is_success(RunStatus status) noexcept {
  return status == RunStatus::kConverged;
}

/// A run that stopped early but still produced a usable (if approximate)
/// result: everything except cancellation and degeneracy.
[[nodiscard]] constexpr bool is_partial(RunStatus status) noexcept {
  return status == RunStatus::kToleranceStalled ||
         status == RunStatus::kBudgetExhausted;
}

/// Resource envelope for one run. The default budget is unlimited; both
/// limits are cooperative (checked between iterations, not preemptive).
struct RunBudget {
  /// Wall-clock allowance in seconds, measured from the start of the run.
  double wall_clock_seconds = std::numeric_limits<double>::infinity();
  /// Cap on guard ticks (outer iterations / sweeps / simulation events).
  std::int64_t max_ticks = std::numeric_limits<std::int64_t>::max();

  [[nodiscard]] bool unlimited() const noexcept {
    return wall_clock_seconds == std::numeric_limits<double>::infinity() &&
           max_ticks == std::numeric_limits<std::int64_t>::max();
  }

  [[nodiscard]] static RunBudget deadline(double seconds) noexcept {
    RunBudget budget;
    budget.wall_clock_seconds = seconds;
    return budget;
  }
  [[nodiscard]] static RunBudget ticks(std::int64_t ticks) noexcept {
    RunBudget budget;
    budget.max_ticks = ticks;
    return budget;
  }
};

/// Cooperative cancellation handle. Default-constructed tokens are inert
/// (never cancelled, zero overhead to copy); a cancellable token is created
/// with CancelToken::make() and shared by copy — request_cancel() from any
/// copy (e.g. a signal handler or another thread) is seen by all.
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] static CancelToken make() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// A child token that reports cancelled when either itself or `parent` is
  /// cancelled, while request_cancel() on the child leaves the parent
  /// untouched. Batch engines use this to stop their own in-flight items
  /// without firing the caller's token. Linking is one level deep: the
  /// child observes `parent`'s own flag, not flags `parent` may itself be
  /// linked to — link to the root token when chaining.
  [[nodiscard]] static CancelToken make_linked(const CancelToken& parent) {
    CancelToken token = make();
    token.parent_ = parent.flag_;
    return token;
  }

  void request_cancel() const noexcept {
    if (flag_) {
      flag_->store(true, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return (flag_ && flag_->load(std::memory_order_relaxed)) ||
           (parent_ && parent_->load(std::memory_order_relaxed));
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
  std::shared_ptr<std::atomic<bool>> parent_;
};

/// The run-control bundle accepted (by value) through solver/sim options.
struct RunControl {
  RunBudget budget;
  CancelToken cancel;

  [[nodiscard]] bool inert() const noexcept {
    return budget.unlimited() && !cancel.cancel_requested();
  }
};

/// Per-run enforcement of a RunControl. Construct at the start of the run,
/// call tick() once per iteration (sweep, outer step, simulation event):
/// a std::nullopt means keep going, a status means stop now and report it.
///
/// The wall clock is only read when a deadline is set (and then at most
/// every `clock_stride` ticks), so unlimited budgets stay effectively free
/// even in per-event hot loops.
class RunGuard {
 public:
  explicit RunGuard(const RunControl& control,
                    std::int64_t clock_stride = 1) noexcept;

  /// Checks cancellation and budget; counts one iteration.
  [[nodiscard]] std::optional<RunStatus> tick() noexcept;

  /// Ticks consumed so far.
  [[nodiscard]] std::int64_t ticks() const noexcept { return ticks_; }

  /// Seconds since construction (always measured, even without a deadline).
  [[nodiscard]] double elapsed_seconds() const noexcept;

  /// Nanoseconds since construction, for SolveReport::wall_clock_ns.
  [[nodiscard]] std::int64_t elapsed_ns() const noexcept;

  /// Budget with the wall-clock allowance that remains (and no tick cap):
  /// hand this to nested solves so inner work cannot outlive the outer
  /// deadline. The cancel token must be forwarded separately.
  [[nodiscard]] RunBudget remaining() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  RunBudget budget_;
  CancelToken cancel_;
  Clock::time_point start_;
  std::int64_t ticks_ = 0;
  std::int64_t clock_stride_ = 1;
  bool has_deadline_ = false;
  bool expired_ = false;
  bool stop_reported_ = false;  ///< one obs event per guard, not per tick
};

/// Post-mortem record of one (possibly nested) solve, carried on solver
/// results so benches and tests can see *why* a number looks the way it
/// does: how the bracket narrowed, how much inner work each outer step
/// cost, and how long the whole thing took.
struct SolveDiagnostics {
  double elapsed_seconds = 0.0;
  int outer_iterations = 0;   ///< e.g. Dinkelbach + bisection steps
  int inner_solves = 0;       ///< nested average-reward solves performed
  std::int64_t inner_sweeps = 0;  ///< total RVI sweeps across inner solves
  int retries = 0;            ///< escalation attempts beyond the first
  /// Ratio estimate after each outer iteration (Dinkelbach rho updates,
  /// then bisection midpoints).
  std::vector<double> rho_trajectory;
  /// Bracket width (hi - lo) after each outer iteration; the residual the
  /// outer tolerance is tested against.
  std::vector<double> residual_trajectory;
};

}  // namespace bvc::robust
