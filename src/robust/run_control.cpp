#include "robust/run_control.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bvc::robust {

namespace {

/// One instant event + counter the first time a guard stops its run. The
/// per-tick cost stays a single relaxed load (the counter's enabled check);
/// the event fires at most once per RunGuard.
void note_guard_stop(const char* reason, std::int64_t ticks) {
  static obs::Counter& stops =
      obs::MetricsRegistry::global().counter("robust.guard.stops");
  stops.add();
  if (obs::trace_enabled()) {
    char detail[32];
    std::snprintf(detail, sizeof(detail), "ticks=%lld",
                  static_cast<long long>(ticks));
    obs::trace_instant(reason, "robust", "detail", detail);
  }
}

}  // namespace

std::string_view to_string(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kConverged:
      return "converged";
    case RunStatus::kToleranceStalled:
      return "tolerance-stalled";
    case RunStatus::kBudgetExhausted:
      return "budget-exhausted";
    case RunStatus::kCancelled:
      return "cancelled";
    case RunStatus::kDegenerateModel:
      return "degenerate-model";
  }
  return "unknown";
}

RunGuard::RunGuard(const RunControl& control,
                   std::int64_t clock_stride) noexcept
    : budget_(control.budget),
      cancel_(control.cancel),
      start_(Clock::now()),
      clock_stride_(clock_stride > 0 ? clock_stride : 1),
      has_deadline_(budget_.wall_clock_seconds !=
                    std::numeric_limits<double>::infinity()) {}

std::optional<RunStatus> RunGuard::tick() noexcept {
  static obs::Counter& tick_counter =
      obs::MetricsRegistry::global().counter("robust.guard.ticks");
  tick_counter.add();
  if (cancel_.cancel_requested()) {
    if (!stop_reported_) {
      stop_reported_ = true;
      note_guard_stop("guard.cancelled", ticks_);
    }
    return RunStatus::kCancelled;
  }
  if (ticks_ >= budget_.max_ticks) {
    if (!stop_reported_) {
      stop_reported_ = true;
      note_guard_stop("guard.tick_cap", ticks_);
    }
    return RunStatus::kBudgetExhausted;
  }
  if (expired_) {
    return RunStatus::kBudgetExhausted;
  }
  if (has_deadline_ && ticks_ % clock_stride_ == 0 &&
      elapsed_seconds() >= budget_.wall_clock_seconds) {
    expired_ = true;
    if (!stop_reported_) {
      stop_reported_ = true;
      note_guard_stop("guard.deadline", ticks_);
    }
    return RunStatus::kBudgetExhausted;
  }
  ++ticks_;
  return std::nullopt;
}

double RunGuard::elapsed_seconds() const noexcept {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

std::int64_t RunGuard::elapsed_ns() const noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start_)
      .count();
}

RunBudget RunGuard::remaining() const noexcept {
  RunBudget budget;
  if (has_deadline_) {
    budget.wall_clock_seconds =
        std::max(0.0, budget_.wall_clock_seconds - elapsed_seconds());
  }
  return budget;
}

}  // namespace bvc::robust
