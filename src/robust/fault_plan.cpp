#include "robust/fault_plan.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace bvc::robust {

bool FaultPlan::empty() const noexcept {
  const bool links_inert =
      link.inert() &&
      std::all_of(link_overrides.begin(), link_overrides.end(),
                  [](const LinkFaultOverride& o) { return o.fault.inert(); });
  const bool windows_inert =
      std::all_of(crashes.begin(), crashes.end(),
                  [](const CrashWindow& w) { return w.begin >= w.end; }) &&
      std::all_of(partitions.begin(), partitions.end(),
                  [](const PartitionWindow& w) {
                    return w.begin >= w.end || w.island.empty();
                  });
  return links_inert && windows_inert;
}

const LinkFault& FaultPlan::link_fault(std::size_t from,
                                       std::size_t to) const noexcept {
  const LinkFault* found = &link;
  for (const LinkFaultOverride& o : link_overrides) {
    if (o.from == from && o.to == to) {
      found = &o.fault;
    }
  }
  return *found;
}

bool FaultPlan::crashed_at(std::size_t node, double t,
                           double* deliver_at) const noexcept {
  for (const CrashWindow& w : crashes) {
    if (w.node == node && t >= w.begin && t < w.end) {
      if (deliver_at != nullptr) {
        *deliver_at = w.end;
      }
      return true;
    }
  }
  return false;
}

bool FaultPlan::partitioned_at(std::size_t a, std::size_t b, double t,
                               double* heals_at) const noexcept {
  for (const PartitionWindow& w : partitions) {
    if (t < w.begin || t >= w.end) {
      continue;
    }
    const bool a_in =
        std::find(w.island.begin(), w.island.end(), a) != w.island.end();
    const bool b_in =
        std::find(w.island.begin(), w.island.end(), b) != w.island.end();
    if (a_in != b_in) {
      if (heals_at != nullptr) {
        *heals_at = w.end;
      }
      return true;
    }
  }
  return false;
}

namespace {

void validate_link(const LinkFault& fault) {
  BVC_REQUIRE(fault.drop_probability >= 0.0 && fault.drop_probability <= 1.0,
              "link drop probability must be in [0, 1]");
  BVC_REQUIRE(
      fault.duplicate_probability >= 0.0 && fault.duplicate_probability <= 1.0,
      "link duplicate probability must be in [0, 1]");
  BVC_REQUIRE(fault.jitter_seconds >= 0.0,
              "link jitter must be non-negative");
}

}  // namespace

void FaultPlan::validate(std::size_t num_nodes) const {
  validate_link(link);
  for (const LinkFaultOverride& o : link_overrides) {
    BVC_REQUIRE(o.from < num_nodes && o.to < num_nodes,
                "link override endpoints must be valid node indices");
    BVC_REQUIRE(o.from != o.to, "link overrides apply to distinct nodes");
    validate_link(o.fault);
  }
  for (const CrashWindow& w : crashes) {
    BVC_REQUIRE(w.node < num_nodes, "crash window node index out of range");
    BVC_REQUIRE(w.begin >= 0.0 && w.begin <= w.end,
                "crash window must satisfy 0 <= begin <= end");
  }
  for (const PartitionWindow& w : partitions) {
    BVC_REQUIRE(w.begin >= 0.0 && w.begin <= w.end,
                "partition window must satisfy 0 <= begin <= end");
    for (const std::size_t node : w.island) {
      BVC_REQUIRE(node < num_nodes,
                  "partition island node index out of range");
    }
  }
}

}  // namespace bvc::robust
