// Multi-process shard supervisor: fork/exec N workers over disjoint cell
// partitions, monitor them, restart the ones that crash or stall, and
// report per-shard outcomes instead of letting one dead process kill an
// hours-long sweep.
//
// The supervisor is deliberately dumb about WHAT the workers compute: a
// worker is an argv to exec (typically this same binary re-invoked with
// `--shard i/N --checkpoint <file>.shard-i --resume`), plus the journal
// file whose growth doubles as the worker's liveness heartbeat. Policy:
//
//   * Exit 0            — shard completed; its journal holds every cell.
//   * Nonzero / signal  — crashed. Restart after an exponential backoff
//     (BackoffPolicy, bounded retry budget). Restarted workers resume from
//     their own journal, so a crash costs at most the unflushed tail.
//     Respawns scrub the BVC_CRASH_* injection env vars — an injected
//     crash fires once, not on every incarnation.
//   * Alive but journal frozen past stall_timeout — treated as hung
//     (livelock, NFS wedge): SIGKILLed, then the crash path applies.
//   * Retry budget exhausted — the shard is reported gave_up; the caller
//     degrades gracefully by computing that shard's remaining cells
//     in-process from the merged journal (sweep_session.hpp does exactly
//     this) instead of aborting the sweep.
//
// Cancellation: a fired CancelToken SIGTERMs every live worker, reaps
// them, and returns — the partial journals remain resumable.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "robust/retry.hpp"
#include "robust/run_control.hpp"

namespace bvc::robust {

/// Identity of one shard worker, parsed from `--shard i/N`. The cell
/// partition is round-robin by global cell index: cheap, deterministic for
/// any enumeration order, and balanced when neighboring cells have similar
/// cost (adjacent grid cells do).
struct ShardSpec {
  int index = 0;
  int count = 1;

  /// Parses "i/N" with 0 <= i < N; std::nullopt on anything else.
  [[nodiscard]] static std::optional<ShardSpec> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool owns(std::size_t cell_index) const noexcept {
    return count <= 1 ||
           static_cast<int>(cell_index % static_cast<std::size_t>(count)) ==
               index;
  }
};

/// One worker process to launch and babysit.
struct WorkerSpawn {
  /// argv[0] is the executable path (exec'd directly, no PATH search).
  std::vector<std::string> argv;
  /// Worker stdout+stderr both land here (the worker's table rendering is
  /// scratch — only its journal matters). Empty inherits the supervisor's.
  std::string log_path;
  /// The worker's checkpoint journal; its growth is the heartbeat.
  std::string journal_path;
};

struct SupervisorOptions {
  /// Restart budget and delays, shared by every shard.
  BackoffPolicy backoff;
  /// Kill-and-restart a live worker whose journal has not grown for this
  /// long (seconds). <= 0 disables stall detection (cells of wildly uneven
  /// cost would otherwise trip false positives).
  double stall_timeout_seconds = 0.0;
  /// Child / heartbeat poll cadence.
  double poll_interval_seconds = 0.05;
  /// Live progress reporting through obs::EventLog: every this-many
  /// seconds the supervisor merges the workers' telemetry flushes from
  /// `telemetry_dir` and logs cells journaled, cells/sec, cache hit/miss
  /// totals, and worker liveness. <= 0 (the default) disables.
  double progress_interval_seconds = 0.0;
  /// Directory the workers' TelemetryFlushers write into (see
  /// obs/telemetry.hpp); consulted only for progress reports.
  std::string telemetry_dir;
  /// Fired token: SIGTERM all workers and return early.
  CancelToken cancel;
};

struct ShardOutcome {
  int index = 0;
  bool completed = false;   ///< some incarnation exited 0
  bool gave_up = false;     ///< retry budget exhausted (or cancelled)
  int restarts = 0;         ///< respawns beyond the first launch
  int stall_kills = 0;      ///< restarts caused by a frozen heartbeat
  int last_exit_code = 0;   ///< of the final incarnation (if it exited)
  int last_signal = 0;      ///< terminating signal of the final incarnation
};

struct SupervisorReport {
  std::vector<ShardOutcome> shards;
  int total_restarts = 0;
  bool cancelled = false;

  [[nodiscard]] bool all_completed() const noexcept {
    for (const ShardOutcome& shard : shards) {
      if (!shard.completed) {
        return false;
      }
    }
    return true;
  }
};

/// Launches every worker and supervises until each has completed or
/// exhausted its retry budget. Workers run concurrently; restarts respect
/// the backoff without blocking the monitoring of other shards.
[[nodiscard]] SupervisorReport supervise_shards(
    std::span<const WorkerSpawn> workers, const SupervisorOptions& options);

/// Absolute path of the currently executing binary (/proc/self/exe), with
/// `argv0` as the fallback when the proc link is unreadable.
[[nodiscard]] std::string self_executable_path(const char* argv0);

}  // namespace bvc::robust
