// Deterministic fault injection for the network simulation.
//
// A FaultPlan describes the degraded conditions under which a simulation
// run should operate: per-link message loss, duplication and latency
// jitter, node crash/restart windows, and temporary partitions. The plan
// carries its own RNG seed, so fault decisions are drawn from a dedicated
// stream — injecting faults never perturbs the mining/propagation stream of
// the caller's Rng. Two consequences the tests rely on:
//
//   * the same seed and plan reproduce bit-identical results, and
//   * a plan whose probabilities, jitter and windows are all zero/empty is
//     indistinguishable from running with no plan at all.
//
// Fault semantics (see docs/ROBUSTNESS.md for the rationale):
//   drop        — the message is lost permanently (no retry protocol).
//   duplicate   — a second copy is delivered with independent jitter.
//   jitter      — extra delivery latency, uniform in [0, jitter_seconds].
//   crash       — deliveries that would arrive while the node is down are
//                 deferred to the end of the window (restart = catch-up);
//                 a crashed miner's block finds are wasted work.
//   partition   — messages crossing the cut while the window is active are
//                 deferred to the healing time plus the normal link delay.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bvc::robust {

/// Fault parameters of one directed link (or the all-links default).
struct LinkFault {
  double drop_probability = 0.0;       ///< per message, in [0, 1]
  double duplicate_probability = 0.0;  ///< per message, in [0, 1]
  double jitter_seconds = 0.0;         ///< max extra latency, >= 0

  [[nodiscard]] bool inert() const noexcept {
    return drop_probability == 0.0 && duplicate_probability == 0.0 &&
           jitter_seconds == 0.0;
  }
};

/// Override of the default link fault for one directed (from -> to) link.
struct LinkFaultOverride {
  std::size_t from = 0;
  std::size_t to = 0;
  LinkFault fault;
};

/// Node `node` is down during [begin, end).
struct CrashWindow {
  std::size_t node = 0;
  double begin = 0.0;
  double end = 0.0;
};

/// The nodes in `island` are cut off from everyone else during [begin, end).
/// Links within the island (and within the complement) are unaffected.
struct PartitionWindow {
  std::vector<std::size_t> island;
  double begin = 0.0;
  double end = 0.0;
};

struct FaultPlan {
  /// Seed of the dedicated fault stream; independent of the simulation Rng.
  std::uint64_t seed = 0xFA17'0000'0000'0001ULL;
  /// Default fault applied to every directed link.
  LinkFault link;
  /// Per-link overrides (last matching override wins).
  std::vector<LinkFaultOverride> link_overrides;
  std::vector<CrashWindow> crashes;
  std::vector<PartitionWindow> partitions;

  /// True when the plan can have no observable effect.
  [[nodiscard]] bool empty() const noexcept;

  /// The fault parameters of the directed link from -> to.
  [[nodiscard]] const LinkFault& link_fault(std::size_t from,
                                            std::size_t to) const noexcept;

  /// Is `node` inside a crash window at time `t`? Returns the window end
  /// through `deliver_at` when so.
  [[nodiscard]] bool crashed_at(std::size_t node, double t,
                                double* deliver_at = nullptr) const noexcept;

  /// Are `a` and `b` on opposite sides of an active partition at time `t`?
  /// Returns the healing time through `heals_at` when so.
  [[nodiscard]] bool partitioned_at(std::size_t a, std::size_t b, double t,
                                    double* heals_at = nullptr) const noexcept;

  /// BVC_REQUIREs every field is well-formed for a `num_nodes`-node network:
  /// probabilities in [0, 1], jitter >= 0, windows with begin <= end, and
  /// node indices in range.
  void validate(std::size_t num_nodes) const;
};

}  // namespace bvc::robust
