#include "robust/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace bvc::robust {

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// Minimal cursor over one journal line. The grammar is the fixed flat
/// schema to_jsonl emits (plus arbitrary whitespace), not general JSON —
/// anything else is rejected, which is exactly the torn-line tolerance
/// load() wants.
class LineParser {
 public:
  explicit LineParser(std::string_view text) : text_(text) {}

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        if (esc == 'u') {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (code > 0x7f) {
            return false;  // the writer only escapes control characters
          }
          out += static_cast<char>(code);
        } else if (esc == '"' || esc == '\\') {
          out += esc;
        } else {
          return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool parse_double(double& out) {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    errno = 0;
    out = std::strtod(begin, &end);
    if (end == begin || errno == ERANGE) {
      return false;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  [[nodiscard]] bool parse_int(std::int64_t& out) {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    errno = 0;
    out = std::strtoll(begin, &end, 10);
    if (end == begin || errno == ERANGE) {
      return false;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<RunStatus> status_from_string(std::string_view text) {
  for (const RunStatus status :
       {RunStatus::kConverged, RunStatus::kToleranceStalled,
        RunStatus::kBudgetExhausted, RunStatus::kCancelled,
        RunStatus::kDegenerateModel}) {
    if (text == to_string(status)) {
      return status;
    }
  }
  return std::nullopt;
}

/// Writes `content` to `path` atomically: <path>.tmp + fsync + rename.
bool write_file_atomically(const std::string& path,
                           const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  const char* data = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t wrote = ::write(fd, data, left);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  // fsync before rename: the rename must never land ahead of the data.
  if (::fsync(fd) != 0 || ::close(fd) != 0 ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

double CheckpointRecord::value_or(std::string_view name,
                                  double fallback) const noexcept {
  for (const auto& [key, value] : values) {
    if (key == name) {
      return value;
    }
  }
  return fallback;
}

bool CheckpointRecord::has_value(std::string_view name) const noexcept {
  for (const auto& [key, value] : values) {
    if (key == name) {
      return true;
    }
  }
  return false;
}

std::string to_jsonl(const CheckpointRecord& record) {
  std::string out = "{\"key\":";
  append_json_string(out, record.key);
  out += ",\"status\":";
  append_json_string(out, to_string(record.status));
  out += ",\"values\":{";
  for (std::size_t i = 0; i < record.values.size(); ++i) {
    if (i != 0) {
      out += ',';
    }
    append_json_string(out, record.values[i].first);
    out += ':';
    char buffer[40];
    // %.17g round-trips every finite double: a resumed cell renders the
    // exact bits the original solve produced (the bitwise-identical-output
    // guarantee rests on this).
    std::snprintf(buffer, sizeof(buffer), "%.17g", record.values[i].second);
    out += buffer;
  }
  out += '}';
  if (!record.policy.empty()) {
    out += ",\"policy\":[";
    for (std::size_t i = 0; i < record.policy.size(); ++i) {
      if (i != 0) {
        out += ',';
      }
      char buffer[16];
      std::snprintf(buffer, sizeof(buffer), "%" PRId32, record.policy[i]);
      out += buffer;
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::optional<CheckpointRecord> parse_jsonl_line(std::string_view line) {
  LineParser parser(line);
  CheckpointRecord record;
  std::string field;
  if (!parser.eat('{') || !parser.parse_string(field) || field != "key" ||
      !parser.eat(':') || !parser.parse_string(record.key) ||
      !parser.eat(',') || !parser.parse_string(field) || field != "status" ||
      !parser.eat(':')) {
    return std::nullopt;
  }
  std::string status_text;
  if (!parser.parse_string(status_text)) {
    return std::nullopt;
  }
  const std::optional<RunStatus> status = status_from_string(status_text);
  if (!status) {
    return std::nullopt;
  }
  record.status = *status;
  if (!parser.eat(',') || !parser.parse_string(field) || field != "values" ||
      !parser.eat(':') || !parser.eat('{')) {
    return std::nullopt;
  }
  if (!parser.eat('}')) {
    while (true) {
      std::string name;
      double value = 0.0;
      if (!parser.parse_string(name) || !parser.eat(':') ||
          !parser.parse_double(value)) {
        return std::nullopt;
      }
      record.values.emplace_back(std::move(name), value);
      if (parser.eat('}')) {
        break;
      }
      if (!parser.eat(',')) {
        return std::nullopt;
      }
    }
  }
  if (parser.eat(',')) {
    if (!parser.parse_string(field) || field != "policy" ||
        !parser.eat(':') || !parser.eat('[')) {
      return std::nullopt;
    }
    if (!parser.eat(']')) {
      while (true) {
        std::int64_t action = 0;
        if (!parser.parse_int(action)) {
          return std::nullopt;
        }
        record.policy.push_back(static_cast<std::int32_t>(action));
        if (parser.eat(']')) {
          break;
        }
        if (!parser.eat(',')) {
          return std::nullopt;
        }
      }
    }
  }
  if (!parser.eat('}') || !parser.at_end()) {
    return std::nullopt;
  }
  return record;
}

CrashPlan crash_plan_from_env() {
  CrashPlan plan;
  if (const char* cells = std::getenv("BVC_CRASH_AFTER_CELLS");
      cells != nullptr && *cells != '\0') {
    plan.crash_after_appends =
        static_cast<std::size_t>(std::strtoull(cells, nullptr, 10));
  }
  if (const char* shard = std::getenv("BVC_CRASH_SHARD");
      shard != nullptr && *shard != '\0') {
    plan.only_shard = static_cast<int>(std::strtol(shard, nullptr, 10));
  }
  return plan;
}

CheckpointJournal::CheckpointJournal(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  BVC_REQUIRE(!path_.empty(), "CheckpointJournal needs a non-empty path");
  if (options_.fsync_batch == 0) {
    options_.fsync_batch = 1;
  }
}

CheckpointJournal::~CheckpointJournal() { flush(); }

std::size_t CheckpointJournal::load() {
  if (!enabled()) {
    return 0;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ifstream in(path_);
  if (!in) {
    return 0;  // no journal yet: fresh sweep
  }
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::optional<CheckpointRecord> record = parse_jsonl_line(line);
    if (!record) {
      ++skipped_lines_;
      continue;
    }
    const auto [it, inserted] =
        index_.try_emplace(record->key, records_.size());
    if (inserted) {
      records_.push_back(std::move(*record));
    } else {
      records_[it->second] = std::move(*record);  // last record wins
    }
    ++loaded;
  }
  if (skipped_lines_ > 0) {
    obs::log_warn("checkpoint", "skipped malformed journal line(s)",
                  {{"lines", skipped_lines_}, {"path", path_}});
  }
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .gauge("robust.checkpoint.cells_loaded")
        .set(static_cast<double>(records_.size()));
  }
  return loaded;
}

bool CheckpointJournal::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const CheckpointRecord* CheckpointJournal::find(const std::string& key) const {
  if (!enabled()) {
    return nullptr;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &records_[it->second];
}

std::optional<CheckpointRecord> CheckpointJournal::lookup(
    const std::string& key) const {
  if (!enabled()) {
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return records_[it->second];
}

void CheckpointJournal::append(CheckpointRecord record) {
  if (!enabled()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      index_.try_emplace(record.key, records_.size());
  if (inserted) {
    records_.push_back(std::move(record));
  } else {
    records_[it->second] = std::move(record);
  }
  ++appended_;
  ++unflushed_;
  if (unflushed_ >= options_.fsync_batch) {
    flush_locked();
  }
  if (options_.crash.armed_for(options_.shard_index) &&
      appended_ >= options_.crash.crash_after_appends) {
    flush_locked();  // the journal the next run resumes from is complete
    // Die while still holding the journal lock: releasing it first would
    // let a concurrent worker append cell N+1 before the signal lands,
    // making "exactly N journaled cells" nondeterministic (the resume
    // tests assert the exact count, and TSan's slowdown makes the
    // unlocked window wide enough to hit in practice).
    // EventLog flushes per record, so this survives the raise below.
    obs::log_warn("checkpoint", "crash injection: SIGKILL",
                  {{"cells_appended", appended_}});
    ::raise(SIGKILL);  // simulate an external hard kill (OOM killer)
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& appended_cells =
        obs::MetricsRegistry::global().counter(
            "robust.checkpoint.cells_appended");
    appended_cells.add();
  }
}

bool CheckpointJournal::flush() {
  if (!enabled()) {
    return true;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  return flush_locked();
}

bool CheckpointJournal::flush_locked() {
  if (unflushed_ == 0) {
    return !write_failed_;
  }
  std::string content;
  for (const CheckpointRecord& record : records_) {
    content += to_jsonl(record);
    content += '\n';
  }
  if (!write_file_atomically(path_, content)) {
    if (!write_failed_) {
      obs::log_error("checkpoint",
                     "cannot write journal; continuing without durability",
                     {{"path", path_}, {"error", std::strerror(errno)}});
      write_failed_ = true;
    }
    return false;
  }
  unflushed_ = 0;
  return true;
}

std::size_t CheckpointJournal::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::size_t CheckpointJournal::appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

std::size_t CheckpointJournal::skipped_lines() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return skipped_lines_;
}

MergeReport merge_journals(std::span<const std::string> shard_paths,
                           const std::string& out_path) {
  MergeReport report;
  std::string content;
  std::unordered_map<std::string, bool> seen;
  for (const std::string& path : shard_paths) {
    std::ifstream in(path);
    if (!in) {
      continue;  // a shard that never completed a cell has no journal
    }
    ++report.inputs;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      std::optional<CheckpointRecord> record = parse_jsonl_line(line);
      if (!record) {
        ++report.malformed_lines;
        continue;
      }
      if (!seen.try_emplace(record->key, true).second) {
        ++report.duplicates;
        continue;  // first occurrence wins
      }
      ++report.records;
      content += line;
      content += '\n';
    }
  }
  if (!write_file_atomically(out_path, content)) {
    obs::log_error("checkpoint", "cannot write merged journal",
                   {{"path", out_path}});
  }
  return report;
}

}  // namespace bvc::robust
