#include "robust/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace bvc::robust {

double BackoffPolicy::delay_for_attempt(int attempt) const noexcept {
  if (attempt < 0 || initial_delay_seconds <= 0.0) {
    return 0.0;
  }
  double delay = initial_delay_seconds;
  for (int i = 0; i < attempt; ++i) {
    delay *= multiplier;
    if (delay >= max_delay_seconds) {
      return std::max(0.0, max_delay_seconds);  // saturated: stop compounding
    }
  }
  return std::min(delay, std::max(0.0, max_delay_seconds));
}

bool backoff_wait(const BackoffPolicy& policy, int attempt,
                  const CancelToken& cancel) {
  using Clock = std::chrono::steady_clock;
  const double delay = policy.delay_for_attempt(attempt);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(delay));
  // Poll in short slices so a cancellation fired mid-backoff is honoured
  // within ~50 ms rather than after the (possibly capped-at-seconds) sleep.
  constexpr std::chrono::milliseconds kSlice{50};
  while (!cancel.cancel_requested()) {
    const Clock::time_point now = Clock::now();
    if (now >= deadline) {
      return true;
    }
    const Clock::duration left = deadline - now;
    std::this_thread::sleep_for(
        left < Clock::duration(kSlice) ? left : Clock::duration(kSlice));
  }
  return false;
}

}  // namespace bvc::robust
