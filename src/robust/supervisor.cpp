#include "robust/supervisor.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "util/check.hpp"

namespace bvc::robust {

namespace {

using Clock = std::chrono::steady_clock;

/// Forks and execs one worker. Returns the child pid, or -1 on fork
/// failure. `scrub_crash_env` removes the crash-injection variables in the
/// child so an injected crash fires only in the first incarnation.
pid_t spawn_worker(const WorkerSpawn& spawn, bool scrub_crash_env) {
  const pid_t pid = ::fork();
  if (pid != 0) {
    return pid;  // parent (or fork error)
  }

  // Child. Only exec-adjacent calls from here on.
  if (!spawn.log_path.empty()) {
    const int fd =
        ::open(spawn.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) {
        ::close(fd);
      }
    }
  }
  if (scrub_crash_env) {
    ::unsetenv("BVC_CRASH_AFTER_CELLS");
    ::unsetenv("BVC_CRASH_SHARD");
  }
  std::vector<char*> argv;
  argv.reserve(spawn.argv.size() + 1);
  for (const std::string& arg : spawn.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  std::fprintf(stderr, "[supervisor] exec %s failed: %s\n", argv[0],
               std::strerror(errno));
  ::_exit(127);
}

/// Journal size as the heartbeat signal; 0 when the file does not exist
/// yet (a worker that has not completed a cell is given the full stall
/// allowance from its spawn time).
std::size_t journal_size(const std::string& path) {
  struct stat st{};
  if (path.empty() || ::stat(path.c_str(), &st) != 0) {
    return 0;
  }
  return static_cast<std::size_t>(st.st_size);
}

}  // namespace

std::optional<ShardSpec> ShardSpec::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos || slash == 0 ||
      slash + 1 >= text.size()) {
    return std::nullopt;
  }
  char* end = nullptr;
  const std::string head(text.substr(0, slash));
  const std::string tail(text.substr(slash + 1));
  errno = 0;
  const long index = std::strtol(head.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return std::nullopt;
  }
  errno = 0;
  const long count = std::strtol(tail.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return std::nullopt;
  }
  if (count < 1 || index < 0 || index >= count) {
    return std::nullopt;
  }
  return ShardSpec{static_cast<int>(index), static_cast<int>(count)};
}

std::string ShardSpec::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::string self_executable_path(const char* argv0) {
  char buffer[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len > 0) {
    buffer[len] = '\0';
    return buffer;
  }
  return argv0 != nullptr ? argv0 : "";
}

SupervisorReport supervise_shards(std::span<const WorkerSpawn> workers,
                                  const SupervisorOptions& options) {
  /// Per-shard supervision state machine: running -> (exit 0: done) |
  /// (crash/stall: backing-off -> running ...) | (budget spent: gave up).
  struct ShardState {
    const WorkerSpawn* spawn = nullptr;
    pid_t pid = -1;                    ///< -1 = not currently running
    bool done = false;
    bool gave_up = false;
    Clock::time_point restart_at{};    ///< valid while backing off
    bool backing_off = false;
    std::size_t last_heartbeat = 0;    ///< journal size at last progress
    Clock::time_point last_progress{};
    ShardOutcome outcome;
  };

  SupervisorReport report;
  std::vector<ShardState> shards(workers.size());
  const Clock::time_point start = Clock::now();

  for (std::size_t i = 0; i < workers.size(); ++i) {
    shards[i].spawn = &workers[i];
    shards[i].outcome.index = static_cast<int>(i);
    shards[i].pid = spawn_worker(workers[i], /*scrub_crash_env=*/false);
    shards[i].last_heartbeat = journal_size(workers[i].journal_path);
    shards[i].last_progress = start;
    if (shards[i].pid < 0) {
      obs::log_error("supervisor", "fork failed for shard",
                     {{"shard", i}, {"error", std::strerror(errno)}});
      shards[i].gave_up = true;
      shards[i].outcome.gave_up = true;
    }
  }

  const auto handle_death = [&](ShardState& shard, int wait_status,
                                bool stalled) {
    shard.pid = -1;
    if (WIFEXITED(wait_status)) {
      shard.outcome.last_exit_code = WEXITSTATUS(wait_status);
      shard.outcome.last_signal = 0;
    } else if (WIFSIGNALED(wait_status)) {
      shard.outcome.last_exit_code = 0;
      shard.outcome.last_signal = WTERMSIG(wait_status);
    }
    if (!stalled && WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
      shard.done = true;
      shard.outcome.completed = true;
      return;
    }
    if (shard.outcome.restarts >= options.backoff.max_retries) {
      shard.gave_up = true;
      shard.outcome.gave_up = true;
      obs::log_error(
          "supervisor",
          "retry budget exhausted; degrading to in-process recovery",
          {{"shard", shard.outcome.index},
           {"restarts", shard.outcome.restarts}});
      return;
    }
    const double delay =
        options.backoff.delay_for_attempt(shard.outcome.restarts);
    shard.backing_off = true;
    shard.restart_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(delay));
    obs::log_warn(
        "supervisor", stalled ? "shard stalled; restarting" : "shard died; "
        "restarting",
        {{"shard", shard.outcome.index},
         {"cause", shard.outcome.last_signal != 0 ? "signal" : "exit"},
         {"code", shard.outcome.last_signal != 0
                      ? shard.outcome.last_signal
                      : shard.outcome.last_exit_code},
         {"restart", shard.outcome.restarts + 1},
         {"budget", options.backoff.max_retries},
         {"backoff_seconds", delay}});
  };

  // Live progress: merge the workers' periodic telemetry flushes and log
  // one line per interval — cells journaled so far, throughput, cache
  // totals, and which workers are alive — so an hours-long sweep is
  // observable without waiting for the terminal merge.
  Clock::time_point last_report = start;
  const auto report_progress = [&]() {
    if (options.progress_interval_seconds <= 0.0 ||
        options.telemetry_dir.empty()) {
      return;
    }
    const Clock::time_point now = Clock::now();
    if (std::chrono::duration<double>(now - last_report).count() <
        options.progress_interval_seconds) {
      return;
    }
    last_report = now;
    std::size_t alive = 0;
    std::size_t done = 0;
    for (const ShardState& shard : shards) {
      if (shard.pid > 0) ++alive;
      if (shard.done) ++done;
    }
    const obs::TelemetryMergeReport merged =
        obs::merge_telemetry_dir(options.telemetry_dir);
    const auto counter = [&](const char* name) -> std::uint64_t {
      const auto it = merged.metrics.counters.find(name);
      return it == merged.metrics.counters.end() ? 0 : it->second;
    };
    const std::uint64_t cells = counter("robust.checkpoint.cells_appended");
    const double elapsed =
        std::chrono::duration<double>(now - start).count();
    obs::log_info("supervisor", "sweep progress",
                  {{"cells", cells},
                   {"cells_per_sec",
                    elapsed > 0.0 ? static_cast<double>(cells) / elapsed
                                  : 0.0},
                   {"cache_hits", counter("mdp.cache.hits")},
                   {"cache_misses", counter("mdp.cache.misses")},
                   {"workers_alive", alive},
                   {"workers_done", done},
                   {"workers", shards.size()},
                   {"restarts", report.total_restarts}});
  };

  while (true) {
    bool any_pending = false;
    for (ShardState& shard : shards) {
      if (shard.done || shard.gave_up) {
        continue;
      }
      any_pending = true;

      if (shard.backing_off) {
        if (Clock::now() >= shard.restart_at) {
          shard.backing_off = false;
          ++shard.outcome.restarts;
          ++report.total_restarts;
          if (obs::metrics_enabled()) {
            static obs::Counter& restarts =
                obs::MetricsRegistry::global().counter(
                    "robust.supervisor.restarts");
            restarts.add();
          }
          // Respawns scrub the crash-injection env: injected crashes are
          // one-shot by design (the restarted worker must make progress).
          shard.pid = spawn_worker(*shard.spawn, /*scrub_crash_env=*/true);
          shard.last_heartbeat = journal_size(shard.spawn->journal_path);
          shard.last_progress = Clock::now();
          if (shard.pid < 0) {
            shard.gave_up = true;
            shard.outcome.gave_up = true;
          }
        }
        continue;
      }

      int wait_status = 0;
      const pid_t reaped = ::waitpid(shard.pid, &wait_status, WNOHANG);
      if (reaped == shard.pid) {
        handle_death(shard, wait_status, /*stalled=*/false);
        continue;
      }

      // Heartbeat: journal growth is progress. A live worker whose journal
      // froze past the stall timeout is killed and handled as a crash.
      if (options.stall_timeout_seconds > 0.0) {
        const std::size_t beat = journal_size(shard.spawn->journal_path);
        const Clock::time_point now = Clock::now();
        if (beat != shard.last_heartbeat) {
          shard.last_heartbeat = beat;
          shard.last_progress = now;
        } else if (std::chrono::duration<double>(now - shard.last_progress)
                       .count() > options.stall_timeout_seconds) {
          ++shard.outcome.stall_kills;
          ::kill(shard.pid, SIGKILL);
          ::waitpid(shard.pid, &wait_status, 0);
          handle_death(shard, wait_status, /*stalled=*/true);
        }
      }
    }

    report_progress();
    if (!any_pending) {
      break;
    }
    if (options.cancel.cancel_requested()) {
      report.cancelled = true;
      for (ShardState& shard : shards) {
        if (shard.pid > 0) {
          ::kill(shard.pid, SIGTERM);
          int wait_status = 0;
          ::waitpid(shard.pid, &wait_status, 0);
          shard.pid = -1;
        }
        if (!shard.done) {
          shard.gave_up = true;
          shard.outcome.gave_up = true;
        }
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::max(0.001, options.poll_interval_seconds)));
  }

  report.shards.reserve(shards.size());
  for (ShardState& shard : shards) {
    report.shards.push_back(shard.outcome);
  }
  return report;
}

}  // namespace bvc::robust
