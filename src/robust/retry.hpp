// Escalation policies for work that failed but is worth re-attempting.
//
// Two flavors live here:
//
//   * RetryPolicy — solver escalation. A ratio solve can stall for two
//     curable reasons: the bisection bracket's upper bound was not a
//     genuine upper bound (the Dinkelbach iterates escape it), or the inner
//     average-reward solves were too loose for the outer tolerance (the
//     bracket jitters instead of contracting). The retry policy addresses
//     both: each attempt widens the bracket, tightens the inner tolerance,
//     and grants more outer iterations, for a bounded number of attempts.
//     Budget exhaustion, cancellation, and structural degeneracy are *not*
//     retried — more effort cannot cure those.
//
//   * BackoffPolicy — process supervision. The shard supervisor
//     (supervisor.hpp) restarts crashed or stalled workers; restarting a
//     worker that dies instantly in a tight loop would burn the machine, so
//     each restart waits exponentially longer, saturating at a cap, for a
//     bounded retry budget. backoff_wait() sleeps that delay cooperatively:
//     a CancelToken fired mid-backoff (e.g. the operator gave up on the
//     sweep) returns immediately instead of serving out the sleep.
#pragma once

#include "robust/run_control.hpp"

namespace bvc::robust {

struct RetryPolicy {
  /// Additional attempts after the first solve (0 disables retrying).
  int max_retries = 2;
  /// Each retry widens the ratio bracket: upper = lower + width * factor.
  double bracket_widen_factor = 2.0;
  /// Each retry multiplies the inner solver's tolerance by this (< 1
  /// tightens it).
  double inner_tolerance_factor = 0.1;
  /// Each retry multiplies the outer iteration cap by this.
  double iteration_growth_factor = 2.0;
};

/// Exponential backoff with a saturation cap: attempt k (0-based) waits
/// initial_delay * multiplier^k seconds, clamped to max_delay.
struct BackoffPolicy {
  /// Restarts after the first launch (0 = never restart).
  int max_retries = 3;
  double initial_delay_seconds = 0.25;
  double multiplier = 2.0;
  double max_delay_seconds = 8.0;

  /// The capped delay before (0-based) retry `attempt`. Negative attempts
  /// and non-positive policies yield 0.
  [[nodiscard]] double delay_for_attempt(int attempt) const noexcept;
};

/// Sleeps delay_for_attempt(attempt), polling `cancel` a few times per
/// second. Returns true when the full delay elapsed, false when the token
/// fired first (the caller should abandon the retry, not launch anyway).
bool backoff_wait(const BackoffPolicy& policy, int attempt,
                  const CancelToken& cancel);

}  // namespace bvc::robust
