// Escalation policy for non-converged solves.
//
// A ratio solve can stall for two curable reasons: the bisection bracket's
// upper bound was not a genuine upper bound (the Dinkelbach iterates escape
// it), or the inner average-reward solves were too loose for the outer
// tolerance (the bracket jitters instead of contracting). The retry policy
// addresses both: each attempt widens the bracket, tightens the inner
// tolerance, and grants more outer iterations, for a bounded number of
// attempts. Budget exhaustion, cancellation, and structural degeneracy are
// *not* retried — more effort cannot cure those.
#pragma once

namespace bvc::robust {

struct RetryPolicy {
  /// Additional attempts after the first solve (0 disables retrying).
  int max_retries = 2;
  /// Each retry widens the ratio bracket: upper = lower + width * factor.
  double bracket_widen_factor = 2.0;
  /// Each retry multiplies the inner solver's tolerance by this (< 1
  /// tightens it).
  double inner_tolerance_factor = 0.1;
  /// Each retry multiplies the outer iteration cap by this.
  double iteration_growth_factor = 2.0;
};

}  // namespace bvc::robust
