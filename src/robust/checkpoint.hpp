// Crash-safe sweep checkpointing: a JSONL journal of completed cell results.
//
// The table/ablation/countermeasure sweeps are hours-long batches of
// independent cells; without persistence one crash, OOM kill, or exhausted
// budget throws the whole sweep away. A CheckpointJournal records each
// COMPLETED cell as one JSON line keyed by the cell's canonical parameter
// key (the same ModelCache-style key vocabulary from mdp::append_key), so
// an interrupted run can be resumed skipping everything already solved.
//
// Durability protocol (docs/ROBUSTNESS.md §6):
//
//   * Appends are buffered in memory and flushed every `fsync_batch`
//     records (default 1: every cell is durable the moment its append
//     returns). A flush serializes the ENTIRE journal to `<path>.tmp`,
//     fsyncs it, and renames it over `<path>` — readers therefore never
//     observe a torn line, and a crash at any instant leaves either the
//     previous journal or the new one, both well-formed. Journals are
//     small (one short line per cell), so the rewrite is cheap next to the
//     seconds-long solves it checkpoints.
//   * load() additionally tolerates journals written by foreign tools or a
//     pre-rename crash of the raw-append kind: malformed lines are counted
//     and skipped, never fatal — a half-usable journal resumes half the
//     sweep instead of none of it.
//   * Only SUCCESSFUL cells are journaled (the checkpointed batch engine
//     enforces this): a resumed sweep retries failed or skipped cells
//     rather than replaying their failure.
//
// Deterministic crash injection: Options::crash_after_appends kills the
// process (SIGKILL, as an external OOM killer would) after the Nth append,
// AFTER that append's flush. crash_plan_from_env() reads the hook from
//   BVC_CRASH_AFTER_CELLS=<N>   (0/unset disables)
//   BVC_CRASH_SHARD=<i>         (optional: only shard i crashes)
// so tests and the shard supervisor can stage a kill-mid-sweep → resume →
// bitwise-identical-output scenario without patching any bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "robust/run_control.hpp"

namespace bvc::robust {

/// One completed sweep cell: the canonical parameter key, how the solve
/// ended, named result values (doubles, round-tripped exactly via %.17g),
/// and an optional policy (local action indices) for sweeps whose consumers
/// replay the optimal policy (e.g. the ablation scenario simulations).
struct CheckpointRecord {
  std::string key;
  RunStatus status = RunStatus::kConverged;
  std::vector<std::pair<std::string, double>> values;
  std::vector<std::int32_t> policy;  ///< empty = not persisted

  /// First value named `name`, or `fallback`.
  [[nodiscard]] double value_or(std::string_view name,
                                double fallback) const noexcept;
  [[nodiscard]] bool has_value(std::string_view name) const noexcept;
};

/// Serializes one record as a single JSON line (no trailing newline).
[[nodiscard]] std::string to_jsonl(const CheckpointRecord& record);

/// Parses one journal line; std::nullopt on any malformed input (torn
/// write, foreign content). Never throws.
[[nodiscard]] std::optional<CheckpointRecord> parse_jsonl_line(
    std::string_view line);

/// Deterministic crash-injection plan (see file comment). Inert by default.
struct CrashPlan {
  std::size_t crash_after_appends = 0;  ///< 0 disables
  int only_shard = -1;                  ///< -1 = any process

  [[nodiscard]] bool armed_for(int shard_index) const noexcept {
    return crash_after_appends > 0 &&
           (only_shard < 0 || only_shard == shard_index);
  }
};

/// Reads BVC_CRASH_AFTER_CELLS / BVC_CRASH_SHARD.
[[nodiscard]] CrashPlan crash_plan_from_env();

/// Journal knobs (namespace-scope so `= {}` default arguments work — a
/// nested class's member initializers are late-parsed).
struct JournalOptions {
  /// Flush (serialize + fsync + rename) every N appends. 1 = every cell
  /// durable immediately; larger values batch the fsync cost at the price
  /// of recomputing up to N-1 cells after a crash.
  std::size_t fsync_batch = 1;
  /// Crash injection, applied at append time (after the flush the append
  /// triggered, so the journal the next run resumes from is well-formed).
  CrashPlan crash;
  /// This process's shard index for CrashPlan::only_shard matching
  /// (-1 for unsharded runs and the supervisor itself).
  int shard_index = -1;
};

class CheckpointJournal {
 public:
  using Options = JournalOptions;

  /// Disabled journal: contains() is false, append() and flush() are no-ops.
  CheckpointJournal() = default;
  explicit CheckpointJournal(std::string path, Options options = {});

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Flushes any buffered records (errors already reported on stderr).
  ~CheckpointJournal();

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Loads the journal file into the in-memory index (duplicate keys: last
  /// record wins). Missing file is an empty journal, not an error. Returns
  /// the number of records loaded; malformed lines are skipped and counted
  /// in skipped_lines().
  std::size_t load();

  [[nodiscard]] bool contains(const std::string& key) const;
  /// Pointer into the journal's index — stable until the next non-const
  /// call. Null when absent. Prefer lookup() when appends may run
  /// concurrently (batch workers).
  [[nodiscard]] const CheckpointRecord* find(const std::string& key) const;
  /// Copy of the record for `key`, safe against concurrent append().
  [[nodiscard]] std::optional<CheckpointRecord> lookup(
      const std::string& key) const;

  /// Records a completed cell (thread-safe; batch workers call this
  /// concurrently). The record joins the in-memory index immediately and
  /// becomes durable at the next flush (every fsync_batch appends).
  void append(CheckpointRecord record);

  /// Serialize + fsync + rename now (no-op when nothing is buffered since
  /// the last flush). Returns false when the write failed (reported once on
  /// stderr; the sweep continues — checkpointing degrades, work goes on).
  bool flush();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t appended() const;       ///< via append() only
  [[nodiscard]] std::size_t skipped_lines() const;  ///< malformed on load

 private:
  bool flush_locked();

  std::string path_;
  Options options_;
  mutable std::mutex mutex_;
  /// Insertion-ordered records; index_ maps key -> position (last wins).
  std::vector<CheckpointRecord> records_;
  std::unordered_map<std::string, std::size_t> index_;
  std::size_t appended_ = 0;
  std::size_t unflushed_ = 0;
  std::size_t skipped_lines_ = 0;
  bool write_failed_ = false;  ///< report the first failure only
};

/// Tallies of one journal merge.
struct MergeReport {
  std::size_t inputs = 0;          ///< journal files read (missing excluded)
  std::size_t records = 0;         ///< distinct keys in the merged output
  std::size_t duplicates = 0;      ///< records dropped as duplicate keys
  std::size_t malformed_lines = 0; ///< skipped while loading inputs
};

/// Combines per-shard journals into `out_path` (atomic write-then-rename;
/// first occurrence of a key wins, input order = shard order then line
/// order). The output is itself a valid journal, so the merged sweep can be
/// resumed or re-rendered from it.
MergeReport merge_journals(std::span<const std::string> shard_paths,
                           const std::string& out_path);

}  // namespace bvc::robust
