// Minimal JSON value + strict parser/writer for the bvcd wire format.
//
// The service speaks small request/response documents (job specs, status
// snapshots, stats), so this is a self-contained recursive value type, not
// a streaming parser: parse() either returns a fully validated document or
// nullopt — a malformed body is rejected before any field is read, which
// is exactly the 400-vs-crash line the HTTP layer needs. Writing is
// deterministic (object member order preserved, doubles rendered %.17g
// with integral values printed as integers), so responses diff cleanly in
// tests and the smoke script.
//
// Deliberately NOT general-purpose: no comments, no NaN/Inf literals
// (JSON has none), UTF-8 passed through verbatim, \uXXXX escapes decoded
// (surrogate pairs included), nesting capped at kMaxDepth so a hostile
// body cannot blow the stack.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bvc::svc {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parser recursion cap; deeper documents are rejected, not truncated.
  static constexpr std::size_t kMaxDepth = 64;

  Json() = default;  // null
  static Json boolean(bool value);
  static Json number(double value);
  static Json string(std::string value);
  static Json array();
  static Json object();

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  // Typed reads. Wrong-type access returns the neutral value rather than
  // throwing — callers validate types up front via the predicates.
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept;
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept;
  [[nodiscard]] const std::string& as_string() const noexcept;

  // Array access.
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const Json& at(std::size_t index) const noexcept {
    return items_[index];
  }
  [[nodiscard]] const std::vector<Json>& items() const noexcept {
    return items_;
  }
  void push_back(Json value);

  // Object access (member order preserved; first match wins on lookup).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const noexcept {
    return members_;
  }
  Json& set(std::string key, Json value);  ///< returns *this for chaining

  // Convenience typed lookups on objects.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;
  [[nodiscard]] bool bool_or(std::string_view key,
                             bool fallback) const noexcept;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;

  /// Compact single-line serialization (no insignificant whitespace).
  [[nodiscard]] std::string dump() const;

  /// Strict parse of exactly one document (trailing non-whitespace fails).
  [[nodiscard]] static std::optional<Json> parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Appends `text` as a quoted JSON string (shared escaping rules).
void append_json_escaped(std::string& out, std::string_view text);

}  // namespace bvc::svc
