#include "svc/http.hpp"

#include "obs/event_log.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace bvc::svc {

namespace {

/// Bodies above this are rejected with 413 before being read into memory.
constexpr std::size_t kMaxBodyBytes = 8u << 20;
/// Cap on concurrently served connections (each costs one detached
/// thread). At the cap the accept loop waits for a slot; further clients
/// queue in the kernel listen backlog. Far above what the job API needs —
/// the cap exists so a flood of stalled clients exhausts this bound, not
/// the process's thread supply.
constexpr std::size_t kMaxConnections = 32;
/// Request head (request line + headers) cap; anything larger is hostile.
constexpr std::size_t kMaxHeadBytes = 64u << 10;

constexpr const char* kCrlf = "\r\n";

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

void set_socket_timeout(int fd) {
  timeval timeout{};
  timeout.tv_sec = 10;  // a stalled client cannot hold the accept loop
  (void)setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  (void)setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent <= 0) {
      return false;
    }
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

void write_response(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     reason_phrase(response.status) + kCrlf;
  head += "Content-Type: " + response.content_type + kCrlf;
  head += "Content-Length: " + std::to_string(response.body.size()) + kCrlf;
  head += "Connection: close";
  head += kCrlf;
  head += kCrlf;
  if (send_all(fd, head.data(), head.size())) {
    (void)send_all(fd, response.body.data(), response.body.size());
  }
}

/// Reads from `fd` until the blank line ending the head, then exactly
/// Content-Length body bytes. Returns false on timeout, overflow, or a
/// malformed head (the caller answers nothing and closes — the peer is
/// not speaking HTTP).
bool read_request(int fd, HttpRequest& request, int& error_status) {
  std::string buffer;
  std::size_t head_end = std::string::npos;
  char chunk[4096];
  while (head_end == std::string::npos) {
    if (buffer.size() > kMaxHeadBytes) {
      error_status = 413;
      return false;
    }
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      error_status = 408;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
    head_end = buffer.find("\r\n\r\n");
  }

  const std::string head = buffer.substr(0, head_end);
  std::string body = buffer.substr(head_end + 4);

  // Request line: METHOD SP TARGET SP VERSION.
  const std::size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    error_status = 400;
    return false;
  }
  request.method = request_line.substr(0, sp1);
  // The query string stays in the target; the router splits it off (the
  // jobs endpoint takes ?offset/&limit pagination parameters).
  request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  // Content-Length (case-insensitive header match, first wins).
  std::size_t content_length = 0;
  std::size_t cursor = line_end == std::string::npos ? head.size()
                                                     : line_end + 2;
  while (cursor < head.size()) {
    std::size_t eol = head.find("\r\n", cursor);
    if (eol == std::string::npos) {
      eol = head.size();
    }
    const std::string line = head.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string name = line.substr(0, colon);
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (name != "content-length") {
      continue;
    }
    const std::string value = line.substr(colon + 1);
    content_length = static_cast<std::size_t>(
        std::strtoull(value.c_str(), nullptr, 10));
    break;
  }
  if (content_length > kMaxBodyBytes) {
    error_status = 413;
    return false;
  }

  while (body.size() < content_length) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      error_status = 408;
      return false;
    }
    body.append(chunk, static_cast<std::size_t>(got));
  }
  body.resize(content_length);
  request.body = std::move(body);
  return true;
}

}  // namespace

HttpServer::HttpServer(HttpHandler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    std::perror("bvcd: socket");
    return false;
  }
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    std::perror("bvcd: bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) != 0) {
    std::perror("bvcd: listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t length = sizeof(address);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) == 0) {
    port_ = ntohs(address.sin_port);
  }
  accept_thread_ = std::thread([this] { serve(); });
  return true;
}

void HttpServer::serve() {
  // Local copy: stop() overwrites listen_fd_ (after joining this thread);
  // serve() must never re-read the member while shutting down.
  const int listen_fd = listen_fd_;
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listen socket shut down by stop()
    }
    spawn_connection(fd);
  }
}

void HttpServer::spawn_connection(int fd) {
  {
    std::unique_lock<std::mutex> lock(connection_mutex_);
    connection_cv_.wait(lock, [this] {
      return active_connections_ < kMaxConnections || stopping_;
    });
    if (stopping_) {
      ::close(fd);
      return;
    }
    ++active_connections_;
  }
  try {
    std::thread([this, fd] {
      handle_connection(fd);
      ::close(fd);
      // notify under the lock: once stop() (blocked on this count inside
      // a wait that holds the mutex) observes zero and reacquires, this
      // thread has released the lock and never touches `this` again — so
      // the server object may be destroyed immediately after the drain.
      const std::lock_guard<std::mutex> lock(connection_mutex_);
      --active_connections_;
      connection_cv_.notify_all();
    }).detach();
  } catch (const std::system_error& e) {
    // Out of threads: serve this one connection inline instead of
    // dropping it. The accept loop stalls for its duration — acceptable
    // in an rlimit-starved corner the cap normally prevents.
    obs::log_error("svc", "connection thread spawn failed; serving inline",
                   {{"error", e.what()}});
    handle_connection(fd);
    ::close(fd);
    const std::lock_guard<std::mutex> lock(connection_mutex_);
    --active_connections_;
    connection_cv_.notify_all();
  }
}

void HttpServer::handle_connection(int fd) {
  set_socket_timeout(fd);
  HttpRequest request;
  int error_status = 400;
  if (!read_request(fd, request, error_status)) {
    HttpResponse error;
    error.status = error_status;
    error.body = "{\"error\":\"malformed request\"}";
    write_response(fd, error);
    return;
  }
  HttpResponse response;
  try {
    response = handler_(request);
  } catch (const std::exception& e) {
    response.status = 500;
    response.body = "{\"error\":\"internal\"}";
    obs::log_error("svc", "request handler threw",
                   {{"error", e.what()}});
  }
  write_response(fd, response);
}

void HttpServer::stop() {
  {
    // Break the accept loop's wait-for-slot first, or joining it below
    // could deadlock against a full connection table.
    const std::lock_guard<std::mutex> lock(connection_mutex_);
    stopping_ = true;
    connection_cv_.notify_all();
  }
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept(); close() alone may not. The
    // close is deferred until after the join: closing while serve() still
    // holds the fd number would let a concurrent open (e.g. a cache disk
    // spill) reuse it, handing accept() an unrelated descriptor.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  {
    // Drain: connection threads are detached, so their liveness is this
    // count. Per-connection socket timeouts bound the wait.
    std::unique_lock<std::mutex> lock(connection_mutex_);
    connection_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  if (listen_fd_ >= 0) {
    (void)::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::optional<HttpResponse> http_fetch(std::uint16_t port,
                                       const std::string& method,
                                       const std::string& target,
                                       const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return std::nullopt;
  }
  set_socket_timeout(fd);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    ::close(fd);
    return std::nullopt;
  }

  std::string head = method + " " + target + " HTTP/1.1" + kCrlf;
  head += "Host: 127.0.0.1";
  head += kCrlf;
  head += "Content-Length: " + std::to_string(body.size()) + kCrlf;
  head += "Connection: close";
  head += kCrlf;
  head += kCrlf;
  if (!send_all(fd, head.data(), head.size()) ||
      !send_all(fd, body.data(), body.size())) {
    ::close(fd);
    return std::nullopt;
  }

  // Read to EOF (the server closes after one response), then split.
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got < 0) {
      ::close(fd);
      return std::nullopt;
    }
    if (got == 0) {
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(got));
    if (buffer.size() > kMaxBodyBytes + kMaxHeadBytes) {
      ::close(fd);
      return std::nullopt;
    }
  }
  ::close(fd);

  const std::size_t head_end = buffer.find("\r\n\r\n");
  if (head_end == std::string::npos ||
      buffer.rfind("HTTP/1.1 ", 0) != 0) {
    return std::nullopt;
  }
  HttpResponse response;
  response.status = std::atoi(buffer.c_str() + 9);
  response.body = buffer.substr(head_end + 4);
  return response;
}

}  // namespace bvc::svc
