// bvc-cli — thin client for the bvcd job API. One verb per invocation:
//
//   bvc-cli submit  --port N [--file spec.json]   POST /v1/jobs (stdin
//                                                 when --file is absent)
//   bvc-cli status  <id> --port N [--offset K]    GET /v1/jobs/<id>
//                   [--limit M]                   (paginated when --offset
//                                                 is given)
//   bvc-cli result  <id> --port N [--timeout S]   poll until terminal, then
//                                                 print the final snapshot
//   bvc-cli tail    <id> --port N [--timeout S]   stream finished cells as
//                                                 they complete (one JSON
//                                                 record per line, via the
//                                                 ?offset cursor), until
//                                                 the job is terminal
//   bvc-cli cancel  <id> --port N                 DELETE /v1/jobs/<id>
//   bvc-cli list    --port N                      GET /v1/jobs
//   bvc-cli metrics --port N [--format=prometheus]
//                                                 GET /v1/metrics; with
//                                                 --format the body is
//                                                 printed VERBATIM (the
//                                                 exposition text is not
//                                                 JSON)
//   bvc-cli health  --port N                      GET /v1/healthz
//   bvc-cli cache   --port N                      GET /v1/cache
//   bvc-cli merge   <dir> --metrics-out PATH      offline: merge a
//                   [--prom-out PATH]             telemetry directory (as
//                   [--trace-out PATH]            written by --telemetry-dir
//                                                 workers) into one metrics
//                                                 snapshot / Chrome trace —
//                                                 no daemon needed
//
// Every verb prints the response body (JSON) on stdout. Exit codes:
// 0 = 2xx, 1 = HTTP error / job did not finish, 3 = cannot reach bvcd,
// 4 = the server answered a --format metrics request with a non-200.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/telemetry.hpp"
#include "svc/http.hpp"
#include "svc/json.hpp"
#include "util/arg_spec.hpp"

namespace {

using namespace bvc;

/// --port, or the number stored in --port-file (bvcd writes it atomically).
long resolve_port(const CliArgs& args) {
  const long port = args.get_long("port", 0);
  if (port > 0) {
    return port;
  }
  const std::string port_file = args.get_string("port-file", "");
  if (!port_file.empty()) {
    std::ifstream in(port_file);
    long from_file = 0;
    if (in >> from_file) {
      return from_file;
    }
    std::fprintf(stderr, "bvc-cli: cannot read port from %s\n",
                 port_file.c_str());
    return 0;
  }
  return 0;
}

int print_response(const std::optional<svc::HttpResponse>& response) {
  if (!response) {
    std::fprintf(stderr, "bvc-cli: cannot reach bvcd\n");
    return 3;
  }
  std::printf("%s\n", response->body.c_str());
  return response->status < 300 ? 0 : 1;
}

std::string read_spec(const CliArgs& args) {
  const std::string file = args.get_string("file", "");
  if (file.empty() || file == "-") {
    std::ostringstream body;
    body << std::cin.rdbuf();
    return body.str();
  }
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "bvc-cli: cannot read %s\n", file.c_str());
    return "";
  }
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

bool is_terminal_state(const std::string& state) {
  return state == "done" || state == "cancelled" || state == "failed";
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("bvc-cli",
                         "Client for the bvcd solve service (see verbs in "
                         "the file header / docs/SERVICE.md)");
  parser.add({
      {"port", util::ArgType::kLong, "N", "bvcd port on 127.0.0.1", ""},
      {"port-file", util::ArgType::kString, "PATH",
       "read the port from PATH (as written by bvcd --port-file)", ""},
      {"file", util::ArgType::kString, "PATH",
       "job spec JSON for `submit` (default: stdin)", ""},
      {"timeout", util::ArgType::kDouble, "S",
       "`result`/`tail`: give up after S seconds", "600"},
      {"poll-ms", util::ArgType::kLong, "MS",
       "`result`/`tail`: poll interval in milliseconds", "200"},
      {"offset", util::ArgType::kLong, "K",
       "`status`: return records from completion position K onward", ""},
      {"limit", util::ArgType::kLong, "M",
       "`status`: page size when --offset is given", ""},
      {"format", util::ArgType::kString, "FMT",
       "`metrics`: ask the server for FMT (json|prometheus) and print the "
       "body verbatim", ""},
      {"metrics-out", util::ArgType::kString, "PATH",
       "`merge`: write the merged metrics snapshot (JSON) to PATH", ""},
      {"prom-out", util::ArgType::kString, "PATH",
       "`merge`: write the merged snapshot in Prometheus exposition format "
       "to PATH", ""},
      {"trace-out", util::ArgType::kString, "PATH",
       "`merge`: write the merged Chrome trace (one pid lane per worker) "
       "to PATH", ""},
  });
  const CliArgs args = parser.parse(argc, argv);

  const std::vector<std::string>& positional = args.positional();
  if (positional.empty()) {
    std::fprintf(stderr,
                 "bvc-cli: missing verb (submit|status|result|tail|cancel|"
                 "list|metrics|health|cache|merge); run --help\n");
    return 2;
  }
  const std::string& verb = positional[0];

  // `merge` is the one offline verb: it reads a telemetry directory
  // directly, so it must not demand a port.
  if (verb == "merge") {
    if (positional.size() < 2) {
      std::fprintf(stderr, "bvc-cli: merge needs a telemetry directory\n");
      return 2;
    }
    const std::string& dir = positional[1];
    const std::string metrics_out = args.get_string("metrics-out", "");
    const std::string prom_out = args.get_string("prom-out", "");
    const std::string trace_out = args.get_string("trace-out", "");
    if (metrics_out.empty() && prom_out.empty() && trace_out.empty()) {
      std::fprintf(stderr,
                   "bvc-cli: merge needs at least one of --metrics-out, "
                   "--prom-out, --trace-out\n");
      return 2;
    }
    const obs::TelemetryMergeReport report = obs::merge_telemetry_dir(dir);
    for (const std::string& error : report.errors) {
      std::fprintf(stderr, "bvc-cli: %s\n", error.c_str());
    }
    if (report.metrics_files == 0 && report.trace_files.empty()) {
      std::fprintf(stderr, "bvc-cli: no telemetry files under %s\n",
                   dir.c_str());
      return 1;
    }
    bool ok = true;
    const auto write_file = [&ok](const std::string& path,
                                  const auto& writer) {
      std::ofstream out(path, std::ios::trunc);
      if (out) {
        writer(out);
      }
      if (!out) {
        std::fprintf(stderr, "bvc-cli: cannot write %s\n", path.c_str());
        ok = false;
      }
    };
    if (!metrics_out.empty()) {
      write_file(metrics_out, [&report](std::ostream& out) {
        obs::write_metrics_json(out, report.metrics);
      });
    }
    if (!prom_out.empty()) {
      write_file(prom_out, [&report](std::ostream& out) {
        obs::write_prometheus(out, report.metrics);
      });
    }
    if (!trace_out.empty()) {
      write_file(trace_out, [&dir](std::ostream& out) {
        (void)obs::write_merged_chrome_trace(out, dir, nullptr, "");
      });
    }
    return ok ? 0 : 1;
  }

  const long port = resolve_port(args);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bvc-cli: need --port or --port-file\n");
    return 2;
  }
  const auto fetch = [port](const std::string& method,
                            const std::string& target,
                            const std::string& body = "") {
    return svc::http_fetch(static_cast<std::uint16_t>(port), method, target,
                           body);
  };

  if (verb == "submit") {
    const std::string spec = read_spec(args);
    if (spec.empty()) {
      return 2;
    }
    return print_response(fetch("POST", "/v1/jobs", spec));
  }
  if (verb == "list") {
    return print_response(fetch("GET", "/v1/jobs"));
  }
  if (verb == "metrics") {
    const std::string format = args.get_string("format", "");
    if (format.empty()) {
      return print_response(fetch("GET", "/v1/metrics"));
    }
    const std::optional<svc::HttpResponse> response =
        fetch("GET", "/v1/metrics?format=" + format);
    if (!response) {
      std::fprintf(stderr, "bvc-cli: cannot reach bvcd\n");
      return 3;
    }
    // Verbatim: the Prometheus exposition text is newline-terminated
    // already, and a scrape relay must not alter the body.
    std::fputs(response->body.c_str(), stdout);
    return response->status == 200 ? 0 : 4;
  }
  if (verb == "health") {
    return print_response(fetch("GET", "/v1/healthz"));
  }
  if (verb == "cache") {
    return print_response(fetch("GET", "/v1/cache"));
  }

  // The remaining verbs address one job.
  if (positional.size() < 2) {
    std::fprintf(stderr, "bvc-cli: %s needs a job id\n", verb.c_str());
    return 2;
  }
  const std::string target = "/v1/jobs/" + positional[1];
  if (verb == "status") {
    const long offset = args.get_long("offset", -1);
    const long limit = args.get_long("limit", -1);
    std::string paged = target;
    if (offset >= 0) {
      paged += "?offset=" + std::to_string(offset);
      if (limit >= 0) {
        paged += "&limit=" + std::to_string(limit);
      }
    }
    return print_response(fetch("GET", paged));
  }
  if (verb == "tail") {
    // Follow the job via the pagination cursor: each poll asks for records
    // from the last seen completion position, so every record is printed
    // exactly once, as soon as it finishes.
    const double timeout_seconds = args.get_double("timeout", 600.0);
    const long poll_ms = args.get_long("poll-ms", 200);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    long offset = 0;
    while (true) {
      const std::optional<svc::HttpResponse> response =
          fetch("GET", target + "?offset=" + std::to_string(offset));
      if (!response) {
        std::fprintf(stderr, "bvc-cli: cannot reach bvcd\n");
        return 3;
      }
      if (response->status >= 300) {
        std::printf("%s\n", response->body.c_str());
        return 1;
      }
      const std::optional<svc::Json> body = svc::Json::parse(response->body);
      if (!body) {
        std::fprintf(stderr, "bvc-cli: malformed response\n");
        return 1;
      }
      if (const svc::Json* records = body->find("records");
          records != nullptr && records->is_array()) {
        for (const svc::Json& record : records->items()) {
          std::printf("%s\n", record.dump().c_str());
        }
        std::fflush(stdout);
      }
      offset = static_cast<long>(body->number_or(
          "next_offset", static_cast<double>(offset)));
      const std::string state = body->string_or("state", "");
      if (is_terminal_state(state)) {
        return state == "done" ? 0 : 1;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "bvc-cli: timed out waiting for %s\n",
                     positional[1].c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }
  if (verb == "cancel") {
    return print_response(fetch("DELETE", target));
  }
  if (verb == "result") {
    const double timeout_seconds = args.get_double("timeout", 600.0);
    const long poll_ms = args.get_long("poll-ms", 200);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_seconds);
    while (true) {
      const std::optional<svc::HttpResponse> response = fetch("GET", target);
      if (!response) {
        std::fprintf(stderr, "bvc-cli: cannot reach bvcd\n");
        return 3;
      }
      if (response->status >= 300) {
        std::printf("%s\n", response->body.c_str());
        return 1;
      }
      const std::optional<svc::Json> body = svc::Json::parse(response->body);
      const std::string state = body ? body->string_or("state", "") : "";
      if (is_terminal_state(state)) {
        std::printf("%s\n", response->body.c_str());
        return state == "done" ? 0 : 1;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "bvc-cli: timed out waiting for %s\n",
                     positional[1].c_str());
        std::printf("%s\n", response->body.c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }

  std::fprintf(stderr, "bvc-cli: unknown verb '%s'; run --help\n",
               verb.c_str());
  return 2;
}
