// bvcd — the long-running solve daemon. Serves the HTTP/JSON job API
// (svc::SolveService) over a loopback socket, with the model cache, obs
// registry, and crash-safe job persistence wired in. See docs/SERVICE.md.
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <thread>

#include "mdp/kernel.hpp"
#include "mdp/model_cache.hpp"
#include "obs/event_log.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "svc/http.hpp"
#include "svc/service.hpp"
#include "util/arg_spec.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) { g_stop_requested = 1; }

/// Atomic tmp+rename publish so a poller never reads a partial file.
bool write_text_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << content;
    if (!out) {
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bvc;

  util::ArgParser parser(
      "bvcd", "Solve service daemon: HTTP/JSON job API over the batch engine");
  parser.add({
      {"port", util::ArgType::kLong, "N",
       "TCP port on 127.0.0.1 (0 = pick an ephemeral port)", "0"},
      {"port-file", util::ArgType::kString, "PATH",
       "write the bound port number to PATH (atomic) once listening", ""},
      {"state-dir", util::ArgType::kString, "PATH",
       "persist jobs under PATH and resume them on restart (created if "
       "missing; empty = in-memory only)", ""},
      {"threads", util::ArgType::kLong, "N",
       "batch worker threads per job (0 = all hardware threads)", "1"},
      {"concurrent-cells", util::ArgType::kLong, "N",
       "global cap on cells solving at once across jobs (0 = unlimited)",
       "0"},
      {"max-cells", util::ArgType::kLong, "N",
       "reject jobs that expand to more than N cells", "4096"},
      {"job-retention", util::ArgType::kLong, "N",
       "keep at most N finished jobs, evicting the oldest (index entry + "
       "cell journal); 0 = keep everything", "0"},
      {"max-wall-clock", util::ArgType::kDouble, "S",
       "cap every job's wall-clock budget at S seconds (default: uncapped)", ""},
      {"cache-bytes", util::ArgType::kLong, "N",
       "bound the global compiled-model cache at N bytes (cost-aware LRU "
       "eviction; 0 = unbounded)", "0"},
      {"cache-dir", util::ArgType::kString, "PATH",
       "spill compiled models to PATH so evicted/cold models reload from "
       "disk instead of recompiling", ""},
      {"manifest-out", util::ArgType::kString, "PATH",
       "write a run manifest (binary, args, endpoints, metrics) to PATH on "
       "shutdown", ""},
      {"kernel", util::ArgType::kString, "ISA",
       "sweep kernel ISA: auto|scalar|avx2|avx512 (overrides BVC_KERNEL)",
       "auto"},
      {"log-out", util::ArgType::kString, "PATH",
       "write structured JSONL event-log records to PATH instead of "
       "human-readable stderr", ""},
      {"log-level", util::ArgType::kString, "LEVEL",
       "minimum event-log level: debug|info|warn|error", "info"},
      {"telemetry-dir", util::ArgType::kString, "PATH",
       "periodically flush metrics + trace deltas into PATH (one "
       "bvcd.<pid>.* file pair) for cross-process aggregation", ""},
      {"telemetry-interval-ms", util::ArgType::kLong, "MS",
       "telemetry flush cadence in milliseconds", "500"},
  });
  const CliArgs args = parser.parse(argc, argv);

  // Event log first: every later failure (and the service's own warnings)
  // goes through it.
  {
    obs::LogConfig log_config;
    const std::string level_name = args.get_string("log-level", "info");
    const std::optional<obs::LogLevel> level =
        obs::parse_log_level(level_name);
    if (!level) {
      std::fprintf(stderr,
                   "bvcd: invalid --log-level value '%s' "
                   "(expected debug|info|warn|error)\n",
                   level_name.c_str());
      return 2;
    }
    log_config.min_level = *level;
    log_config.path = args.get_string("log-out", "");
    if (!obs::EventLog::global().configure(log_config)) {
      std::fprintf(stderr, "bvcd: cannot open --log-out file: %s\n",
                   log_config.path.c_str());
      return 2;
    }
  }

  // A daemon is always observable: /v1/metrics must serve live counters
  // without a restart-with-flags round trip.
  obs::set_metrics_enabled(true);

  const long port = args.get_long("port", 0);
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "bvcd: --port must be in [0, 65535]\n");
    return 2;
  }

  const std::string kernel_name = args.get_string("kernel", "");
  if (!kernel_name.empty()) {
    const auto kernel_request = mdp::kernel::parse_request(kernel_name);
    if (!kernel_request) {
      std::fprintf(stderr,
                   "bvcd: invalid --kernel value '%s' "
                   "(expected auto|scalar|avx2|avx512)\n",
                   kernel_name.c_str());
      return 2;
    }
    mdp::kernel::set_requested(*kernel_request);
  }

  const long cache_bytes = args.get_long("cache-bytes", 0);
  if (cache_bytes > 0) {
    mdp::ModelCache::global().set_capacity_bytes(
        static_cast<std::size_t>(cache_bytes));
  }
  const std::string cache_dir = args.get_string("cache-dir", "");
  if (!cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir, ec);
    if (ec) {
      obs::log_error("bvcd", "cannot create --cache-dir",
                     {{"path", cache_dir}, {"error", ec.message()}});
      return 1;
    }
    mdp::ModelCache::global().set_disk_tier(cache_dir);
  }

  svc::ServiceConfig config;
  config.state_dir = args.get_string("state-dir", "");
  config.threads = static_cast<int>(args.get_long("threads", 1));
  config.max_concurrent_cells =
      static_cast<int>(args.get_long("concurrent-cells", 0));
  config.limits.max_cells =
      static_cast<std::size_t>(args.get_long("max-cells", 4096));
  const long job_retention = args.get_long("job-retention", 0);
  if (job_retention < 0) {
    std::fprintf(stderr, "bvcd: --job-retention must be >= 0\n");
    return 2;
  }
  config.job_retention = static_cast<std::size_t>(job_retention);
  config.limits.max_wall_clock_seconds = args.get_double(
      "max-wall-clock", std::numeric_limits<double>::infinity());
  if (!config.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.state_dir, ec);
    if (ec) {
      obs::log_error("bvcd", "cannot create --state-dir",
                     {{"path", config.state_dir}, {"error", ec.message()}});
      return 1;
    }
  }

  // Periodic metrics/trace flushes into a shared directory: a supervisor
  // (or `bvc-cli merge`) aggregates them with any other process writing
  // into the same dir.
  std::optional<obs::TelemetryFlusher> flusher;
  const std::string telemetry_dir = args.get_string("telemetry-dir", "");
  if (!telemetry_dir.empty()) {
    obs::TelemetryConfig telemetry;
    telemetry.dir = telemetry_dir;
    telemetry.label = "bvcd";
    telemetry.interval_seconds =
        static_cast<double>(args.get_long("telemetry-interval-ms", 500)) /
        1000.0;
    flusher.emplace(telemetry);
  }

  obs::RunManifest manifest = obs::make_run_manifest(argc, argv);
  for (const std::string& endpoint : svc::SolveService::endpoints()) {
    manifest.annotations.emplace_back("endpoint", endpoint);
  }
  manifest.annotations.emplace_back(
      "kernel_requested",
      std::string(mdp::kernel::to_string(mdp::kernel::requested())));
  manifest.annotations.emplace_back(
      "kernel_isa",
      std::string(mdp::kernel::to_string(mdp::kernel::resolve())));

  svc::SolveService service(config);
  svc::HttpServer server(
      [&service](const svc::HttpRequest& request) {
        return service.route(request);
      });
  if (!server.start(static_cast<std::uint16_t>(port))) {
    return 1;
  }
  std::printf("bvcd listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  const std::string port_file = args.get_string("port-file", "");
  if (!port_file.empty() &&
      !write_text_file(port_file, std::to_string(server.port()) + "\n")) {
    obs::log_error("bvcd", "cannot write --port-file", {{"path", port_file}});
    server.stop();
    return 1;
  }

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("bvcd: shutting down\n");
  std::fflush(stdout);

  // Stop accepting first, then cancel + join the jobs (service dtor).
  server.stop();

  const std::string manifest_out = args.get_string("manifest-out", "");
  if (!manifest_out.empty()) {
    manifest.annotations.emplace_back("active_jobs_at_shutdown",
                                      std::to_string(service.active_jobs()));
    std::ofstream out(manifest_out, std::ios::trunc);
    if (out) {
      obs::write_manifest_json(out, manifest,
                               obs::MetricsRegistry::global().snapshot());
    } else {
      obs::log_error("bvcd", "cannot write --manifest-out",
                     {{"path", manifest_out}});
    }
  }
  return 0;
}
