// Wire-level job specifications for the bvcd solve service.
//
// A job is a JSON document naming a KIND (one of the repo's four batch
// families) plus either an explicit `cells` array or a `grid` object that
// expands into cells; each cell is one independent solve in the batch
// engine. The kinds map 1:1 onto the existing batch adapters:
//
//   "bu-attack"       -> bu::AnalysisJob    (Tables 2-4 cells)
//   "btc-sm"          -> btc::SmJob         (Bitcoin baseline cells)
//   "counter-voting"  -> counter::VotingJob (countermeasure simulations)
//   "net-sim"         -> sim::run_replicas  (network-simulation replicas;
//                         one cell per replica, `net` object + blocks/seed/
//                         replicas, see docs/SIMULATION.md)
//
// Results and persistence deliberately REUSE the checkpoint layer's cell
// serialization (bu::analysis_record / btc::sm_record /
// counter::voting_record / sim::sim_record and their *_restore
// counterparts) as the wire format: a cell's canonical key + named values
// is exactly what the journal stores, what the API returns, and what a
// restarted daemon resumes from — one schema, four consumers.
//
// Parsing is strict: unknown kinds, missing required fields, non-finite
// numbers, and grids above the admission limit are rejected with an HTTP
// status + message before any solving starts.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "btc/selfish_mining.hpp"
#include "bu/attack_analysis.hpp"
#include "counter/voting_simulation.hpp"
#include "robust/checkpoint.hpp"
#include "robust/run_control.hpp"
#include "sim/replicas.hpp"
#include "svc/json.hpp"

namespace bvc::svc {

enum class JobKind { kBuAttack, kBtcSm, kCounterVoting, kNetSim };

[[nodiscard]] std::string_view to_string(JobKind kind) noexcept;

/// Admission limits applied at parse time (the request is rejected, not
/// truncated, when it exceeds them).
struct JobLimits {
  /// Maximum cells one job may expand to.
  std::size_t max_cells = 4096;
  /// Cap on a request's wall-clock budget; requests without a budget get
  /// exactly this as their allowance. Infinity = uncapped (the default —
  /// table-scale solves are minutes, not hours, so bvcd only caps when
  /// told to).
  double max_wall_clock_seconds =
      std::numeric_limits<double>::infinity();
};

/// One parsed, validated job: the expanded cell list for exactly one kind.
/// Cells are solved via solve(), keyed via cell_key(), persisted/restored
/// via the checkpoint-record functions of the owning module.
class JobSpec {
 public:
  [[nodiscard]] JobKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t cells() const noexcept;
  [[nodiscard]] const robust::RunBudget& budget() const noexcept {
    return budget_;
  }

  /// The canonical checkpoint key of cell `i` (the journal/wire identity).
  [[nodiscard]] std::string cell_key(std::size_t i) const;

  /// Solves cell `i` under `control` and returns its checkpoint record
  /// (the wire result). The record's status reflects how the solve ended.
  [[nodiscard]] robust::CheckpointRecord solve(
      std::size_t i, const robust::RunControl& control) const;

  /// Validates `record` against this spec's schema (the module's
  /// *_restore): false means the record is foreign or truncated and the
  /// cell must be recomputed.
  [[nodiscard]] bool validate_record(
      const robust::CheckpointRecord& record) const;

  /// Parses and validates a job document. On failure returns nullptr and
  /// fills `status` (400 unknown/malformed, 413 over the cell limit) and
  /// `error` with a client-readable message.
  [[nodiscard]] static std::unique_ptr<JobSpec> parse(const Json& body,
                                                      const JobLimits& limits,
                                                      int& status,
                                                      std::string& error);

 private:
  JobKind kind_ = JobKind::kBuAttack;
  robust::RunBudget budget_;

  // Exactly one of these is non-empty, matching kind_.
  std::vector<bu::AnalysisJob> bu_jobs_;
  bu::AnalysisOptions bu_options_;
  std::vector<btc::SmJob> sm_jobs_;
  std::vector<counter::VotingJob> voting_jobs_;
  // net-sim: one simulation shared by every replica cell (run() is const;
  // shared_ptr keeps the spec movable). Cell i is replica i of the config.
  std::shared_ptr<const sim::NetworkSimulation> net_sim_;
  sim::NetworkConfig net_config_;
  std::uint64_t net_blocks_ = 1000;
  std::uint64_t net_seed_ = 42;
  std::size_t net_replicas_ = 1;
};

}  // namespace bvc::svc
