#include "svc/service.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "mdp/model_cache.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "util/check.hpp"

namespace bvc::svc {

namespace {

HttpResponse json_response(int status, const Json& body) {
  HttpResponse response;
  response.status = status;
  response.body = body.dump();
  return response;
}

HttpResponse error_response(int status, std::string message) {
  return json_response(
      status, Json::object().set("error", Json::string(std::move(message))));
}

/// One finished cell as wire JSON. `values` is an array of [name, value]
/// pairs, NOT an object: checkpoint records may repeat a name (the voting
/// trace stores one "limit_per_epoch" entry per epoch) and order matters.
Json record_json(const robust::CheckpointRecord& record) {
  Json values = Json::array();
  for (const auto& [name, value] : record.values) {
    Json pair = Json::array();
    pair.push_back(Json::string(name));
    pair.push_back(Json::number(value));
    values.push_back(std::move(pair));
  }
  Json out = Json::object();
  out.set("key", Json::string(record.key));
  out.set("status", Json::string(std::string(to_string(record.status))));
  out.set("values", std::move(values));
  if (!record.policy.empty()) {
    Json policy = Json::array();
    for (const std::int32_t action : record.policy) {
      policy.push_back(Json::number(static_cast<double>(action)));
    }
    out.set("policy", std::move(policy));
  }
  return out;
}

[[nodiscard]] bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kCancelled ||
         state == JobState::kFailed;
}

std::optional<JobState> state_from_string(std::string_view name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "done") return JobState::kDone;
  if (name == "cancelled") return JobState::kCancelled;
  if (name == "failed") return JobState::kFailed;
  return std::nullopt;
}

/// Relaxed-counter bump guarded by the global metrics toggle — the same
/// idiom the solver hot paths use, so a daemon with metrics disabled pays
/// one relaxed load.
void count_job_event(const char* name) {
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global().counter(name).add();
  }
}

void gauge_active_jobs(std::size_t active) {
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .gauge("svc.jobs.active")
        .set(static_cast<double>(active));
  }
}

/// Value of `name` in a query string ("offset=3&limit=2"), or nullopt.
std::optional<std::string> query_value(const std::string& query,
                                       std::string_view name) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) {
      end = query.size();
    }
    const std::string_view pair =
        std::string_view(query).substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == name) {
      return std::string(pair.substr(eq + 1));
    }
  }
  return std::nullopt;
}

/// Like query_value, but the value must be a plain non-negative integer;
/// anything else is malformed.
std::optional<std::size_t> query_param(const std::string& query,
                                       std::string_view name,
                                       bool& malformed) {
  const std::optional<std::string> value = query_value(query, name);
  if (!value) {
    return std::nullopt;
  }
  if (value->empty() || value->size() > 12 ||
      value->find_first_not_of("0123456789") != std::string::npos) {
    malformed = true;
    return std::nullopt;
  }
  return static_cast<std::size_t>(
      std::strtoull(value->c_str(), nullptr, 10));
}

}  // namespace

std::string_view to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

SolveService::SolveService(ServiceConfig config) : config_(std::move(config)) {
  if (!config_.state_dir.empty()) {
    BVC_REQUIRE(std::filesystem::is_directory(config_.state_dir),
                "service state_dir must be an existing directory");
    restore_jobs();
  }
}

SolveService::~SolveService() {
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, job] : jobs_) {
      job->cancel.request_cancel();
      if (job->worker.joinable()) {
        workers.push_back(std::move(job->worker));
      }
    }
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
}

std::vector<std::string> SolveService::endpoints() {
  return {
      "POST /v1/jobs",   "GET /v1/jobs",    "GET /v1/jobs/<id>",
      "DELETE /v1/jobs/<id>", "GET /v1/healthz", "GET /v1/metrics",
      "GET /v1/cache",
  };
}

HttpResponse SolveService::route(const HttpRequest& request) {
  // Split the query string off the path; only GET /v1/jobs/<id> reads it.
  std::string target = request.target;
  std::string query;
  if (const std::size_t mark = target.find('?');
      mark != std::string::npos) {
    query = target.substr(mark + 1);
    target.resize(mark);
  }
  if (target == "/v1/jobs") {
    if (request.method == "POST") {
      return submit(request);
    }
    if (request.method == "GET") {
      return list_jobs();
    }
    return error_response(405, "method not allowed");
  }
  if (target.rfind("/v1/jobs/", 0) == 0) {
    const std::string id = target.substr(9);
    if (id.empty() || id.find('/') != std::string::npos) {
      return error_response(404, "no such job");
    }
    if (request.method == "GET") {
      return job_status(id, query);
    }
    if (request.method == "DELETE") {
      return cancel_job(id);
    }
    return error_response(405, "method not allowed");
  }
  if (target == "/v1/healthz") {
    return request.method == "GET" ? healthz()
                                   : error_response(405, "method not allowed");
  }
  if (target == "/v1/metrics") {
    return request.method == "GET" ? metrics(query)
                                   : error_response(405, "method not allowed");
  }
  if (target == "/v1/cache") {
    return request.method == "GET" ? cache_stats()
                                   : error_response(405, "method not allowed");
  }
  return error_response(404, "no such endpoint");
}

HttpResponse SolveService::submit(const HttpRequest& request) {
  const std::optional<Json> body = Json::parse(request.body);
  if (!body) {
    return error_response(400, "request body is not valid JSON");
  }
  int status = 400;
  std::string error;
  std::unique_ptr<JobSpec> spec =
      JobSpec::parse(*body, config_.limits, status, error);
  if (spec == nullptr) {
    return error_response(status, error);
  }

  Job* job = nullptr;
  std::size_t active = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto owned = std::make_unique<Job>();
    owned->id = "j" + std::to_string(next_job_number_++);
    owned->spec_body = body->dump();
    owned->spec = std::move(spec);
    owned->records.resize(owned->spec->cells());
    owned->finished.assign(owned->spec->cells(), false);
    job = owned.get();
    order_.push_back(owned->id);
    jobs_.emplace(owned->id, std::move(owned));
    persist_index_locked();
    // Spawn under the lock: once the job is in jobs_, ~SolveService may
    // read job->worker under mutex_ — assigning it unlocked would race.
    // No deadlock: run_job takes mutex_ itself, so the worker just blocks
    // until this section releases it.
    job->worker = std::thread([this, job] { run_job(job); });
    for (const auto& [jid, entry] : jobs_) {
      if (!is_terminal(entry->state)) {
        ++active;
      }
    }
  }
  count_job_event("svc.jobs.submitted");
  gauge_active_jobs(active);
  obs::log_info("svc", "job submitted",
                {{"id", job->id},
                 {"kind", to_string(job->spec->kind())},
                 {"cells", job->spec->cells()}});

  Json response = Json::object();
  response.set("id", Json::string(job->id));
  response.set("kind",
               Json::string(std::string(to_string(job->spec->kind()))));
  response.set("cells",
               Json::number(static_cast<double>(job->spec->cells())));
  return json_response(202, response);
}

HttpResponse SolveService::list_jobs() {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json items = Json::array();
  for (const std::string& id : order_) {
    const Job& job = *jobs_.at(id);
    Json entry = Json::object();
    entry.set("id", Json::string(job.id));
    entry.set("kind", Json::string(std::string(to_string(job.spec->kind()))));
    entry.set("state", Json::string(std::string(to_string(job.state))));
    entry.set("cells", Json::number(static_cast<double>(job.spec->cells())));
    entry.set("completed", Json::number(static_cast<double>(job.completed)));
    items.push_back(std::move(entry));
  }
  return json_response(200, Json::object().set("jobs", std::move(items)));
}

HttpResponse SolveService::job_status(const std::string& id,
                                      const std::string& query) {
  bool malformed = false;
  const std::optional<std::size_t> offset =
      query_param(query, "offset", malformed);
  const std::optional<std::size_t> limit =
      query_param(query, "limit", malformed);
  if (malformed) {
    return error_response(400,
                          "query parameters 'offset'/'limit' must be "
                          "non-negative integers");
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return error_response(404, "no such job");
  }
  const Job& job = *it->second;
  Json out = Json::object();
  out.set("id", Json::string(job.id));
  out.set("kind", Json::string(std::string(to_string(job.spec->kind()))));
  out.set("state", Json::string(std::string(to_string(job.state))));
  out.set("cells", Json::number(static_cast<double>(job.spec->cells())));
  out.set("completed", Json::number(static_cast<double>(job.completed)));
  out.set("resumed", Json::number(static_cast<double>(job.resumed)));
  if (!job.failure.empty()) {
    out.set("failure", Json::string(job.failure));
  }
  if (job.state != JobState::kQueued) {
    // Live telemetry: progress rate and an ETA while the worker runs, the
    // final wall-clock once terminal, plus the process-wide model-cache
    // stats this job is drawing on. `resumed` cells restored from the
    // journal in microseconds are excluded from the rate so the ETA
    // reflects real solve throughput.
    const bool running = job.state == JobState::kRunning;
    const double elapsed =
        running ? std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - job.started_at)
                      .count()
                : job.run_seconds;
    const double solved =
        static_cast<double>(job.completed) - static_cast<double>(job.resumed);
    const double rate = elapsed > 0.0 ? solved / elapsed : 0.0;
    Json telemetry = Json::object();
    telemetry.set("elapsed_seconds", Json::number(elapsed));
    telemetry.set("cells_per_second", Json::number(rate));
    if (running && rate > 0.0) {
      const double remaining =
          static_cast<double>(job.spec->cells()) -
          static_cast<double>(job.completed);
      telemetry.set("eta_seconds", Json::number(remaining / rate));
    }
    telemetry.set("worker_alive", Json::boolean(running));
    const mdp::ModelCache::Stats cache = mdp::ModelCache::global().stats();
    Json cache_json = Json::object();
    cache_json.set("hits", Json::number(static_cast<double>(cache.hits)));
    cache_json.set("misses", Json::number(static_cast<double>(cache.misses)));
    cache_json.set("entries",
                   Json::number(static_cast<double>(cache.entries)));
    cache_json.set("bytes_resident",
                   Json::number(static_cast<double>(cache.bytes_resident)));
    telemetry.set("cache", std::move(cache_json));
    out.set("telemetry", std::move(telemetry));
  }
  Json records = Json::array();
  if (offset) {
    // Paginated: the slice of the append-only completion order starting at
    // *offset. Positions never shift, so a tailing client resumes exactly
    // where its last page ended (next_offset).
    std::size_t end = job.completion_order.size();
    if (limit && *offset + *limit < end) {
      end = *offset + *limit;
    }
    for (std::size_t pos = *offset;
         pos < end && pos < job.completion_order.size(); ++pos) {
      records.push_back(record_json(job.records[job.completion_order[pos]]));
    }
    const std::size_t served = std::min(*offset, job.completion_order.size());
    out.set("offset", Json::number(static_cast<double>(served)));
    out.set("next_offset",
            Json::number(static_cast<double>(std::max(served, end))));
  } else {
    // Unpaginated (legacy): every finished cell in input order — a poll
    // during the run sees a growing subset, i.e. streamed partials.
    for (std::size_t i = 0; i < job.records.size(); ++i) {
      if (job.finished[i]) {
        records.push_back(record_json(job.records[i]));
      }
    }
  }
  out.set("records", std::move(records));
  return json_response(200, out);
}

HttpResponse SolveService::cancel_job(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return error_response(404, "no such job");
  }
  Job& job = *it->second;
  job.cancel.request_cancel();
  Json out = Json::object();
  out.set("id", Json::string(job.id));
  out.set("state", Json::string(is_terminal(job.state)
                                    ? std::string(to_string(job.state))
                                    : "cancelling"));
  return json_response(202, out);
}

HttpResponse SolveService::healthz() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const auto& [id, job] : jobs_) {
    if (!is_terminal(job->state)) {
      ++active;
    }
  }
  Json out = Json::object();
  out.set("status", Json::string("ok"));
  out.set("jobs", Json::number(static_cast<double>(jobs_.size())));
  out.set("active", Json::number(static_cast<double>(active)));
  return json_response(200, out);
}

HttpResponse SolveService::metrics(const std::string& query) {
  const std::string format = query_value(query, "format").value_or("json");
  std::ostringstream out;
  HttpResponse response;
  if (format == "prometheus") {
    obs::write_prometheus(out, obs::MetricsRegistry::global().snapshot());
    response.content_type = std::string(obs::kPrometheusContentType);
  } else if (format == "json") {
    obs::MetricsRegistry::global().write_json(out);
  } else {
    return error_response(
        400, "unknown metrics format (expected json or prometheus)");
  }
  response.body = out.str();
  return response;
}

HttpResponse SolveService::cache_stats() {
  const mdp::ModelCache::Stats stats = mdp::ModelCache::global().stats();
  Json out = Json::object();
  out.set("hits", Json::number(static_cast<double>(stats.hits)));
  out.set("misses", Json::number(static_cast<double>(stats.misses)));
  out.set("entries", Json::number(static_cast<double>(stats.entries)));
  out.set("bytes_resident",
          Json::number(static_cast<double>(stats.bytes_resident)));
  out.set("evictions", Json::number(static_cast<double>(stats.evictions)));
  out.set("capacity_bytes",
          Json::number(static_cast<double>(stats.capacity_bytes)));
  out.set("disk_hits", Json::number(static_cast<double>(stats.disk_hits)));
  out.set("disk_stores",
          Json::number(static_cast<double>(stats.disk_stores)));
  return json_response(200, out);
}

std::size_t SolveService::active_jobs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t active = 0;
  for (const auto& [id, job] : jobs_) {
    if (!is_terminal(job->state)) {
      ++active;
    }
  }
  return active;
}

void SolveService::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    for (const auto& [id, job] : jobs_) {
      if (!is_terminal(job->state)) {
        return false;
      }
    }
    return true;
  });
}

std::string SolveService::journal_path(const std::string& id) const {
  return config_.state_dir + "/job-" + id + ".cells.jsonl";
}

void SolveService::run_job(Job* job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->state = JobState::kRunning;
    job->started_at = std::chrono::steady_clock::now();
  }
  try {
    const std::size_t count = job->spec->cells();
    std::vector<std::string> keys(count);
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = job->spec->cell_key(i);
    }

    // Per-job journal: same durability protocol as the bench sweeps,
    // including the deterministic BVC_CRASH_AFTER_CELLS kill hook — the
    // restart-resume path is tested with a REAL mid-grid death.
    std::unique_ptr<robust::CheckpointJournal> journal;
    if (!config_.state_dir.empty()) {
      robust::JournalOptions options;
      options.crash = robust::crash_plan_from_env();
      journal = std::make_unique<robust::CheckpointJournal>(
          journal_path(job->id), options);
      (void)journal->load();
    }

    mdp::BatchCheckpoint checkpoint;
    if (journal != nullptr) {
      checkpoint.journal = journal.get();
      checkpoint.cell_key = [&keys](std::size_t i) { return keys[i]; };
      checkpoint.restore = [this, job](std::size_t i,
                                       const robust::CheckpointRecord& record) {
        if (!job->spec->validate_record(record)) {
          return false;  // schema drift: recompute instead of trusting it
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        job->records[i] = record;
        job->finished[i] = true;
        job->completion_order.push_back(i);
        ++job->completed;
        ++job->resumed;
        return true;
      };
      checkpoint.snapshot = [this, job](std::size_t i) {
        const std::lock_guard<std::mutex> lock(mutex_);
        return job->records[i];
      };
    }

    mdp::BatchConfig batch;
    batch.threads = config_.threads;
    batch.control.budget = job->spec->budget();
    batch.control.cancel = job->cancel;

    const auto run_item = [this, job](std::size_t i,
                                      const robust::RunControl& control) {
      acquire_cell_slot();
      robust::CheckpointRecord record;
      try {
        record = job->spec->solve(i, control);
      } catch (...) {
        release_cell_slot();
        throw;
      }
      release_cell_slot();
      const robust::RunStatus status = record.status;
      const std::lock_guard<std::mutex> lock(mutex_);
      job->records[i] = std::move(record);
      job->finished[i] = true;
      job->completion_order.push_back(i);
      ++job->completed;
      return status;
    };
    const auto skip_item = [this, job, &keys](std::size_t i,
                                              robust::RunStatus status) {
      const std::lock_guard<std::mutex> lock(mutex_);
      job->records[i].key = keys[i];
      job->records[i].status = status;
    };

    (void)mdp::run_batch(count, batch, checkpoint, run_item, skip_item);
    if (journal != nullptr) {
      (void)journal->flush();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job->state = job->cancel.cancel_requested() ? JobState::kCancelled
                                                  : JobState::kDone;
      persist_index_locked();
    }
  } catch (const std::exception& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    job->state = JobState::kFailed;
    job->failure = e.what();
    persist_index_locked();
  }
  {
    std::size_t active = 0;
    JobState terminal_state = JobState::kDone;
    double run_seconds = 0.0;
    std::size_t completed = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job->run_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - job->started_at)
                             .count();
      run_seconds = job->run_seconds;
      terminal_state = job->state;
      completed = job->completed;
      for (const auto& [jid, entry] : jobs_) {
        if (!is_terminal(entry->state)) {
          ++active;
        }
      }
    }
    count_job_event(terminal_state == JobState::kDone       ? "svc.jobs.done"
                    : terminal_state == JobState::kCancelled
                        ? "svc.jobs.cancelled"
                        : "svc.jobs.failed");
    gauge_active_jobs(active);
    obs::log_info("svc", "job finished",
                  {{"id", job->id},
                   {"state", to_string(terminal_state)},
                   {"completed", completed},
                   {"run_seconds", run_seconds}});
  }
  // This job just went terminal: trim older terminal jobs beyond the
  // retention cap. `job` itself is protected (the newest terminal job must
  // survive, and a worker cannot join itself).
  enforce_retention(job->id);
  idle_cv_.notify_all();
}

void SolveService::enforce_retention(const std::string& protect_id) {
  if (config_.job_retention == 0) {
    return;
  }
  const std::size_t keep = std::max<std::size_t>(1, config_.job_retention);
  // Evicted jobs are MOVED out (not destroyed) under the lock, their worker
  // threads joined outside it, and the Job objects destroyed only after the
  // join — a just-finished worker may still be in its run_job tail, so
  // destroying its Job before the join would be a use-after-free.
  std::vector<std::unique_ptr<Job>> evicted;
  std::vector<std::string> journals;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t terminal = 0;
    for (const std::string& id : order_) {
      if (is_terminal(jobs_.at(id)->state)) {
        ++terminal;
      }
    }
    if (terminal <= keep) {
      return;
    }
    std::size_t to_evict = terminal - keep;
    std::vector<std::string> kept;
    kept.reserve(order_.size());
    for (const std::string& id : order_) {
      const auto it = jobs_.find(id);
      if (to_evict > 0 && id != protect_id && is_terminal(it->second->state)) {
        if (!config_.state_dir.empty()) {
          journals.push_back(journal_path(id));
        }
        evicted.push_back(std::move(it->second));
        jobs_.erase(it);
        --to_evict;
      } else {
        kept.push_back(id);
      }
    }
    order_ = std::move(kept);
    persist_index_locked();
  }
  for (const std::unique_ptr<Job>& job : evicted) {
    if (job->worker.joinable()) {
      job->worker.join();
    }
  }
  evicted.clear();
  for (const std::string& path : journals) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
}

void SolveService::persist_index_locked() {
  if (config_.state_dir.empty()) {
    return;
  }
  std::string content;
  for (const std::string& id : order_) {
    const Job& job = *jobs_.at(id);
    content += "{\"id\":";
    append_json_escaped(content, job.id);
    content += ",\"state\":";
    append_json_escaped(content, to_string(job.state));
    if (!job.failure.empty()) {
      content += ",\"failure\":";
      append_json_escaped(content, job.failure);
    }
    // spec_body is the normalized dump() of the validated submit body:
    // single-line JSON, safe to embed verbatim.
    content += ",\"spec\":" + job.spec_body + "}\n";
  }
  const std::string path = config_.state_dir + "/jobs.jsonl";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      obs::log_error("svc", "cannot write job index", {{"path", tmp}});
      return;
    }
    out << content;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    obs::log_error("svc", "cannot publish job index",
                   {{"path", path}, {"error", ec.message()}});
  }
}

void SolveService::restore_jobs() {
  std::ifstream in(config_.state_dir + "/jobs.jsonl");
  if (!in) {
    return;  // fresh state dir
  }
  std::vector<Job*> to_resume;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      const std::optional<Json> entry = Json::parse(line);
      if (!entry || !entry->is_object()) {
        obs::log_warn("svc", "skipping malformed job index line", {});
        continue;
      }
      const std::string id = entry->string_or("id", "");
      const Json* spec_body = entry->find("spec");
      if (id.empty() || spec_body == nullptr) {
        continue;
      }
      int status = 0;
      std::string error;
      std::unique_ptr<JobSpec> spec =
          JobSpec::parse(*spec_body, config_.limits, status, error);
      if (spec == nullptr) {
        obs::log_warn("svc", "dropping job from index",
                      {{"id", id}, {"error", error}});
        continue;
      }
      auto owned = std::make_unique<Job>();
      owned->id = id;
      owned->spec_body = spec_body->dump();
      owned->spec = std::move(spec);
      const std::size_t count = owned->spec->cells();
      owned->records.resize(count);
      owned->finished.assign(count, false);

      // Replay the journal into the record slots so terminal jobs serve
      // results immediately and incomplete jobs know what's left.
      robust::CheckpointJournal journal(journal_path(id));
      (void)journal.load();
      for (std::size_t i = 0; i < count; ++i) {
        const robust::CheckpointRecord* record =
            journal.find(owned->spec->cell_key(i));
        if (record != nullptr && owned->spec->validate_record(*record)) {
          owned->records[i] = *record;
          owned->finished[i] = true;
          owned->completion_order.push_back(i);
          ++owned->completed;
          ++owned->resumed;
        }
      }

      const std::optional<JobState> persisted =
          state_from_string(entry->string_or("state", ""));
      if (persisted && is_terminal(*persisted)) {
        owned->state = *persisted;
        owned->failure = entry->string_or("failure", "");
      } else if (owned->completed == count) {
        owned->state = JobState::kDone;  // finished between flush and index
      } else {
        owned->state = JobState::kQueued;
        to_resume.push_back(owned.get());
      }

      // Keep the id counter ahead of every restored id ("j<N>").
      if (id.size() > 1 && id[0] == 'j') {
        const std::size_t number = static_cast<std::size_t>(
            std::strtoull(id.c_str() + 1, nullptr, 10));
        if (number >= next_job_number_) {
          next_job_number_ = number + 1;
        }
      }
      order_.push_back(id);
      jobs_.emplace(id, std::move(owned));
    }
    persist_index_locked();
  }
  // Resume incomplete jobs OUTSIDE the lock: their restore callbacks (and
  // terminal-state epilogues) take it. The batch layer re-reads the
  // journal, restores the finished cells, and solves only the remainder.
  for (Job* job : to_resume) {
    // The worker re-restores from the journal; reset the counters the
    // synchronous replay above filled so cells aren't double-counted.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job->completed = 0;
      job->resumed = 0;
      job->finished.assign(job->spec->cells(), false);
      job->completion_order.clear();
      for (robust::CheckpointRecord& record : job->records) {
        record = robust::CheckpointRecord{};
      }
      // Same rule as submit(): job->worker is guarded by mutex_.
      job->worker = std::thread([this, job] { run_job(job); });
    }
  }
  // A restarted daemon may load more terminal jobs than its own retention
  // allows (e.g. the cap was lowered): trim immediately.
  enforce_retention();
}

void SolveService::acquire_cell_slot() {
  if (config_.max_concurrent_cells <= 0) {
    return;
  }
  std::unique_lock<std::mutex> lock(gate_mutex_);
  gate_cv_.wait(lock, [this] {
    return cells_in_flight_ < config_.max_concurrent_cells;
  });
  ++cells_in_flight_;
}

void SolveService::release_cell_slot() {
  if (config_.max_concurrent_cells <= 0) {
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(gate_mutex_);
    --cells_in_flight_;
  }
  gate_cv_.notify_one();
}

}  // namespace bvc::svc
