#include "svc/job_spec.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace bvc::svc {

namespace {

/// Reads a finite number member; false (with `error` filled) when present
/// but not a finite number. Absent leaves `out` untouched and succeeds.
bool read_number(const Json& object, std::string_view key, double& out,
                 std::string& error) {
  const Json* value = object.find(key);
  if (value == nullptr) {
    return true;
  }
  if (!value->is_number() || !std::isfinite(value->as_number())) {
    error = "field '" + std::string(key) + "' must be a finite number";
    return false;
  }
  out = value->as_number();
  return true;
}

bool read_unsigned(const Json& object, std::string_view key, unsigned& out,
                   std::string& error) {
  double value = static_cast<double>(out);
  if (!read_number(object, key, value, error)) {
    return false;
  }
  if (value < 0.0 || value != std::floor(value) || value > 1e9) {
    error = "field '" + std::string(key) + "' must be a non-negative integer";
    return false;
  }
  out = static_cast<unsigned>(value);
  return true;
}

bool read_u64(const Json& object, std::string_view key, std::uint64_t& out,
              std::string& error) {
  double value = static_cast<double>(out);
  if (!read_number(object, key, value, error)) {
    return false;
  }
  if (value < 0.0 || value != std::floor(value) || value > 9.0e15) {
    error = "field '" + std::string(key) + "' must be a non-negative integer";
    return false;
  }
  out = static_cast<std::uint64_t>(value);
  return true;
}

bool parse_utility(const Json& object, bu::Utility& out, std::string& error) {
  const Json* value = object.find("utility");
  if (value == nullptr) {
    return true;
  }
  const std::string& name = value->as_string();
  if (name == "relative-revenue" || name == "u1") {
    out = bu::Utility::kRelativeRevenue;
  } else if (name == "absolute-reward" || name == "u2") {
    out = bu::Utility::kAbsoluteReward;
  } else if (name == "orphaning" || name == "u3") {
    out = bu::Utility::kOrphaning;
  } else {
    error = "unknown utility '" + name +
            "' (want relative-revenue|absolute-reward|orphaning)";
    return false;
  }
  return true;
}

bool parse_setting(const Json& object, bu::Setting& out, std::string& error) {
  const Json* value = object.find("setting");
  if (value == nullptr) {
    return true;
  }
  const double setting = value->is_number() ? value->as_number() : 0.0;
  if (setting == 1.0) {
    out = bu::Setting::kNoStickyGate;
  } else if (setting == 2.0) {
    out = bu::Setting::kStickyGate;
  } else {
    error = "field 'setting' must be 1 (no sticky gate) or 2 (sticky gate)";
    return false;
  }
  return true;
}

/// One bu-attack cell object -> AttackParams (+ optional utility override).
bool parse_attack_cell(const Json& cell, bu::AttackParams& params,
                       bu::Utility& utility, std::string& error) {
  if (!cell.is_object()) {
    error = "each cell must be an object";
    return false;
  }
  for (const auto& [required, label] :
       {std::pair<const char*, const char*>{"alpha", "alpha"},
        {"beta", "beta"},
        {"gamma", "gamma"}}) {
    if (cell.find(required) == nullptr) {
      error = "cell missing required field '" + std::string(label) + "'";
      return false;
    }
  }
  if (!read_number(cell, "alpha", params.alpha, error) ||
      !read_number(cell, "beta", params.beta, error) ||
      !read_number(cell, "gamma", params.gamma, error) ||
      !read_unsigned(cell, "ad", params.ad, error) ||
      !read_unsigned(cell, "ad_carol", params.ad_carol, error) ||
      !read_unsigned(cell, "gate_period", params.gate_period, error) ||
      !read_unsigned(cell, "confirmations", params.confirmations, error) ||
      !read_number(cell, "rds", params.rds, error) ||
      !parse_setting(cell, params.setting, error) ||
      !parse_utility(cell, utility, error)) {
    return false;
  }
  params.allow_wait = cell.bool_or("allow_wait", params.allow_wait);
  try {
    params.validate();
  } catch (const std::invalid_argument& e) {
    error = e.what();
    return false;
  }
  return true;
}

/// bench_table2-style grid: {"alphas":[...], "ratios":[[b,g],...],
/// "setting":1|2, "ad":N, ...defaults...}. Expansion mirrors the bench
/// exactly — beta = (1-alpha)*b/(b+g), gamma = rest-beta, cells outside
/// alpha <= min(beta, gamma) skipped — so a grid job's cell keys equal the
/// bench sweep's.
bool expand_attack_grid(const Json& grid, bu::Utility job_utility,
                        std::vector<bu::AnalysisJob>& jobs,
                        std::string& error) {
  if (!grid.is_object()) {
    error = "field 'grid' must be an object";
    return false;
  }
  const Json* alphas = grid.find("alphas");
  const Json* ratios = grid.find("ratios");
  if (alphas == nullptr || !alphas->is_array() || alphas->size() == 0 ||
      ratios == nullptr || !ratios->is_array() || ratios->size() == 0) {
    error = "grid requires non-empty 'alphas' and 'ratios' arrays";
    return false;
  }
  bu::AttackParams defaults;
  bu::Utility utility = job_utility;
  if (!read_unsigned(grid, "ad", defaults.ad, error) ||
      !read_unsigned(grid, "ad_carol", defaults.ad_carol, error) ||
      !read_unsigned(grid, "gate_period", defaults.gate_period, error) ||
      !read_unsigned(grid, "confirmations", defaults.confirmations, error) ||
      !read_number(grid, "rds", defaults.rds, error) ||
      !parse_setting(grid, defaults.setting, error) ||
      !parse_utility(grid, utility, error)) {
    return false;
  }
  defaults.allow_wait = grid.bool_or("allow_wait", defaults.allow_wait);

  for (const Json& ratio : ratios->items()) {
    if (!ratio.is_array() || ratio.size() != 2 || !ratio.at(0).is_number() ||
        !ratio.at(1).is_number() || ratio.at(0).as_number() <= 0.0 ||
        ratio.at(1).as_number() <= 0.0) {
      error = "each grid ratio must be a [b, g] pair of positive numbers";
      return false;
    }
    const double b = ratio.at(0).as_number();
    const double g = ratio.at(1).as_number();
    for (const Json& alpha_value : alphas->items()) {
      if (!alpha_value.is_number() ||
          !std::isfinite(alpha_value.as_number())) {
        error = "grid alphas must be finite numbers";
        return false;
      }
      const double alpha = alpha_value.as_number();
      const double rest = 1.0 - alpha;
      const double beta = rest * b / (b + g);
      const double gamma = rest - beta;
      if (alpha > beta || alpha > gamma) {
        continue;  // outside the paper's alpha <= min(beta, gamma) region
      }
      bu::AttackParams params = defaults;
      params.alpha = alpha;
      params.beta = beta;
      params.gamma = gamma;
      try {
        params.validate();
      } catch (const std::invalid_argument& e) {
        error = e.what();
        return false;
      }
      jobs.push_back({params, utility});
    }
  }
  if (jobs.empty()) {
    error = "grid expands to zero cells";
    return false;
  }
  return true;
}

bool parse_sm_cell(const Json& cell, btc::SmJob& job, std::string& error) {
  if (!cell.is_object()) {
    error = "each cell must be an object";
    return false;
  }
  if (cell.find("alpha") == nullptr) {
    error = "cell missing required field 'alpha'";
    return false;
  }
  if (!read_number(cell, "alpha", job.params.alpha, error) ||
      !read_number(cell, "gamma_tie", job.params.gamma_tie, error) ||
      !read_unsigned(cell, "max_len", job.params.max_len, error) ||
      !read_unsigned(cell, "confirmations", job.params.confirmations,
                     error) ||
      !read_number(cell, "rds", job.params.rds, error) ||
      !read_number(cell, "tolerance", job.tolerance, error) ||
      !parse_utility(cell, job.utility, error)) {
    return false;
  }
  try {
    job.params.validate();
  } catch (const std::invalid_argument& e) {
    error = e.what();
    return false;
  }
  return true;
}

bool parse_voting_cell(const Json& cell, counter::VotingJob& job,
                       std::string& error) {
  if (!cell.is_object()) {
    error = "each cell must be an object";
    return false;
  }
  double epochs = 1.0;
  if (!read_number(cell, "epochs", epochs, error)) {
    return false;
  }
  if (epochs < 1.0 || epochs != std::floor(epochs) || epochs > 1e6) {
    error = "field 'epochs' must be a positive integer";
    return false;
  }
  job.epochs = static_cast<std::size_t>(epochs);
  if (!read_u64(cell, "seed", job.seed, error)) {
    return false;
  }
  if (const Json* rule = cell.find("rule"); rule != nullptr) {
    if (!rule->is_object()) {
      error = "field 'rule' must be an object";
      return false;
    }
    counter::VoteRuleConfig& r = job.config.rule;
    double epoch_length = static_cast<double>(r.epoch_length);
    double activation_delay = static_cast<double>(r.activation_delay);
    if (!read_number(*rule, "epoch_length", epoch_length, error) ||
        !read_number(*rule, "adjust_threshold", r.adjust_threshold, error) ||
        !read_number(*rule, "veto_threshold", r.veto_threshold, error) ||
        !read_number(*rule, "activation_delay", activation_delay, error) ||
        !read_u64(*rule, "step", r.step, error) ||
        !read_u64(*rule, "initial_limit", r.initial_limit, error) ||
        !read_u64(*rule, "min_limit", r.min_limit, error) ||
        !read_u64(*rule, "max_limit", r.max_limit, error)) {
      return false;
    }
    r.epoch_length = static_cast<counter::Height>(epoch_length);
    r.activation_delay = static_cast<counter::Height>(activation_delay);
  }
  const Json* cohorts = cell.find("cohorts");
  if (cohorts == nullptr || !cohorts->is_array() || cohorts->size() == 0) {
    error = "cell requires a non-empty 'cohorts' array";
    return false;
  }
  for (const Json& member : cohorts->items()) {
    if (!member.is_object()) {
      error = "each cohort must be an object";
      return false;
    }
    counter::VoterCohort cohort;
    if (!read_number(member, "power", cohort.power, error) ||
        !read_u64(member, "preferred_limit", cohort.preferred_limit, error)) {
      return false;
    }
    cohort.adversarial = member.bool_or("adversarial", false);
    job.config.cohorts.push_back(cohort);
  }
  double total_power = 0.0;
  for (const counter::VoterCohort& cohort : job.config.cohorts) {
    total_power += cohort.power;
  }
  if (std::abs(total_power - 1.0) >= 1e-9) {
    error = "cohort powers must sum to 1";
    return false;
  }
  try {
    job.config.rule.validate();
  } catch (const std::invalid_argument& e) {
    error = e.what();
    return false;
  }
  return true;
}

/// Flattened BU rule fields on a miner / relay object (absent = defaults).
bool parse_bu_rule(const Json& object, chain::BuParams& rule,
                   std::string& error) {
  std::uint64_t eb = rule.eb;
  std::uint64_t mg = rule.mg;
  unsigned ad = rule.ad;
  unsigned gate_period = rule.gate_period;
  if (!read_u64(object, "eb", eb, error) ||
      !read_u64(object, "mg", mg, error) ||
      !read_unsigned(object, "ad", ad, error) ||
      !read_unsigned(object, "gate_period", gate_period, error)) {
    return false;
  }
  rule.eb = static_cast<chain::ByteSize>(eb);
  rule.mg = static_cast<chain::ByteSize>(mg);
  rule.ad = ad;
  rule.gate_period = gate_period;
  rule.sticky_gate = object.bool_or("sticky_gate", rule.sticky_gate);
  return true;
}

/// The `net` object of a net-sim job -> sim::NetworkConfig. Structural
/// checks here; the per-field semantic validation (positive powers /
/// bandwidths / latencies, placements, ...) is NetworkConfig::validate(),
/// surfaced through the API verbatim.
bool parse_net_config(const Json& net, sim::NetworkConfig& config,
                      std::string& error) {
  if (!net.is_object()) {
    error = "field 'net' must be an object";
    return false;
  }
  if (!read_number(net, "block_interval", config.block_interval, error)) {
    return false;
  }
  const Json* miners = net.find("miners");
  if (miners == nullptr || !miners->is_array() || miners->size() == 0) {
    error = "net requires a non-empty 'miners' array";
    return false;
  }
  for (const Json& member : miners->items()) {
    if (!member.is_object()) {
      error = "each miner must be an object";
      return false;
    }
    sim::NetMiner miner;
    miner.name = member.string_or("name", "");
    std::uint64_t block_size = miner.block_size;
    if (!read_number(member, "power", miner.power, error) ||
        !read_u64(member, "block_size", block_size, error) ||
        !read_number(member, "bandwidth", miner.bandwidth, error) ||
        !read_number(member, "latency", miner.latency, error) ||
        !parse_bu_rule(member, miner.rule, error)) {
      return false;
    }
    miner.block_size = static_cast<chain::ByteSize>(block_size);
    config.miners.push_back(std::move(miner));
  }
  if (const Json* topology = net.find("topology"); topology != nullptr) {
    if (!topology->is_object()) {
      error = "field 'topology' must be an object";
      return false;
    }
    const std::string type = topology->string_or("type", "random");
    if (type == "random") {
      sim::RandomTopologyConfig graph;
      double nodes = 0.0;
      double extra_degree = static_cast<double>(graph.extra_degree);
      if (!read_number(*topology, "nodes", nodes, error) ||
          !read_number(*topology, "extra_degree", extra_degree, error) ||
          !read_u64(*topology, "seed", graph.seed, error)) {
        return false;
      }
      if (nodes < 2.0 || nodes != std::floor(nodes) || nodes > 1e6) {
        error = "topology 'nodes' must be an integer in [2, 1e6]";
        return false;
      }
      graph.nodes = static_cast<std::size_t>(nodes);
      graph.extra_degree = static_cast<std::size_t>(extra_degree);
      config.topology = sim::random_topology(graph);
    } else if (type == "hub-spoke") {
      sim::HubSpokeConfig graph;
      double nodes = 0.0;
      double hubs = static_cast<double>(graph.hubs);
      if (!read_number(*topology, "nodes", nodes, error) ||
          !read_number(*topology, "hubs", hubs, error) ||
          !read_u64(*topology, "seed", graph.seed, error)) {
        return false;
      }
      if (nodes < 2.0 || nodes != std::floor(nodes) || nodes > 1e6) {
        error = "topology 'nodes' must be an integer in [2, 1e6]";
        return false;
      }
      graph.nodes = static_cast<std::size_t>(nodes);
      graph.hubs = static_cast<std::size_t>(hubs);
      config.topology = sim::hub_spoke_topology(graph);
    } else {
      error = "unknown topology type '" + type + "' (want random|hub-spoke)";
      return false;
    }
    if (!parse_bu_rule(*topology, config.relay_rule, error)) {
      return false;
    }
  }
  if (const Json* placements = net.find("miner_nodes");
      placements != nullptr) {
    if (!placements->is_array()) {
      error = "field 'miner_nodes' must be an array";
      return false;
    }
    for (const Json& node : placements->items()) {
      if (!node.is_number() || node.as_number() < 0.0 ||
          node.as_number() != std::floor(node.as_number())) {
        error = "miner_nodes entries must be non-negative integers";
        return false;
      }
      config.miner_nodes.push_back(
          static_cast<std::uint32_t>(node.as_number()));
    }
  }
  config.relay.compact = net.bool_or("compact", false);
  if (!read_number(net, "compact_overhead_bytes",
                   config.relay.overhead_bytes, error) ||
      !read_number(net, "compact_fraction", config.relay.fraction, error)) {
    return false;
  }
  return true;
}

}  // namespace

std::string_view to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kBuAttack: return "bu-attack";
    case JobKind::kBtcSm: return "btc-sm";
    case JobKind::kCounterVoting: return "counter-voting";
    case JobKind::kNetSim: return "net-sim";
  }
  return "unknown";
}

std::size_t JobSpec::cells() const noexcept {
  switch (kind_) {
    case JobKind::kBuAttack: return bu_jobs_.size();
    case JobKind::kBtcSm: return sm_jobs_.size();
    case JobKind::kCounterVoting: return voting_jobs_.size();
    case JobKind::kNetSim: return net_replicas_;
  }
  return 0;
}

std::string JobSpec::cell_key(std::size_t i) const {
  switch (kind_) {
    case JobKind::kBuAttack:
      return bu::analysis_job_key(bu_jobs_[i], bu_options_);
    case JobKind::kBtcSm:
      return btc::sm_job_key(sm_jobs_[i]);
    case JobKind::kCounterVoting:
      return counter::voting_job_key(voting_jobs_[i]);
    case JobKind::kNetSim:
      return sim::replica_key(net_config_, net_blocks_, net_seed_, i);
  }
  return {};
}

robust::CheckpointRecord JobSpec::solve(
    std::size_t i, const robust::RunControl& control) const {
  switch (kind_) {
    case JobKind::kBuAttack: {
      bu::AnalysisOptions options = bu_options_;
      options.control = control;
      const bu::AnalysisResult result =
          bu::analyze(bu_jobs_[i].params, bu_jobs_[i].utility, options);
      return bu::analysis_record(cell_key(i), result,
                                 /*persist_policy=*/false);
    }
    case JobKind::kBtcSm: {
      const btc::SmJob& job = sm_jobs_[i];
      const btc::SmResult result =
          btc::analyze_sm(job.params, job.utility, job.tolerance, control);
      return btc::sm_record(cell_key(i), result, /*persist_policy=*/false);
    }
    case JobKind::kCounterVoting: {
      const counter::VotingJob& job = voting_jobs_[i];
      bvc::Rng rng(job.seed);
      mdp::SolverConfig solver = job.solver;
      solver.control = control;
      const counter::VotingSimResult result =
          counter::run_voting_simulation(job.config, job.epochs, rng, solver);
      return counter::voting_record(cell_key(i), result);
    }
    case JobKind::kNetSim: {
      bvc::Rng rng(sim::replica_seed(net_seed_, i));
      const sim::NetworkResult result =
          net_sim_->run(net_blocks_, rng, control);
      return sim::sim_record(cell_key(i), result);
    }
  }
  return {};
}

bool JobSpec::validate_record(const robust::CheckpointRecord& record) const {
  switch (kind_) {
    case JobKind::kBuAttack: {
      bu::AnalysisResult result;
      return bu::analysis_restore(record, result);
    }
    case JobKind::kBtcSm: {
      btc::SmResult result;
      return btc::sm_restore(record, result);
    }
    case JobKind::kCounterVoting: {
      counter::VotingSimResult result;
      return counter::voting_restore(record, result);
    }
    case JobKind::kNetSim: {
      sim::NetworkResult result;
      return sim::sim_restore(record, result);
    }
  }
  return false;
}

std::unique_ptr<JobSpec> JobSpec::parse(const Json& body,
                                        const JobLimits& limits, int& status,
                                        std::string& error) {
  status = 400;
  if (!body.is_object()) {
    error = "job body must be a JSON object";
    return nullptr;
  }
  const Json* kind_value = body.find("kind");
  if (kind_value == nullptr || !kind_value->is_string()) {
    error = "job requires a string 'kind'";
    return nullptr;
  }
  auto spec = std::make_unique<JobSpec>();
  const std::string& kind = kind_value->as_string();
  if (kind == "bu-attack") {
    spec->kind_ = JobKind::kBuAttack;
  } else if (kind == "btc-sm") {
    spec->kind_ = JobKind::kBtcSm;
  } else if (kind == "counter-voting") {
    spec->kind_ = JobKind::kCounterVoting;
  } else if (kind == "net-sim") {
    spec->kind_ = JobKind::kNetSim;
  } else {
    error = "unknown job kind '" + kind +
            "' (want bu-attack|btc-sm|counter-voting|net-sim)";
    return nullptr;
  }

  // Per-request budget (admission control): absent fields inherit the
  // service-wide cap; present fields are clamped to it.
  spec->budget_.wall_clock_seconds = limits.max_wall_clock_seconds;
  if (const Json* budget = body.find("budget"); budget != nullptr) {
    if (!budget->is_object()) {
      error = "field 'budget' must be an object";
      return nullptr;
    }
    double wall = spec->budget_.wall_clock_seconds;
    if (!read_number(*budget, "wall_clock_seconds", wall, error)) {
      return nullptr;
    }
    if (wall <= 0.0) {
      error = "budget wall_clock_seconds must be positive";
      return nullptr;
    }
    spec->budget_.wall_clock_seconds =
        std::min(wall, limits.max_wall_clock_seconds);
    double ticks = 0.0;
    if (const Json* max_ticks = budget->find("max_ticks");
        max_ticks != nullptr) {
      if (!read_number(*budget, "max_ticks", ticks, error)) {
        return nullptr;
      }
      if (ticks < 1.0 || ticks != std::floor(ticks)) {
        error = "budget max_ticks must be a positive integer";
        return nullptr;
      }
      spec->budget_.max_ticks = static_cast<std::int64_t>(ticks);
    }
  }

  // Job-level solver knobs (bu-attack only reads tolerance today).
  if (spec->kind_ == JobKind::kBuAttack) {
    double tolerance = spec->bu_options_.tolerance;
    if (!read_number(body, "tolerance", tolerance, error)) {
      return nullptr;
    }
    if (tolerance <= 0.0) {
      error = "tolerance must be positive";
      return nullptr;
    }
    spec->bu_options_.tolerance = tolerance;
  }

  if (spec->kind_ == JobKind::kNetSim) {
    // net-sim jobs have no cells/grid: the cell list is `replicas`
    // independent replicas of one `net` configuration.
    if (body.find("cells") != nullptr || body.find("grid") != nullptr) {
      error = "net-sim jobs take a 'net' object, not 'cells'/'grid'";
      return nullptr;
    }
    const Json* net = body.find("net");
    if (net == nullptr) {
      error = "net-sim job requires a 'net' object";
      return nullptr;
    }
    if (!read_u64(body, "blocks", spec->net_blocks_, error) ||
        !read_u64(body, "seed", spec->net_seed_, error)) {
      return nullptr;
    }
    if (spec->net_blocks_ == 0) {
      error = "field 'blocks' must be a positive integer";
      return nullptr;
    }
    double replicas = static_cast<double>(spec->net_replicas_);
    if (!read_number(body, "replicas", replicas, error)) {
      return nullptr;
    }
    if (replicas < 1.0 || replicas != std::floor(replicas) ||
        replicas > 1e6) {
      error = "field 'replicas' must be a positive integer";
      return nullptr;
    }
    spec->net_replicas_ = static_cast<std::size_t>(replicas);
    if (!parse_net_config(*net, spec->net_config_, error)) {
      return nullptr;
    }
    try {
      // Constructing the simulation runs NetworkConfig::validate(): its
      // per-field messages (miners[i].power, topology placements, fault
      // windows, ...) go back to the client verbatim.
      spec->net_sim_ = std::make_shared<const sim::NetworkSimulation>(
          spec->net_config_);
    } catch (const std::invalid_argument& e) {
      error = e.what();
      return nullptr;
    }
    if (spec->cells() > limits.max_cells) {
      status = 413;
      error = "job expands to " + std::to_string(spec->cells()) +
              " cells, above the admission limit of " +
              std::to_string(limits.max_cells);
      return nullptr;
    }
    status = 200;
    error.clear();
    return spec;
  }

  const Json* cells = body.find("cells");
  const Json* grid = body.find("grid");
  if ((cells == nullptr) == (grid == nullptr)) {
    error = "job requires exactly one of 'cells' or 'grid'";
    return nullptr;
  }
  if (grid != nullptr && spec->kind_ != JobKind::kBuAttack) {
    error = "'grid' jobs are only supported for kind bu-attack";
    return nullptr;
  }

  bu::Utility job_utility = bu::Utility::kRelativeRevenue;
  if (spec->kind_ == JobKind::kBuAttack &&
      !parse_utility(body, job_utility, error)) {
    return nullptr;
  }

  if (grid != nullptr) {
    if (!expand_attack_grid(*grid, job_utility, spec->bu_jobs_, error)) {
      return nullptr;
    }
  } else {
    if (!cells->is_array() || cells->size() == 0) {
      error = "'cells' must be a non-empty array";
      return nullptr;
    }
    for (const Json& cell : cells->items()) {
      switch (spec->kind_) {
        case JobKind::kBuAttack: {
          bu::AttackParams params;
          bu::Utility utility = job_utility;
          if (!parse_attack_cell(cell, params, utility, error)) {
            return nullptr;
          }
          spec->bu_jobs_.push_back({params, utility});
          break;
        }
        case JobKind::kBtcSm: {
          btc::SmJob job;
          if (!parse_sm_cell(cell, job, error)) {
            return nullptr;
          }
          spec->sm_jobs_.push_back(std::move(job));
          break;
        }
        case JobKind::kCounterVoting: {
          counter::VotingJob job;
          if (!parse_voting_cell(cell, job, error)) {
            return nullptr;
          }
          spec->voting_jobs_.push_back(std::move(job));
          break;
        }
        case JobKind::kNetSim:
          break;  // returned above; net-sim has no cells array
      }
    }
  }

  if (spec->cells() > limits.max_cells) {
    status = 413;
    error = "job expands to " + std::to_string(spec->cells()) +
            " cells, above the admission limit of " +
            std::to_string(limits.max_cells);
    return nullptr;
  }
  status = 200;
  error.clear();
  return spec;
}

}  // namespace bvc::svc
