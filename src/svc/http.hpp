// Loopback HTTP/1.1 server + client for the bvcd job API.
//
// Scope: exactly what an on-host solve daemon needs, nothing a proxy or
// the open internet needs. The server binds 127.0.0.1 only, speaks
// HTTP/1.1 with Content-Length framing (no chunked encoding, no
// keep-alive — one request per connection), and hands every parsed
// request to a single handler callback. Each accepted connection is
// served on its own (detached) thread, so a slow or stalled client —
// one that connects and then trickles or withholds its request — cannot
// stall /v1/healthz for everyone else; per-connection socket timeouts
// bound how long such a client can hold its thread. The number of
// in-flight connection threads is capped (kMaxConnections): at the cap
// the accept loop waits for a slot, and further clients queue in the
// kernel listen backlog. Handlers must still be fast (job submission
// spawns a worker and returns; status reads copy a snapshot) and are
// called concurrently — the JobRegistry behind them is already
// mutex-guarded. stop() drains: it stops accepting, then waits for every
// in-flight connection thread to finish before returning.
//
// The client half (http_fetch) is the same framing in reverse, used by
// bvc-cli and the service tests.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace bvc::svc {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", "DELETE", ...
  std::string target;  ///< path only, e.g. "/v1/jobs/j1" (no query parsing)
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, readable
  /// via port() afterwards) and starts the accept thread. False on bind
  /// failure (port in use, no permission) with the reason on stderr.
  [[nodiscard]] bool start(std::uint16_t port);

  /// The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, joins the accept thread, waits for every in-flight
  /// connection thread to finish, then closes the listen socket.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  void serve();
  void handle_connection(int fd);
  void spawn_connection(int fd);

  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  /// Connection-thread accounting (see the file comment): the accept loop
  /// blocks while `active_connections_` is at the cap; stop() waits until
  /// it drains to zero. `stopping_` breaks both waits.
  bool stopping_ = false;
  std::size_t active_connections_ = 0;
  mutable std::mutex connection_mutex_;
  std::condition_variable connection_cv_;
};

/// One-shot HTTP exchange against 127.0.0.1:`port`. Returns nullopt on
/// connect/IO failure or an unparsable response. `body` is sent with
/// Content-Length framing for any method that carries one.
[[nodiscard]] std::optional<HttpResponse> http_fetch(
    std::uint16_t port, const std::string& method, const std::string& target,
    const std::string& body = "");

}  // namespace bvc::svc
