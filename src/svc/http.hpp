// Loopback HTTP/1.1 server + client for the bvcd job API.
//
// Scope: exactly what an on-host solve daemon needs, nothing a proxy or
// the open internet needs. The server binds 127.0.0.1 only, speaks
// HTTP/1.1 with Content-Length framing (no chunked encoding, no
// keep-alive — one request per connection), and hands every parsed
// request to a single handler callback. Requests are handled serially on
// the accept thread: handlers are required to be fast (job submission
// spawns a worker and returns; status reads copy a snapshot), so a slow
// *solve* never blocks the next request — only a slow *client* could, and
// per-connection socket timeouts bound that.
//
// The client half (http_fetch) is the same framing in reverse, used by
// bvc-cli and the service tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

namespace bvc::svc {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", "DELETE", ...
  std::string target;  ///< path only, e.g. "/v1/jobs/j1" (no query parsing)
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, readable
  /// via port() afterwards) and starts the accept thread. False on bind
  /// failure (port in use, no permission) with the reason on stderr.
  [[nodiscard]] bool start(std::uint16_t port);

  /// The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting, closes the listen socket, joins the accept thread.
  /// Idempotent; also run by the destructor.
  void stop();

 private:
  void serve();
  void handle_connection(int fd);

  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
};

/// One-shot HTTP exchange against 127.0.0.1:`port`. Returns nullopt on
/// connect/IO failure or an unparsable response. `body` is sent with
/// Content-Length framing for any method that carries one.
[[nodiscard]] std::optional<HttpResponse> http_fetch(
    std::uint16_t port, const std::string& method, const std::string& target,
    const std::string& body = "");

}  // namespace bvc::svc
