#include "svc/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bvc::svc {

namespace {

const std::string kEmptyString;

/// Encodes `codepoint` as UTF-8 (the \uXXXX decode target).
void append_utf8(std::string& out, unsigned long codepoint) {
  if (codepoint < 0x80) {
    out += static_cast<char>(codepoint);
  } else if (codepoint < 0x800) {
    out += static_cast<char>(0xc0 | (codepoint >> 6));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  } else if (codepoint < 0x10000) {
    out += static_cast<char>(0xe0 | (codepoint >> 12));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  } else {
    out += static_cast<char>(0xf0 | (codepoint >> 18));
    out += static_cast<char>(0x80 | ((codepoint >> 12) & 0x3f));
    out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (codepoint & 0x3f));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse_document() {
    std::optional<Json> value = parse_value(0);
    if (!value) {
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return std::nullopt;  // trailing garbage
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  std::optional<std::string> parse_string_body() {
    // Caller consumed the opening quote.
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return std::nullopt;  // raw control characters must be escaped
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return std::nullopt;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          const std::optional<unsigned long> unit = parse_hex4();
          if (!unit) {
            return std::nullopt;
          }
          unsigned long codepoint = *unit;
          if (codepoint >= 0xd800 && codepoint <= 0xdbff) {
            // High surrogate: require the paired low surrogate.
            if (!literal("\\u")) {
              return std::nullopt;
            }
            const std::optional<unsigned long> low = parse_hex4();
            if (!low || *low < 0xdc00 || *low > 0xdfff) {
              return std::nullopt;
            }
            codepoint =
                0x10000 + ((codepoint - 0xd800) << 10) + (*low - 0xdc00);
          } else if (codepoint >= 0xdc00 && codepoint <= 0xdfff) {
            return std::nullopt;  // unpaired low surrogate
          }
          append_utf8(out, codepoint);
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<unsigned long> parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      return std::nullopt;
    }
    unsigned long value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned long>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned long>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned long>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
    }
    return value;
  }

  std::optional<Json> parse_number() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    const std::size_t digits_begin = pos_;
    while (pos_ < text_.size() && std::isdigit(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == digits_begin) {
      return std::nullopt;  // "-" alone, or no digits at all
    }
    // JSON forbids leading zeros ("01"); strtod would accept them.
    if (pos_ - digits_begin > 1 && text_[digits_begin] == '0') {
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac_begin = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac_begin) {
        return std::nullopt;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_begin = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp_begin) {
        return std::nullopt;
      }
    }
    const std::string token(text_.substr(begin, pos_ - begin));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      return std::nullopt;  // overflowed to inf
    }
    return Json::number(value);
  }

  std::optional<Json> parse_value(std::size_t depth) {
    if (depth > Json::kMaxDepth) {
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      Json object = Json::object();
      if (eat('}')) {
        return object;
      }
      while (true) {
        if (!eat('"')) {
          return std::nullopt;
        }
        std::optional<std::string> key = parse_string_body();
        if (!key || !eat(':')) {
          return std::nullopt;
        }
        std::optional<Json> value = parse_value(depth + 1);
        if (!value) {
          return std::nullopt;
        }
        object.set(*std::move(key), *std::move(value));
        if (eat(',')) {
          continue;
        }
        if (eat('}')) {
          return object;
        }
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      Json array = Json::array();
      if (eat(']')) {
        return array;
      }
      while (true) {
        std::optional<Json> value = parse_value(depth + 1);
        if (!value) {
          return std::nullopt;
        }
        array.push_back(*std::move(value));
        if (eat(',')) {
          continue;
        }
        if (eat(']')) {
          return array;
        }
        return std::nullopt;
      }
    }
    if (c == '"') {
      ++pos_;
      std::optional<std::string> body = parse_string_body();
      if (!body) {
        return std::nullopt;
      }
      return Json::string(*std::move(body));
    }
    if (c == 't') {
      return literal("true") ? std::optional<Json>(Json::boolean(true))
                             : std::nullopt;
    }
    if (c == 'f') {
      return literal("false") ? std::optional<Json>(Json::boolean(false))
                              : std::nullopt;
    }
    if (c == 'n') {
      return literal("null") ? std::optional<Json>(Json()) : std::nullopt;
    }
    return parse_number();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_number(std::string& out, double value) {
  // Integral values (job counts, statuses, byte sizes) print as integers;
  // everything else round-trips via %.17g, matching the checkpoint layer.
  // Range check FIRST: casting a double outside long long range (or NaN,
  // which fails the range comparisons) to long long is undefined behavior.
  if (value >= -9.0e15 && value <= 9.0e15 &&
      value == static_cast<double>(static_cast<long long>(value))) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    out += buffer;
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void append_value(std::string& out, const Json& value) {
  switch (value.type()) {
    case Json::Type::kNull:
      out += "null";
      return;
    case Json::Type::kBool:
      out += value.as_bool() ? "true" : "false";
      return;
    case Json::Type::kNumber:
      append_number(out, value.as_number());
      return;
    case Json::Type::kString:
      append_json_escaped(out, value.as_string());
      return;
    case Json::Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < value.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        append_value(out, value.at(i));
      }
      out += ']';
      return;
    }
    case Json::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) {
          out += ',';
        }
        first = false;
        append_json_escaped(out, key);
        out += ':';
        append_value(out, member);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

Json Json::boolean(bool value) {
  Json json;
  json.type_ = Type::kBool;
  json.bool_ = value;
  return json;
}

Json Json::number(double value) {
  Json json;
  json.type_ = Type::kNumber;
  json.number_ = value;
  return json;
}

Json Json::string(std::string value) {
  Json json;
  json.type_ = Type::kString;
  json.string_ = std::move(value);
  return json;
}

Json Json::array() {
  Json json;
  json.type_ = Type::kArray;
  return json;
}

Json Json::object() {
  Json json;
  json.type_ = Type::kObject;
  return json;
}

bool Json::as_bool(bool fallback) const noexcept {
  return type_ == Type::kBool ? bool_ : fallback;
}

double Json::as_number(double fallback) const noexcept {
  return type_ == Type::kNumber ? number_ : fallback;
}

const std::string& Json::as_string() const noexcept {
  return type_ == Type::kString ? string_ : kEmptyString;
}

void Json::push_back(Json value) { items_.push_back(std::move(value)); }

const Json* Json::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

double Json::number_or(std::string_view key, double fallback) const noexcept {
  const Json* value = find(key);
  return value != nullptr && value->is_number() ? value->as_number() : fallback;
}

bool Json::bool_or(std::string_view key, bool fallback) const noexcept {
  const Json* value = find(key);
  return value != nullptr && value->is_bool() ? value->as_bool() : fallback;
}

std::string Json::string_or(std::string_view key,
                            std::string_view fallback) const {
  const Json* value = find(key);
  return value != nullptr && value->is_string() ? value->as_string()
                                                : std::string(fallback);
}

std::string Json::dump() const {
  std::string out;
  append_value(out, *this);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace bvc::svc
