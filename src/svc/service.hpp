// The bvcd service core: a job registry over the batch engine, with
// crash-safe persistence, cancellation, admission control, and the HTTP
// route table — everything the daemon does except sockets (http.cpp) and
// flags (bvcd_main.cpp). Keeping the core socket-free means the whole API
// surface is unit-testable in process: tests call route() with synthetic
// requests and drive real solves.
//
// Endpoints (all JSON):
//
//   POST   /v1/jobs       submit a job (see job_spec.hpp for the schema);
//                         202 {"id","cells"} or 4xx {"error"}
//   GET    /v1/jobs       list job ids + states
//   GET    /v1/jobs/<id>  status snapshot: state, progress counters, and
//                         the records of every FINISHED cell so far —
//                         polling this while the job runs streams partial
//                         results in completion order
//   GET    /v1/jobs/<id>?offset=K
//                         paginated results: the records that finished at
//                         completion positions [K, K+limit) plus a
//                         "next_offset" cursor. Completion positions are
//                         append-only and stable across polls, so a client
//                         can TAIL a running job (bvc-cli result --follow)
//                         without re-downloading earlier records. An
//                         optional &limit=N bounds the page size.
//   DELETE /v1/jobs/<id>  cancel: fires the job's root CancelToken; the
//                         batch engine stops picking up cells and
//                         in-flight solves observe the linked token
//   GET    /v1/healthz    liveness + job counts
//   GET    /v1/metrics    the obs::MetricsRegistry snapshot (JSON by
//                         default; ?format=prometheus returns the
//                         Prometheus text exposition, content type
//                         text/plain; version=0.0.4)
//   GET    /v1/cache      mdp::ModelCache::global() stats snapshot
//
// Persistence (state_dir != ""): the job index (`jobs.jsonl`, one line per
// job: id + verbatim spec body + terminal-state flag) is rewritten
// atomically on every mutation, and each job's finished cells live in a
// per-job robust::CheckpointJournal (`job-<id>.cells.jsonl`) written by
// the same batch checkpoint layer the bench sweeps use. A restarted
// daemon reloads the index, replays each journal, and RESUMES incomplete
// jobs — finished cells restore in microseconds, the rest re-solve. The
// journal honors BVC_CRASH_AFTER_CELLS, so the kill-mid-grid -> restart ->
// identical-results scenario is testable end to end.
//
// Admission control: per-request budgets are clamped to
// JobLimits::max_wall_clock_seconds, grids above JobLimits::max_cells are
// rejected at submit, and a global concurrent-cell gate bounds how many
// cells solve at once ACROSS jobs (each job's batch pool still schedules
// its own cells; the gate is the cross-job backpressure).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mdp/batch.hpp"
#include "robust/checkpoint.hpp"
#include "robust/run_control.hpp"
#include "svc/http.hpp"
#include "svc/job_spec.hpp"

namespace bvc::svc {

struct ServiceConfig {
  /// Directory for the job index + per-job journals ("" = in-memory only;
  /// the directory must exist).
  std::string state_dir;
  /// Batch worker threads per job (mdp::BatchConfig::threads semantics:
  /// 0 = all hardware threads, 1 = inline).
  int threads = 1;
  /// Cells solving concurrently across ALL jobs; 0 = unlimited.
  int max_concurrent_cells = 0;
  /// Keep at most N terminal jobs (bounded index/journal growth on a
  /// long-running daemon): when a job reaches a terminal state, the OLDEST
  /// terminal jobs beyond the newest N are evicted — dropped from the
  /// index and their journals deleted. 0 = keep everything. Values are
  /// clamped to >= 1 so a job can never evict itself as it finishes.
  std::size_t job_retention = 0;
  JobLimits limits;
};

/// Lifecycle of one job. Terminal states are kDone / kCancelled / kFailed.
enum class JobState { kQueued, kRunning, kDone, kCancelled, kFailed };

[[nodiscard]] std::string_view to_string(JobState state) noexcept;

class SolveService {
 public:
  explicit SolveService(ServiceConfig config);
  /// Cancels every running job and joins the workers (journals flush in
  /// the worker epilogue, so shutdown loses at most in-flight cells —
  /// which a restart re-solves).
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// The HTTP route table (see file comment). Thread-compatible with the
  /// serial HttpServer accept loop; internal state is mutex-guarded, so
  /// tests may also call it from multiple threads.
  [[nodiscard]] HttpResponse route(const HttpRequest& request);

  /// Endpoint list for the run manifest ("what did this daemon serve?").
  [[nodiscard]] static std::vector<std::string> endpoints();

  /// Jobs currently in a non-terminal state (for tests and healthz).
  [[nodiscard]] std::size_t active_jobs() const;
  /// Blocks until every submitted job reaches a terminal state.
  void wait_idle();

 private:
  struct Job {
    std::string id;
    std::string spec_body;  ///< verbatim JSON, persisted in the index
    std::unique_ptr<JobSpec> spec;
    robust::CancelToken cancel = robust::CancelToken::make();
    JobState state = JobState::kQueued;
    /// Input-ordered finished-cell records; empty slots = not finished.
    std::vector<robust::CheckpointRecord> records;
    std::vector<bool> finished;
    /// Cell indices in the order they finished — append-only, so
    /// ?offset=K pagination positions stay stable across polls.
    std::vector<std::size_t> completion_order;
    std::size_t completed = 0;
    std::size_t resumed = 0;
    std::string failure;  ///< what() of the exception that failed the job
    /// When the worker started solving (valid once state left kQueued);
    /// feeds the live telemetry block in job_status.
    std::chrono::steady_clock::time_point started_at{};
    /// Wall-clock seconds from start to terminal state (0 until terminal).
    double run_seconds = 0.0;
    std::thread worker;
  };

  // Endpoint handlers (called with mutex_ NOT held).
  HttpResponse submit(const HttpRequest& request);
  HttpResponse list_jobs();
  HttpResponse job_status(const std::string& id, const std::string& query);
  HttpResponse cancel_job(const std::string& id);
  HttpResponse healthz();
  HttpResponse metrics(const std::string& query);
  HttpResponse cache_stats();

  void run_job(Job* job);
  /// Retention GC: evicts the oldest terminal jobs beyond
  /// config_.job_retention (index entry + journal file). The evicted
  /// workers' threads are joined OUTSIDE the lock (a worker epilogue takes
  /// mutex_, so joining under it would deadlock), and `protect_id` — the
  /// job whose own worker is calling — is never evicted (self-join).
  void enforce_retention(const std::string& protect_id = "");
  /// Rewrites the job index (jobs.jsonl) atomically. Caller holds mutex_.
  void persist_index_locked();
  /// Loads the index + journals and restarts incomplete jobs.
  void restore_jobs();
  [[nodiscard]] std::string journal_path(const std::string& id) const;

  // Global concurrent-cell gate.
  void acquire_cell_slot();
  void release_cell_slot();

  ServiceConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::vector<std::string> order_;  ///< submission order of job ids
  std::unordered_map<std::string, std::unique_ptr<Job>> jobs_;
  std::size_t next_job_number_ = 1;

  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  int cells_in_flight_ = 0;
};

}  // namespace bvc::svc
