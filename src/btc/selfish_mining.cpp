#include "btc/selfish_mining.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "mdp/model_cache.hpp"
#include "util/check.hpp"

namespace bvc::btc {

namespace {

double ds_revenue(const SmParams& params, unsigned orphaned) {
  if (params.confirmations == 0 || orphaned + 1 <= params.confirmations) {
    return 0.0;
  }
  return static_cast<double>(orphaned - (params.confirmations - 1)) *
         params.rds;
}

}  // namespace

std::string_view to_string(SmAction action) noexcept {
  switch (action) {
    case SmAction::kAdopt:
      return "Adopt";
    case SmAction::kOverride:
      return "Override";
    case SmAction::kMatch:
      return "Match";
    case SmAction::kWait:
      return "Wait";
  }
  return "?";
}

void SmParams::validate() const {
  BVC_REQUIRE(alpha > 0.0 && alpha < 0.5,
              "attacker power must be in (0, 1/2)");
  BVC_REQUIRE(gamma_tie >= 0.0 && gamma_tie <= 1.0,
              "gamma_tie must be in [0, 1]");
  BVC_REQUIRE(max_len >= 4, "max_len below 4 is too coarse to be meaningful");
  BVC_REQUIRE(max_len <= 512, "max_len above 512 is not supported");
  BVC_REQUIRE(rds >= 0.0, "double-spend value must be non-negative");
}

SmStateSpace::SmStateSpace(unsigned max_len) : max_len_(max_len) {}

mdp::StateId SmStateSpace::size() const noexcept {
  const auto dim = static_cast<mdp::StateId>(max_len_ + 1);
  return dim * dim * 3;
}

mdp::StateId SmStateSpace::index(const SmState& state) const {
  BVC_REQUIRE(state.a <= max_len_ && state.h <= max_len_,
              "selfish-mining state out of range");
  const auto dim = static_cast<mdp::StateId>(max_len_ + 1);
  return (static_cast<mdp::StateId>(state.a) * dim + state.h) * 3 +
         static_cast<mdp::StateId>(state.fork);
}

SmState SmStateSpace::state(mdp::StateId id) const {
  BVC_REQUIRE(id < size(), "state id out of range");
  const auto dim = static_cast<mdp::StateId>(max_len_ + 1);
  SmState s;
  s.fork = static_cast<Fork>(id % 3);
  const mdp::StateId rest = id / 3;
  s.h = static_cast<std::uint16_t>(rest % dim);
  s.a = static_cast<std::uint16_t>(rest / dim);
  return s;
}

std::string sm_model_cache_key(const SmParams& params, bu::Utility utility) {
  std::string key = "btc_sm";
  mdp::append_key(key, "alpha", params.alpha);
  mdp::append_key(key, "gamma_tie", params.gamma_tie);
  mdp::append_key(key, "max_len", static_cast<std::int64_t>(params.max_len));
  mdp::append_key(key, "confirmations",
                  static_cast<std::int64_t>(params.confirmations));
  mdp::append_key(key, "rds", params.rds);
  mdp::append_key(key, "utility", static_cast<std::int64_t>(utility));
  return key;
}

SmModel build_sm_model(const SmParams& params, bu::Utility utility) {
  params.validate();
  SmStateSpace space(params.max_len);
  mdp::ModelBuilder builder(space.size());

  const double alpha = params.alpha;
  const double gamma = params.gamma_tie;
  const unsigned cap = params.max_len;

  const auto emit = [&](mdp::ModelBuilder& b, const SmState& next, double p,
                        const bu::Deltas& deltas) {
    const auto [num, den] = bu::utility_increments(utility, deltas);
    b.add_outcome(space.index(next), p, num, den);
  };

  for (mdp::StateId id = 0; id < space.size(); ++id) {
    const SmState s = space.state(id);

    // States (a < h, active) are unreachable (a match needs a >= h); keep
    // them well-formed with adopt only, so no outcome underflows a - h.
    const bool corrupt_active = s.fork == Fork::kActive && s.a < s.h;
    const bool can_adopt = s.h >= 1;
    const bool can_override = s.a >= s.h + 1u;
    const bool can_match = s.fork == Fork::kRelevant && s.a >= s.h &&
                           s.h >= 1 && s.a < cap;
    const bool can_wait = s.a < cap && s.h < cap && !corrupt_active;

    if (can_adopt) {
      builder.begin_action(id, static_cast<mdp::ActionLabel>(SmAction::kAdopt));
      bu::Deltas d;
      d.others_locked = s.h;
      d.alice_orphaned = s.a;
      emit(builder, SmState{1, 0, Fork::kIrrelevant}, alpha, d);
      emit(builder, SmState{0, 1, Fork::kRelevant}, 1.0 - alpha, d);
    }
    if (can_override) {
      builder.begin_action(id,
                           static_cast<mdp::ActionLabel>(SmAction::kOverride));
      bu::Deltas d;
      d.alice_locked = s.h + 1.0;
      d.others_orphaned = s.h;
      d.double_spend = ds_revenue(params, s.h);
      const auto rest = static_cast<std::uint16_t>(s.a - s.h - 1);
      emit(builder,
           SmState{static_cast<std::uint16_t>(rest + 1), 0,
                   Fork::kIrrelevant},
           alpha, d);
      emit(builder, SmState{rest, 1, Fork::kRelevant}, 1.0 - alpha, d);
    }
    if (can_match) {
      builder.begin_action(id,
                           static_cast<mdp::ActionLabel>(SmAction::kMatch));
      // Attacker publishes h blocks matching the public height; the network
      // splits. The new block decides who profits.
      emit(builder,
           SmState{static_cast<std::uint16_t>(s.a + 1), s.h, Fork::kActive},
           alpha, bu::Deltas{});
      if (gamma > 0.0) {
        bu::Deltas d;
        // The published attacker prefix wins and locks; the honest block
        // mined on top of it stays in flight as the successor state's
        // h = 1 (crediting it here too would double-count it).
        d.alice_locked = s.h;
        d.others_orphaned = s.h;
        d.double_spend = ds_revenue(params, s.h);
        emit(builder,
             SmState{static_cast<std::uint16_t>(s.a - s.h), 1,
                     Fork::kRelevant},
             gamma * (1.0 - alpha), d);
      }
      if (gamma < 1.0) {
        emit(builder,
             SmState{s.a, static_cast<std::uint16_t>(s.h + 1),
                     Fork::kRelevant},
             (1.0 - gamma) * (1.0 - alpha), bu::Deltas{});
      }
    }
    if (can_wait) {
      builder.begin_action(id,
                           static_cast<mdp::ActionLabel>(SmAction::kWait));
      if (s.fork == Fork::kActive) {
        emit(builder,
             SmState{static_cast<std::uint16_t>(s.a + 1), s.h, Fork::kActive},
             alpha, bu::Deltas{});
        if (gamma > 0.0) {
          bu::Deltas d;
          d.alice_locked = s.h;  // new honest block stays in flight (h = 1)
          d.others_orphaned = s.h;
          d.double_spend = ds_revenue(params, s.h);
          emit(builder,
               SmState{static_cast<std::uint16_t>(s.a - s.h), 1,
                       Fork::kRelevant},
               gamma * (1.0 - alpha), d);
        }
        if (gamma < 1.0) {
          emit(builder,
               SmState{s.a, static_cast<std::uint16_t>(s.h + 1),
                       Fork::kRelevant},
               (1.0 - gamma) * (1.0 - alpha), bu::Deltas{});
        }
      } else {
        emit(builder,
             SmState{static_cast<std::uint16_t>(s.a + 1), s.h,
                     Fork::kIrrelevant},
             alpha, bu::Deltas{});
        emit(builder,
             SmState{s.a, static_cast<std::uint16_t>(s.h + 1),
                     Fork::kRelevant},
             1.0 - alpha, bu::Deltas{});
      }
    }

    if (!can_adopt && !can_override && !can_match && !can_wait) {
      // Unreachable corner of the truncated grid (e.g. a == h == cap with
      // h == 0 impossible); give it a self-loop adopt-like action so the
      // model stays well-formed.
      builder.begin_action(id, static_cast<mdp::ActionLabel>(SmAction::kAdopt));
      builder.add_outcome(space.index(SmState{0, 1, Fork::kRelevant}),
                          1.0 - alpha, 0.0, 0.0);
      builder.add_outcome(space.index(SmState{1, 0, Fork::kIrrelevant}),
                          alpha, 0.0, 0.0);
    }
  }

  mdp::Model model = builder.build();
  std::shared_ptr<const mdp::CompiledModel> compiled =
      mdp::ModelCache::global().get_or_compile(
          sm_model_cache_key(params, utility),
          [&] { return mdp::CompiledModel::compile_shared(model); });
  return SmModel{space, std::move(model), std::move(compiled), params,
                 utility};
}

SmAction policy_action(const SmModel& model, const mdp::Policy& policy,
                       const SmState& state) {
  const mdp::StateId id = model.space.index(state);
  BVC_REQUIRE(id < policy.action.size(),
              "policy does not cover this state space");
  return static_cast<SmAction>(
      model.model.action_label(id, policy.action[id]));
}

std::string describe_sm_policy(const SmModel& model,
                               const mdp::Policy& policy, unsigned limit) {
  const unsigned cap =
      std::min(limit, model.params.max_len);
  std::string out;
  const char* const fork_names[] = {"irrelevant", "relevant", "active"};
  for (const Fork fork : {Fork::kIrrelevant, Fork::kRelevant,
                          Fork::kActive}) {
    out += "fork = ";
    out += fork_names[static_cast<int>(fork)];
    out += " (rows a = attacker lead, cols h = honest lead)\n   ";
    for (unsigned h = 0; h <= cap; ++h) {
      out += ' ';
      out += static_cast<char>('0' + h % 10);
    }
    out += '\n';
    for (unsigned a = 0; a <= cap; ++a) {
      out += ' ';
      out += static_cast<char>('0' + a % 10);
      out += " ";
      for (unsigned h = 0; h <= cap; ++h) {
        const SmState state{static_cast<std::uint16_t>(a),
                            static_cast<std::uint16_t>(h), fork};
        // Some (a, h, fork) corners are unreachable; print their action
        // anyway (the policy is total).
        const SmAction action = policy_action(model, policy, state);
        const char glyph[] = {'a', 'o', 'm', 'w'};
        out += ' ';
        out += glyph[static_cast<int>(action)];
      }
      out += '\n';
    }
  }
  return out;
}

SmResult analyze_sm(const SmParams& params, bu::Utility utility,
                    double tolerance, const robust::RunControl& control) {
  const SmModel model = build_sm_model(params, utility);

  mdp::RatioKnobs options;
  options.tolerance = tolerance;
  options.control = control;
  options.lower_bound = 0.0;
  switch (utility) {
    case bu::Utility::kRelativeRevenue:
      options.upper_bound = 1.0;
      break;
    case bu::Utility::kAbsoluteReward:
      options.upper_bound = 1.0 + params.rds;
      break;
    case bu::Utility::kOrphaning:
      options.upper_bound = static_cast<double>(params.max_len);
      break;
  }

  const mdp::RatioResult ratio =
      model.compiled != nullptr
          ? mdp::maximize_ratio_with_retry(*model.compiled, options)
          : mdp::maximize_ratio_with_retry(model.model, options);
  SmResult result;
  result.utility_value = ratio.ratio;
  result.policy = ratio.policy;
  result.status = ratio.status;
  result.iterations = ratio.iterations;
  result.wall_clock_ns = ratio.wall_clock_ns;
  result.diagnostics = ratio.diagnostics;
  return result;
}

std::string sm_job_key(const SmJob& job) {
  std::string key = sm_model_cache_key(job.params, job.utility);
  mdp::append_key(key, "tol", job.tolerance);
  return key;
}

robust::CheckpointRecord sm_record(const std::string& key,
                                   const SmResult& result,
                                   bool persist_policy) {
  robust::CheckpointRecord record;
  record.key = key;
  record.status = result.status;
  record.values = {
      {"utility_value", result.utility_value},
      {"iterations", static_cast<double>(result.iterations)},
      {"wall_clock_ns", static_cast<double>(result.wall_clock_ns)},
  };
  if (persist_policy) {
    record.policy.assign(result.policy.action.begin(),
                         result.policy.action.end());
  }
  return record;
}

bool sm_restore(const robust::CheckpointRecord& record, SmResult& result) {
  if (!record.has_value("utility_value")) {
    return false;
  }
  result = SmResult{};
  result.status = record.status;
  result.utility_value = record.value_or("utility_value", 0.0);
  result.iterations = static_cast<int>(record.value_or("iterations", 0.0));
  result.wall_clock_ns =
      static_cast<std::int64_t>(record.value_or("wall_clock_ns", 0.0));
  result.policy.action.assign(record.policy.begin(), record.policy.end());
  return true;
}

std::vector<SmResult> analyze_sm_batch(std::span<const SmJob> jobs,
                                       const mdp::BatchConfig& batch,
                                       const SmCheckpoint& checkpoint) {
  std::vector<SmResult> results(jobs.size());

  mdp::BatchCheckpoint engine;
  std::vector<std::string> keys;
  if (checkpoint.journal != nullptr && checkpoint.journal->enabled()) {
    keys.reserve(jobs.size());
    for (const SmJob& job : jobs) {
      keys.push_back(sm_job_key(job));
    }
    engine.journal = checkpoint.journal;
    engine.cell_key = [&keys](std::size_t i) { return keys[i]; };
    engine.restore = [&results](std::size_t i,
                                const robust::CheckpointRecord& record) {
      return sm_restore(record, results[i]);
    };
    engine.snapshot = [&results, &keys,
                       persist = checkpoint.persist_policy](std::size_t i) {
      return sm_record(keys[i], results[i], persist);
    };
  }
  engine.include = checkpoint.include;
  engine.exclude = [&results](std::size_t i) {
    results[i] = SmResult{};
    results[i].status = robust::RunStatus::kConverged;
  };

  (void)mdp::run_batch(
      jobs.size(), batch, engine,
      [&](std::size_t i, const robust::RunControl& control) {
        results[i] = analyze_sm(jobs[i].params, jobs[i].utility,
                                jobs[i].tolerance, control);
        return results[i].status;
      },
      [&](std::size_t i, robust::RunStatus status) {
        results[i] = SmResult{};
        results[i].status = status;
      });
  return results;
}

double max_sm_double_spend_reward(double alpha, double gamma_tie) {
  SmParams params;
  params.alpha = alpha;
  params.gamma_tie = gamma_tie;
  return analyze_sm(params, bu::Utility::kAbsoluteReward).utility_value;
}

double max_selfish_mining_revenue(double alpha, double gamma_tie) {
  SmParams params;
  params.alpha = alpha;
  params.gamma_tie = gamma_tie;
  return analyze_sm(params, bu::Utility::kRelativeRevenue).utility_value;
}

}  // namespace bvc::btc
