// Optimal selfish mining on Bitcoin, optionally combined with
// double-spending — the paper's comparison baseline for Table 3 (bottom
// block), following Sapirshtein et al. (FC'16) and the modified
// Sompolinsky–Zohar setting of Sect. 4.3: a merchant transaction in every
// compliant block, four confirmations, R_DS = 10 block rewards, no penalty
// for failed attempts.
//
// State (a, h, fork): `a` secret attacker blocks and `h` public honest
// blocks since the last common ancestor;
//   fork = kIrrelevant — the last block was the attacker's (match illegal);
//   fork = kRelevant   — the last block was honest (match possible);
//   fork = kActive     — the attacker has matched and the network is split:
//                        a fraction `gamma_tie` of honest power mines on the
//                        attacker's branch.
// Actions: Adopt, Override, Match, Wait. Chain lengths are truncated at
// `max_len` (adopt/override forced at the boundary), the standard
// finite-state approximation; max_len = 24 puts the truncation error well
// below the reported precision for alpha <= 0.25.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "bu/attack_model.hpp"  // Utility, Deltas, utility_increments
#include "mdp/batch.hpp"
#include "mdp/model.hpp"
#include "mdp/ratio.hpp"

namespace bvc::btc {

enum class Fork : std::uint8_t { kIrrelevant = 0, kRelevant = 1, kActive = 2 };

enum class SmAction : mdp::ActionLabel {
  kAdopt = 0,
  kOverride = 1,
  kMatch = 2,
  kWait = 3,
};

[[nodiscard]] std::string_view to_string(SmAction action) noexcept;

struct SmState {
  std::uint16_t a = 0;
  std::uint16_t h = 0;
  Fork fork = Fork::kIrrelevant;

  [[nodiscard]] bool operator==(const SmState&) const = default;
};

struct SmParams {
  double alpha = 0.25;      ///< attacker mining power
  double gamma_tie = 0.5;   ///< honest power mining on the attacker's branch
                            ///< during an active tie ("P(win a tie)")
  unsigned max_len = 24;    ///< chain-length truncation
  /// Double-spending setting (only used for Utility::kAbsoluteReward).
  unsigned confirmations = 4;
  double rds = 10.0;

  void validate() const;
};

/// Dense state indexing for (a, h, fork).
class SmStateSpace {
 public:
  explicit SmStateSpace(unsigned max_len);

  [[nodiscard]] mdp::StateId size() const noexcept;
  [[nodiscard]] mdp::StateId index(const SmState& state) const;
  [[nodiscard]] SmState state(mdp::StateId id) const;

 private:
  unsigned max_len_;
};

/// The model plus its space, mirroring bu::AttackModel.
struct SmModel {
  SmStateSpace space;
  mdp::Model model;
  /// Shared SoA compilation from mdp::ModelCache::global(), populated by
  /// build_sm_model; what analyze_sm sweeps.
  std::shared_ptr<const mdp::CompiledModel> compiled;
  SmParams params;
  bu::Utility utility;
};

/// Canonical ModelCache key for (params, utility).
[[nodiscard]] std::string sm_model_cache_key(const SmParams& params,
                                             bu::Utility utility);

/// Builds the selfish-mining(+double-spending) MDP. Reward streams follow
/// bu::utility_increments:
///   kRelativeRevenue — classic optimal selfish mining (Sapirshtein et al.);
///   kAbsoluteReward  — selfish mining + double-spending (Table 3 baseline);
///   kOrphaning       — honest blocks orphaned per attacker block.
[[nodiscard]] SmModel build_sm_model(const SmParams& params,
                                     bu::Utility utility);

/// The base report carries how the underlying ratio solve ended (status,
/// iterations, wall clock, diagnostics); check converged() before trusting
/// `utility_value` as a certified optimum.
struct SmResult : mdp::SolveReport {
  double utility_value = 0.0;
  mdp::Policy policy;

  /// Outer ratio iterations (the base report's iteration count).
  [[nodiscard]] int solver_iterations() const noexcept { return iterations; }
};

/// The action a policy takes in `state`.
[[nodiscard]] SmAction policy_action(const SmModel& model,
                                     const mdp::Policy& policy,
                                     const SmState& state);

/// Renders the policy as Sapirshtein-style action grids (one per fork
/// label) for a, h <= min(max_len, limit): rows a, columns h, cells
/// a(dopt)/o(verride)/m(atch)/w(ait).
[[nodiscard]] std::string describe_sm_policy(const SmModel& model,
                                             const mdp::Policy& policy,
                                             unsigned limit = 8);

/// Solves the model to `tolerance` on the utility value. `control` bounds
/// and/or cancels the whole solve (see robust::RunControl).
[[nodiscard]] SmResult analyze_sm(const SmParams& params, bu::Utility utility,
                                  double tolerance = 1e-5,
                                  const robust::RunControl& control = {});

/// One cell of a Bitcoin-baseline sweep for analyze_sm_batch.
struct SmJob {
  SmParams params;
  bu::Utility utility = bu::Utility::kAbsoluteReward;
  double tolerance = 1e-5;
};

/// Canonical checkpoint key of one baseline cell (model key + tolerance).
[[nodiscard]] std::string sm_job_key(const SmJob& job);

/// Crash-safe sweep plumbing for analyze_sm_batch — same lifecycle as
/// bu::AnalysisCheckpoint (see mdp::BatchCheckpoint).
struct SmCheckpoint {
  robust::CheckpointJournal* journal = nullptr;
  std::function<bool(std::size_t)> include;
  bool persist_policy = false;
};

/// Batched analyze_sm() across mdp::run_batch's thread pool under the
/// shared budget in `batch.control`. Results are input-ordered and
/// independent of the thread count; skipped items carry kBudgetExhausted /
/// kCancelled. With a checkpoint journal, completed cells are journaled and
/// journaled cells restored instead of re-solved.
[[nodiscard]] std::vector<SmResult> analyze_sm_batch(
    std::span<const SmJob> jobs, const mdp::BatchConfig& batch = {},
    const SmCheckpoint& checkpoint = {});

/// Journal (de)serialization of one baseline cell (see bu::analysis_record).
[[nodiscard]] robust::CheckpointRecord sm_record(const std::string& key,
                                                 const SmResult& result,
                                                 bool persist_policy);
[[nodiscard]] bool sm_restore(const robust::CheckpointRecord& record,
                              SmResult& result);

/// Convenience: Table 3's "Selfish Mining + Double-Spending on Bitcoin" cell.
[[nodiscard]] double max_sm_double_spend_reward(double alpha,
                                                double gamma_tie);

/// Convenience: optimal selfish-mining relative revenue (for validation
/// against published values).
[[nodiscard]] double max_selfish_mining_revenue(double alpha,
                                                double gamma_tie);

}  // namespace bvc::btc
