// Closed-form baselines for Bitcoin with a prescribed BVC and fully
// compliant miners (Sect. 2.1 and Sect. 3 of the paper).
#pragma once

namespace bvc::btc {

/// Relative revenue of a compliant miner with power `alpha` when every miner
/// complies and propagation delay is negligible: Bitcoin is incentive
/// compatible, so u1 = alpha.
[[nodiscard]] double honest_relative_revenue(double alpha) noexcept;

/// Expected absolute reward per network block of a compliant miner: also
/// alpha (one block reward per block, no double-spending).
[[nodiscard]] double honest_absolute_reward(double alpha) noexcept;

/// Upper bound on u3 for Bitcoin attackers: each attacker block orphans at
/// most one compliant block (51% attack achieves exactly 1; selfish mining
/// reaches 1 only with instant propagation advantage). The paper uses this
/// bound as the comparison line for Table 4.
[[nodiscard]] double bitcoin_orphaning_bound() noexcept;

/// Success probability of a classic double-spend race (Nakamoto/Rosenfeld
/// style): the attacker with power `alpha` tries to catch up from `deficit`
/// blocks behind. Used for sanity checks against the MDP results.
[[nodiscard]] double catch_up_probability(double alpha, unsigned deficit);

}  // namespace bvc::btc
