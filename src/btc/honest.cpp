#include "btc/honest.hpp"

#include <cmath>

#include "util/check.hpp"

namespace bvc::btc {

double honest_relative_revenue(double alpha) noexcept { return alpha; }

double honest_absolute_reward(double alpha) noexcept { return alpha; }

double bitcoin_orphaning_bound() noexcept { return 1.0; }

double catch_up_probability(double alpha, unsigned deficit) {
  BVC_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
  if (alpha >= 0.5) {
    return 1.0;
  }
  // Gambler's-ruin: probability of ever gaining `deficit` net blocks when
  // each step wins with probability alpha: (alpha / (1 - alpha))^deficit.
  return std::pow(alpha / (1.0 - alpha), static_cast<double>(deficit));
}

}  // namespace bvc::btc
