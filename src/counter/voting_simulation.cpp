#include "counter/voting_simulation.hpp"

#include <cmath>

#include "util/check.hpp"

namespace bvc::counter {

namespace {
Vote cohort_vote(const VoterCohort& cohort, ByteSize current_limit) {
  Vote honest = Vote::kAbstain;
  if (current_limit < cohort.preferred_limit) {
    honest = Vote::kIncrease;
  } else if (current_limit > cohort.preferred_limit) {
    honest = Vote::kDecrease;
  }
  if (!cohort.adversarial) {
    return honest;
  }
  switch (honest) {
    case Vote::kIncrease:
      return Vote::kDecrease;
    case Vote::kDecrease:
      return Vote::kIncrease;
    case Vote::kAbstain:
      return Vote::kIncrease;  // an adversary pushes the limit upward
  }
  return Vote::kAbstain;
}
}  // namespace

VotingSimResult run_voting_simulation(const VotingSimConfig& config,
                                      std::size_t epochs, Rng& rng) {
  BVC_REQUIRE(!config.cohorts.empty(), "the simulation needs voters");
  std::vector<double> weights;
  double total = 0.0;
  for (const VoterCohort& cohort : config.cohorts) {
    BVC_REQUIRE(cohort.power > 0.0, "cohort power must be positive");
    weights.push_back(cohort.power);
    total += cohort.power;
  }
  BVC_REQUIRE(std::abs(total - 1.0) < 1e-9, "cohort powers must sum to 1");

  CategoricalSampler sampler(weights);
  DynamicLimitTracker tracker(config.rule);

  VotingSimResult result;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    result.limit_per_epoch.push_back(tracker.current_limit());
    for (Height i = 0; i < config.rule.epoch_length; ++i) {
      const std::size_t who = sampler.sample(rng);
      const Vote vote =
          cohort_vote(config.cohorts[who], tracker.current_limit());
      tracker.on_block(vote);
      ++result.blocks;
    }
  }
  result.final_limit = tracker.current_limit();
  for (const auto& adjustment : tracker.adjustments()) {
    if (adjustment.increase) {
      ++result.increases;
    } else {
      ++result.decreases;
    }
  }
  return result;
}

}  // namespace bvc::counter
