#include "counter/voting_simulation.hpp"

#include <cmath>

#include "util/check.hpp"

namespace bvc::counter {

namespace {
Vote cohort_vote(const VoterCohort& cohort, ByteSize current_limit) {
  Vote honest = Vote::kAbstain;
  if (current_limit < cohort.preferred_limit) {
    honest = Vote::kIncrease;
  } else if (current_limit > cohort.preferred_limit) {
    honest = Vote::kDecrease;
  }
  if (!cohort.adversarial) {
    return honest;
  }
  switch (honest) {
    case Vote::kIncrease:
      return Vote::kDecrease;
    case Vote::kDecrease:
      return Vote::kIncrease;
    case Vote::kAbstain:
      return Vote::kIncrease;  // an adversary pushes the limit upward
  }
  return Vote::kAbstain;
}
}  // namespace

VotingSimResult run_voting_simulation(const VotingSimConfig& config,
                                      std::size_t epochs, Rng& rng,
                                      const mdp::SolverConfig& solver) {
  BVC_REQUIRE(!config.cohorts.empty(), "the simulation needs voters");
  std::vector<double> weights;
  double total = 0.0;
  for (const VoterCohort& cohort : config.cohorts) {
    BVC_REQUIRE(cohort.power > 0.0, "cohort power must be positive");
    weights.push_back(cohort.power);
    total += cohort.power;
  }
  BVC_REQUIRE(std::abs(total - 1.0) < 1e-9, "cohort powers must sum to 1");

  CategoricalSampler sampler(weights);
  DynamicLimitTracker tracker(config.rule);

  // One tick per block; stride the deadline check so an unlimited budget
  // costs nothing in this per-block hot loop.
  robust::RunGuard guard(solver.control, /*clock_stride=*/256);
  VotingSimResult result;
  result.status = robust::RunStatus::kConverged;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    result.limit_per_epoch.push_back(tracker.current_limit());
    ++result.iterations;
    for (Height i = 0; i < config.rule.epoch_length; ++i) {
      if (const auto stop = guard.tick()) {
        result.status = *stop;
        break;
      }
      const std::size_t who = sampler.sample(rng);
      const Vote vote =
          cohort_vote(config.cohorts[who], tracker.current_limit());
      tracker.on_block(vote);
      ++result.blocks;
    }
    if (result.status != robust::RunStatus::kConverged) {
      break;
    }
  }
  result.final_limit = tracker.current_limit();
  for (const auto& adjustment : tracker.adjustments()) {
    if (adjustment.increase) {
      ++result.increases;
    } else {
      ++result.decreases;
    }
  }
  result.wall_clock_ns = guard.elapsed_ns();
  return result;
}

VotingSimResult run_voting_simulation(const VotingSimConfig& config,
                                      std::size_t epochs, Rng& rng) {
  return run_voting_simulation(config, epochs, rng, mdp::SolverConfig{});
}

std::vector<VotingSimResult> run_voting_batch(std::span<const VotingJob> jobs,
                                              const mdp::BatchConfig& batch) {
  std::vector<VotingSimResult> results(jobs.size());
  (void)mdp::run_batch(
      jobs.size(), batch,
      [&](std::size_t i, const robust::RunControl& control) {
        mdp::SolverConfig solver = jobs[i].solver;
        solver.control = control;
        Rng rng(jobs[i].seed);
        results[i] =
            run_voting_simulation(jobs[i].config, jobs[i].epochs, rng, solver);
        return results[i].status;
      },
      [&](std::size_t i, robust::RunStatus status) {
        results[i] = VotingSimResult{};
        results[i].status = status;
      });
  return results;
}

}  // namespace bvc::counter
